//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io (see `vendor/README.md`), so it vendors a minimal
//! serialization framework under serde's trait names. It is a real —
//! if small — framework, not a pile of no-ops:
//!
//! * [`Value`] is the self-describing data model (a JSON-like tree);
//! * [`Serialize`]/[`Serializer`] walk a value into that model, with
//!   [`to_value`] and [`to_json`] as front doors;
//! * [`Deserialize`]/[`Deserializer`] rebuild primitives, sequences and
//!   hand-written impls from a [`Value`] via [`from_value`];
//! * `#[derive(Serialize)]` (behind the `derive` feature) serializes via
//!   the type's `Debug` representation, and `#[derive(Deserialize)]`
//!   emits a compile-checked stub that errors at runtime — the workspace
//!   never deserializes derived types at runtime today, it only requires
//!   the trait bounds. The derives accept and ignore `#[serde(...)]`
//!   attributes so annotated sources keep compiling.
//!
//! The subset was chosen to cover exactly what this workspace's manual
//! impls (e.g. `Grid`'s) and derive sites need; extend it rather than
//! adding no-op shortcuts.

#![warn(missing_docs)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered string-keyed map (struct fields keep declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Renders the value as JSON text (non-finite floats become `null`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error type shared by the vendored serializer and deserializer.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// A type that can serialize itself into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for serialized data.
pub trait Serializer: Sized {
    /// Final output of successful serialization.
    type Ok;
    /// Serialization error.
    type Error: ser::Error;
    /// Sub-serializer for struct fields.
    type SerializeStruct: ser::SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Begins serializing a struct with `len` fields.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;

    /// Sinks an already-built [`Value`] (the primitive fast path).
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a value through its `Debug` representation — used by
    /// the vendored `#[derive(Serialize)]`.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn collect_debug<T: fmt::Debug + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(format!("{value:?}")))
    }
}

pub mod ser {
    //! Serialization-side helper traits (`serde::ser`).

    use super::{fmt, Serialize};

    /// Constructing serialization errors.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// Field-by-field struct serialization.
    pub trait SerializeStruct {
        /// Final output type.
        type Ok;
        /// Error type.
        type Error;

        /// Serializes one named field.
        ///
        /// # Errors
        ///
        /// Implementation-defined.
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;

        /// Finishes the struct.
        ///
        /// # Errors
        ///
        /// Implementation-defined.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

pub mod de {
    //! Deserialization-side helper traits (`serde::de`).

    use super::fmt;

    /// Constructing deserialization errors.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// A source of deserialized data: hands out one [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Deserialization error.
    type Error: de::Error;

    /// Consumes the deserializer, yielding its value tree.
    ///
    /// # Errors
    ///
    /// Implementation-defined (e.g. syntax errors in the source).
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// A type constructible from a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self`.
    ///
    /// # Errors
    ///
    /// Returns the deserializer's error when the data does not fit.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

// ---------------------------------------------------------------------
// Concrete serializer / deserializer over `Value`.

/// Serializer producing a [`Value`] tree.
#[derive(Debug, Default)]
pub struct ValueSerializer;

/// In-progress struct for [`ValueSerializer`].
#[derive(Debug)]
pub struct ValueStructSerializer {
    fields: Vec<(String, Value)>,
}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeStruct = ValueStructSerializer;

    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error> {
        Ok(ValueStructSerializer {
            fields: Vec::with_capacity(len),
        })
    }

    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error> {
        Ok(value)
    }
}

impl ser::SerializeStruct for ValueStructSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        let v = value.serialize(ValueSerializer)?;
        self.fields.push((key.to_string(), v));
        Ok(())
    }

    fn end(self) -> Result<Self::Ok, Self::Error> {
        Ok(Value::Map(self.fields))
    }
}

/// Deserializer reading from an owned [`Value`] tree.
#[derive(Debug)]
pub struct ValueDeserializer(Value);

impl ValueDeserializer {
    /// Wraps a value for deserialization.
    pub fn new(value: Value) -> Self {
        Self(value)
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn into_value(self) -> Result<Value, Self::Error> {
        Ok(self.0)
    }
}

/// Serializes any value into the [`Value`] data model.
///
/// # Errors
///
/// Propagates errors from the type's `Serialize` impl.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Serializes any value to JSON text.
///
/// # Errors
///
/// Propagates errors from the type's `Serialize` impl.
pub fn to_json<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(to_value(value)?.to_json())
}

/// Rebuilds a value from the [`Value`] data model.
///
/// # Errors
///
/// Returns an error when the tree does not match `T`'s shape.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer(value))
}

// ---------------------------------------------------------------------
// Serialize impls for primitives and containers.

macro_rules! serialize_as {
    ($variant:ident: $($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::$variant((*self).into()))
            }
        }
    )*};
}

serialize_as!(I64: i8, i16, i32, i64);
serialize_as!(U64: u8, u16, u32, u64);
serialize_as!(F64: f32, f64);
serialize_as!(Bool: bool);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::U64(*self as u64))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::I64(*self as i64))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_value(Value::Null),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let items: Result<Vec<Value>, Error> = self.iter().map(to_value).collect();
        match items {
            Ok(items) => serializer.serialize_value(Value::Seq(items)),
            Err(e) => Err(ser::Error::custom(e)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let pair = vec![to_value(&self.0), to_value(&self.1)];
        let items: Result<Vec<Value>, Error> = pair.into_iter().collect();
        match items {
            Ok(items) => serializer.serialize_value(Value::Seq(items)),
            Err(e) => Err(ser::Error::custom(e)),
        }
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for primitives and containers.

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.into_value()? {
                    Value::I64(v) => <$t>::try_from(v)
                        .map_err(|_| de::Error::custom(format!("{v} out of range"))),
                    Value::U64(v) => <$t>::try_from(v)
                        .map_err(|_| de::Error::custom(format!("{v} out of range"))),
                    other => Err(de::Error::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

deserialize_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.into_value()? {
                    Value::F64(v) => Ok(v as $t),
                    Value::I64(v) => Ok(v as $t),
                    Value::U64(v) => Ok(v as $t),
                    other => Err(de::Error::custom(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!(
                "expected string, found {other:?}"
            ))),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Null => Ok(None),
            v => from_value(v).map(Some).map_err(de::Error::custom),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(de::Error::custom))
                .collect(),
            other => Err(de::Error::custom(format!(
                "expected sequence, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_value() {
        assert_eq!(to_value(&42u32).unwrap(), Value::U64(42));
        assert_eq!(from_value::<u32>(Value::U64(42)).unwrap(), 42);
        assert_eq!(from_value::<f64>(Value::F64(1.5)).unwrap(), 1.5);
        let v: Vec<i64> = from_value(to_value(&vec![1i64, 2, 3]).unwrap()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn manual_struct_serialization_builds_map() {
        struct P {
            x: f64,
            y: f64,
        }
        impl Serialize for P {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                use crate::ser::SerializeStruct;
                let mut st = serializer.serialize_struct("P", 2)?;
                st.serialize_field("x", &self.x)?;
                st.serialize_field("y", &self.y)?;
                st.end()
            }
        }
        let v = to_value(&P { x: 1.0, y: -2.0 }).unwrap();
        assert_eq!(v.get("x"), Some(&Value::F64(1.0)));
        assert_eq!(v.to_json(), r#"{"x":1,"y":-2}"#);
    }

    #[test]
    fn json_escapes_strings() {
        let v = Value::Str("a\"b\\c\nd".to_string());
        assert_eq!(v.to_json(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn out_of_range_integer_errors() {
        assert!(from_value::<u8>(Value::U64(300)).is_err());
        assert!(from_value::<u32>(Value::I64(-1)).is_err());
    }
}
