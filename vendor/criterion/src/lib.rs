//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io (see `vendor/README.md`), so it vendors a small wall-clock
//! benchmark harness under criterion's names. It calibrates a batch size
//! so each sample takes a measurable amount of time, collects
//! `sample_size` samples, and prints min/median/mean per iteration —
//! honest measurements, but without criterion's outlier analysis, HTML
//! reports, or regression baselines.
//!
//! Command-line behaviour matches what `cargo bench`/`cargo test` need:
//! positional arguments act as substring filters on benchmark names, and
//! `--test` (passed by `cargo test`) runs each benchmark exactly once as
//! a smoke test.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Wall-clock time each calibrated sample aims for.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(40);

/// Prevents the optimizer from proving a benchmarked value unused.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter value.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier carrying only a parameter value (the group name
    /// provides the function part).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

/// Conversion accepted by `bench_function`: a `&str` or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Converts into an identifier.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self.to_string()),
            parameter: None,
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    smoke_test: bool,
    /// Mean per-iteration times of each collected sample.
    results: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            black_box(routine());
            return;
        }
        // Calibrate: grow the batch until one batch reaches the target
        // sample time (or the routine is clearly slow enough already).
        let mut iters = 1u64;
        loop {
            let t = Self::time_batch(&mut routine, iters);
            if t >= TARGET_SAMPLE_TIME || iters >= self.iters_per_sample.max(1 << 20) {
                break;
            }
            if t >= TARGET_SAMPLE_TIME / 2 {
                iters = (iters * 2).max(iters + 1);
                break;
            }
            let scale = (TARGET_SAMPLE_TIME.as_nanos() / t.as_nanos().max(1)).clamp(2, 16) as u64;
            iters = iters.saturating_mul(scale);
        }
        self.results.clear();
        for _ in 0..self.samples {
            let t = Self::time_batch(&mut routine, iters);
            self.results
                .push(t / u32::try_from(iters).unwrap_or(u32::MAX));
        }
    }

    fn time_batch<O, R: FnMut() -> O>(routine: &mut R, iters: u64) -> Duration {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        start.elapsed()
    }

    fn report(&mut self, name: &str) {
        if self.smoke_test {
            println!("{name}: ok (smoke test)");
            return;
        }
        self.results.sort();
        if self.results.is_empty() {
            println!("{name}: no samples collected");
            return;
        }
        let min = self.results[0];
        let median = self.results[self.results.len() / 2];
        let mean =
            self.results.iter().sum::<Duration>() / u32::try_from(self.results.len()).unwrap_or(1);
        println!(
            "{name}: median {} (min {}, mean {}, {} samples)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(mean),
            self.results.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    filters: Vec<String>,
    smoke_test: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filters = Vec::new();
        let mut smoke_test = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke_test = true,
                // Flags cargo/libtest pass through that we can ignore.
                s if s.starts_with('-') => {}
                s => filters.push(s.to_string()),
            }
        }
        Criterion {
            filters,
            smoke_test,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        let name = id.render();
        let sample_size = self.default_sample_size;
        self.run_one(&name, sample_size, f);
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, sample_size: usize, mut f: F) {
        if !self.matches(name) {
            return;
        }
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: sample_size,
            smoke_test: self.smoke_test,
            results: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().render());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.render());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; reporting happens as
    /// each benchmark finishes).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            filters: Vec::new(),
            smoke_test: false,
            default_sample_size: 3,
        };
        let mut group = c.benchmark_group("demo");
        group.sample_size(4);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0, "routine executed");
    }

    #[test]
    fn filters_skip_nonmatching_names() {
        let mut c = Criterion {
            filters: vec!["matched".to_string()],
            smoke_test: false,
            default_sample_size: 2,
        };
        let mut ran = false;
        c.bench_function("other_name", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran, "filtered benchmark must not run");
        c.bench_function("matched_name", |b| b.iter(|| 1));
    }

    #[test]
    fn smoke_test_mode_runs_once() {
        let mut c = Criterion {
            filters: Vec::new(),
            smoke_test: true,
            default_sample_size: 10,
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 1, "--test mode runs the routine exactly once");
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("fft", 1024).render(), "fft/1024");
        assert_eq!(BenchmarkId::from_parameter(256).render(), "256");
    }
}
