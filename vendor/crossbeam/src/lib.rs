//! Offline stand-in for the `crossbeam` crate.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io (see `vendor/README.md`). The only `crossbeam` API the
//! workspace uses is scoped threads, which std has provided natively
//! since 1.63 — this shim adapts `std::thread::scope` to crossbeam's
//! calling convention (the spawn closure receives a `&Scope` handle and
//! `scope` returns a `Result`).

#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads (`crossbeam::thread`).

    /// Result of joining a thread: `Err` carries the panic payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A handle to a thread scope; lets spawned closures spawn more
    /// scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned permission to join a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (`Err`
        /// holds the panic payload if it panicked).
        pub fn join(self) -> Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope handle so
        /// it can spawn further threads within the same scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            }))
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. All spawned threads are joined before this
    /// returns.
    ///
    /// Unlike the real crossbeam, a panic in an unjoined child propagates
    /// out of `scope` (std semantics) instead of being returned as `Err`;
    /// explicitly joined children report panics through
    /// [`ScopedJoinHandle::join`] exactly like crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panic"))
                    .sum()
            })
            .expect("scope succeeds");
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_through_scope_handle() {
            let n = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 21).join().expect("inner") * 2)
                    .join()
                    .expect("outer")
            })
            .expect("scope succeeds");
            assert_eq!(n, 42);
        }

        #[test]
        fn join_reports_panic_payload() {
            let r = super::scope(|s| s.spawn(|_| panic!("boom")).join());
            assert!(r.expect("scope itself succeeds").is_err());
        }
    }
}
