//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io (see `vendor/README.md`), so it vendors a small
//! property-testing runner under proptest's names. Differences from the
//! real crate, in honesty order:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering, un-minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and name, so failures reproduce exactly on re-run; there
//!   is no `PROPTEST_` environment-variable machinery.
//! * Only the combinators this workspace uses exist: range strategies,
//!   tuple strategies, `prop::collection::vec`, `any::<bool>()`,
//!   `prop_map`, and `prop_filter_map`, plus the `proptest!`,
//!   `prop_assert!`, `prop_assert_eq!` and `prop_assume!` macros.
//!
//! The runner semantics match upstream where it counts: `prop_assume!`
//! and `prop_filter_map` rejections are retried without consuming a case
//! budget slot (with a global cap), and every accepted case runs the
//! test body to completion or panics.

#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

/// Runner configuration (`proptest::test_runner::Config` upstream).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a test case did not pass: a real failure or a rejected input.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold; the runner panics with this message.
    Fail(String),
    /// The input fell outside the property's assumptions; the runner
    /// retries with a fresh input.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Whether this is a rejection (retry) rather than a failure.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Shorthand for a test-case outcome.
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod test_runner {
    //! The deterministic RNG driving input generation.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    pub use super::{TestCaseError, TestCaseResult};

    /// Random source handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates a generator seeded from a test's identity, so every
        /// run of the same test replays the same input sequence.
        pub fn deterministic(identity: &str) -> Self {
            // FNV-1a over the identity string.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in identity.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating test inputs.
///
/// `generate` returns `None` when the candidate was filtered out
/// (`prop_filter_map`); the runner retries with fresh randomness.
pub trait Strategy {
    /// The generated input type.
    type Value: fmt::Debug;

    /// Draws one candidate input.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, rejecting candidates for which
    /// `f` returns `None`. `whence` labels the rejection for diagnostics.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            _whence: whence,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Strategy produced by [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    _whence: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Strategy for a whole type's canonical distribution (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (`proptest::arbitrary::any`). Only the
/// types this workspace generates are wired up.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> Option<bool> {
        Some(rng.gen::<bool>())
    }
}

macro_rules! impl_any_full_range {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(<$t>::MIN..=<$t>::MAX))
            }
        }
    )*};
}

impl_any_full_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod prop {
    //! Strategy constructors (`proptest::prop`).

    pub mod collection {
        //! Collection strategies.

        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Inclusive-exclusive bounds on a generated collection's length.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy for `Vec`s of `element`-generated values (see [`vec`]).
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates `Vec`s whose length lies in `size` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
                let len = if self.size.lo + 1 >= self.size.hi {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..self.size.hi)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`proptest::prelude::*`).

    pub use crate::{any, prop, Any, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body against `config.cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let reject_cap = config.cases.saturating_mul(64).max(4096);
            'cases: while accepted < config.cases {
                assert!(
                    rejected <= reject_cap,
                    "{} inputs rejected before reaching {} accepted cases; \
                     loosen the strategy or the assumptions",
                    rejected,
                    config.cases,
                );
                $(
                    let $arg = match $crate::Strategy::generate(&($strategy), &mut rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => {
                            rejected += 1;
                            continue 'cases;
                        }
                    };
                )*
                let outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(e) if e.is_rejection() => rejected += 1,
                    ::core::result::Result::Err(e) => {
                        panic!("property {} falsified: {}", stringify!($name), e)
                    }
                }
            }
        }
    )*};
}

/// Like `assert!`, but fails the current generated case instead of
/// panicking directly (usable only inside [`proptest!`] bodies).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the current generated case instead of
/// panicking directly (usable only inside [`proptest!`] bodies).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                left, right,
            )));
        }
    }};
}

/// Rejects the current generated case unless `cond` holds; the runner
/// retries with a fresh input without consuming a case slot.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("self-test");
        let strat = prop::collection::vec((0i64..10, -1.0f64..1.0), 3..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng).expect("no filtering here");
            assert!((3..7).contains(&v.len()));
            for (i, f) in v {
                assert!((0..10).contains(&i));
                assert!((-1.0..1.0).contains(&f));
            }
        }
    }

    #[test]
    fn filter_map_rejections_surface_as_none() {
        let mut rng = crate::test_runner::TestRng::deterministic("filter-test");
        let strat = (0u32..10).prop_filter_map("keep evens", |v| (v % 2 == 0).then_some(v));
        let mut kept = 0;
        for _ in 0..100 {
            if let Some(v) = strat.generate(&mut rng) {
                assert_eq!(v % 2, 0);
                kept += 1;
            }
        }
        assert!(kept > 10, "some candidates survive: {kept}");
    }

    #[test]
    fn deterministic_per_identity() {
        let mut a = crate::test_runner::TestRng::deterministic("same");
        let mut b = crate::test_runner::TestRng::deterministic("same");
        let s = 0u64..1_000_000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro front-end itself: assume/assert plumbing works.
        #[test]
        fn macro_runner_accepts_and_rejects(x in 0i64..100, flip in any::<bool>()) {
            prop_assume!(x != 50);
            prop_assert!(x < 100, "x={} out of range", x);
            prop_assert_eq!(flip, flip);
        }
    }
}
