//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the handful of external crates it uses are vendored as
//! minimal API-compatible substitutes (see `vendor/README.md`). This one
//! wraps the `std::sync` primitives behind `parking_lot`'s poison-free
//! interface: `lock()`/`read()`/`write()` return guards directly instead
//! of `Result`s.
//!
//! Poisoning is handled the way `parking_lot` behaves: a thread that
//! panicked while holding a lock does not poison it for everyone else,
//! which here is emulated by recovering the inner guard from the
//! `PoisonError`.

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with the `parking_lot` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutably borrows the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with the `parking_lot` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    /// Mutably borrows the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable with the `parking_lot` API.
///
/// Like the lock shims above, this wraps the std primitive behind
/// `parking_lot`'s interface: `wait` takes the guard by `&mut` (instead of
/// std's consume-and-return) and poisoning is recovered transparently.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks until the condition variable is notified, releasing the
    /// mutex while parked and reacquiring it before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard and returns a fresh one; bridge to
        // parking_lot's `&mut` signature by moving the guard out and back.
        // Sound because no code runs between the read and the write except
        // `wait`, whose poison error is recovered, so the moved-out guard
        // is always written back exactly once.
        unsafe {
            let moved = std::ptr::read(guard);
            let reacquired = self.0.wait(moved).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, reacquired);
        }
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_value() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
            assert!(l.try_write().is_none());
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn const_new_in_static() {
        static CELL: Mutex<i32> = Mutex::new(7);
        static TABLE: RwLock<i32> = RwLock::new(9);
        assert_eq!(*CELL.lock(), 7);
        assert_eq!(*TABLE.read(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut guard = lock.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
            *guard
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(handle.join().expect("waiter finishes"));
    }
}
