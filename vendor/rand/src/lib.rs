//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io (see `vendor/README.md`). This shim implements the subset of
//! the rand 0.8 API the workspace uses — `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer and float ranges, and `rngs::StdRng` —
//! on top of the xoshiro256++ generator (public domain, Blackman &
//! Vigna). Streams are deterministic per seed, which the test-suite and
//! benchmark-case generator rely on, but do **not** match upstream
//! `StdRng` streams (upstream never guaranteed stream stability across
//! versions either).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Distinct seeds yield
    /// decorrelated streams (the seed is expanded with SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a uniformly random value of `T` (bool, ints, or a float
    /// in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types with a canonical uniform distribution (subset of rand's
/// `Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to a double in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled from (subset of rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over ranges (rand's `SampleUniform`).
///
/// `SampleRange` is implemented *blanket-wise* over this trait, exactly
/// like upstream rand: the single generic impl per range shape is what
/// lets integer-literal inference flow through `gen_range(0..4)` into the
/// surrounding expression (e.g. a slice index or an `i64` sum). Per-type
/// `SampleRange` impls would leave the literal ambiguous and fall back to
/// `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Uniform integer in `[0, span)` by widening multiply (unbiased enough
/// for simulation workloads; span is at most 2^64 here).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

pub mod rngs {
    //! Concrete generators (`rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro
            // authors: guarantees a non-zero state for every seed.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000));
        assert!(!same, "different seeds must give different streams");
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10);
            assert!((0..10).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all outcomes reached");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn float_range_bounds_and_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_half = 0;
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
            if v < 0.0 {
                lo_half += 1;
            }
        }
        assert!((300..700).contains(&lo_half), "roughly balanced: {lo_half}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
