//! `lsopc` — level-set inverse lithography mask optimization.
//!
//! This is the umbrella crate of the workspace reproducing the DATE 2021
//! paper *“A GPU-enabled Level Set Method for Mask Optimization”* (Yu, Chen,
//! Ma, Yu). It re-exports the public API of every member crate so that a
//! downstream user can depend on `lsopc` alone.
//!
//! # Quick start
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use lsopc::prelude::*;
//!
//! // A small target layout: one 80nm x 200nm wire in a 512nm field.
//! let mut layout = Layout::new();
//! layout.push(Rect::new(216, 156, 296, 356).into());
//!
//! // Build the optical model and simulator at 4 nm/px.
//! let optics = OpticsConfig::iccad2013();
//! let sim = LithoSimulator::from_optics(&optics, 128, 4.0)?;
//!
//! // Run the level-set ILT optimizer.
//! let target = rasterize(&layout, 128, 128, 4.0);
//! let result = LevelSetIlt::builder()
//!     .max_iterations(20)
//!     .build()
//!     .optimize(&sim, &target)?;
//! println!("final cost: {}", result.history.last().expect("iterations").cost_total);
//! # Ok(())
//! # }
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use lsopc_baselines as baselines;
pub use lsopc_benchsuite as benchsuite;
pub use lsopc_core as core;
pub use lsopc_engine as engine;
pub use lsopc_fft as fft;
pub use lsopc_geometry as geometry;
pub use lsopc_grid as grid;
pub use lsopc_levelset as levelset;
pub use lsopc_litho as litho;
pub use lsopc_metrics as metrics;
pub use lsopc_optics as optics;
pub use lsopc_trace as trace;

/// Convenient glob-import of the most common types.
pub mod prelude {
    pub use lsopc_baselines::{MaskOptimizer, PixelIlt, PvOpc, RobustOpc};
    pub use lsopc_benchsuite::Iccad2013Suite;
    pub use lsopc_core::{IltResult, IterationRecord, LevelSetIlt};
    pub use lsopc_geometry::{rasterize, Layout, Polygon, Rect};
    pub use lsopc_grid::{Grid, C64};
    pub use lsopc_litho::{LithoSimulator, ProcessCondition, ResistModel};
    pub use lsopc_metrics::{ContestScore, EpeChecker, PvBand};
    pub use lsopc_optics::OpticsConfig;
}
