//! MOSAIC-style pixel-based ILT (fast and exact modes).

use crate::engine::{PixelEngine, ScheduledCorner};
use crate::{BaselineError, BaselineResult, MaskOptimizer};
use lsopc_grid::Grid;
use lsopc_litho::LithoSimulator;
use serde::{Deserialize, Serialize};

/// Corner-sampling strategy of [`PixelIlt`], mirroring MOSAIC's fast /
/// exact trade-off (Gao et al., DAC'14).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PixelIltMode {
    /// Nominal-only gradient most iterations; the process-window corners
    /// are simulated every fourth iteration. Cheap but less accurate.
    Fast,
    /// All three corners every iteration, with a longer iteration budget.
    Exact,
}

/// Pixel-based ILT baseline: steepest descent on a sigmoid-parameterized
/// pixel mask.
///
/// # Example
///
/// ```no_run
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use lsopc_baselines::{MaskOptimizer, PixelIlt, PixelIltMode};
/// # use lsopc_grid::Grid;
/// # use lsopc_litho::LithoSimulator;
/// # use lsopc_optics::OpticsConfig;
/// # let sim = LithoSimulator::from_optics(&OpticsConfig::iccad2013(), 512, 4.0)?;
/// # let target = Grid::new(512, 512, 1.0);
/// let result = PixelIlt::new(PixelIltMode::Exact).optimize(&sim, &target)?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PixelIlt {
    mode: PixelIltMode,
    iterations: usize,
    step: f64,
    latent_steepness: f64,
    w_pvb: f64,
}

impl PixelIlt {
    /// Creates the baseline with mode-appropriate defaults
    /// (fast: 30 iterations; exact: 60).
    pub fn new(mode: PixelIltMode) -> Self {
        let iterations = match mode {
            PixelIltMode::Fast => 30,
            PixelIltMode::Exact => 60,
        };
        Self {
            mode,
            iterations,
            step: 0.4,
            latent_steepness: 4.0,
            w_pvb: 1.0,
        }
    }

    /// Sets the iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "iteration count must be positive");
        self.iterations = iterations;
        self
    }

    /// Sets the descent step (peak latent change per iteration).
    ///
    /// # Panics
    ///
    /// Panics unless positive.
    pub fn with_step(mut self, step: f64) -> Self {
        assert!(step > 0.0, "step must be positive");
        self.step = step;
        self
    }

    /// Sets the process-variation weight.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn with_pvb_weight(mut self, w: f64) -> Self {
        assert!(w >= 0.0, "w_pvb must be non-negative");
        self.w_pvb = w;
        self
    }

    /// The configured mode.
    pub fn mode(&self) -> PixelIltMode {
        self.mode
    }
}

impl MaskOptimizer for PixelIlt {
    fn name(&self) -> &str {
        match self.mode {
            PixelIltMode::Fast => "mosaic-fast",
            PixelIltMode::Exact => "mosaic-exact",
        }
    }

    fn optimize(
        &self,
        sim: &LithoSimulator,
        target: &Grid<f64>,
    ) -> Result<BaselineResult, BaselineError> {
        let corners = sim.corners();
        let w_pvb = self.w_pvb;
        let mode = self.mode;
        let engine = PixelEngine {
            iterations: self.iterations,
            step: self.step,
            latent_steepness: self.latent_steepness,
            momentum: 0.0,
        };
        engine.run(sim, target, move |i| {
            let mut schedule = vec![ScheduledCorner {
                condition: corners.nominal,
                weight: 1.0,
            }];
            let sample_corners = match mode {
                PixelIltMode::Exact => true,
                PixelIltMode::Fast => i % 4 == 3,
            };
            if sample_corners && w_pvb > 0.0 {
                schedule.push(ScheduledCorner {
                    condition: corners.inner,
                    weight: w_pvb,
                });
                schedule.push(ScheduledCorner {
                    condition: corners.outer,
                    weight: w_pvb,
                });
            }
            schedule
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_optics::OpticsConfig;

    fn setup() -> (LithoSimulator, Grid<f64>) {
        let sim =
            LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
                .expect("valid configuration");
        let target = Grid::from_fn(64, 64, |x, y| {
            if (26..38).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        (sim, target)
    }

    #[test]
    fn both_modes_reduce_cost() {
        let (sim, target) = setup();
        for mode in [PixelIltMode::Fast, PixelIltMode::Exact] {
            let result = PixelIlt::new(mode)
                .with_iterations(10)
                .optimize(&sim, &target)
                .expect("runs");
            let first = result.cost_history.first().expect("history");
            let last = result.cost_history.last().expect("history");
            assert!(last < first, "{mode:?}: {first} -> {last}");
        }
    }

    #[test]
    fn names_distinguish_modes() {
        assert_eq!(PixelIlt::new(PixelIltMode::Fast).name(), "mosaic-fast");
        assert_eq!(PixelIlt::new(PixelIltMode::Exact).name(), "mosaic-exact");
    }

    #[test]
    fn exact_defaults_to_more_iterations() {
        let fast = PixelIlt::new(PixelIltMode::Fast);
        let exact = PixelIlt::new(PixelIltMode::Exact);
        assert!(exact.iterations > fast.iterations);
    }

    #[test]
    fn fast_mode_is_faster_than_exact() {
        let (sim, target) = setup();
        let fast = PixelIlt::new(PixelIltMode::Fast)
            .with_iterations(8)
            .optimize(&sim, &target)
            .expect("runs");
        let exact = PixelIlt::new(PixelIltMode::Exact)
            .with_iterations(8)
            .optimize(&sim, &target)
            .expect("runs");
        // Same iteration count: fast simulates far fewer corners.
        assert!(
            fast.runtime_s < exact.runtime_s,
            "fast {} vs exact {}",
            fast.runtime_s,
            exact.runtime_s
        );
    }
}
