//! The shared pixel-ILT machinery and the [`MaskOptimizer`] trait.

use lsopc_grid::{max_abs, Grid};
use lsopc_litho::{corner_cost_and_gradient, LithoSimulator, ProcessCondition};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error returned by baseline optimizers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// Target grid does not match the simulator grid.
    TargetDimsMismatch {
        /// Target grid dimensions.
        target: (usize, usize),
        /// Simulator grid dimension.
        sim: usize,
    },
    /// Target contains no pattern.
    EmptyTarget,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TargetDimsMismatch { target, sim } => write!(
                f,
                "target grid {}x{} does not match simulator grid {sim}x{sim}",
                target.0, target.1
            ),
            Self::EmptyTarget => write!(f, "target contains no pattern"),
        }
    }
}

impl Error for BaselineError {}

/// Outcome of a baseline optimization run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineResult {
    /// The optimized binary mask.
    #[serde(skip, default = "empty_grid")]
    pub mask: Grid<f64>,
    /// Iterations run.
    pub iterations: usize,
    /// Wall-clock runtime in seconds.
    pub runtime_s: f64,
    /// Total-cost trace, one entry per iteration.
    pub cost_history: Vec<f64>,
}

// Referenced only from the `#[serde(default = "empty_grid")]` attribute
// above; the vendored serde_derive stub does not expand attribute
// arguments, so rustc sees no call site.
#[allow(dead_code)]
fn empty_grid() -> Grid<f64> {
    Grid::new(1, 1, 0.0)
}

/// A mask optimizer: target in, mask out.
///
/// Implemented by every baseline here and (through an adapter in the
/// bench harness) by the level-set method, so comparison tables can loop
/// over `&dyn MaskOptimizer`.
pub trait MaskOptimizer {
    /// Short method name for table rows (e.g. `"mosaic-fast"`).
    fn name(&self) -> &str;

    /// Optimizes a mask for `target` on the given simulator.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError`] when the target is malformed.
    fn optimize(
        &self,
        sim: &LithoSimulator,
        target: &Grid<f64>,
    ) -> Result<BaselineResult, BaselineError>;
}

/// One corner of a per-iteration simulation schedule.
#[derive(Copy, Clone, Debug)]
pub(crate) struct ScheduledCorner {
    pub condition: ProcessCondition,
    pub weight: f64,
}

/// Configuration of the shared pixel-ILT descent loop.
#[derive(Clone, Debug)]
pub(crate) struct PixelEngine {
    /// Iterations to run.
    pub iterations: usize,
    /// Per-iteration step size, as the peak latent change in latent units.
    pub step: f64,
    /// Steepness of the latent → mask sigmoid.
    pub latent_steepness: f64,
    /// Heavy-ball momentum coefficient (0 = plain steepest descent).
    pub momentum: f64,
}

impl PixelEngine {
    /// Runs sigmoid-parameterized pixel-mask gradient descent.
    ///
    /// `schedule(iteration)` returns the corners to simulate (with cost
    /// weights) in that iteration, letting callers reproduce the different
    /// corner-sampling strategies of the published baselines.
    pub fn run(
        &self,
        sim: &LithoSimulator,
        target: &Grid<f64>,
        schedule: impl Fn(usize) -> Vec<ScheduledCorner>,
    ) -> Result<BaselineResult, BaselineError> {
        let n = sim.grid_px();
        if target.dims() != (n, n) {
            return Err(BaselineError::TargetDimsMismatch {
                target: target.dims(),
                sim: n,
            });
        }
        let target = target.binarize(0.5);
        if target.sum() == 0.0 {
            return Err(BaselineError::EmptyTarget);
        }

        let start = std::time::Instant::now();
        // Latent parameterization M = σ(s_m·θ): unconstrained descent with
        // masks pinned to (0, 1) — the standard pixel-ILT trick.
        let mut theta = target.map(|&t| if t >= 0.5 { 1.0 } else { -1.0 });
        let mut velocity: Grid<f64> = Grid::new(n, n, 0.0);
        let mut cost_history = Vec::with_capacity(self.iterations);
        let mut best: Option<(f64, Grid<f64>)> = None;

        for i in 0..self.iterations {
            let mask = self.mask_of(&theta);
            let mut cost = 0.0;
            let mut grad_mask: Grid<f64> = Grid::new(n, n, 0.0);
            for corner in schedule(i) {
                let (c, g) =
                    corner_cost_and_gradient(sim, &mask, &target, corner.condition, corner.weight);
                cost += c;
                for (dst, &v) in grad_mask.as_mut_slice().iter_mut().zip(g.as_slice()) {
                    *dst += v;
                }
            }
            cost_history.push(cost);
            let binary = mask.binarize(0.5);
            if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
                best = Some((cost, binary));
            }

            // dL/dθ = dL/dM ⊙ s_m·M·(1−M).
            let grad_theta =
                grad_mask.zip_map(&mask, |&g, &m| g * self.latent_steepness * m * (1.0 - m));
            let peak = max_abs(&grad_theta);
            if peak <= 1e-14 {
                break;
            }
            let scale = self.step / peak;
            for ((v, &g), t) in velocity
                .as_mut_slice()
                .iter_mut()
                .zip(grad_theta.as_slice())
                .zip(theta.as_mut_slice())
            {
                *v = self.momentum * *v - scale * g;
                *t += *v;
            }
        }

        let (_, mask) = best.unwrap_or_else(|| (f64::INFINITY, target.clone()));
        Ok(BaselineResult {
            mask,
            iterations: cost_history.len(),
            runtime_s: start.elapsed().as_secs_f64(),
            cost_history,
        })
    }

    fn mask_of(&self, theta: &Grid<f64>) -> Grid<f64> {
        theta.map(|&t| 1.0 / (1.0 + (-self.latent_steepness * t).exp()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_optics::OpticsConfig;

    fn sim() -> LithoSimulator {
        LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
            .expect("valid configuration")
    }

    fn target() -> Grid<f64> {
        Grid::from_fn(64, 64, |x, y| {
            if (26..38).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    fn nominal_schedule(_: usize) -> Vec<ScheduledCorner> {
        vec![ScheduledCorner {
            condition: ProcessCondition::NOMINAL,
            weight: 1.0,
        }]
    }

    #[test]
    fn descent_reduces_cost() {
        let engine = PixelEngine {
            iterations: 10,
            step: 0.4,
            latent_steepness: 4.0,
            momentum: 0.0,
        };
        let result = engine
            .run(&sim(), &target(), nominal_schedule)
            .expect("runs");
        let first = result.cost_history.first().expect("history");
        let last = result.cost_history.last().expect("history");
        assert!(last < first, "{first} -> {last}");
        assert!(result.mask.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn momentum_variant_also_improves() {
        let engine = PixelEngine {
            iterations: 10,
            step: 0.3,
            latent_steepness: 4.0,
            momentum: 0.5,
        };
        let result = engine
            .run(&sim(), &target(), nominal_schedule)
            .expect("runs");
        assert!(result.cost_history.last() < result.cost_history.first());
    }

    #[test]
    fn rejects_bad_targets() {
        let engine = PixelEngine {
            iterations: 2,
            step: 0.1,
            latent_steepness: 4.0,
            momentum: 0.0,
        };
        let err = engine
            .run(&sim(), &Grid::new(32, 32, 1.0), nominal_schedule)
            .expect_err("mismatch");
        assert!(matches!(err, BaselineError::TargetDimsMismatch { .. }));
        let err = engine
            .run(&sim(), &Grid::new(64, 64, 0.0), nominal_schedule)
            .expect_err("empty");
        assert_eq!(err, BaselineError::EmptyTarget);
    }
}
