//! Pixel-based OPC baselines for the paper's Table I / Table II
//! comparisons.
//!
//! The paper compares its level-set method against four process
//! window-aware pixel-based ILT algorithms. Their original binaries are
//! not available, so this crate re-implements *representative* versions of
//! each on top of the shared [`lsopc_litho`] simulator (see DESIGN.md §2):
//!
//! * [`PixelIlt`] in [`PixelIltMode::Fast`] — MOSAIC_fast-style: steepest
//!   descent on a sigmoid-parameterized pixel mask, simulating the
//!   process-window corners only every few iterations;
//! * [`PixelIlt`] in [`PixelIltMode::Exact`] — MOSAIC_exact-style: the
//!   full three-corner gradient every iteration, with more iterations;
//! * [`RobustOpc`] — Kuang et al. (DATE'15)-style: simulates only the two
//!   extreme corners per iteration and *estimates* the nominal response as
//!   their average, trading accuracy for runtime;
//! * [`PvOpc`] — Su et al. (TCAD'16)-style: the PV-aware cost with
//!   heavy-ball momentum for faster convergence;
//! * [`RuleOpc`] — simulation-free rule-based edge biasing, the pre-ILT
//!   industry baseline (extension beyond the paper's comparison set).
//!
//! All baselines implement the [`MaskOptimizer`] trait, as does the
//! level-set method through an adapter in the benchmark harness, so the
//! Table I/II generators can treat every method uniformly.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use lsopc_baselines::{MaskOptimizer, PixelIlt, PixelIltMode};
//! use lsopc_grid::Grid;
//! use lsopc_litho::LithoSimulator;
//! use lsopc_optics::OpticsConfig;
//!
//! let sim = LithoSimulator::from_optics(
//!     &OpticsConfig::iccad2013().with_kernel_count(4),
//!     64,
//!     4.0,
//! )?;
//! let target = Grid::from_fn(64, 64, |x, y| {
//!     if (24..40).contains(&x) && (12..52).contains(&y) { 1.0 } else { 0.0 }
//! });
//! let result = PixelIlt::new(PixelIltMode::Fast)
//!     .with_iterations(8)
//!     .optimize(&sim, &target)?;
//! assert!(result.mask.sum() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod engine;
mod pixel_ilt;
mod pvopc;
mod robust;
mod rule_opc;

pub use engine::{BaselineError, BaselineResult, MaskOptimizer};
pub use pixel_ilt::{PixelIlt, PixelIltMode};
pub use pvopc::PvOpc;
pub use robust::RobustOpc;
pub use rule_opc::RuleOpc;
