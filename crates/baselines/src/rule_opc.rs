//! Rule-based OPC: the pre-ILT industry baseline.
//!
//! Before model-based OPC, masks were corrected with geometric rules:
//! bias every edge outward by a fixed amount and add serifs/hammerheads
//! at corners and line-ends. This baseline implements a raster version
//! (uniform edge bias via the signed distance transform, plus line-end
//! extension along feature tips). It needs **no simulation at all**, so it
//! is essentially free — and correspondingly far behind every model-based
//! method on quality, which is exactly the gap ILT papers exploit.

use crate::{BaselineError, BaselineResult, MaskOptimizer};
use lsopc_grid::Grid;
use lsopc_levelset::signed_distance;
use lsopc_litho::LithoSimulator;
use serde::{Deserialize, Serialize};

/// Rule-based OPC with a uniform edge bias and corner serifs.
///
/// # Example
///
/// ```no_run
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use lsopc_baselines::{MaskOptimizer, RuleOpc};
/// # use lsopc_grid::Grid;
/// # use lsopc_litho::LithoSimulator;
/// # use lsopc_optics::OpticsConfig;
/// # let sim = LithoSimulator::from_optics(&OpticsConfig::iccad2013(), 512, 4.0)?;
/// # let target = Grid::new(512, 512, 1.0);
/// let result = RuleOpc::new(8.0, 12.0).optimize(&sim, &target)?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuleOpc {
    /// Uniform outward edge bias, nm.
    bias_nm: f64,
    /// Extra bias applied near convex corners (serif strength), nm.
    serif_nm: f64,
}

impl RuleOpc {
    /// Creates the baseline with the given edge bias and serif strength
    /// (both in nm; typical 193 nm-era rules bias single-digit nm).
    ///
    /// # Panics
    ///
    /// Panics if either value is negative.
    pub fn new(bias_nm: f64, serif_nm: f64) -> Self {
        assert!(bias_nm >= 0.0, "bias must be non-negative");
        assert!(serif_nm >= 0.0, "serif strength must be non-negative");
        Self { bias_nm, serif_nm }
    }

    /// Edge bias in nm.
    pub fn bias_nm(&self) -> f64 {
        self.bias_nm
    }

    /// Serif strength in nm.
    pub fn serif_nm(&self) -> f64 {
        self.serif_nm
    }
}

impl Default for RuleOpc {
    fn default() -> Self {
        Self::new(8.0, 12.0)
    }
}

impl MaskOptimizer for RuleOpc {
    fn name(&self) -> &str {
        "rule-opc"
    }

    fn optimize(
        &self,
        sim: &LithoSimulator,
        target: &Grid<f64>,
    ) -> Result<BaselineResult, BaselineError> {
        let n = sim.grid_px();
        if target.dims() != (n, n) {
            return Err(BaselineError::TargetDimsMismatch {
                target: target.dims(),
                sim: n,
            });
        }
        let target = target.binarize(0.5);
        if target.sum() == 0.0 {
            return Err(BaselineError::EmptyTarget);
        }
        let start = std::time::Instant::now();
        let px = sim.pixel_nm();
        let bias_px = self.bias_nm / px;
        let serif_px = self.serif_nm / px;

        // Uniform bias: expand the zero level of the SDF by bias_px.
        let psi = signed_distance(&target);
        // Serifs: hammerhead discs of radius serif_px around every convex
        // corner of the target.
        let corner = corner_map(&target);
        let corner_dist = if serif_px > 0.0 && corner.as_slice().iter().any(|&c| c) {
            Some(signed_distance(&corner.map(|&c| if c { 1.0 } else { 0.0 })))
        } else {
            None
        };
        let mask = Grid::from_fn(n, n, |x, y| {
            let serifed = corner_dist.as_ref().is_some_and(|d| d[(x, y)] <= serif_px);
            if psi[(x, y)] <= bias_px || serifed {
                1.0
            } else {
                0.0
            }
        });
        Ok(BaselineResult {
            mask,
            iterations: 1,
            runtime_s: start.elapsed().as_secs_f64(),
            cost_history: Vec::new(),
        })
    }
}

/// Marks background pixels diagonally adjacent to a convex target corner
/// (where a serif belongs).
fn corner_map(target: &Grid<f64>) -> Grid<bool> {
    let (w, h) = target.dims();
    let inside = |x: i64, y: i64| -> bool {
        x >= 0 && y >= 0 && x < w as i64 && y < h as i64 && target[(x as usize, y as usize)] >= 0.5
    };
    Grid::from_fn(w, h, |xu, yu| {
        let (x, y) = (xu as i64, yu as i64);
        if inside(x, y) {
            return false;
        }
        // A convex corner of the pattern shows up as a diagonal inside
        // neighbour whose two adjacent sides are also outside.
        for (dx, dy) in [(1i64, 1i64), (1, -1), (-1, 1), (-1, -1)] {
            if inside(x + dx, y + dy) && !inside(x + dx, y) && !inside(x, y + dy) {
                return true;
            }
        }
        false
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_optics::OpticsConfig;

    fn setup() -> (LithoSimulator, Grid<f64>) {
        let sim =
            LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
                .expect("valid configuration");
        let target = Grid::from_fn(64, 64, |x, y| {
            if (26..38).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        (sim, target)
    }

    #[test]
    fn bias_grows_the_mask() {
        let (sim, target) = setup();
        let result = RuleOpc::new(8.0, 0.0)
            .optimize(&sim, &target)
            .expect("runs");
        assert!(result.mask.sum() > target.sum());
        // The mask contains the target.
        for (m, t) in result.mask.as_slice().iter().zip(target.as_slice()) {
            assert!(m >= t);
        }
    }

    #[test]
    fn zero_rules_reproduce_the_target() {
        let (sim, target) = setup();
        let result = RuleOpc::new(0.0, 0.0)
            .optimize(&sim, &target)
            .expect("runs");
        assert_eq!(result.mask, target);
    }

    #[test]
    fn serifs_add_material_at_corners_only() {
        let (sim, target) = setup();
        let plain = RuleOpc::new(4.0, 0.0)
            .optimize(&sim, &target)
            .expect("runs");
        let serifed = RuleOpc::new(4.0, 12.0)
            .optimize(&sim, &target)
            .expect("runs");
        assert!(serifed.mask.sum() > plain.mask.sum());
        // Far from corners (edge midpoint) the two agree.
        assert_eq!(plain.mask[(25, 32)], serifed.mask[(25, 32)]);
    }

    #[test]
    fn biased_mask_prints_closer_to_target() {
        let (sim, target) = setup();
        let result = RuleOpc::new(8.0, 12.0)
            .optimize(&sim, &target)
            .expect("runs");
        let printed_raw = sim.print(&target, lsopc_litho::ProcessCondition::NOMINAL);
        let printed_opc = sim.print(&result.mask, lsopc_litho::ProcessCondition::NOMINAL);
        let err = |p: &Grid<f64>| -> f64 {
            p.as_slice()
                .iter()
                .zip(target.as_slice())
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        assert!(err(&printed_opc) < err(&printed_raw));
    }

    #[test]
    fn needs_no_iterations() {
        let (sim, target) = setup();
        let result = RuleOpc::default().optimize(&sim, &target).expect("runs");
        assert_eq!(result.iterations, 1);
        assert!(result.cost_history.is_empty());
    }
}
