//! PVOPC baseline (Su et al., TCAD 2016 style).

use crate::engine::{PixelEngine, ScheduledCorner};
use crate::{BaselineError, BaselineResult, MaskOptimizer};
use lsopc_grid::Grid;
use lsopc_litho::LithoSimulator;
use serde::{Deserialize, Serialize};

/// Fast process-variation-aware pixel OPC.
///
/// Representative of "Fast lithographic mask optimization considering
/// process variation" [16]: the full PV-aware cost with an accelerated
/// first-order update (heavy-ball momentum) and a deliberately small
/// iteration budget, which is how it achieves the shortest runtimes of
/// the published baselines in Table II.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PvOpc {
    iterations: usize,
    step: f64,
    latent_steepness: f64,
    momentum: f64,
    w_pvb: f64,
}

impl PvOpc {
    /// Creates the baseline with its default budget (20 iterations,
    /// momentum 0.6).
    pub fn new() -> Self {
        Self {
            iterations: 20,
            step: 0.45,
            latent_steepness: 4.0,
            momentum: 0.6,
            w_pvb: 1.0,
        }
    }

    /// Sets the iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "iteration count must be positive");
        self.iterations = iterations;
        self
    }

    /// Sets the momentum coefficient.
    ///
    /// # Panics
    ///
    /// Panics unless in `[0, 1)`.
    pub fn with_momentum(mut self, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Sets the process-variation weight.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn with_pvb_weight(mut self, w: f64) -> Self {
        assert!(w >= 0.0, "w_pvb must be non-negative");
        self.w_pvb = w;
        self
    }
}

impl Default for PvOpc {
    fn default() -> Self {
        Self::new()
    }
}

impl MaskOptimizer for PvOpc {
    fn name(&self) -> &str {
        "pvopc"
    }

    fn optimize(
        &self,
        sim: &LithoSimulator,
        target: &Grid<f64>,
    ) -> Result<BaselineResult, BaselineError> {
        let corners = sim.corners();
        let w_pvb = self.w_pvb;
        let engine = PixelEngine {
            iterations: self.iterations,
            step: self.step,
            latent_steepness: self.latent_steepness,
            momentum: self.momentum,
        };
        engine.run(sim, target, move |_| {
            let mut schedule = vec![ScheduledCorner {
                condition: corners.nominal,
                weight: 1.0,
            }];
            if w_pvb > 0.0 {
                schedule.push(ScheduledCorner {
                    condition: corners.inner,
                    weight: w_pvb,
                });
                schedule.push(ScheduledCorner {
                    condition: corners.outer,
                    weight: w_pvb,
                });
            }
            schedule
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_optics::OpticsConfig;

    fn setup() -> (LithoSimulator, Grid<f64>) {
        let sim =
            LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
                .expect("valid configuration");
        let target = Grid::from_fn(64, 64, |x, y| {
            if (26..38).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        (sim, target)
    }

    #[test]
    fn reduces_cost() {
        let (sim, target) = setup();
        let result = PvOpc::new()
            .with_iterations(10)
            .optimize(&sim, &target)
            .expect("runs");
        assert!(result.cost_history.last() < result.cost_history.first());
    }

    #[test]
    fn momentum_accelerates_early_convergence() {
        let (sim, target) = setup();
        let plain = PvOpc::new()
            .with_momentum(0.0)
            .with_iterations(8)
            .optimize(&sim, &target)
            .expect("runs");
        let momentum = PvOpc::new()
            .with_momentum(0.6)
            .with_iterations(8)
            .optimize(&sim, &target)
            .expect("runs");
        let best =
            |r: &BaselineResult| r.cost_history.iter().cloned().fold(f64::INFINITY, f64::min);
        // Momentum should do at least comparably well in the same budget.
        assert!(best(&momentum) <= best(&plain) * 1.25);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn momentum_of_one_panics() {
        let _ = PvOpc::new().with_momentum(1.0);
    }
}
