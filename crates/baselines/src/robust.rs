//! Robust OPC baseline (Kuang, Chow, Young — DATE 2015 style).

use crate::engine::{PixelEngine, ScheduledCorner};
use crate::{BaselineError, BaselineResult, MaskOptimizer};
use lsopc_grid::Grid;
use lsopc_litho::LithoSimulator;
use serde::{Deserialize, Serialize};

/// Robust process-variation-aware OPC.
///
/// The paper notes that [15] "only run[s] the simulators in two process
/// conditions for each iteration and estimate[s] the results in [the]
/// third process condition" — that is how it undercuts the level-set CPU
/// runtime in Table II. This baseline reproduces the strategy: each
/// iteration simulates the two extreme corners only, and stands in for
/// the nominal response with the corner average (the two corners bracket
/// the nominal print, so their mean gradient is a serviceable estimate).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RobustOpc {
    iterations: usize,
    step: f64,
    latent_steepness: f64,
}

impl RobustOpc {
    /// Creates the baseline with its default budget (40 iterations).
    pub fn new() -> Self {
        Self {
            iterations: 40,
            step: 0.4,
            latent_steepness: 4.0,
        }
    }

    /// Sets the iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "iteration count must be positive");
        self.iterations = iterations;
        self
    }
}

impl Default for RobustOpc {
    fn default() -> Self {
        Self::new()
    }
}

impl MaskOptimizer for RobustOpc {
    fn name(&self) -> &str {
        "robust-opc"
    }

    fn optimize(
        &self,
        sim: &LithoSimulator,
        target: &Grid<f64>,
    ) -> Result<BaselineResult, BaselineError> {
        let corners = sim.corners();
        let engine = PixelEngine {
            iterations: self.iterations,
            step: self.step,
            latent_steepness: self.latent_steepness,
            momentum: 0.0,
        };
        // Two simulated corners per iteration; each carries an extra half
        // weight standing in for the estimated nominal response.
        engine.run(sim, target, move |_| {
            vec![
                ScheduledCorner {
                    condition: corners.inner,
                    weight: 1.5,
                },
                ScheduledCorner {
                    condition: corners.outer,
                    weight: 1.5,
                },
            ]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_optics::OpticsConfig;

    fn setup() -> (LithoSimulator, Grid<f64>) {
        let sim =
            LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
                .expect("valid configuration");
        let target = Grid::from_fn(64, 64, |x, y| {
            if (26..38).contains(&x) && (12..52).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        (sim, target)
    }

    #[test]
    fn reduces_cost() {
        let (sim, target) = setup();
        let result = RobustOpc::new()
            .with_iterations(10)
            .optimize(&sim, &target)
            .expect("runs");
        assert!(result.cost_history.last() < result.cost_history.first());
    }

    #[test]
    fn runs_fewer_sims_than_exact_three_corner() {
        // Two corners/iteration: runtime below a 3-corner run of the same
        // length on the same machine.
        let (sim, target) = setup();
        let robust = RobustOpc::new()
            .with_iterations(8)
            .optimize(&sim, &target)
            .expect("runs");
        let exact = crate::PixelIlt::new(crate::PixelIltMode::Exact)
            .with_iterations(8)
            .optimize(&sim, &target)
            .expect("runs");
        assert!(robust.runtime_s < exact.runtime_s);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(RobustOpc::new().name(), "robust-opc");
    }
}
