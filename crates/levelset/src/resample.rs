//! Cross-resolution transfer of level-set functions.
//!
//! The coarse-to-fine optimization schedule solves the early iterations
//! on a downsampled grid and then continues on the full grid. Moving `ψ`
//! between resolutions has two steps with different jobs:
//!
//! 1. **Spectral upsampling** ([`lsopc_fft::upsample_spectral`]) carries
//!    the *contour* across: a signed distance function is smooth away
//!    from the medial axis, so band-limited interpolation places the
//!    zero crossing with sub-coarse-pixel fidelity. It does not preserve
//!    the eikonal property — the interpolant's gradient magnitude
//!    wiggles around 1 (Gibbs ringing near kinks), and distances are
//!    still measured in *coarse* pixels.
//! 2. **Reinitialization** ([`reinitialize`]) restores the
//!    signed-distance property on the fine grid: it thresholds the
//!    interpolant at zero and recomputes the exact Euclidean distance
//!    in fine pixels.
//!
//! The accuracy contract (DESIGN.md §14): the zero contour of the result
//! is the zero contour of the spectral interpolant, quantized to the
//! fine grid; everything else about the coarse `ψ` (its far field, its
//! gradient distortion) is deliberately discarded.

use crate::reinitialize;
use lsopc_fft::upsample_spectral;
use lsopc_grid::{Grid, Scalar};

/// Transfers a level-set function to a `factor`× finer grid: spectral
/// upsampling of `ψ` followed by signed-distance reinitialization.
///
/// The result is an exact signed distance function (in fine pixels) to
/// the contour of the band-limited interpolant of `ψ`. A `factor` of 1
/// still reinitializes, so the output is always a valid SDF.
///
/// # Panics
///
/// Panics if `factor` is zero or a dimension is not a power of two (both
/// FFT requirements, forwarded from [`upsample_spectral`]).
///
/// # Example
///
/// ```
/// use lsopc_grid::Grid;
/// use lsopc_levelset::{signed_distance, upsample_levelset};
///
/// let mask = Grid::from_fn(16, 16, |x, y| {
///     if (4..12).contains(&x) && (4..12).contains(&y) { 1.0 } else { 0.0 }
/// });
/// let psi = signed_distance(&mask);
/// let fine = upsample_levelset(&psi, 4);
/// assert_eq!(fine.dims(), (64, 64));
/// // The upsampled interior stays interior.
/// assert!(fine[(32, 32)] < 0.0);
/// assert!(fine[(2, 2)] > 0.0);
/// ```
pub fn upsample_levelset<T: Scalar>(psi: &Grid<T>, factor: usize) -> Grid<T> {
    let _span = lsopc_trace::span!("levelset.upsample");
    let interpolated = upsample_spectral(psi, factor);
    reinitialize(&interpolated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mask_from_levelset, signed_distance};

    fn square_psi(n: usize, lo: usize, hi: usize) -> Grid<f64> {
        signed_distance(&Grid::from_fn(n, n, |x, y| {
            if (lo..hi).contains(&x) && (lo..hi).contains(&y) {
                1.0
            } else {
                0.0
            }
        }))
    }

    #[test]
    fn factor_one_reinitializes_in_place() {
        let psi = square_psi(32, 8, 24);
        let out = upsample_levelset(&psi, 1);
        assert_eq!(out.dims(), psi.dims());
        assert_eq!(mask_from_levelset(&out), mask_from_levelset(&psi));
    }

    #[test]
    fn contour_lands_at_the_scaled_position() {
        let psi = square_psi(32, 8, 24);
        let fine = upsample_levelset(&psi, 4);
        assert_eq!(fine.dims(), (128, 128));
        let mask = mask_from_levelset(&fine);
        // The coarse square [8, 24) maps to roughly [32, 96) on the fine
        // grid; allow a couple of fine pixels of interpolation slack.
        assert!(mask[(64, 64)] == 1.0, "centre must stay inside");
        assert!(mask[(16, 64)] == 0.0, "far outside must stay outside");
        let row: Vec<usize> = (0..128).filter(|&x| mask[(x, 64)] == 1.0).collect();
        let (first, last) = (*row.first().unwrap(), *row.last().unwrap());
        assert!(
            (30..=36).contains(&first) && (90..=96).contains(&last),
            "contour at [{first}, {last}]"
        );
    }

    #[test]
    fn result_is_a_signed_distance_function() {
        let fine = upsample_levelset(&square_psi(16, 4, 12), 4);
        // An exact SDF is a fixed point of reinitialization: thresholding
        // and re-measuring distances must reproduce it bit-for-bit.
        let again = reinitialize(&fine);
        for (a, b) in again.as_slice().iter().zip(fine.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f32_instantiation_preserves_sign_structure() {
        let psi64 = square_psi(16, 4, 12);
        let psi32 = psi64.map(|&v| v as f32);
        let fine = upsample_levelset(&psi32, 2);
        assert_eq!(fine.dims(), (32, 32));
        assert!(fine[(16, 16)] < 0.0, "interior stays negative");
        assert!(fine[(1, 1)] > 0.0, "exterior stays positive");
    }
}
