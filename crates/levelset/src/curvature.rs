//! Mean curvature of level-set contours.

use lsopc_grid::{Grid, Scalar};

/// Mean curvature `κ = div(∇ψ/|∇ψ|)` of the level sets of `ψ`, computed
/// with central differences and clamped to `±1/px`.
///
/// Adding `w·κ·|∇ψ|` to the evolution velocity smooths the contour
/// (motion by curvature), suppressing the edge glitches the paper
/// attributes to pixel-based ILT. This is an optional regularizer beyond
/// the paper's formulation; see the ablation benches.
///
/// # Example
///
/// ```
/// use lsopc_grid::{Grid, Scalar};
/// use lsopc_levelset::curvature;
///
/// // The signed distance of a disc of radius 8: the contour through a
/// // point at distance d from the centre has curvature 1/d.
/// let psi = Grid::from_fn(32, 32, |x, y| {
///     let (dx, dy) = (x as f64 - 16.0, y as f64 - 16.0);
///     (dx * dx + dy * dy).sqrt() - 8.0
/// });
/// assert!((curvature(&psi)[(24, 16)] - 1.0 / 8.0).abs() < 0.01);
/// ```
pub fn curvature<T: Scalar>(psi: &Grid<T>) -> Grid<T> {
    let (w, h) = psi.dims();
    let at = |x: i64, y: i64| {
        let xc = x.clamp(0, w as i64 - 1) as usize;
        let yc = y.clamp(0, h as i64 - 1) as usize;
        psi[(xc, yc)]
    };
    let two = T::from_f64(2.0);
    let four = T::from_f64(4.0);
    let tiny = T::from_f64(1e-12);
    let exp = T::from_f64(1.5);
    Grid::from_fn(w, h, |xu, yu| {
        let (x, y) = (xu as i64, yu as i64);
        let px = (at(x + 1, y) - at(x - 1, y)) / two;
        let py = (at(x, y + 1) - at(x, y - 1)) / two;
        let pxx = at(x + 1, y) - two * at(x, y) + at(x - 1, y);
        let pyy = at(x, y + 1) - two * at(x, y) + at(x, y - 1);
        let pxy =
            (at(x + 1, y + 1) - at(x + 1, y - 1) - at(x - 1, y + 1) + at(x - 1, y - 1)) / four;
        let g2 = px * px + py * py;
        if g2 < tiny {
            return T::ZERO;
        }
        let kappa = (pxx * py * py - two * px * py * pxy + pyy * px * px) / g2.powf(exp);
        kappa.clamp(-T::ONE, T::ONE)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signed_distance;

    #[test]
    fn straight_edge_has_zero_curvature() {
        let mask = Grid::from_fn(32, 32, |x, _| if x >= 16 { 1.0 } else { 0.0 });
        let kappa = curvature(&signed_distance(&mask));
        assert!(kappa[(16, 16)].abs() < 1e-9);
        assert!(kappa[(10, 8)].abs() < 1e-9);
    }

    #[test]
    fn disc_curvature_scales_inversely_with_radius() {
        // Analytic SDF of a disc: ψ = |r⃗| − R. The level set through a
        // point at distance d from the centre has curvature 1/d.
        let disc_sdf = |r: f64| {
            Grid::from_fn(64, 64, |x, y| {
                let (dx, dy) = (x as f64 - 32.0, y as f64 - 32.0);
                (dx * dx + dy * dy).sqrt() - r
            })
        };
        let k_small = curvature(&disc_sdf(6.0))[(38, 32)]; // distance 6
        let k_big = curvature(&disc_sdf(12.0))[(44, 32)]; // distance 12
        assert!(k_small > k_big, "smaller disc must curve more");
        assert!((k_small - 1.0 / 6.0).abs() < 0.02, "k_small={k_small}");
        assert!((k_big - 1.0 / 12.0).abs() < 0.01, "k_big={k_big}");
    }

    #[test]
    fn curvature_sign_flips_for_hole() {
        // A hole (mask inverted disc): the contour curves the other way.
        let mask = Grid::from_fn(64, 64, |x, y| {
            let (dx, dy) = (x as f64 - 32.0, y as f64 - 32.0);
            if (dx * dx + dy * dy).sqrt() <= 10.0 {
                0.0
            } else {
                1.0
            }
        });
        let kappa = curvature(&signed_distance(&mask));
        assert!(kappa[(42, 32)] < -0.05);
    }

    #[test]
    fn flat_field_is_zero() {
        let psi = Grid::new(8, 8, 3.0);
        let kappa = curvature(&psi);
        assert!(kappa.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn values_are_clamped() {
        let psi = Grid::from_fn(8, 8, |x, y| ((x * 31 + y * 17) % 7) as f64 - 3.0);
        let kappa = curvature(&psi);
        assert!(kappa.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }
}
