//! Exact Euclidean signed distance transform.

use lsopc_grid::{Grid, Scalar};

const INF: f64 = 1e20;

/// 1-D squared Euclidean distance transform by the
/// Felzenszwalb–Huttenlocher lower parabolic envelope, O(n).
///
/// `f` holds per-cell source costs (0 at feature cells, INF elsewhere);
/// the result `d[i] = min_j (i-j)² + f[j]` is written into `out`.
fn dt1d(f: &[f64], out: &mut [f64], v: &mut [usize], z: &mut [f64]) {
    let n = f.len();
    debug_assert!(out.len() == n && v.len() >= n && z.len() > n);
    let mut k = 0usize;
    v[0] = 0;
    z[0] = -INF;
    z[1] = INF;
    for q in 1..n {
        let mut s;
        loop {
            let p = v[k];
            s = ((f[q] + (q * q) as f64) - (f[p] + (p * p) as f64)) / (2.0 * (q as f64 - p as f64));
            if s <= z[k] {
                if k == 0 {
                    break;
                }
                k -= 1;
            } else {
                break;
            }
        }
        k += 1;
        v[k] = q;
        z[k] = s;
        z[k + 1] = INF;
    }
    k = 0;
    for (q, out_q) in out.iter_mut().enumerate() {
        while z[k + 1] < q as f64 {
            k += 1;
        }
        let p = v[k];
        let dq = q as f64 - p as f64;
        *out_q = dq * dq + f[p];
    }
}

/// 2-D squared Euclidean distance to the nearest cell where `feature`
/// is true.
fn edt_sq(feature: impl Fn(usize, usize) -> bool, w: usize, h: usize) -> Grid<f64> {
    let n = w.max(h);
    let mut v = vec![0usize; n];
    let mut z = vec![0.0f64; n + 1]; // allow-f64: EDT internals (DESIGN.md §11)
    let mut buf_in = vec![0.0f64; n]; // allow-f64: EDT internals (DESIGN.md §11)
    let mut buf_out = vec![0.0f64; n]; // allow-f64: EDT internals (DESIGN.md §11)

    // Column pass first: distance along y to the nearest feature cell.
    let mut stage = Grid::new(w, h, INF);
    for x in 0..w {
        for (y, cell) in buf_in[..h].iter_mut().enumerate() {
            *cell = if feature(x, y) { 0.0 } else { INF };
        }
        dt1d(&buf_in[..h], &mut buf_out[..h], &mut v, &mut z);
        for y in 0..h {
            stage[(x, y)] = buf_out[y];
        }
    }
    // Row pass: combine with distance along x.
    let mut result = Grid::new(w, h, INF);
    for y in 0..h {
        buf_in[..w].copy_from_slice(stage.row(y));
        dt1d(&buf_in[..w], &mut buf_out[..w], &mut v, &mut z);
        result.row_mut(y).copy_from_slice(&buf_out[..w]);
    }
    result
}

/// Exact Euclidean signed distance from a binary mask (`>= 0.5` is
/// inside), negative inside and positive outside per paper Eq. (5), in
/// pixels.
///
/// The distance is measured to the inter-pixel boundary: a pixel adjacent
/// to the contour gets |ψ| = 0.5. Degenerate masks (all inside or all
/// outside) produce distances clamped to `w + h`.
///
/// # Example
///
/// ```
/// use lsopc_grid::{Grid, Scalar};
/// use lsopc_levelset::signed_distance;
///
/// let mask = Grid::from_fn(8, 8, |x, _| if x >= 4 { 1.0 } else { 0.0 });
/// let psi = signed_distance(&mask);
/// assert_eq!(psi[(3, 4)], 0.5);   // last outside column
/// assert_eq!(psi[(4, 4)], -0.5);  // first inside column
/// assert_eq!(psi[(0, 4)], 3.5);
/// ```
/// At any scalar precision `T` the transform itself runs in `f64` — the
/// parabolic-envelope intersections are the numerically delicate part and
/// the pass is cheap next to the FFT work — and each distance is rounded
/// to `T` once on output. At `T = f64` that is the identity.
pub fn signed_distance<T: Scalar>(mask: &Grid<T>) -> Grid<T> {
    let _span = lsopc_trace::span!("levelset.sdf");
    let (w, h) = mask.dims();
    let clamp = (w + h) as f64;
    let half = T::from_f64(0.5);
    let inside = |x: usize, y: usize| mask[(x, y)] >= half;
    let d_to_inside = edt_sq(inside, w, h);
    let d_to_outside = edt_sq(|x, y| !inside(x, y), w, h);
    Grid::from_fn(w, h, |x, y| {
        if inside(x, y) {
            T::from_f64(-(d_to_outside[(x, y)].sqrt() - 0.5).min(clamp))
        } else {
            T::from_f64((d_to_inside[(x, y)].sqrt() - 0.5).min(clamp))
        }
    })
}

/// Thresholds a level-set function back into a binary mask: `ψ <= 0` is
/// inside (paper Eq. (6)).
pub fn mask_from_levelset<T: Scalar>(psi: &Grid<T>) -> Grid<T> {
    psi.map(|&v| if v <= T::ZERO { T::ONE } else { T::ZERO })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_mask(n: usize, lo: usize, hi: usize) -> Grid<f64> {
        Grid::from_fn(n, n, |x, y| {
            if (lo..hi).contains(&x) && (lo..hi).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn sign_convention() {
        let mask = square_mask(16, 4, 12);
        let psi = signed_distance(&mask);
        assert!(psi[(8, 8)] < 0.0);
        assert!(psi[(0, 0)] > 0.0);
    }

    #[test]
    fn distances_match_geometry() {
        let mask = square_mask(32, 8, 24);
        let psi = signed_distance(&mask);
        // Centre of a 16-px square: 8 px to the edge, minus half-pixel.
        assert!(
            (psi[(16, 16)] + 7.5).abs() < 1e-9,
            "centre {}",
            psi[(16, 16)]
        );
        // Just outside the left edge.
        assert!((psi[(7, 16)] - 0.5).abs() < 1e-9);
        // 4 px out along x.
        assert!((psi[(4, 16)] - 3.5).abs() < 1e-9);
    }

    #[test]
    fn diagonal_distance_is_euclidean() {
        // Single inside pixel at (8, 8).
        let mask = Grid::from_fn(16, 16, |x, y| if x == 8 && y == 8 { 1.0 } else { 0.0 });
        let psi = signed_distance(&mask);
        let d = psi[(11, 12)];
        let expected = ((3.0f64 * 3.0) + (4.0 * 4.0)).sqrt() - 0.5;
        assert!((d - expected).abs() < 1e-9, "got {d}, want {expected}");
    }

    #[test]
    fn roundtrip_through_threshold() {
        let mask = square_mask(24, 6, 18);
        let psi = signed_distance(&mask);
        assert_eq!(mask_from_levelset(&psi), mask);
    }

    #[test]
    fn degenerate_masks_are_clamped() {
        let all_out = Grid::new(8, 8, 0.0);
        let psi = signed_distance(&all_out);
        assert!(psi.as_slice().iter().all(|&v| v > 0.0 && v <= 16.0));
        let all_in = Grid::new(8, 8, 1.0);
        let psi = signed_distance(&all_in);
        assert!(psi.as_slice().iter().all(|&v| (-16.0..0.0).contains(&v)));
    }

    #[test]
    fn eikonal_property_inside_band() {
        // |∇ψ| ≈ 1 away from the medial axis.
        let mask = square_mask(32, 10, 22);
        let psi = signed_distance(&mask);
        // Sample along a horizontal line through the middle, left half
        // (away from the medial axis at x = 16 and from corners).
        for x in 1..14 {
            let g = (psi[(x + 1, 16)] - psi[(x - 1, 16)]) / 2.0;
            assert!((g.abs() - 1.0).abs() < 1e-6, "gradient {g} at x={x}");
        }
    }

    #[test]
    fn rectangular_grids_work() {
        let mask = Grid::from_fn(32, 8, |x, _| if (12..20).contains(&x) { 1.0 } else { 0.0 });
        let psi = signed_distance(&mask);
        assert!((psi[(0, 4)] - 11.5).abs() < 1e-9);
        assert!((psi[(15, 4)] + 3.5).abs() < 1e-9);
    }
}
