//! Narrow-band restriction of level-set evolution.
//!
//! Classic level-set optimization (Adalsteinsson & Sethian): only cells
//! within a band `|ψ| ≤ width` around the contour can influence where the
//! zero level moves, so the evolution update may be restricted to the
//! band. In this workspace the simulation gradient (FFT-dominated) is
//! global either way, so the narrow band is an optional refinement—it
//! keeps far-field ψ values frozen, which avoids spurious far-away
//! islands appearing between reinitializations.

use lsopc_grid::{Grid, Scalar};

/// The set of grid cells within `width` pixels of the zero contour.
#[derive(Clone, Debug, PartialEq)]
pub struct NarrowBand {
    width: f64,
    /// Row-major indices of band cells.
    indices: Vec<u32>,
}

impl NarrowBand {
    /// Extracts the band `|ψ| ≤ width` from a (signed-distance-like)
    /// level-set function.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive.
    ///
    /// # Example
    ///
    /// ```
    /// use lsopc_grid::{Grid, Scalar};
    /// use lsopc_levelset::{signed_distance, NarrowBand};
    ///
    /// let mask = Grid::from_fn(32, 32, |x, y| {
    ///     if (8..24).contains(&x) && (8..24).contains(&y) { 1.0 } else { 0.0 }
    /// });
    /// let psi = signed_distance(&mask);
    /// let band = NarrowBand::extract(&psi, 3.0);
    /// assert!(band.len() > 0);
    /// assert!(band.len() < psi.len()); // a band, not the whole grid
    /// ```
    pub fn extract<T: Scalar>(psi: &Grid<T>, width: f64) -> Self {
        assert!(width > 0.0, "band width must be positive");
        let width_t = T::from_f64(width);
        let indices = psi
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v.abs() <= width_t)
            .map(|(i, _)| i as u32)
            .collect();
        Self { width, indices }
    }

    /// Band half-width in pixels.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Number of cells in the band.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when the band is empty (no contour in the field).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Fraction of the grid covered by the band.
    pub fn coverage(&self, grid_cells: usize) -> f64 {
        self.indices.len() as f64 / grid_cells.max(1) as f64
    }

    /// Zeroes a velocity field outside the band, in place, so a
    /// subsequent [`crate::evolve`] step only moves ψ near the contour.
    ///
    /// # Panics
    ///
    /// Panics if the velocity grid size differs from the ψ the band was
    /// extracted from.
    pub fn mask_velocity<T: Scalar>(&self, velocity: &mut Grid<T>) {
        let slice = velocity.as_mut_slice();
        // Walk both the sorted band indices and the slice once.
        let mut band_iter = self.indices.iter().peekable();
        for (i, v) in slice.iter_mut().enumerate() {
            match band_iter.peek() {
                Some(&&next) if next as usize == i => {
                    band_iter.next();
                }
                _ => *v = T::ZERO,
            }
        }
        assert!(
            band_iter.next().is_none(),
            "velocity grid smaller than the band's source grid"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evolve, mask_from_levelset, signed_distance};

    fn psi() -> Grid<f64> {
        let mask = Grid::from_fn(32, 32, |x, y| {
            if (10..22).contains(&x) && (10..22).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        signed_distance(&mask)
    }

    #[test]
    fn band_contains_exactly_the_near_contour_cells() {
        let psi = psi();
        let band = NarrowBand::extract(&psi, 2.0);
        let expected = psi.as_slice().iter().filter(|v| v.abs() <= 2.0).count();
        assert_eq!(band.len(), expected);
        assert!(band.coverage(psi.len()) < 0.5);
    }

    #[test]
    fn wider_band_is_larger() {
        let psi = psi();
        let narrow = NarrowBand::extract(&psi, 1.0);
        let wide = NarrowBand::extract(&psi, 4.0);
        assert!(wide.len() > narrow.len());
    }

    #[test]
    fn mask_velocity_zeroes_far_field_only() {
        let psi = psi();
        let band = NarrowBand::extract(&psi, 2.0);
        let mut velocity = Grid::new(32, 32, 1.0);
        band.mask_velocity(&mut velocity);
        let moved = velocity.as_slice().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(moved, band.len());
        // Far corner untouched by the band.
        assert_eq!(velocity[(0, 0)], 0.0);
        // A contour-adjacent cell keeps its velocity.
        assert_eq!(velocity[(10, 16)], 1.0);
    }

    #[test]
    fn banded_evolution_moves_the_contour_like_full_evolution_nearby() {
        let mut psi_banded = psi();
        let mut psi_full = psi();
        let band = NarrowBand::extract(&psi_banded, 3.0);
        let mut v_banded = Grid::new(32, 32, -0.8); // expand the mask
        let v_full = v_banded.clone();
        band.mask_velocity(&mut v_banded);
        evolve(&mut psi_banded, &v_banded, 1.0);
        evolve(&mut psi_full, &v_full, 1.0);
        // The resulting masks agree (contour motion only depends on the
        // near field).
        assert_eq!(
            mask_from_levelset(&psi_banded),
            mask_from_levelset(&psi_full)
        );
    }

    #[test]
    fn empty_band_for_far_contourless_field() {
        let flat = Grid::new(8, 8, 10.0);
        let band = NarrowBand::extract(&flat, 2.0);
        assert!(band.is_empty());
        assert_eq!(band.coverage(64), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = NarrowBand::extract(&Grid::new(4, 4, 0.0), 0.0);
    }
}
