//! Level-set toolkit: signed distance transforms, upwind gradients,
//! contour evolution and reinitialization.
//!
//! The paper reformulates mask optimization as contour evolution: the mask
//! boundary is the zero level of a function `ψ(x, y)` that is negative
//! inside the mask and positive outside (paper Eq. (5)), evolved by
//! `ψ ← ψ + v·Δt` with a CFL-limited time step. This crate supplies those
//! primitives:
//!
//! * [`signed_distance`] — exact Euclidean signed distance from a binary
//!   mask (Felzenszwalb–Huttenlocher parabolic envelope, O(n) per row);
//! * [`gradient_magnitude`] / [`godunov_gradient`] — central-difference and
//!   upwind |∇ψ| schemes;
//! * [`evolve`] / [`cfl_time_step`] — the evolution update and the paper's
//!   `Δt = λ_t / max|v|` step rule;
//! * [`reinitialize`] — restore the signed-distance property, preserving
//!   the zero contour;
//! * [`curvature`] — mean curvature `div(∇ψ/|∇ψ|)` for optional contour
//!   smoothing (an extension beyond the paper);
//! * [`fast_marching_redistance`] — Fast Marching Method redistancing that
//!   preserves the sub-pixel contour (extension);
//! * [`NarrowBand`] — classic narrow-band restriction of the evolution
//!   (extension).
//!
//! # Example
//!
//! ```
//! use lsopc_grid::Grid;
//! use lsopc_levelset::{signed_distance, mask_from_levelset};
//!
//! // A square mask.
//! let mask = Grid::from_fn(16, 16, |x, y| {
//!     if (4..12).contains(&x) && (4..12).contains(&y) { 1.0 } else { 0.0 }
//! });
//! let psi = signed_distance(&mask);
//! assert!(psi[(8, 8)] < 0.0);  // inside is negative
//! assert!(psi[(0, 0)] > 0.0);  // outside is positive
//! // Thresholding the level-set recovers the mask.
//! assert_eq!(mask_from_levelset(&psi), mask);
//! ```

#![warn(missing_docs)]

mod curvature;
mod evolve;
mod fmm;
mod gradient;
mod narrowband;
mod resample;
mod sdf;

pub use curvature::curvature;
pub use evolve::{cfl_time_step, evolve, reinitialize};
pub use fmm::fast_marching_redistance;
pub use gradient::{godunov_gradient, gradient_magnitude};
pub use narrowband::NarrowBand;
pub use resample::upsample_levelset;
pub use sdf::{mask_from_levelset, signed_distance};
