//! Fast Marching Method (FMM) redistancing.
//!
//! An alternative to the exact Euclidean transform in [`crate::signed_distance`]:
//! FMM solves the eikonal equation `|∇ψ| = 1` outward from the current
//! zero contour with sub-pixel interface initialization, preserving the
//! contour's sub-pixel position (the exact EDT snaps to pixel-centre
//! geometry). It is the standard redistancing choice in level-set
//! literature (Sethian 1996) and is exposed for experiments; the optimizer
//! defaults to the exact EDT, which is faster for full-grid transforms.

use lsopc_grid::Grid;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry: (distance, x, y) ordered as a min-heap.
#[derive(PartialEq)]
struct Trial {
    dist: f64,
    x: usize,
    y: usize,
}

impl Eq for Trial {}

impl Ord for Trial {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are finite by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("finite distances")
    }
}

impl PartialOrd for Trial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Redistances a level-set function by the Fast Marching Method,
/// preserving the sub-pixel zero contour of the input.
///
/// The sign convention follows paper Eq. (5): negative inside. Cells
/// adjacent to the contour are initialized by linear interpolation of the
/// input values; all others are marched with the standard first-order
/// upwind eikonal update.
///
/// # Panics
///
/// Panics if `psi` contains non-finite values.
///
/// # Example
///
/// ```
/// use lsopc_grid::Grid;
/// use lsopc_levelset::{fast_marching_redistance, signed_distance};
///
/// let mask = Grid::from_fn(32, 32, |x, y| {
///     if (8..24).contains(&x) && (8..24).contains(&y) { 1.0 } else { 0.0 }
/// });
/// let psi = signed_distance(&mask);
/// let redistanced = fast_marching_redistance(&psi);
/// // Same sign structure, distances agree to within a pixel.
/// assert!((redistanced[(16, 16)] - psi[(16, 16)]).abs() < 1.0);
/// assert!(redistanced[(0, 0)] > 0.0);
/// ```
pub fn fast_marching_redistance(psi: &Grid<f64>) -> Grid<f64> {
    assert!(
        psi.as_slice().iter().all(|v| v.is_finite()),
        "level-set function must be finite"
    );
    let (w, h) = psi.dims();
    let sign = |x: usize, y: usize| psi[(x, y)] <= 0.0;

    const FAR: f64 = f64::MAX;
    let mut dist: Grid<f64> = Grid::new(w, h, FAR);
    let mut frozen: Grid<bool> = Grid::new(w, h, false);
    let mut heap: BinaryHeap<Trial> = BinaryHeap::new();

    // Interface initialization: cells with a sign change toward any
    // 4-neighbour get their sub-pixel distance from linear interpolation
    // along each crossing axis.
    for y in 0..h {
        for x in 0..w {
            let s = sign(x, y);
            let mut d_init = FAR;
            let mut visit = |nx: usize, ny: usize| {
                if sign(nx, ny) != s {
                    let a = psi[(x, y)].abs();
                    let b = psi[(nx, ny)].abs();
                    let frac = if a + b > 0.0 { a / (a + b) } else { 0.5 };
                    d_init = d_init.min(frac);
                }
            };
            if x > 0 {
                visit(x - 1, y);
            }
            if x + 1 < w {
                visit(x + 1, y);
            }
            if y > 0 {
                visit(x, y - 1);
            }
            if y + 1 < h {
                visit(x, y + 1);
            }
            if d_init < FAR {
                dist[(x, y)] = d_init;
                frozen[(x, y)] = true;
                heap.push(Trial { dist: d_init, x, y });
            }
        }
    }
    // Degenerate input (single sign everywhere): fall back to a constant
    // far-field with the input's sign.
    if heap.is_empty() {
        let far = (w + h) as f64;
        return psi.map(|&v| if v <= 0.0 { -far } else { far });
    }

    // March outward.
    while let Some(Trial { dist: d, x, y }) = heap.pop() {
        if d > dist[(x, y)] {
            continue; // stale entry
        }
        let relax = |nx: usize,
                     ny: usize,
                     dist: &mut Grid<f64>,
                     frozen: &mut Grid<bool>,
                     heap: &mut BinaryHeap<Trial>| {
            if frozen[(nx, ny)] {
                return;
            }
            let new_d = eikonal_update(dist, nx, ny);
            if new_d < dist[(nx, ny)] {
                dist[(nx, ny)] = new_d;
                heap.push(Trial {
                    dist: new_d,
                    x: nx,
                    y: ny,
                });
            }
        };
        if x > 0 {
            relax(x - 1, y, &mut dist, &mut frozen, &mut heap);
        }
        if x + 1 < w {
            relax(x + 1, y, &mut dist, &mut frozen, &mut heap);
        }
        if y > 0 {
            relax(x, y - 1, &mut dist, &mut frozen, &mut heap);
        }
        if y + 1 < h {
            relax(x, y + 1, &mut dist, &mut frozen, &mut heap);
        }
        frozen[(x, y)] = true;
    }

    // Re-apply the sign.
    Grid::from_fn(w, h, |x, y| {
        let d = dist[(x, y)];
        if sign(x, y) {
            -d
        } else {
            d
        }
    })
}

/// First-order upwind eikonal update at `(x, y)` from the smallest
/// accepted neighbour values along each axis.
fn eikonal_update(dist: &Grid<f64>, x: usize, y: usize) -> f64 {
    let (w, h) = dist.dims();
    let mut ux = f64::MAX;
    if x > 0 {
        ux = ux.min(dist[(x - 1, y)]);
    }
    if x + 1 < w {
        ux = ux.min(dist[(x + 1, y)]);
    }
    let mut uy = f64::MAX;
    if y > 0 {
        uy = uy.min(dist[(x, y - 1)]);
    }
    if y + 1 < h {
        uy = uy.min(dist[(x, y + 1)]);
    }
    let (a, b) = if ux <= uy { (ux, uy) } else { (uy, ux) };
    if a == f64::MAX {
        return f64::MAX;
    }
    // Solve (d−a)² + (d−b)² = 1 when both upwind values participate,
    // else d = a + 1.
    if b == f64::MAX || b - a >= 1.0 {
        a + 1.0
    } else {
        let sum = a + b;
        let disc = sum * sum - 2.0 * (a * a + b * b - 1.0);
        (sum + disc.max(0.0).sqrt()) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signed_distance;

    fn square_mask(n: usize, lo: usize, hi: usize) -> Grid<f64> {
        Grid::from_fn(n, n, |x, y| {
            if (lo..hi).contains(&x) && (lo..hi).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn matches_exact_edt_on_flat_edges() {
        let psi = signed_distance(&square_mask(48, 12, 36));
        let fmm = fast_marching_redistance(&psi);
        // Along the edge mid-line the distances are 1-D: FMM is exact.
        for x in 2..12 {
            assert!(
                (fmm[(x, 24)] - psi[(x, 24)]).abs() < 0.1,
                "x={x}: fmm {} vs edt {}",
                fmm[(x, 24)],
                psi[(x, 24)]
            );
        }
    }

    #[test]
    fn diagonal_distance_within_upwind_error() {
        // First-order FMM overestimates diagonal distances by O(√d); the
        // error must stay modest near the interface.
        let psi = signed_distance(&square_mask(64, 24, 40));
        let fmm = fast_marching_redistance(&psi);
        let exact = psi[(16, 16)]; // diagonal corner direction
        let got = fmm[(16, 16)];
        assert!(
            (got - exact).abs() < 1.5,
            "corner distance: fmm {got} vs exact {exact}"
        );
    }

    #[test]
    fn preserves_sign_structure() {
        let mask = square_mask(32, 10, 22);
        let psi = signed_distance(&mask);
        let fmm = fast_marching_redistance(&psi);
        for (p, f) in psi.as_slice().iter().zip(fmm.as_slice()) {
            assert_eq!(*p <= 0.0, *f <= 0.0, "sign flip");
        }
    }

    #[test]
    fn preserves_subpixel_interface_of_distorted_input() {
        // Scale ψ by 3: the zero contour is unchanged, so FMM output must
        // resemble the unscaled SDF (unlike naively rescaling).
        let psi = signed_distance(&square_mask(32, 8, 24));
        let distorted = psi.map(|&v| v * 3.0);
        let fmm = fast_marching_redistance(&distorted);
        for x in 0..32 {
            assert!(
                (fmm[(x, 16)] - psi[(x, 16)]).abs() < 0.6,
                "x={x}: {} vs {}",
                fmm[(x, 16)],
                psi[(x, 16)]
            );
        }
    }

    #[test]
    fn degenerate_single_phase_input() {
        let all_inside = Grid::new(8, 8, -2.0);
        let out = fast_marching_redistance(&all_inside);
        assert!(out.as_slice().iter().all(|&v| v < 0.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_input_panics() {
        let mut psi = Grid::new(4, 4, 1.0);
        psi[(2, 2)] = f64::NAN;
        let _ = fast_marching_redistance(&psi);
    }
}
