//! Level-set evolution step, CFL time step and reinitialization.

use crate::{mask_from_levelset, signed_distance};
use lsopc_grid::{Grid, Scalar};

/// The paper's time-step rule `Δt = λ_t / max|v|` (Algorithm 1, line 5).
///
/// Returns 0 when the velocity field is identically zero (the evolution
/// has converged) **or contains any non-finite value**. A corrupted
/// velocity must never move the front: `λ_t / ∞` would silently freeze
/// the run at `Δt = 0` anyway, while a NaN cell is invisible to a
/// `max`-fold (`f64::max` ignores NaN) and would otherwise propagate
/// into `ψ` on the next [`evolve`]. Callers that need to distinguish
/// "converged" from "corrupted" (the solver health guard does) should
/// scan the field themselves; this function only promises a finite,
/// non-negative `Δt`.
///
/// # Panics
///
/// Panics if `lambda_t` is not positive.
///
/// # Example
///
/// ```
/// use lsopc_grid::{Grid, Scalar};
/// use lsopc_levelset::cfl_time_step;
///
/// let v = Grid::from_vec(2, 1, vec![0.5, -2.0]);
/// assert_eq!(cfl_time_step(&v, 1.0), 0.5);
/// ```
pub fn cfl_time_step<T: Scalar>(velocity: &Grid<T>, lambda_t: f64) -> f64 {
    let _span = lsopc_trace::span!("levelset.cfl");
    assert!(lambda_t > 0.0, "lambda_t must be positive");
    let mut vmax = T::ZERO;
    for &v in velocity.as_slice() {
        if !v.is_finite() {
            return 0.0;
        }
        vmax = vmax.max(v.abs());
    }
    if vmax == T::ZERO {
        0.0
    } else {
        // Δt stays `f64` at every precision: it is optimizer control
        // state, not field data (the master-state pattern).
        lambda_t / vmax.to_f64()
    }
}

/// One explicit evolution step `ψ ← ψ + v·Δt` (Algorithm 1, line 6).
///
/// # Panics
///
/// Panics if the grids differ in shape.
pub fn evolve<T: Scalar>(psi: &mut Grid<T>, velocity: &Grid<T>, dt: f64) {
    let _span = lsopc_trace::span!("levelset.evolve");
    assert_eq!(psi.dims(), velocity.dims(), "grid dimensions must match");
    let dt = T::from_f64(dt);
    for (p, &v) in psi.as_mut_slice().iter_mut().zip(velocity.as_slice()) {
        *p += v * dt;
    }
}

/// Restores the signed-distance property of a level-set function while
/// preserving its zero contour (up to pixel resolution): thresholds at
/// zero and recomputes the exact signed distance.
///
/// Evolution distorts `|∇ψ|` away from 1, which degrades both the CFL
/// estimate and the velocity extension; periodic reinitialization is
/// standard practice in level-set methods.
pub fn reinitialize<T: Scalar>(psi: &Grid<T>) -> Grid<T> {
    let _span = lsopc_trace::span!("levelset.reinit");
    signed_distance(&mask_from_levelset(psi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_velocity_gives_zero_step() {
        let v = Grid::new(4, 4, 0.0);
        assert_eq!(cfl_time_step(&v, 2.0), 0.0);
    }

    #[test]
    fn step_scales_inversely_with_peak_velocity() {
        let v = Grid::from_vec(2, 2, vec![1.0, -4.0, 2.0, 0.0]);
        assert_eq!(cfl_time_step(&v, 1.0), 0.25);
        assert_eq!(cfl_time_step(&v, 0.5), 0.125);
    }

    #[test]
    fn evolve_moves_levelset() {
        let mut psi = Grid::new(3, 1, 1.0);
        let v = Grid::from_vec(3, 1, vec![-1.0, 0.0, 2.0]);
        evolve(&mut psi, &v, 0.5);
        assert_eq!(psi.as_slice(), &[0.5, 1.0, 2.0]);
    }

    #[test]
    fn uniform_negative_velocity_expands_mask() {
        // ψ < 0 inside: subtracting everywhere grows the inside region.
        let mask = Grid::from_fn(16, 16, |x, y| {
            if (6..10).contains(&x) && (6..10).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        let mut psi = signed_distance(&mask);
        let area_before = mask_from_levelset(&psi).sum();
        let v = Grid::new(16, 16, -1.0);
        evolve(&mut psi, &v, 1.0);
        let area_after = mask_from_levelset(&psi).sum();
        assert!(area_after > area_before);
    }

    #[test]
    fn reinitialize_preserves_zero_contour() {
        let mask = Grid::from_fn(24, 24, |x, y| {
            if (6..18).contains(&x) && (8..16).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        // Distort the SDF nonlinearly but sign-preservingly.
        let psi = signed_distance(&mask).map(|&v| v.powi(3) * 0.1 + v * 3.0);
        let reinit = reinitialize(&psi);
        assert_eq!(mask_from_levelset(&reinit), mask);
        // And the eikonal property returns: |ψ| of an interior neighbour
        // of the contour is 0.5.
        assert!((reinit[(6, 12)] + 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_lambda_panics() {
        let v = Grid::new(2, 2, 1.0);
        let _ = cfl_time_step(&v, 0.0);
    }

    #[test]
    fn nan_velocity_gives_zero_step() {
        // f64::max ignores NaN, so a max-fold would report the finite
        // peak (here 3.0) and produce a *finite nonzero* Δt that then
        // evolves NaN into ψ. The contract is a hard 0 instead.
        let v = Grid::from_vec(2, 2, vec![1.0, f64::NAN, -3.0, 0.5]);
        assert_eq!(cfl_time_step(&v, 2.0), 0.0);
    }

    #[test]
    fn inf_velocity_gives_zero_step() {
        let v = Grid::from_vec(2, 2, vec![1.0, f64::INFINITY, -3.0, 0.5]);
        assert_eq!(cfl_time_step(&v, 2.0), 0.0);
        let v = Grid::from_vec(2, 2, vec![1.0, f64::NEG_INFINITY, -3.0, 0.5]);
        assert_eq!(cfl_time_step(&v, 2.0), 0.0);
    }

    #[test]
    fn all_nan_velocity_gives_zero_step() {
        let v = Grid::new(3, 3, f64::NAN);
        assert_eq!(cfl_time_step(&v, 1.0), 0.0);
    }
}
