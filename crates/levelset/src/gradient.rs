//! Gradient-magnitude schemes for level-set evolution.

use lsopc_grid::{Grid, Scalar};

/// Central-difference |∇ψ| with one-sided differences at the borders.
///
/// Used for the velocity magnitude factor `|∇ψ|` of paper Eq. (10); the
/// advection update itself should prefer [`godunov_gradient`] for
/// stability.
///
/// # Example
///
/// ```
/// use lsopc_grid::{Grid, Scalar};
/// use lsopc_levelset::gradient_magnitude;
///
/// // ψ = x: a unit-slope ramp has |∇ψ| = 1 everywhere.
/// let psi = Grid::from_fn(8, 8, |x, _| x as f64);
/// let g = gradient_magnitude(&psi);
/// assert!(g.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-12));
/// ```
pub fn gradient_magnitude<T: Scalar>(psi: &Grid<T>) -> Grid<T> {
    let (w, h) = psi.dims();
    Grid::from_fn(w, h, |x, y| {
        let dx = diff_central(psi, x, y, true);
        let dy = diff_central(psi, x, y, false);
        (dx * dx + dy * dy).sqrt()
    })
}

/// Godunov upwind |∇ψ| for advection under the speed field `speed`.
///
/// For each cell the one-sided differences are combined according to the
/// sign of the local speed (Osher–Sethian scheme), which keeps the
/// evolution stable where the contour moves toward or away from the cell:
///
/// * speed > 0 (contour expands): `√(max(D⁻ˣ,0)² + min(D⁺ˣ,0)² + …)`
/// * speed < 0 (contour shrinks): `√(min(D⁻ˣ,0)² + max(D⁺ˣ,0)² + …)`
///
/// # Panics
///
/// Panics if the two grids have different dimensions.
pub fn godunov_gradient<T: Scalar>(psi: &Grid<T>, speed: &Grid<T>) -> Grid<T> {
    assert_eq!(psi.dims(), speed.dims(), "grid dimensions must match");
    let (w, h) = psi.dims();
    Grid::from_fn(w, h, |x, y| {
        let dxm = diff_backward(psi, x, y, true);
        let dxp = diff_forward(psi, x, y, true);
        let dym = diff_backward(psi, x, y, false);
        let dyp = diff_forward(psi, x, y, false);
        let s = speed[(x, y)];
        let (a, b, c, d) = if s > T::ZERO {
            (
                dxm.max(T::ZERO),
                dxp.min(T::ZERO),
                dym.max(T::ZERO),
                dyp.min(T::ZERO),
            )
        } else {
            (
                dxm.min(T::ZERO),
                dxp.max(T::ZERO),
                dym.min(T::ZERO),
                dyp.max(T::ZERO),
            )
        };
        (a * a + b * b + c * c + d * d).sqrt()
    })
}

#[inline]
fn diff_central<T: Scalar>(psi: &Grid<T>, x: usize, y: usize, along_x: bool) -> T {
    let (w, h) = psi.dims();
    let two = T::from_f64(2.0);
    if along_x {
        match x {
            0 => psi[(1, y)] - psi[(0, y)],
            _ if x == w - 1 => psi[(w - 1, y)] - psi[(w - 2, y)],
            _ => (psi[(x + 1, y)] - psi[(x - 1, y)]) / two,
        }
    } else {
        match y {
            0 => psi[(x, 1)] - psi[(x, 0)],
            _ if y == h - 1 => psi[(x, h - 1)] - psi[(x, h - 2)],
            _ => (psi[(x, y + 1)] - psi[(x, y - 1)]) / two,
        }
    }
}

#[inline]
fn diff_backward<T: Scalar>(psi: &Grid<T>, x: usize, y: usize, along_x: bool) -> T {
    if along_x {
        if x == 0 {
            T::ZERO
        } else {
            psi[(x, y)] - psi[(x - 1, y)]
        }
    } else if y == 0 {
        T::ZERO
    } else {
        psi[(x, y)] - psi[(x, y - 1)]
    }
}

#[inline]
fn diff_forward<T: Scalar>(psi: &Grid<T>, x: usize, y: usize, along_x: bool) -> T {
    let (w, h) = psi.dims();
    if along_x {
        if x == w - 1 {
            T::ZERO
        } else {
            psi[(x + 1, y)] - psi[(x, y)]
        }
    } else if y == h - 1 {
        T::ZERO
    } else {
        psi[(x, y + 1)] - psi[(x, y)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signed_distance;

    #[test]
    fn ramp_gradient_is_one() {
        let psi = Grid::from_fn(16, 16, |_, y| y as f64 * 1.0);
        let g = gradient_magnitude(&psi);
        for (_, _, &v) in g.iter_coords() {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_ramp_gradient() {
        let psi = Grid::from_fn(16, 16, |x, y| (x + y) as f64);
        let g = gradient_magnitude(&psi);
        // |∇(x+y)| = sqrt(2) in the interior.
        assert!((g[(8, 8)] - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn godunov_matches_central_on_smooth_ramp() {
        let psi = Grid::from_fn(16, 16, |x, _| x as f64);
        let speed = Grid::new(16, 16, 1.0);
        let g = godunov_gradient(&psi, &speed);
        assert!((g[(8, 8)] - 1.0).abs() < 1e-12);
        let speed_neg = Grid::new(16, 16, -1.0);
        let g2 = godunov_gradient(&psi, &speed_neg);
        assert!((g2[(8, 8)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn godunov_on_sdf_is_near_one_on_contour() {
        let mask = Grid::from_fn(32, 32, |x, y| {
            if (8..24).contains(&x) && (8..24).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        let psi = signed_distance(&mask);
        let speed = Grid::new(32, 32, 1.0);
        let g = godunov_gradient(&psi, &speed);
        // On the flat part of an edge the SDF satisfies the eikonal
        // equation.
        assert!((g[(16, 8)] - 1.0).abs() < 1e-6);
        assert!((g[(8, 16)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn godunov_at_kink_picks_entropy_solution() {
        // ψ = |x - 8|: a valley at x = 8. For positive speed (expanding
        // away from the valley) the Godunov gradient at the kink is 0.
        let psi = Grid::from_fn(17, 3, |x, _| (x as f64 - 8.0).abs());
        let plus = Grid::new(17, 3, 1.0);
        let minus = Grid::new(17, 3, -1.0);
        let gp = godunov_gradient(&psi, &plus);
        let gm = godunov_gradient(&psi, &minus);
        assert!(gp[(8, 1)].abs() < 1e-12, "expanding kink: {}", gp[(8, 1)]);
        assert!((gm[(8, 1)] - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn dimension_mismatch_panics() {
        let psi = Grid::new(4, 4, 0.0);
        let speed = Grid::new(3, 4, 0.0);
        let _ = godunov_gradient(&psi, &speed);
    }
}
