//! Property-based invariants of the level-set toolkit.

use lsopc_grid::Grid;
use lsopc_levelset::{
    cfl_time_step, evolve, fast_marching_redistance, godunov_gradient, mask_from_levelset,
    reinitialize, signed_distance,
};
use proptest::prelude::*;

fn random_mask() -> impl Strategy<Value = Grid<f64>> {
    prop::collection::vec(any::<bool>(), 16 * 16)
        .prop_map(|bits| Grid::from_fn(16, 16, |x, y| if bits[y * 16 + x] { 1.0 } else { 0.0 }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The SDF thresholds back to the exact input mask.
    #[test]
    fn sdf_threshold_is_inverse(mask in random_mask()) {
        let psi = signed_distance(&mask);
        prop_assert_eq!(mask_from_levelset(&psi), mask);
    }

    /// Reinitialization is idempotent.
    #[test]
    fn reinit_is_idempotent(mask in random_mask()) {
        let psi = signed_distance(&mask);
        let once = reinitialize(&psi);
        let twice = reinitialize(&once);
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// SDF magnitudes satisfy the triangle inequality along axes:
    /// adjacent cells differ by at most ~1 pixel.
    #[test]
    fn sdf_is_one_lipschitz(mask in random_mask()) {
        let psi = signed_distance(&mask);
        for y in 0..16 {
            for x in 0..15 {
                prop_assert!((psi[(x + 1, y)] - psi[(x, y)]).abs() <= 1.0 + 1e-9);
            }
        }
        for y in 0..15 {
            for x in 0..16 {
                prop_assert!((psi[(x, y + 1)] - psi[(x, y)]).abs() <= 1.0 + 1e-9);
            }
        }
    }

    /// The Godunov gradient is non-negative and bounded by the sum of the
    /// one-sided difference magnitudes.
    #[test]
    fn godunov_gradient_bounds(mask in random_mask(), speed_sign in any::<bool>()) {
        let psi = signed_distance(&mask);
        let speed = Grid::new(16, 16, if speed_sign { 1.0 } else { -1.0 });
        let g = godunov_gradient(&psi, &speed);
        for (_, _, &v) in g.iter_coords() {
            prop_assert!(v >= 0.0);
            // Each one-sided difference of a 1-Lipschitz SDF is in [−1, 1]
            // and up to four can contribute at a kink: bound 2.
            prop_assert!(v <= 2.0 + 1e-9);
        }
    }

    /// Uniform negative velocity can only grow the mask; positive can
    /// only shrink it.
    #[test]
    fn evolution_monotonicity(mask in random_mask(), grow in any::<bool>()) {
        prop_assume!(mask.sum() > 0.0);
        let mut psi = signed_distance(&mask);
        let v = Grid::new(16, 16, if grow { -1.0 } else { 1.0 });
        let area_before = mask_from_levelset(&psi).sum();
        evolve(&mut psi, &v, 1.0);
        let area_after = mask_from_levelset(&psi).sum();
        if grow {
            prop_assert!(area_after >= area_before);
        } else {
            prop_assert!(area_after <= area_before);
        }
    }

    /// The CFL step scales the peak |ψ| change to exactly λ_t.
    #[test]
    fn cfl_caps_peak_update(mask in random_mask(), lambda in 0.1f64..3.0) {
        let psi = signed_distance(&mask);
        // Velocity proportional to ψ (arbitrary smooth field).
        let v = psi.map(|&p| 0.3 * p);
        prop_assume!(lsopc_grid::max_abs(&v) > 0.0);
        let dt = cfl_time_step(&v, lambda);
        let peak = lsopc_grid::max_abs(&v) * dt;
        prop_assert!((peak - lambda).abs() < 1e-9);
    }

    /// FMM redistancing preserves the sign structure of any input.
    #[test]
    fn fmm_preserves_signs(mask in random_mask()) {
        prop_assume!(mask.sum() > 0.0 && mask.sum() < 256.0);
        let psi = signed_distance(&mask);
        let fmm = fast_marching_redistance(&psi);
        for (p, f) in psi.as_slice().iter().zip(fmm.as_slice()) {
            prop_assert_eq!(*p <= 0.0, *f <= 0.0);
        }
    }

    /// FMM distances stay within a pixel of the exact EDT near the
    /// interface (first-order accuracy there).
    #[test]
    fn fmm_is_accurate_near_interface(mask in random_mask()) {
        prop_assume!(mask.sum() > 0.0 && mask.sum() < 256.0);
        let psi = signed_distance(&mask);
        let fmm = fast_marching_redistance(&psi);
        for (p, f) in psi.as_slice().iter().zip(fmm.as_slice()) {
            if p.abs() <= 1.5 {
                prop_assert!((p - f).abs() < 1.0, "edt {p} vs fmm {f}");
            }
        }
    }
}
