//! FFT-based cyclic convolution helpers.

use lsopc_grid::{Complex, Grid, Scalar};

/// Element-wise product of two same-shape complex grids (spectral
/// multiplication step of FFT convolution).
///
/// # Panics
///
/// Panics if the grids have different dimensions.
pub fn spectrum_multiply<T: Scalar>(
    a: &Grid<Complex<T>>,
    b: &Grid<Complex<T>>,
) -> Grid<Complex<T>> {
    a.zip_map(b, |&x, &y| x * y)
}

/// Accumulates `acc += w * (a ⊙ b)` element-wise, the inner step of the
/// SOCS gradient accumulation.
///
/// # Panics
///
/// Panics if the grids have different dimensions.
pub fn spectrum_accumulate<T: Scalar>(
    acc: &mut Grid<Complex<T>>,
    a: &Grid<Complex<T>>,
    b: &Grid<Complex<T>>,
    w: T,
) {
    assert_eq!(acc.dims(), a.dims(), "grid dimensions must match");
    assert_eq!(a.dims(), b.dims(), "grid dimensions must match");
    for ((dst, &x), &y) in acc
        .as_mut_slice()
        .iter_mut()
        .zip(a.as_slice())
        .zip(b.as_slice())
    {
        *dst += (x * y).scale(w);
    }
}

/// Cyclic (circular) convolution of two same-shape complex grids via FFT.
///
/// `out[x] = Σ_u a[u]·b[(x - u) mod N]` with wraparound in both dimensions,
/// matching the periodic-field convention of the Hopkins imaging model.
///
/// # Panics
///
/// Panics if the grids have different dimensions or a dimension is not a
/// power of two.
///
/// # Example
///
/// ```
/// use lsopc_fft::convolve_cyclic;
/// use lsopc_grid::{Grid, C64};
///
/// // Convolving with a unit impulse at the origin is the identity.
/// let a = Grid::from_fn(4, 4, |x, y| C64::new((x + y) as f64, 0.0));
/// let mut delta = Grid::new(4, 4, C64::ZERO);
/// delta[(0, 0)] = C64::ONE;
/// let out = convolve_cyclic(&a, &delta);
/// for (p, q) in out.as_slice().iter().zip(a.as_slice()) {
///     assert!((*p - *q).norm() < 1e-12);
/// }
/// ```
pub fn convolve_cyclic<T: Scalar>(a: &Grid<Complex<T>>, b: &Grid<Complex<T>>) -> Grid<Complex<T>> {
    assert_eq!(a.dims(), b.dims(), "grid dimensions must match");
    let (w, h) = a.dims();
    let fft = crate::cache::plan_t::<T>(w, h);
    let mut fa = a.clone();
    let mut fb = b.clone();
    fft.forward(&mut fa);
    fft.forward(&mut fb);
    let mut prod = spectrum_multiply(&fa, &fb);
    fft.inverse(&mut prod);
    prod
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_grid::C64;

    /// Direct O(n⁴) cyclic convolution for verification.
    fn convolve_direct(a: &Grid<C64>, b: &Grid<C64>) -> Grid<C64> {
        let (w, h) = a.dims();
        Grid::from_fn(w, h, |x, y| {
            let mut acc = C64::ZERO;
            for v in 0..h {
                for u in 0..w {
                    let bx = (x + w - u) % w;
                    let by = (y + h - v) % h;
                    acc += a[(u, v)] * b[(bx, by)];
                }
            }
            acc
        })
    }

    #[test]
    fn fft_convolution_matches_direct() {
        let a = Grid::from_fn(8, 8, |x, y| C64::new((x * y % 3) as f64, (x % 2) as f64));
        let b = Grid::from_fn(8, 8, |x, y| C64::new((x + 2 * y) as f64 * 0.1, 0.0));
        let fast = convolve_cyclic(&a, &b);
        let direct = convolve_direct(&a, &b);
        for (p, q) in fast.as_slice().iter().zip(direct.as_slice()) {
            assert!((*p - *q).norm() < 1e-9);
        }
    }

    #[test]
    fn convolution_is_commutative() {
        let a = Grid::from_fn(4, 4, |x, y| C64::new(x as f64, y as f64));
        let b = Grid::from_fn(4, 4, |x, y| C64::new((x * y) as f64, 0.5));
        let ab = convolve_cyclic(&a, &b);
        let ba = convolve_cyclic(&b, &a);
        for (p, q) in ab.as_slice().iter().zip(ba.as_slice()) {
            assert!((*p - *q).norm() < 1e-10);
        }
    }

    #[test]
    fn shifted_impulse_translates() {
        let a = Grid::from_fn(4, 4, |x, y| C64::new((4 * y + x) as f64, 0.0));
        let mut delta = Grid::new(4, 4, C64::ZERO);
        delta[(1, 0)] = C64::ONE;
        let out = convolve_cyclic(&a, &delta);
        // out[x, y] = a[(x-1) mod 4, y]
        assert!((out[(1, 2)] - a[(0, 2)]).norm() < 1e-10);
        assert!((out[(0, 3)] - a[(3, 3)]).norm() < 1e-10);
    }

    #[test]
    fn spectrum_accumulate_weighted_sum() {
        let a = Grid::new(2, 2, C64::new(1.0, 1.0));
        let b = Grid::new(2, 2, C64::new(2.0, 0.0));
        let mut acc = Grid::new(2, 2, C64::new(0.5, 0.0));
        spectrum_accumulate(&mut acc, &a, &b, 2.0);
        for (_, _, v) in acc.iter_coords() {
            assert!((*v - C64::new(4.5, 4.0)).norm() < 1e-12);
        }
    }
}
