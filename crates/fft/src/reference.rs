//! Naive O(n²) reference DFTs used to pin the fast transforms.

use lsopc_grid::{Complex, Grid, Scalar};

/// Naive discrete Fourier transform (O(n²)).
///
/// `inverse = false` computes `X[k] = Σ x[n]·exp(-2πi kn/N)`;
/// `inverse = true` computes the inverse including the `1/N` factor.
///
/// Intended for test comparison only — use [`crate::FftPlan`] in real code.
///
/// # Example
///
/// ```
/// use lsopc_fft::naive_dft;
/// use lsopc_grid::C64;
///
/// let x = vec![C64::ONE, C64::ZERO];
/// let spectrum = naive_dft(&x, false);
/// assert!((spectrum[0] - C64::ONE).norm() < 1e-15);
/// assert!((spectrum[1] - C64::ONE).norm() < 1e-15);
/// ```
pub fn naive_dft<T: Scalar>(x: &[Complex<T>], inverse: bool) -> Vec<Complex<T>> {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex::ZERO;
        for (j, &v) in x.iter().enumerate() {
            let theta =
                T::from_f64(sign * 2.0 * std::f64::consts::PI * (k * j % n) as f64 / n as f64);
            acc += v * Complex::cis(theta);
        }
        if inverse {
            acc = acc.scale(T::ONE / T::from_usize(n));
        }
        out.push(acc);
    }
    out
}

/// Naive 2-D DFT over a grid (O(n⁴) in the linear dimension).
///
/// Same conventions as [`naive_dft`]; rows are transformed first, then
/// columns (the DFT is separable so the order does not matter).
pub fn naive_dft2d<T: Scalar>(g: &Grid<Complex<T>>, inverse: bool) -> Grid<Complex<T>> {
    let (w, h) = g.dims();
    // Rows.
    let mut rows = Grid::new(w, h, Complex::ZERO);
    for y in 0..h {
        let out = naive_dft(g.row(y), inverse);
        rows.row_mut(y).copy_from_slice(&out);
    }
    // Columns.
    let mut result = Grid::new(w, h, Complex::ZERO);
    for x in 0..w {
        let col: Vec<Complex<T>> = (0..h).map(|y| rows[(x, y)]).collect();
        let out = naive_dft(&col, inverse);
        for (y, v) in out.into_iter().enumerate() {
            result[(x, y)] = v;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_grid::C64;

    #[test]
    fn impulse_is_flat() {
        let mut x = vec![C64::ZERO; 8];
        x[0] = C64::ONE;
        for v in naive_dft(&x, false) {
            assert!((v - C64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn roundtrip() {
        let x: Vec<C64> = (0..6).map(|i| C64::new(i as f64, -(i as f64))).collect();
        let back = naive_dft(&naive_dft(&x, false), true);
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn dft2d_impulse_is_flat() {
        let mut g = Grid::new(4, 4, C64::ZERO);
        g[(0, 0)] = C64::ONE;
        let f = naive_dft2d(&g, false);
        for (_, _, v) in f.iter_coords() {
            assert!((*v - C64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn dft2d_shift_theorem() {
        // Shifting the impulse to (1, 0) multiplies the spectrum by a phasor
        // in kx only.
        let mut g = Grid::new(4, 4, C64::ZERO);
        g[(1, 0)] = C64::ONE;
        let f = naive_dft2d(&g, false);
        for ky in 0..4 {
            for kx in 0..4 {
                let expected = C64::cis(-2.0 * std::f64::consts::PI * kx as f64 / 4.0);
                assert!((f[(kx, ky)] - expected).norm() < 1e-12);
            }
        }
    }
}
