//! Process-wide cache of 2-D FFT plans.
//!
//! Building an [`Fft2d`] computes twiddle-factor and bit-reversal tables;
//! doing that on every simulation call wastes work and, worse, hides the
//! plan's identity from callers that could otherwise share it. This
//! module gives the workspace one canonical plan per `(width, height)`:
//!
//! * [`PlanCache`] — an injectable cache instance, for tests and for
//!   callers that want isolated plan lifetimes;
//! * [`PlanCache::global`] — the process-global instance every hot path
//!   (backends, convolution helpers, optics kernel construction) goes
//!   through;
//! * [`plan`] — shorthand for `PlanCache::global().plan(w, h)`.
//!
//! Plans are returned as `Arc<Fft2d<f64>>`: repeated lookups of the same
//! size return clones of the *same* allocation, so callers may compare
//! with `Arc::ptr_eq` and hold plans across iterations for free.

use std::collections::HashMap;
use std::sync::Arc;

use lsopc_grid::Scalar;
use parking_lot::RwLock;

use crate::Fft2d;

/// Plans stored by the cache, keyed by `(width, height)`.
type PlanMap = HashMap<(usize, usize), Arc<Fft2d<f64>>>;

/// A thread-safe cache of [`Fft2d`] plans keyed by `(width, height)`.
///
/// Reads take a shared lock, so concurrent simulation threads hitting
/// already-built plans never serialize; only the first construction of a
/// given size takes the write lock.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: RwLock<PlanMap>,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The process-global cache shared by all simulation hot paths.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: std::sync::LazyLock<PlanCache> = std::sync::LazyLock::new(PlanCache::new);
        &GLOBAL
    }

    /// Returns the shared plan for `width` x `height` grids, building it
    /// on first use. All callers asking for the same size get the same
    /// `Arc` allocation.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two (same
    /// contract as [`Fft2d::new`]).
    pub fn plan(&self, width: usize, height: usize) -> Arc<Fft2d<f64>> {
        if let Some(plan) = self.plans.read().get(&(width, height)) {
            return Arc::clone(plan);
        }
        let mut plans = self.plans.write();
        // Re-check under the write lock: another thread may have built
        // the plan between our read and write acquisitions, and every
        // caller must observe the same Arc.
        Arc::clone(
            plans
                .entry((width, height))
                .or_insert_with(|| Arc::new(Fft2d::new(width, height))),
        )
    }

    /// Number of distinct plan sizes currently cached.
    pub fn len(&self) -> usize {
        self.plans.read().len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.plans.read().is_empty()
    }

    /// Drops all cached plans. Outstanding `Arc`s stay valid; subsequent
    /// lookups rebuild.
    pub fn clear(&self) {
        self.plans.write().clear();
    }
}

/// Shared plan for `width` x `height` grids from the process-global
/// cache. See [`PlanCache::plan`].
///
/// # Panics
///
/// Panics if either dimension is zero or not a power of two.
pub fn plan(width: usize, height: usize) -> Arc<Fft2d<f64>> {
    PlanCache::global().plan(width, height)
}

/// Scalar-generic access to the global cache: `f64` requests hit the
/// shared cache, other scalar types build a fresh plan (the workspace's
/// hot paths are all `f64`; `f32` support exists for completeness).
pub(crate) fn plan_for<T: Scalar>(width: usize, height: usize) -> Arc<Fft2d<T>> {
    let any: Arc<dyn std::any::Any + Send + Sync> = plan(width, height);
    match any.downcast::<Fft2d<T>>() {
        Ok(plan) => plan,
        Err(_) => Arc::new(Fft2d::new(width, height)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_size_returns_same_arc() {
        let cache = PlanCache::new();
        let a = cache.plan(16, 8);
        let b = cache.plan(16, 8);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let c = cache.plan(8, 16);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_plan_transforms_like_a_fresh_one() {
        use lsopc_grid::{Grid, C64};
        let cache = PlanCache::new();
        let plan = cache.plan(8, 8);
        let fresh = Fft2d::<f64>::new(8, 8);
        let g = Grid::from_fn(8, 8, |x, y| C64::new(x as f64, y as f64));
        let mut a = g.clone();
        let mut b = g;
        plan.forward(&mut a);
        fresh.forward(&mut b);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn clear_keeps_outstanding_arcs_usable() {
        use lsopc_grid::{Grid, C64};
        let cache = PlanCache::new();
        let plan = cache.plan(4, 4);
        cache.clear();
        assert!(cache.is_empty());
        let mut g = Grid::new(4, 4, C64::ONE);
        plan.forward(&mut g);
        let rebuilt = cache.plan(4, 4);
        assert!(!Arc::ptr_eq(&plan, &rebuilt));
    }

    #[test]
    fn generic_helper_reuses_f64_plans() {
        // The global cache is shared; use a size no other test asks for.
        let a = plan_for::<f64>(64, 2);
        let b = plan(64, 2);
        assert!(Arc::ptr_eq(&a, &b));
        let c = plan_for::<f32>(64, 2);
        assert_eq!((c.width(), c.height()), (64, 2));
    }
}
