//! Process-wide cache of 2-D FFT plans.
//!
//! Building an [`Fft2d`] computes twiddle-factor and bit-reversal tables;
//! doing that on every simulation call wastes work and, worse, hides the
//! plan's identity from callers that could otherwise share it. This
//! module gives the workspace one canonical plan per `(scalar type,
//! width, height)`:
//!
//! * [`PlanCache`] — an injectable cache instance, for tests and for
//!   callers that want isolated plan lifetimes;
//! * [`PlanCache::global`] — the process-global instance every hot path
//!   (backends, convolution helpers, optics kernel construction) goes
//!   through;
//! * [`plan`] — shorthand for `PlanCache::global().plan(w, h)` (`f64`);
//! * [`plan_t`] — the scalar-generic equivalent, used by the f32 and
//!   mixed-precision execution modes.
//!
//! Plans are returned as `Arc<Fft2d<T>>`: repeated lookups of the same
//! size and scalar type return clones of the *same* allocation, so
//! callers may compare with `Arc::ptr_eq` and hold plans across
//! iterations for free. Plans of different scalar types never alias:
//! the cache key includes `TypeId::of::<T>()`.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::Arc;

use lsopc_grid::Scalar;
use parking_lot::RwLock;

use crate::{Fft2d, RfftPlan};

/// Plans stored by the cache, keyed by `(scalar type, width, height)`.
/// Values are type-erased `Arc<Fft2d<T>>` (generic statics are illegal in
/// Rust, so one erased map serves every scalar type).
type PlanMap = HashMap<(TypeId, usize, usize), Arc<dyn Any + Send + Sync>>;

/// A thread-safe cache of [`Fft2d`] plans keyed by scalar type and
/// `(width, height)`.
///
/// Reads take a shared lock, so concurrent simulation threads hitting
/// already-built plans never serialize; only the first construction of a
/// given size takes the write lock.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: RwLock<PlanMap>,
    /// Real-input ([`RfftPlan`]) plans, cached separately: the two plan
    /// kinds have different twiddle tables and a caller asking for one
    /// never wants the other.
    rplans: RwLock<PlanMap>,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The process-global cache shared by all simulation hot paths.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: std::sync::LazyLock<PlanCache> = std::sync::LazyLock::new(PlanCache::new);
        &GLOBAL
    }

    /// Returns the shared `f64` plan for `width` x `height` grids,
    /// building it on first use. All callers asking for the same size get
    /// the same `Arc` allocation.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two (same
    /// contract as [`Fft2d::new`]).
    pub fn plan(&self, width: usize, height: usize) -> Arc<Fft2d<f64>> {
        self.plan_t::<f64>(width, height)
    }

    /// Returns the shared plan of scalar type `T` for `width` x `height`
    /// grids, building it on first use. Plans of different scalar types
    /// are cached independently — an `f64` plan is never handed to an
    /// `f32` caller.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two (same
    /// contract as [`Fft2d::new`]).
    pub fn plan_t<T: Scalar>(&self, width: usize, height: usize) -> Arc<Fft2d<T>> {
        let key = (TypeId::of::<T>(), width, height);
        if let Some(plan) = self.plans.read().get(&key) {
            lsopc_trace::count("cache.plan.hit", 1);
            return downcast_plan(plan);
        }
        lsopc_trace::count("cache.plan.miss", 1);
        let mut plans = self.plans.write();
        // Re-check under the write lock: another thread may have built
        // the plan between our read and write acquisitions, and every
        // caller must observe the same Arc.
        let erased = plans
            .entry(key)
            .or_insert_with(|| Arc::new(Fft2d::<T>::new(width, height)));
        downcast_plan(erased)
    }

    /// Returns the shared `f64` real-input plan for `width` x `height`
    /// grids, building it on first use. See [`PlanCache::rplan_t`].
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two (same
    /// contract as [`RfftPlan::new`]).
    pub fn rplan(&self, width: usize, height: usize) -> Arc<RfftPlan<f64>> {
        self.rplan_t::<f64>(width, height)
    }

    /// Returns the shared real-input ([`RfftPlan`]) plan of scalar type
    /// `T` for `width` x `height` grids, building it on first use. Cached
    /// independently of the dense [`Fft2d`] plans and per scalar type,
    /// with the same `Arc`-sharing guarantees as [`PlanCache::plan_t`].
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two (same
    /// contract as [`RfftPlan::new`]).
    pub fn rplan_t<T: Scalar>(&self, width: usize, height: usize) -> Arc<RfftPlan<T>> {
        let key = (TypeId::of::<T>(), width, height);
        if let Some(plan) = self.rplans.read().get(&key) {
            lsopc_trace::count("cache.rplan.hit", 1);
            return downcast_rplan(plan);
        }
        lsopc_trace::count("cache.rplan.miss", 1);
        let mut rplans = self.rplans.write();
        let erased = rplans
            .entry(key)
            .or_insert_with(|| Arc::new(RfftPlan::<T>::new(width, height)));
        downcast_rplan(erased)
    }

    /// Number of distinct `(scalar type, size)` plans currently cached
    /// (dense and real-input combined).
    pub fn len(&self) -> usize {
        self.plans.read().len() + self.rplans.read().len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.plans.read().is_empty() && self.rplans.read().is_empty()
    }

    /// Drops all cached plans. Outstanding `Arc`s stay valid; subsequent
    /// lookups rebuild.
    pub fn clear(&self) {
        self.plans.write().clear();
        self.rplans.write().clear();
    }
}

/// Recovers the typed `Arc<Fft2d<T>>` from a cache entry. The key's
/// `TypeId` guarantees the downcast succeeds.
fn downcast_plan<T: Scalar>(erased: &Arc<dyn Any + Send + Sync>) -> Arc<Fft2d<T>> {
    Arc::clone(erased)
        .downcast::<Fft2d<T>>()
        .unwrap_or_else(|_| unreachable!("plan cache entry keyed by TypeId has that type"))
}

/// Recovers the typed `Arc<RfftPlan<T>>` from a cache entry. The key's
/// `TypeId` guarantees the downcast succeeds.
fn downcast_rplan<T: Scalar>(erased: &Arc<dyn Any + Send + Sync>) -> Arc<RfftPlan<T>> {
    Arc::clone(erased)
        .downcast::<RfftPlan<T>>()
        .unwrap_or_else(|_| unreachable!("rfft plan cache entry keyed by TypeId has that type"))
}

/// Shared `f64` plan for `width` x `height` grids from the process-global
/// cache. See [`PlanCache::plan`].
///
/// # Panics
///
/// Panics if either dimension is zero or not a power of two.
pub fn plan(width: usize, height: usize) -> Arc<Fft2d<f64>> {
    PlanCache::global().plan(width, height)
}

/// Shared plan of scalar type `T` for `width` x `height` grids from the
/// process-global cache. See [`PlanCache::plan_t`].
///
/// # Panics
///
/// Panics if either dimension is zero or not a power of two.
pub fn plan_t<T: Scalar>(width: usize, height: usize) -> Arc<Fft2d<T>> {
    PlanCache::global().plan_t::<T>(width, height)
}

/// Shared `f64` real-input plan for `width` x `height` grids from the
/// process-global cache. See [`PlanCache::rplan`].
///
/// # Panics
///
/// Panics if either dimension is zero or not a power of two.
pub fn rplan(width: usize, height: usize) -> Arc<RfftPlan<f64>> {
    PlanCache::global().rplan(width, height)
}

/// Shared real-input plan of scalar type `T` for `width` x `height` grids
/// from the process-global cache. See [`PlanCache::rplan_t`].
///
/// # Panics
///
/// Panics if either dimension is zero or not a power of two.
pub fn rplan_t<T: Scalar>(width: usize, height: usize) -> Arc<RfftPlan<T>> {
    PlanCache::global().rplan_t::<T>(width, height)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_size_returns_same_arc() {
        let cache = PlanCache::new();
        let a = cache.plan(16, 8);
        let b = cache.plan(16, 8);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let c = cache.plan(8, 16);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_plan_transforms_like_a_fresh_one() {
        use lsopc_grid::{Grid, C64};
        let cache = PlanCache::new();
        let plan = cache.plan(8, 8);
        let fresh = Fft2d::<f64>::new(8, 8);
        let g = Grid::from_fn(8, 8, |x, y| C64::new(x as f64, y as f64));
        let mut a = g.clone();
        let mut b = g;
        plan.forward(&mut a);
        fresh.forward(&mut b);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn clear_keeps_outstanding_arcs_usable() {
        use lsopc_grid::{Grid, C64};
        let cache = PlanCache::new();
        let plan = cache.plan(4, 4);
        cache.clear();
        assert!(cache.is_empty());
        let mut g = Grid::new(4, 4, C64::ONE);
        plan.forward(&mut g);
        let rebuilt = cache.plan(4, 4);
        assert!(!Arc::ptr_eq(&plan, &rebuilt));
    }

    #[test]
    fn f32_and_f64_plans_are_cached_independently() {
        let cache = PlanCache::new();
        let a64 = cache.plan_t::<f64>(16, 16);
        let a32 = cache.plan_t::<f32>(16, 16);
        let b32 = cache.plan_t::<f32>(16, 16);
        assert!(Arc::ptr_eq(&a32, &b32), "f32 plans are cached");
        assert_eq!(cache.len(), 2, "one entry per scalar type");
        assert_eq!((a64.width(), a64.height()), (16, 16));
        assert_eq!((a32.width(), a32.height()), (16, 16));
    }

    #[test]
    fn rplans_are_cached_separately_from_dense_plans() {
        let cache = PlanCache::new();
        let dense = cache.plan(16, 8);
        let r1 = cache.rplan(16, 8);
        let r2 = cache.rplan(16, 8);
        assert!(Arc::ptr_eq(&r1, &r2), "rfft plans are cached");
        assert_eq!(cache.len(), 2, "dense and rfft entries are distinct");
        assert_eq!((dense.width(), dense.height()), (16, 8));
        let r32 = cache.rplan_t::<f32>(16, 8);
        assert_eq!((r32.width(), r32.height()), (16, 8));
        assert_eq!(cache.len(), 3, "per-scalar rfft entries");
        cache.clear();
        assert!(cache.is_empty());
        // Outstanding Arcs stay valid after clear.
        use lsopc_grid::Grid;
        let g = Grid::new(16, 8, 1.0_f64);
        let spec = r1.forward(&g);
        assert_eq!(spec.dims(), (16, 8));
    }

    #[test]
    fn generic_helper_reuses_f64_plans() {
        // The global cache is shared; use a size no other test asks for.
        let a = plan_t::<f64>(64, 2);
        let b = plan(64, 2);
        assert!(Arc::ptr_eq(&a, &b));
        let c = plan_t::<f32>(64, 2);
        let d = plan_t::<f32>(64, 2);
        assert!(Arc::ptr_eq(&c, &d), "global f32 plans are cached too");
        assert_eq!((c.width(), c.height()), (64, 2));
    }
}
