//! From-scratch power-of-two FFT used for convolution in lithography
//! simulation.
//!
//! The paper accelerates the Hopkins-model convolutions with FFTs
//! (Section III-E); this crate provides that substrate without external
//! dependencies:
//!
//! * [`FftPlan`] — an iterative radix-2 decimation-in-time 1-D transform
//!   with precomputed twiddle factors and bit-reversal tables;
//! * [`Fft2d`] — row-column 2-D transforms over [`lsopc_grid::Grid`],
//!   including band-limited variants ([`Fft2d::inverse_band`],
//!   [`Fft2d::forward_band`]) that skip zero spectrum columns, plus
//!   batched multi-grid variants ([`Fft2d::inverse_band_batch`],
//!   [`Fft2d::forward_band_batch`]) that share one strided column pass
//!   across several band-limited spectra;
//! * [`RfftPlan`]/[`HalfSpectrum`] — a true real-input 2-D transform that
//!   stores only the non-redundant `(w/2 + 1) × h` Hermitian half and
//!   reconstructs real output directly (opt-in for the simulation
//!   backends — see [`rfft_default`]);
//! * [`PlanCache`]/[`plan`] — a process-wide cache handing out shared
//!   `Arc<Fft2d>` plans so hot paths never rebuild twiddle tables;
//! * [`naive_dft`]/[`naive_dft2d`] — O(n²) reference transforms used by the
//!   test-suite to pin correctness;
//! * convolution helpers and `fftshift` utilities.
//!
//! All transforms are generic over [`lsopc_grid::Scalar`] (`f32`/`f64`).
//!
//! # Conventions
//!
//! The forward transform is unnormalized, `X[k] = Σ x[n]·exp(-2πi kn/N)`;
//! the inverse divides by `N` so that `inverse(forward(x)) == x`.
//!
//! # Example
//!
//! ```
//! use lsopc_fft::FftPlan;
//! use lsopc_grid::C64;
//!
//! let plan = FftPlan::<f64>::new(8);
//! let mut data: Vec<C64> = (0..8).map(|i| C64::new(i as f64, 0.0)).collect();
//! let original = data.clone();
//! plan.forward(&mut data);
//! plan.inverse(&mut data);
//! for (a, b) in data.iter().zip(&original) {
//!     assert!((*a - *b).norm() < 1e-12);
//! }
//! ```

#![warn(missing_docs)]

mod cache;
mod conv;
mod fft2d;
mod plan;
mod reference;
mod resample;
mod rfft;
mod shift;

pub use cache::{plan, plan_t, rplan, rplan_t, PlanCache};
pub use conv::{convolve_cyclic, spectrum_accumulate, spectrum_multiply};
pub use fft2d::Fft2d;
pub use plan::FftPlan;
pub use reference::{naive_dft, naive_dft2d};
pub use resample::upsample_spectral;
pub use rfft::{rfft_default, set_rfft_default, HalfSpectrum, RfftPlan};
pub use shift::{cyclic_shift, fftshift, ifftshift, wrap_index};
