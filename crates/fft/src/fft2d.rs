//! 2-D FFT over [`Grid`] via the row-column algorithm.
//!
//! Every pass is parallel: rows (and transposed columns) are independent
//! 1-D FFTs distributed over the shared [`ParallelContext`] pool, and the
//! blocked transposes split the output grid into disjoint row bands. All
//! writes are disjoint and each 1-D transform runs the exact same
//! arithmetic wherever it is scheduled, so results are bit-identical to
//! the serial path for any thread count. The default entry points
//! ([`Fft2d::forward`] etc.) use [`ParallelContext::global`]; the `*_with`
//! variants take an explicit context for tests and thread-count sweeps.

use crate::FftPlan;
use lsopc_grid::{Complex, Grid, Scalar};
use lsopc_parallel::ParallelContext;

/// A reusable 2-D FFT for grids of a fixed power-of-two size.
///
/// The transform is separable: all rows are transformed with the width plan,
/// the grid is transposed, all (former) columns are transformed with the
/// height plan, and the grid is transposed back. The transpose keeps the
/// inner loops on contiguous memory, which on large grids is substantially
/// faster than strided column access.
///
/// # Example
///
/// ```
/// use lsopc_fft::Fft2d;
/// use lsopc_grid::{Grid, C64};
///
/// let fft = Fft2d::<f64>::new(8, 8);
/// let mut g = Grid::new(8, 8, C64::ZERO);
/// g[(0, 0)] = C64::ONE;
/// fft.forward(&mut g);
/// // The spectrum of an impulse at the origin is flat.
/// assert!((g[(5, 3)] - C64::ONE).norm() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Fft2d<T> {
    width: usize,
    height: usize,
    row_plan: FftPlan<T>,
    col_plan: FftPlan<T>,
}

impl<T: Scalar> Fft2d<T> {
    /// Creates a 2-D plan for `width` x `height` grids.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            row_plan: FftPlan::new(width),
            col_plan: FftPlan::new(height),
        }
    }

    /// Planned grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Planned grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// In-place forward 2-D transform.
    ///
    /// # Panics
    ///
    /// Panics if the grid dimensions differ from the planned size.
    pub fn forward(&self, g: &mut Grid<Complex<T>>) {
        self.transform(ParallelContext::global(), g, false);
    }

    /// In-place inverse 2-D transform, scaled by `1/(W·H)`.
    ///
    /// # Panics
    ///
    /// Panics if the grid dimensions differ from the planned size.
    pub fn inverse(&self, g: &mut Grid<Complex<T>>) {
        self.transform(ParallelContext::global(), g, true);
    }

    /// [`Self::forward`] on an explicit [`ParallelContext`]. Bit-identical
    /// to the default path at every thread count.
    pub fn forward_with(&self, ctx: &ParallelContext, g: &mut Grid<Complex<T>>) {
        self.transform(ctx, g, false);
    }

    /// [`Self::inverse`] on an explicit [`ParallelContext`]. Bit-identical
    /// to the default path at every thread count.
    pub fn inverse_with(&self, ctx: &ParallelContext, g: &mut Grid<Complex<T>>) {
        self.transform(ctx, g, true);
    }

    fn transform(&self, ctx: &ParallelContext, g: &mut Grid<Complex<T>>, inverse: bool) {
        assert_eq!(
            g.dims(),
            (self.width, self.height),
            "grid dimensions must match plan ({}x{})",
            self.width,
            self.height
        );
        let _span = lsopc_trace::span!(if inverse {
            "fft2d.inverse"
        } else {
            "fft2d.forward"
        });
        // The separable transform runs rows-then-columns forward and
        // columns-then-rows inverse. The order is load-bearing: the
        // band-limited paths ([`Self::inverse_band`], [`Self::forward_band`])
        // skip zero columns, and skipping is exactly equivalent to the
        // dense transform only when the dense column pass sees the
        // original (still banded) spectrum, not an intermediate.
        if inverse {
            self.column_pass(ctx, g, true);
            self.row_pass(ctx, g, true);
        } else {
            self.row_pass(ctx, g, false);
            self.column_pass(ctx, g, false);
        }
    }

    /// Transforms every row in parallel. Rows are disjoint slices of the
    /// row-major storage, so scheduling never affects the result.
    fn row_pass(&self, ctx: &ParallelContext, g: &mut Grid<Complex<T>>, inverse: bool) {
        let _span = lsopc_trace::span!("fft2d.row_pass");
        let plan = &self.row_plan;
        let rows_per_chunk = rows_per_chunk(self.height, ctx.threads());
        ctx.par_chunks_mut(g.as_mut_slice(), self.width * rows_per_chunk, |_, band| {
            for row in band.chunks_exact_mut(self.width) {
                if inverse {
                    plan.inverse(row);
                } else {
                    plan.forward(row);
                }
            }
        });
    }

    /// Column pass via transpose so each 1-D FFT is contiguous.
    fn column_pass(&self, ctx: &ParallelContext, g: &mut Grid<Complex<T>>, inverse: bool) {
        let _span = lsopc_trace::span!("fft2d.col_pass");
        let mut t = transpose(ctx, g);
        let plan = &self.col_plan;
        let rows_per_chunk = rows_per_chunk(self.width, ctx.threads());
        ctx.par_chunks_mut(t.as_mut_slice(), self.height * rows_per_chunk, |_, band| {
            for row in band.chunks_exact_mut(self.height) {
                if inverse {
                    plan.inverse(row);
                } else {
                    plan.forward(row);
                }
            }
        });
        transpose_into(ctx, &t, g);
    }

    /// Runs a 1-D column FFT on every listed column: gather each column
    /// into a contiguous buffer, transform all of them in parallel, and
    /// scatter the results back. The per-column arithmetic is identical to
    /// the serial scratch loop, so results are exact at any thread count.
    fn band_column_pass(
        &self,
        ctx: &ParallelContext,
        g: &mut Grid<Complex<T>>,
        cols: &[usize],
        inverse: bool,
    ) {
        if cols.is_empty() {
            return;
        }
        let _span = lsopc_trace::span!("fft2d.band_col_pass");
        for &x in cols {
            assert!(x < self.width, "band column {x} out of range");
        }
        let w = self.width;
        let h = self.height;
        let mut buf = vec![Complex::ZERO; cols.len() * h];
        {
            let src = g.as_slice();
            ctx.par_chunks_mut(&mut buf, h, |i, col| {
                let x = cols[i];
                for (y, c) in col.iter_mut().enumerate() {
                    *c = src[y * w + x];
                }
                if inverse {
                    self.col_plan.inverse(col);
                } else {
                    self.col_plan.forward(col);
                }
            });
        }
        // Scatter back serially: strided writes are memory-bound and cheap
        // next to the transforms above.
        let dst = g.as_mut_slice();
        for (i, col) in buf.chunks_exact(h).enumerate() {
            let x = cols[i];
            for (y, c) in col.iter().enumerate() {
                dst[y * w + x] = *c;
            }
        }
    }

    /// In-place inverse transform of a spectrum that is nonzero only on
    /// the columns listed in `cols` (deduplicated, each `< width`).
    ///
    /// Produces the same result as [`Self::inverse`]: the inverse runs
    /// columns first, a zero column's inverse FFT is identically zero, so
    /// skipping the columns outside `cols` changes nothing. Cost drops
    /// from `W` column FFTs to `|cols|`, and the transpose pair is
    /// replaced by gather/scatter of just those columns — for
    /// band-limited kernel spectra this roughly halves the transform.
    ///
    /// # Panics
    ///
    /// Panics if the grid dimensions differ from the planned size or any
    /// column index is out of range.
    pub fn inverse_band(&self, g: &mut Grid<Complex<T>>, cols: &[usize]) {
        self.inverse_band_with(ParallelContext::global(), g, cols);
    }

    /// [`Self::inverse_band`] on an explicit [`ParallelContext`].
    pub fn inverse_band_with(
        &self,
        ctx: &ParallelContext,
        g: &mut Grid<Complex<T>>,
        cols: &[usize],
    ) {
        assert_eq!(
            g.dims(),
            (self.width, self.height),
            "grid dimensions must match plan ({}x{})",
            self.width,
            self.height
        );
        let _span = lsopc_trace::span!("fft2d.inverse_band");
        self.band_column_pass(ctx, g, cols, true);
        self.row_pass(ctx, g, true);
    }

    /// In-place forward transform evaluated only on the spectrum columns
    /// listed in `cols` (deduplicated, each `< width`).
    ///
    /// On the listed columns the result is identical to [`Self::forward`];
    /// entries in all other columns are **unspecified** (they hold the
    /// row-pass intermediate). Callers that only read a band of the
    /// spectrum — e.g. the sparse kernel-window accumulation in the
    /// gradient — skip `W - |cols|` column FFTs this way.
    ///
    /// # Panics
    ///
    /// Panics if the grid dimensions differ from the planned size or any
    /// column index is out of range.
    pub fn forward_band(&self, g: &mut Grid<Complex<T>>, cols: &[usize]) {
        self.forward_band_with(ParallelContext::global(), g, cols);
    }

    /// [`Self::forward_band`] on an explicit [`ParallelContext`].
    pub fn forward_band_with(
        &self,
        ctx: &ParallelContext,
        g: &mut Grid<Complex<T>>,
        cols: &[usize],
    ) {
        assert_eq!(
            g.dims(),
            (self.width, self.height),
            "grid dimensions must match plan ({}x{})",
            self.width,
            self.height
        );
        let _span = lsopc_trace::span!("fft2d.forward_band");
        self.row_pass(ctx, g, false);
        self.band_column_pass(ctx, g, cols, false);
    }

    /// Widens a real grid to complex and runs the **dense** forward
    /// transform, returning a fresh full-layout complex grid.
    ///
    /// This is a convenience wrapper, *not* a real-input fast path: it
    /// performs exactly the arithmetic of [`Self::forward`] and is
    /// bit-identical to widening manually. Callers that want the ~2×
    /// Hermitian-symmetry saving should use [`crate::RfftPlan`], which
    /// returns a [`crate::HalfSpectrum`] and never materializes the
    /// redundant mirror half (close to, but not bit-identical with, this
    /// path).
    ///
    /// # Panics
    ///
    /// Panics if the grid dimensions differ from the planned size.
    pub fn forward_real(&self, g: &Grid<T>) -> Grid<Complex<T>> {
        let mut c = g.map(|&v| Complex::from_real(v));
        self.forward(&mut c);
        c
    }

    /// Batched [`Self::inverse_band`] over several spectra at once:
    /// `grids[i]` is inverse-transformed assuming it is nonzero only on
    /// `cols[i]`. All listed columns across all grids are gathered into
    /// one buffer and transformed in a single parallel pass, so the pool
    /// is fed `Σ|cols[i]|` independent column FFTs instead of `len(grids)`
    /// separate fan-outs — better load balancing when each kernel's band
    /// alone is narrower than the pool.
    ///
    /// **Bit-identical** to calling [`Self::inverse_band`] on each grid in
    /// order: every column FFT runs the same arithmetic on the same
    /// values, and writes stay per-grid disjoint.
    ///
    /// # Panics
    ///
    /// Panics if `grids` and `cols` lengths differ, any grid's dimensions
    /// differ from the planned size, or any column index is out of range.
    pub fn inverse_band_batch(&self, grids: &mut [Grid<Complex<T>>], cols: &[&[usize]]) {
        self.inverse_band_batch_with(ParallelContext::global(), grids, cols);
    }

    /// [`Self::inverse_band_batch`] on an explicit [`ParallelContext`].
    pub fn inverse_band_batch_with(
        &self,
        ctx: &ParallelContext,
        grids: &mut [Grid<Complex<T>>],
        cols: &[&[usize]],
    ) {
        self.check_batch(grids, cols);
        let _span = lsopc_trace::span!("fft2d.inverse_band_batch");
        self.batched_band_column_pass(ctx, grids, cols, true);
        for g in grids.iter_mut() {
            self.row_pass(ctx, g, true);
        }
    }

    /// Batched [`Self::forward_band`] over several grids at once:
    /// `grids[i]` gets its dense row pass, then only the spectrum columns
    /// in `cols[i]` get the column pass (off-band columns are left
    /// **unspecified**, exactly as in [`Self::forward_band`]).
    ///
    /// **Bit-identical** to calling [`Self::forward_band`] on each grid in
    /// order, for the same reason as [`Self::inverse_band_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `grids` and `cols` lengths differ, any grid's dimensions
    /// differ from the planned size, or any column index is out of range.
    pub fn forward_band_batch(&self, grids: &mut [Grid<Complex<T>>], cols: &[&[usize]]) {
        self.forward_band_batch_with(ParallelContext::global(), grids, cols);
    }

    /// [`Self::forward_band_batch`] on an explicit [`ParallelContext`].
    pub fn forward_band_batch_with(
        &self,
        ctx: &ParallelContext,
        grids: &mut [Grid<Complex<T>>],
        cols: &[&[usize]],
    ) {
        self.check_batch(grids, cols);
        let _span = lsopc_trace::span!("fft2d.forward_band_batch");
        for g in grids.iter_mut() {
            self.row_pass(ctx, g, false);
        }
        self.batched_band_column_pass(ctx, grids, cols, false);
    }

    fn check_batch(&self, grids: &[Grid<Complex<T>>], cols: &[&[usize]]) {
        assert_eq!(
            grids.len(),
            cols.len(),
            "one column list per grid ({} grids, {} lists)",
            grids.len(),
            cols.len()
        );
        for g in grids {
            assert_eq!(
                g.dims(),
                (self.width, self.height),
                "grid dimensions must match plan ({}x{})",
                self.width,
                self.height
            );
        }
    }

    /// The strided multi-grid column pass behind the `*_band_batch`
    /// methods: flatten every `(grid, column)` pair into one work list,
    /// gather/transform the columns in a single parallel pass, and scatter
    /// each back to its grid. Identical per-column arithmetic to
    /// [`Self::band_column_pass`], so batching never changes a bit.
    fn batched_band_column_pass(
        &self,
        ctx: &ParallelContext,
        grids: &mut [Grid<Complex<T>>],
        cols: &[&[usize]],
        inverse: bool,
    ) {
        let pairs: Vec<(usize, usize)> = cols
            .iter()
            .enumerate()
            .flat_map(|(gi, cs)| cs.iter().map(move |&x| (gi, x)))
            .collect();
        if pairs.is_empty() {
            return;
        }
        let _span = lsopc_trace::span!("fft2d.band_col_pass");
        for &(_, x) in &pairs {
            assert!(x < self.width, "band column {x} out of range");
        }
        let w = self.width;
        let h = self.height;
        let mut buf = vec![Complex::ZERO; pairs.len() * h];
        {
            let srcs: Vec<&[Complex<T>]> = grids.iter().map(|g| g.as_slice()).collect();
            ctx.par_chunks_mut(&mut buf, h, |i, col| {
                let (gi, x) = pairs[i];
                let src = srcs[gi];
                for (y, c) in col.iter_mut().enumerate() {
                    *c = src[y * w + x];
                }
                if inverse {
                    self.col_plan.inverse(col);
                } else {
                    self.col_plan.forward(col);
                }
            });
        }
        for (i, col) in buf.chunks_exact(h).enumerate() {
            let (gi, x) = pairs[i];
            let dst = grids[gi].as_mut_slice();
            for (y, c) in col.iter().enumerate() {
                dst[y * w + x] = *c;
            }
        }
    }
}

/// Rows of work per pool chunk: over-decompose ~4× the lane count for
/// load balancing. Chunk size only partitions disjoint writes, so it can
/// depend on the thread count without affecting results.
pub(crate) fn rows_per_chunk(rows: usize, threads: usize) -> usize {
    rows.div_ceil((threads * 4).max(1)).max(1)
}

/// Blocked transpose block size, for cache friendliness on large grids.
const B: usize = 32;

fn transpose<T: Scalar>(ctx: &ParallelContext, g: &Grid<Complex<T>>) -> Grid<Complex<T>> {
    let _span = lsopc_trace::span!("fft2d.transpose");
    let (w, h) = g.dims();
    let mut t = Grid::new(h, w, Complex::ZERO);
    let src = g.as_slice();
    // Each chunk owns a band of B consecutive output rows (input columns);
    // writes are disjoint so the transpose parallelizes freely.
    ctx.par_chunks_mut(t.as_mut_slice(), h * B, |ci, band| {
        let x0 = ci * B;
        let band_rows = band.len() / h;
        for by in (0..h).step_by(B) {
            for (dx, row) in band.chunks_exact_mut(h).enumerate().take(band_rows) {
                let x = x0 + dx;
                for (y, out) in row.iter_mut().enumerate().take((by + B).min(h)).skip(by) {
                    *out = src[y * w + x];
                }
            }
        }
    });
    t
}

fn transpose_into<T: Scalar>(
    ctx: &ParallelContext,
    t: &Grid<Complex<T>>,
    g: &mut Grid<Complex<T>>,
) {
    let _span = lsopc_trace::span!("fft2d.transpose");
    let (w, h) = g.dims();
    let src = t.as_slice();
    ctx.par_chunks_mut(g.as_mut_slice(), w * B, |ci, band| {
        let y0 = ci * B;
        let band_rows = band.len() / w;
        for bx in (0..w).step_by(B) {
            for (dy, row) in band.chunks_exact_mut(w).enumerate().take(band_rows) {
                let y = y0 + dy;
                for (x, out) in row.iter_mut().enumerate().take((bx + B).min(w)).skip(bx) {
                    *out = src[x * h + y];
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_dft2d;
    use lsopc_grid::C64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_grid(w: usize, h: usize, seed: u64) -> Grid<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        Grid::from_fn(w, h, |_, _| {
            C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    fn max_err(a: &Grid<C64>, b: &Grid<C64>) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (*x - *y).norm())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_2d() {
        for &(w, h) in &[(4usize, 4usize), (8, 4), (16, 32)] {
            let fft = Fft2d::<f64>::new(w, h);
            let g = rand_grid(w, h, (w * h) as u64);
            let expected = naive_dft2d(&g, false);
            let mut got = g.clone();
            fft.forward(&mut got);
            assert!(max_err(&got, &expected) < 1e-9, "mismatch at {w}x{h}");
        }
    }

    #[test]
    fn rectangular_roundtrip() {
        let fft = Fft2d::<f64>::new(32, 8);
        let g = rand_grid(32, 8, 9);
        let mut r = g.clone();
        fft.forward(&mut r);
        fft.inverse(&mut r);
        assert!(max_err(&g, &r) < 1e-11);
    }

    #[test]
    fn forward_real_matches_complex_path() {
        let fft = Fft2d::<f64>::new(16, 16);
        let real = Grid::from_fn(16, 16, |x, y| ((x * 7 + y * 3) % 5) as f64);
        let via_real = fft.forward_real(&real);
        let mut via_complex = real.map(|&v| C64::from_real(v));
        fft.forward(&mut via_complex);
        assert!(max_err(&via_real, &via_complex) < 1e-12);
    }

    #[test]
    fn real_input_spectrum_is_hermitian() {
        let fft = Fft2d::<f64>::new(8, 8);
        let real = Grid::from_fn(8, 8, |x, y| (x as f64).sin() + (y as f64).cos());
        let f = fft.forward_real(&real);
        for ky in 0..8 {
            for kx in 0..8 {
                let conj_idx = ((8 - kx) % 8, (8 - ky) % 8);
                assert!((f[(kx, ky)] - f[conj_idx].conj()).norm() < 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "must match plan")]
    fn wrong_size_panics() {
        let fft = Fft2d::<f64>::new(8, 8);
        let mut g = Grid::new(4, 4, C64::ZERO);
        fft.forward(&mut g);
    }

    #[test]
    fn inverse_band_is_exact_on_banded_spectra() {
        let (w, h) = (32, 16);
        let fft = Fft2d::<f64>::new(w, h);
        // Spectrum nonzero only on a wrapped set of columns.
        let cols = [0usize, 1, 2, 30, 31, 7];
        let dense = {
            let noise = rand_grid(w, h, 11);
            Grid::from_fn(w, h, |x, y| {
                if cols.contains(&x) {
                    noise[(x, y)]
                } else {
                    C64::ZERO
                }
            })
        };
        let mut full = dense.clone();
        fft.inverse(&mut full);
        let mut banded = dense;
        fft.inverse_band(&mut banded, &cols);
        // Exactly equal, not merely close: the band path runs the same
        // arithmetic on the same values and skips only zero columns.
        for (a, b) in full.as_slice().iter().zip(banded.as_slice()) {
            assert_eq!(a.re, b.re);
            assert_eq!(a.im, b.im);
        }
    }

    #[test]
    fn forward_band_matches_dense_on_listed_columns() {
        let (w, h) = (16, 32);
        let fft = Fft2d::<f64>::new(w, h);
        let g = rand_grid(w, h, 23);
        let cols = [0usize, 3, 8, 15];
        let mut dense = g.clone();
        fft.forward(&mut dense);
        let mut banded = g;
        fft.forward_band(&mut banded, &cols);
        for &x in &cols {
            for y in 0..h {
                assert_eq!(dense[(x, y)].re, banded[(x, y)].re);
                assert_eq!(dense[(x, y)].im, banded[(x, y)].im);
            }
        }
    }

    #[test]
    fn banded_roundtrip_recovers_band_limited_signal() {
        // forward_band ∘ inverse_band on a band-limited spectrum is the
        // identity on the band.
        let (w, h) = (16, 16);
        let fft = Fft2d::<f64>::new(w, h);
        let cols = [0usize, 1, 14, 15];
        let noise = rand_grid(w, h, 5);
        let spectrum = Grid::from_fn(w, h, |x, y| {
            if cols.contains(&x) {
                noise[(x, y)]
            } else {
                C64::ZERO
            }
        });
        let mut field = spectrum.clone();
        fft.inverse_band(&mut field, &cols);
        fft.forward_band(&mut field, &cols);
        for &x in &cols {
            for y in 0..h {
                assert!((field[(x, y)] - spectrum[(x, y)]).norm() < 1e-12);
            }
        }
    }

    #[test]
    fn degenerate_sizes_roundtrip() {
        // 1×N and N×1 grids: rows_per_chunk and both passes must neither
        // panic nor skip work. Pins the current (correct) behavior.
        for &(w, h) in &[(1usize, 16usize), (16, 1), (1, 1), (2, 1), (1, 2)] {
            let fft = Fft2d::<f64>::new(w, h);
            let g = rand_grid(w, h, (w * 17 + h) as u64);
            let expected = naive_dft2d(&g, false);
            let mut got = g.clone();
            fft.forward(&mut got);
            assert!(max_err(&got, &expected) < 1e-12, "forward at {w}x{h}");
            fft.inverse(&mut got);
            assert!(max_err(&got, &g) < 1e-12, "roundtrip at {w}x{h}");
        }
    }

    #[test]
    fn band_passes_handle_degenerate_inputs() {
        // Empty column list: the column pass is a no-op (the caller
        // asserts the spectrum is zero on unlisted columns), but the row
        // pass must still run — the pinned contract, not a silent skip of
        // the whole transform.
        let fft = Fft2d::<f64>::new(8, 8);
        let mut g = rand_grid(8, 8, 3);
        fft.inverse_band(&mut g, &[]);
        // Row pass ran: rows are transformed even with no columns listed.
        let mut rows_only = rand_grid(8, 8, 3);
        fft.row_pass(ParallelContext::global(), &mut rows_only, true);
        for (a, b) in g.as_slice().iter().zip(rows_only.as_slice()) {
            assert_eq!(a.re, b.re);
            assert_eq!(a.im, b.im);
        }

        // Single column on a 1-wide grid: the only column is 0.
        let fft = Fft2d::<f64>::new(1, 8);
        let spectrum = rand_grid(1, 8, 5);
        let mut full = spectrum.clone();
        fft.inverse(&mut full);
        let mut banded = spectrum;
        fft.inverse_band(&mut banded, &[0]);
        for (a, b) in full.as_slice().iter().zip(banded.as_slice()) {
            assert_eq!(a.re, b.re);
            assert_eq!(a.im, b.im);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn band_column_out_of_range_panics() {
        let fft = Fft2d::<f64>::new(8, 8);
        let mut g = rand_grid(8, 8, 1);
        fft.inverse_band(&mut g, &[8]);
    }

    #[test]
    fn batched_band_passes_are_bit_identical_to_sequential() {
        let (w, h) = (32, 16);
        let fft = Fft2d::<f64>::new(w, h);
        let col_sets: [&[usize]; 4] = [&[0, 1, 30, 31], &[2, 7], &[], &[0, 15, 16]];
        let grids: Vec<Grid<C64>> = (0..4).map(|i| rand_grid(w, h, 100 + i)).collect();

        let mut seq = grids.clone();
        for (g, cols) in seq.iter_mut().zip(&col_sets) {
            fft.inverse_band(g, cols);
        }
        let mut batch = grids.clone();
        fft.inverse_band_batch(&mut batch, &col_sets);
        for (a, b) in seq.iter().zip(&batch) {
            assert_eq!(a.as_slice(), b.as_slice(), "inverse batch differs");
        }

        let mut seq = grids.clone();
        for (g, cols) in seq.iter_mut().zip(&col_sets) {
            fft.forward_band(g, cols);
        }
        let mut batch = grids;
        fft.forward_band_batch(&mut batch, &col_sets);
        // Compare only the specified (listed) columns plus the row-pass
        // intermediate — which is also deterministic, so full equality
        // holds here too.
        for (a, b) in seq.iter().zip(&batch) {
            assert_eq!(a.as_slice(), b.as_slice(), "forward batch differs");
        }
    }

    #[test]
    fn batched_band_pass_with_empty_batch_is_noop() {
        let fft = Fft2d::<f64>::new(8, 8);
        let mut grids: Vec<Grid<C64>> = Vec::new();
        fft.inverse_band_batch(&mut grids, &[]);
        fft.forward_band_batch(&mut grids, &[]);
    }

    #[test]
    #[should_panic(expected = "one column list per grid")]
    fn batched_band_pass_length_mismatch_panics() {
        let fft = Fft2d::<f64>::new(8, 8);
        let mut grids = vec![rand_grid(8, 8, 1)];
        fft.inverse_band_batch(&mut grids, &[]);
    }
}
