//! 1-D radix-2 FFT plans.

use lsopc_grid::{Complex, Scalar};

/// A reusable plan for 1-D FFTs of a fixed power-of-two length.
///
/// The plan precomputes the bit-reversal permutation and twiddle factors so
/// that repeated transforms (the hot loop of lithography simulation) perform
/// no trigonometry. The transform is an iterative decimation-in-time
/// Cooley–Tukey butterfly network operating in place.
///
/// # Example
///
/// ```
/// use lsopc_fft::FftPlan;
/// use lsopc_grid::C64;
///
/// // The FFT of a unit impulse is an all-ones spectrum.
/// let plan = FftPlan::<f64>::new(4);
/// let mut x = vec![C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO];
/// plan.forward(&mut x);
/// for v in &x {
///     assert!((*v - C64::ONE).norm() < 1e-15);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan<T> {
    n: usize,
    rev: Vec<u32>,
    /// Forward twiddles: `tw[k] = exp(-2πi k / n)` for `k < n/2`.
    twiddles: Vec<Complex<T>>,
}

impl<T: Scalar> FftPlan<T> {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n > 0 && n.is_power_of_two(),
            "fft length {n} must be a power of two"
        );
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        let twiddles = (0..n / 2)
            .map(|k| {
                let theta = T::from_f64(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
                Complex::cis(theta)
            })
            .collect();
        Self { n, rev, twiddles }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (length is at least 1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward transform `X[k] = Σ x[n]·exp(-2πi kn/N)`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned length.
    pub fn forward(&self, data: &mut [Complex<T>]) {
        self.transform(data, false);
    }

    /// In-place inverse transform, scaled by `1/N` so that
    /// `inverse(forward(x)) == x`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned length.
    pub fn inverse(&self, data: &mut [Complex<T>]) {
        self.transform(data, true);
        let scale = T::ONE / T::from_usize(self.n);
        for v in data.iter_mut() {
            *v = v.scale(scale);
        }
    }

    /// In-place inverse transform without the `1/N` normalization.
    ///
    /// Useful when the normalization is folded into another constant by the
    /// caller (the accelerated lithography backend does this).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the planned length.
    pub fn inverse_unnormalized(&self, data: &mut [Complex<T>]) {
        self.transform(data, true);
    }

    fn transform(&self, data: &mut [Complex<T>], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n, "buffer length must match plan length {n}");
        if n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Iterative DIT butterflies.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len; // twiddle stride
            let mut base = 0;
            while base < n {
                let mut tw_idx = 0;
                for j in base..base + half {
                    let mut w = self.twiddles[tw_idx];
                    if inverse {
                        w = w.conj();
                    }
                    let u = data[j];
                    let v = data[j + half] * w;
                    data[j] = u + v;
                    data[j + half] = u - v;
                    tw_idx += step;
                }
                base += len;
            }
            len <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_dft;
    use lsopc_grid::C64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).norm())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_dft_across_sizes() {
        for &n in &[1usize, 2, 4, 8, 32, 128, 512] {
            let plan = FftPlan::<f64>::new(n);
            let x = rand_signal(n, n as u64);
            let expected = naive_dft(&x, false);
            let mut got = x.clone();
            plan.forward(&mut got);
            assert!(
                max_err(&got, &expected) < 1e-9 * n as f64,
                "forward mismatch at n={n}"
            );
        }
    }

    #[test]
    fn inverse_is_true_inverse() {
        for &n in &[2usize, 16, 256] {
            let plan = FftPlan::<f64>::new(n);
            let x = rand_signal(n, 7 + n as u64);
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            assert!(max_err(&x, &y) < 1e-11, "roundtrip failed at n={n}");
        }
    }

    #[test]
    fn inverse_unnormalized_differs_by_n() {
        let n = 16;
        let plan = FftPlan::<f64>::new(n);
        let x = rand_signal(n, 3);
        let mut a = x.clone();
        plan.forward(&mut a);
        let mut b = a.clone();
        plan.inverse(&mut a);
        plan.inverse_unnormalized(&mut b);
        for (u, v) in a.iter().zip(&b) {
            assert!((u.scale(n as f64) - *v).norm() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 64;
        let plan = FftPlan::<f64>::new(n);
        let x = rand_signal(n, 11);
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut y = x;
        plan.forward(&mut y);
        let freq_energy: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-10);
    }

    #[test]
    fn constant_signal_transforms_to_dc() {
        let n = 32;
        let plan = FftPlan::<f64>::new(n);
        let mut x = vec![C64::new(2.5, 0.0); n];
        plan.forward(&mut x);
        assert!((x[0] - C64::new(2.5 * n as f64, 0.0)).norm() < 1e-10);
        for v in &x[1..] {
            assert!(v.norm() < 1e-10);
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = FftPlan::<f64>::new(n);
        let a = rand_signal(n, 1);
        let b = rand_signal(n, 2);
        let sum: Vec<C64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let mut fa = a;
        let mut fb = b;
        let mut fsum = sum;
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        plan.forward(&mut fsum);
        let combined: Vec<C64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fsum, &combined) < 1e-10);
    }

    #[test]
    fn f32_plan_has_adequate_precision() {
        let n = 256;
        let plan = FftPlan::<f32>::new(n);
        let x64 = rand_signal(n, 5);
        let mut x32: Vec<Complex<f32>> = x64.iter().map(|v| v.cast()).collect();
        let expected = naive_dft(&x64, false);
        plan.forward(&mut x32);
        let err = x32
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a.cast::<f64>() - *b).norm())
            .fold(0.0, f64::max);
        assert!(err < 1e-3, "f32 error too large: {err}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = FftPlan::<f64>::new(12);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn wrong_buffer_length_panics() {
        let plan = FftPlan::<f64>::new(8);
        let mut buf = vec![C64::ZERO; 4];
        plan.forward(&mut buf);
    }
}
