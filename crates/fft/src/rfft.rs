//! Real-input 2-D FFT with half-spectrum (Hermitian) storage.
//!
//! A real field's DFT is Hermitian-symmetric, `X[−κ] = conj(X[κ])`, so
//! only the columns `kx ≤ w/2` carry information. [`RfftPlan`] exploits
//! that with the classic N/2-point complex trick: each real row of length
//! `w` is packed into a complex vector of length `w/2`
//! (`z[j] = x[2j] + i·x[2j+1]`), transformed with one half-length complex
//! FFT, and untangled into the `w/2 + 1` unique spectrum samples. The
//! column pass then only transforms those `w/2 + 1` columns. Relative to
//! [`crate::Fft2d::forward_real`] — which widens to complex and runs the
//! dense transform — the row pass does half-length FFTs and the column
//! pass touches roughly half the columns.
//!
//! The half spectrum lives in an explicit [`HalfSpectrum`] container
//! (`(w/2 + 1) × h`, row-major); the redundant mirror half is never
//! materialized. [`RfftPlan::inverse`] reconstructs the real field
//! directly from the half layout (inverse column pass, re-tangle, one
//! half-length inverse FFT per row) with the same `1/(W·H)` overall
//! normalization as [`crate::Fft2d::inverse`].
//!
//! Like every transform in this crate, both passes fan out over the
//! shared [`ParallelContext`] pool with disjoint writes and identical
//! per-row arithmetic, so results are bit-identical at any thread count.
//! The rfft path is *not* bit-identical to the dense complex path — the
//! untangling performs the final butterfly stage in a different order —
//! which is why the simulation backends keep it opt-in (see
//! [`rfft_default`]) and the default dense path stays byte-for-byte
//! reproducible.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::fft2d::rows_per_chunk;
use crate::FftPlan;
use lsopc_grid::{Complex, Grid, Scalar};
use lsopc_parallel::ParallelContext;

/// The non-redundant half of a Hermitian 2-D spectrum.
///
/// Stores the `(w/2 + 1) × h` columns `kx ≤ w/2` of the full `w × h` DFT
/// layout, row-major (`ky` outer, `kx` inner). The mirrored half is
/// implied: [`HalfSpectrum::at`] reconstructs any full-layout sample via
/// `X[kx, ky] = conj(X[(w−kx) mod w, (h−ky) mod h])`.
#[derive(Debug, Clone, PartialEq)]
pub struct HalfSpectrum<T: Scalar = f64> {
    width: usize,
    height: usize,
    data: Vec<Complex<T>>,
}

impl<T: Scalar> HalfSpectrum<T> {
    /// Creates an all-zero half spectrum for a full `width x height` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be positive");
        Self {
            width,
            height,
            data: vec![Complex::ZERO; (width / 2 + 1) * height],
        }
    }

    /// Full-grid dimensions `(w, h)` this half spectrum represents.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Stored columns per row: `w/2 + 1`.
    pub fn half_width(&self) -> usize {
        self.width / 2 + 1
    }

    /// The stored samples, row-major over `(w/2 + 1) × h`.
    pub fn as_slice(&self) -> &[Complex<T>] {
        &self.data
    }

    /// Mutable access to the stored samples.
    pub fn as_mut_slice(&mut self) -> &mut [Complex<T>] {
        &mut self.data
    }

    /// The full-layout sample at `(kx, ky)`, reconstructing the mirrored
    /// half by conjugate symmetry.
    ///
    /// # Panics
    ///
    /// Panics if `kx ≥ w` or `ky ≥ h`.
    pub fn at(&self, kx: usize, ky: usize) -> Complex<T> {
        assert!(
            kx < self.width && ky < self.height,
            "({kx},{ky}) out of range for {}x{}",
            self.width,
            self.height
        );
        let hw = self.half_width();
        if kx <= self.width / 2 {
            self.data[ky * hw + kx]
        } else {
            let mx = self.width - kx;
            let my = (self.height - ky) % self.height;
            self.data[my * hw + mx].conj()
        }
    }

    /// Sets the stored sample at `(kx, ky)`, `kx ≤ w/2`.
    ///
    /// # Panics
    ///
    /// Panics if `kx > w/2` or `ky ≥ h`.
    pub fn set(&mut self, kx: usize, ky: usize, v: Complex<T>) {
        assert!(
            kx <= self.width / 2 && ky < self.height,
            "({kx},{ky}) not a stored sample of {}x{}",
            self.width,
            self.height
        );
        let hw = self.half_width();
        self.data[ky * hw + kx] = v;
    }

    /// Adds a full-layout spectrum contribution `F[kx, ky] += v` as its
    /// Hermitian projection `H[κ] = (F[κ] + conj(F[−κ]))/2`.
    ///
    /// Because `Re(IFFT(F)) = IFFT(H(F))` for any `F`, accumulating every
    /// sample of a full spectrum this way and running [`RfftPlan::inverse`]
    /// yields exactly the real part the dense inverse would produce —
    /// without materializing the full grid. Self-conjugate bins (e.g.
    /// `(0,0)`, `(w/2, 0)`) land on one entry twice and sum to `Re(v)`,
    /// which is the correct projection.
    ///
    /// # Panics
    ///
    /// Panics if `kx ≥ w` or `ky ≥ h`.
    pub fn accumulate_hermitian(&mut self, kx: usize, ky: usize, v: Complex<T>) {
        assert!(
            kx < self.width && ky < self.height,
            "({kx},{ky}) out of range for {}x{}",
            self.width,
            self.height
        );
        let hw = self.half_width();
        let half = T::from_f64(0.5);
        if kx <= self.width / 2 {
            self.data[ky * hw + kx] += v.scale(half);
        }
        let mx = (self.width - kx) % self.width;
        let my = (self.height - ky) % self.height;
        if mx <= self.width / 2 {
            self.data[my * hw + mx] += v.conj().scale(half);
        }
    }

    /// Expands to the full `w × h` dense layout via conjugate symmetry.
    pub fn to_full(&self) -> Grid<Complex<T>> {
        Grid::from_fn(self.width, self.height, |kx, ky| self.at(kx, ky))
    }

    /// Projects a full spectrum onto its Hermitian half,
    /// `H[κ] = (F[κ] + conj(F[−κ]))/2`. For an already-Hermitian `F`
    /// (e.g. the forward transform of a real field) this is the exact
    /// half-layout restriction.
    pub fn from_full_hermitian(full: &Grid<Complex<T>>) -> Self {
        let (w, h) = full.dims();
        let mut s = Self::new(w, h);
        let hw = s.half_width();
        let half = T::from_f64(0.5);
        for ky in 0..h {
            for (kx, out) in s.data[ky * hw..(ky + 1) * hw].iter_mut().enumerate() {
                let a = full[(kx, ky)];
                let b = full[((w - kx) % w, (h - ky) % h)].conj();
                *out = (a + b).scale(half);
            }
        }
        s
    }
}

/// A reusable real-input 2-D FFT for grids of a fixed power-of-two size.
///
/// See the [module docs](self) for the algorithm. The forward transform
/// is unnormalized (matching [`crate::Fft2d::forward`]); the inverse
/// carries the full `1/(W·H)` normalization so that
/// `inverse(forward(x)) == x`.
///
/// # Example
///
/// ```
/// use lsopc_fft::RfftPlan;
/// use lsopc_grid::Grid;
///
/// let plan = RfftPlan::<f64>::new(8, 8);
/// let g = Grid::from_fn(8, 8, |x, y| (x * 3 + y) as f64);
/// let spec = plan.forward(&g);
/// assert_eq!(spec.half_width(), 5); // only kx <= 4 is stored
/// let back = plan.inverse(&spec);
/// for (a, b) in g.as_slice().iter().zip(back.as_slice()) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RfftPlan<T> {
    width: usize,
    height: usize,
    /// Half-length row plan (`w/2` points); `None` when `w == 1` and the
    /// row pass is the identity.
    half_plan: Option<FftPlan<T>>,
    col_plan: FftPlan<T>,
    /// `exp(-2πi·k/w)` for `k = 0..=w/2` — the untangling twiddles.
    twiddles: Vec<Complex<T>>,
}

impl<T: Scalar> RfftPlan<T> {
    /// Creates a real-input 2-D plan for `width x height` grids.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or not a power of two.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width > 0 && width.is_power_of_two(),
            "width must be a power of two, got {width}"
        );
        let twiddles = (0..=width / 2)
            .map(|k| {
                let angle = -2.0 * std::f64::consts::PI * k as f64 / width as f64;
                Complex::cis(T::from_f64(angle))
            })
            .collect();
        Self {
            width,
            height,
            half_plan: (width > 1).then(|| FftPlan::new(width / 2)),
            col_plan: FftPlan::new(height),
            twiddles,
        }
    }

    /// Planned grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Planned grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Forward transform of a real grid into the half-spectrum layout.
    ///
    /// # Panics
    ///
    /// Panics if the grid dimensions differ from the planned size.
    pub fn forward(&self, g: &Grid<T>) -> HalfSpectrum<T> {
        self.forward_with(ParallelContext::global(), g)
    }

    /// [`Self::forward`] on an explicit [`ParallelContext`]. Bit-identical
    /// to the default path at every thread count.
    pub fn forward_with(&self, ctx: &ParallelContext, g: &Grid<T>) -> HalfSpectrum<T> {
        assert_eq!(
            g.dims(),
            (self.width, self.height),
            "grid dimensions must match plan ({}x{})",
            self.width,
            self.height
        );
        let _span = lsopc_trace::span!("fft2d.rfft.forward");
        let mut spec = HalfSpectrum::new(self.width, self.height);
        self.real_row_pass(ctx, g, &mut spec);
        self.half_column_pass(ctx, &mut spec, false);
        spec
    }

    /// Inverse transform back to a real grid, scaled by `1/(W·H)`.
    ///
    /// # Panics
    ///
    /// Panics if the spectrum dimensions differ from the planned size.
    pub fn inverse(&self, spec: &HalfSpectrum<T>) -> Grid<T> {
        self.inverse_with(ParallelContext::global(), spec)
    }

    /// [`Self::inverse`] on an explicit [`ParallelContext`]. Bit-identical
    /// to the default path at every thread count.
    pub fn inverse_with(&self, ctx: &ParallelContext, spec: &HalfSpectrum<T>) -> Grid<T> {
        assert_eq!(
            spec.dims(),
            (self.width, self.height),
            "spectrum dimensions must match plan ({}x{})",
            self.width,
            self.height
        );
        let _span = lsopc_trace::span!("fft2d.rfft.inverse");
        let mut tmp = spec.clone();
        self.half_column_pass(ctx, &mut tmp, true);
        let mut out = Grid::new(self.width, self.height, T::ZERO);
        self.real_row_inverse_pass(ctx, &tmp, &mut out);
        out
    }

    /// Forward row pass: every real row packed, half-length transformed
    /// and untangled into its `w/2 + 1` unique samples. Rows are disjoint
    /// output slices, so scheduling never affects the result.
    fn real_row_pass(&self, ctx: &ParallelContext, g: &Grid<T>, spec: &mut HalfSpectrum<T>) {
        let _span = lsopc_trace::span!("fft2d.rfft.row_pass");
        let (w, hw) = (self.width, spec.half_width());
        let rpc = rows_per_chunk(self.height, ctx.threads());
        let src = g.as_slice();
        ctx.par_chunks_mut(spec.as_mut_slice(), hw * rpc, |ci, band| {
            let mut scratch = vec![Complex::<T>::ZERO; w / 2];
            for (dy, out_row) in band.chunks_exact_mut(hw).enumerate() {
                let y = ci * rpc + dy;
                self.untangle_row(&src[y * w..(y + 1) * w], out_row, &mut scratch);
            }
        });
    }

    /// One row: pack `z[j] = x[2j] + i·x[2j+1]`, transform at `w/2`
    /// points, untangle even/odd sub-spectra into `X[0..=w/2]`.
    fn untangle_row(&self, row: &[T], out: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        if self.width == 1 {
            out[0] = Complex::from_real(row[0]);
            return;
        }
        let m = self.width / 2;
        for (z, pair) in scratch.iter_mut().zip(row.chunks_exact(2)) {
            *z = Complex::new(pair[0], pair[1]);
        }
        let plan = self
            .half_plan
            .as_ref()
            .unwrap_or_else(|| unreachable!("half plan exists whenever width > 1"));
        plan.forward(scratch);
        let half = T::from_f64(0.5);
        for (k, out_k) in out.iter_mut().enumerate() {
            // Z[k] mixes the even (E) and odd (O) sub-spectra:
            // E[k] = (Z[k] + conj(Z[M−k]))/2, O[k] = −i(Z[k] − conj(Z[M−k]))/2,
            // X[k] = E[k] + e^{−2πik/w}·O[k]  (indices mod M).
            let a = scratch[k % m];
            let b = scratch[(m - k % m) % m].conj();
            let e = (a + b).scale(half);
            let d = a - b;
            let o = Complex::new(d.im, -d.re).scale(half);
            *out_k = e + self.twiddles[k] * o;
        }
    }

    /// Inverse row pass: re-tangle each half row into the `w/2`-point
    /// packed spectrum and inverse-transform it straight into the real
    /// output row.
    fn real_row_inverse_pass(
        &self,
        ctx: &ParallelContext,
        spec: &HalfSpectrum<T>,
        out: &mut Grid<T>,
    ) {
        let _span = lsopc_trace::span!("fft2d.rfft.row_pass");
        let (w, hw) = (self.width, spec.half_width());
        let rpc = rows_per_chunk(self.height, ctx.threads());
        let src = spec.as_slice();
        ctx.par_chunks_mut(out.as_mut_slice(), w * rpc, |ci, band| {
            let mut scratch = vec![Complex::<T>::ZERO; w / 2];
            for (dy, out_row) in band.chunks_exact_mut(w).enumerate() {
                let y = ci * rpc + dy;
                self.retangle_row(&src[y * hw..(y + 1) * hw], out_row, &mut scratch);
            }
        });
    }

    /// One inverse row: rebuild `Z[k] = E[k] + i·O[k]` from the half
    /// spectrum and run the half-length inverse (its `1/M` scaling is the
    /// exact row normalization — `Z` is the true `M`-point spectrum of the
    /// packed row).
    fn retangle_row(&self, spec_row: &[Complex<T>], out: &mut [T], scratch: &mut [Complex<T>]) {
        if self.width == 1 {
            out[0] = spec_row[0].re;
            return;
        }
        let m = self.width / 2;
        let half = T::from_f64(0.5);
        for (k, z) in scratch.iter_mut().enumerate() {
            let a = spec_row[k];
            let b = spec_row[m - k].conj();
            let e = (a + b).scale(half);
            let d = (a - b).scale(half);
            let o = self.twiddles[k].conj() * d;
            *z = e + Complex::new(-o.im, o.re);
        }
        let plan = self
            .half_plan
            .as_ref()
            .unwrap_or_else(|| unreachable!("half plan exists whenever width > 1"));
        plan.inverse(scratch);
        for (pair, z) in out.chunks_exact_mut(2).zip(scratch.iter()) {
            pair[0] = z.re;
            pair[1] = z.im;
        }
    }

    /// Column pass over the `w/2 + 1` stored columns: gather each into a
    /// contiguous buffer, transform all in parallel, scatter back — the
    /// same scheme as the dense plan's band column pass.
    fn half_column_pass(&self, ctx: &ParallelContext, spec: &mut HalfSpectrum<T>, inverse: bool) {
        let _span = lsopc_trace::span!("fft2d.rfft.col_pass");
        let hw = spec.half_width();
        let h = self.height;
        let mut buf = vec![Complex::<T>::ZERO; hw * h];
        {
            let src = spec.as_slice();
            ctx.par_chunks_mut(&mut buf, h, |x, col| {
                for (y, c) in col.iter_mut().enumerate() {
                    *c = src[y * hw + x];
                }
                if inverse {
                    self.col_plan.inverse(col);
                } else {
                    self.col_plan.forward(col);
                }
            });
        }
        let dst = spec.as_mut_slice();
        for (x, col) in buf.chunks_exact(h).enumerate() {
            for (y, c) in col.iter().enumerate() {
                dst[y * hw + x] = *c;
            }
        }
    }
}

/// Process-wide default for routing real transforms through the rfft
/// path: `0` unset (fall back to the `LSOPC_RFFT` environment variable),
/// `1` on, `2` off.
static RFFT_DEFAULT: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide rfft routing default (overrides `LSOPC_RFFT`).
///
/// Backends consult this only when no per-backend override is set (e.g.
/// `with_rfft` in `lsopc-litho`); the CLI's `--rfft` flag lands here.
/// Tests should prefer per-backend overrides: this is global state shared
/// by every thread in the process.
pub fn set_rfft_default(enabled: bool) {
    RFFT_DEFAULT.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

/// Whether real transforms should route through the rfft path by default.
///
/// Resolution order: [`set_rfft_default`] if called, else the
/// `LSOPC_RFFT` environment variable (`1`/`true`/`on`/`yes` enable),
/// else off — the dense complex path stays the byte-for-byte
/// reproducible default.
pub fn rfft_default() -> bool {
    match RFFT_DEFAULT.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => *ENV_DEFAULT,
    }
}

static ENV_DEFAULT: std::sync::LazyLock<bool> =
    std::sync::LazyLock::new(|| match std::env::var("LSOPC_RFFT").as_deref() {
        Ok("1" | "true" | "on" | "yes") => true,
        Ok("0" | "false" | "off" | "no" | "") | Err(_) => false,
        Ok(other) => {
            lsopc_trace::warn(
                "lsopc-fft",
                &format!("unrecognized LSOPC_RFFT value {other:?}; rfft stays off"),
            );
            false
        }
    });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive_dft2d, Fft2d};
    use lsopc_grid::C64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_real(w: usize, h: usize, seed: u64) -> Grid<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        Grid::from_fn(w, h, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn max_cerr(a: &Grid<C64>, b: &Grid<C64>) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (*x - *y).norm())
            .fold(0.0, f64::max)
    }

    #[test]
    fn forward_matches_naive_dft() {
        for &(w, h) in &[(4usize, 4usize), (8, 4), (16, 32), (2, 8), (64, 2)] {
            let plan = RfftPlan::<f64>::new(w, h);
            let g = rand_real(w, h, (w * 31 + h) as u64);
            let spec = plan.forward(&g).to_full();
            let expected = naive_dft2d(&g.map(|&v| C64::from_real(v)), false);
            assert!(
                max_cerr(&spec, &expected) < 1e-9,
                "mismatch at {w}x{h}: {}",
                max_cerr(&spec, &expected)
            );
        }
    }

    #[test]
    fn roundtrip_recovers_input() {
        for &(w, h) in &[(4usize, 4usize), (32, 8), (8, 32), (128, 128)] {
            let plan = RfftPlan::<f64>::new(w, h);
            let g = rand_real(w, h, (w + h * 7) as u64);
            let back = plan.inverse(&plan.forward(&g));
            let err = g
                .as_slice()
                .iter()
                .zip(back.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-11, "roundtrip error {err} at {w}x{h}");
        }
    }

    #[test]
    fn degenerate_sizes_transform_correctly() {
        // 1×N, N×1 and 1×1 all exercise the w == 1 / h == 1 special
        // cases; each must still match the dense complex transform.
        for &(w, h) in &[(1usize, 8usize), (8, 1), (1, 1), (2, 1), (1, 2)] {
            let plan = RfftPlan::<f64>::new(w, h);
            let fft = Fft2d::<f64>::new(w, h);
            let g = rand_real(w, h, (w * 13 + h * 5) as u64);
            let spec = plan.forward(&g).to_full();
            let mut dense = g.map(|&v| C64::from_real(v));
            fft.forward(&mut dense);
            assert!(max_cerr(&spec, &dense) < 1e-12, "forward at {w}x{h}");
            let back = plan.inverse(&plan.forward(&g));
            for (a, b) in g.as_slice().iter().zip(back.as_slice()) {
                assert!((a - b).abs() < 1e-12, "roundtrip at {w}x{h}");
            }
        }
    }

    #[test]
    fn inverse_of_hermitian_projection_is_real_part() {
        // For an arbitrary (non-Hermitian) full spectrum F,
        // IFFT(project(F)) == Re(IFFT(F)).
        let (w, h) = (16, 8);
        let mut rng = StdRng::seed_from_u64(99);
        let full = Grid::from_fn(w, h, |_, _| {
            C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let plan = RfftPlan::<f64>::new(w, h);
        let fft = Fft2d::<f64>::new(w, h);
        let via_half = plan.inverse(&HalfSpectrum::from_full_hermitian(&full));
        let mut dense = full.clone();
        fft.inverse(&mut dense);
        for (a, b) in via_half.as_slice().iter().zip(dense.as_slice()) {
            assert!((a - b.re).abs() < 1e-12);
        }
    }

    #[test]
    fn accumulate_hermitian_matches_projection() {
        let (w, h) = (8, 8);
        let mut rng = StdRng::seed_from_u64(7);
        let full = Grid::from_fn(w, h, |_, _| {
            C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let mut acc = HalfSpectrum::<f64>::new(w, h);
        for (kx, ky, &v) in full.iter_coords() {
            acc.accumulate_hermitian(kx, ky, v);
        }
        let proj = HalfSpectrum::from_full_hermitian(&full);
        for (a, b) in acc.as_slice().iter().zip(proj.as_slice()) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn at_reconstructs_mirror_samples() {
        let (w, h) = (8, 4);
        let plan = RfftPlan::<f64>::new(w, h);
        let spec = plan.forward(&rand_real(w, h, 3));
        let full = spec.to_full();
        for ky in 0..h {
            for kx in 0..w {
                let mirror = full[((w - kx) % w, (h - ky) % h)].conj();
                assert!((full[(kx, ky)] - mirror).norm() < 1e-12, "not Hermitian");
                assert_eq!(spec.at(kx, ky), full[(kx, ky)]);
            }
        }
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let (w, h) = (64, 32);
        let plan = RfftPlan::<f64>::new(w, h);
        let g = rand_real(w, h, 42);
        let ctx1 = ParallelContext::new(1);
        let ctx4 = ParallelContext::new(4);
        let s1 = plan.forward_with(&ctx1, &g);
        let s4 = plan.forward_with(&ctx4, &g);
        assert_eq!(s1.as_slice(), s4.as_slice());
        let b1 = plan.inverse_with(&ctx1, &s1);
        let b4 = plan.inverse_with(&ctx4, &s4);
        assert_eq!(b1.as_slice(), b4.as_slice());
    }

    #[test]
    #[should_panic(expected = "must match plan")]
    fn wrong_size_panics() {
        let plan = RfftPlan::<f64>::new(8, 8);
        let _ = plan.forward(&Grid::new(4, 4, 0.0));
    }

    #[test]
    fn default_is_off_and_override_wins() {
        // Note: other tests must not toggle the global default; backends
        // use per-instance overrides precisely so tests stay isolated.
        assert!(!rfft_default(), "dense path is the default");
    }

    #[test]
    fn f32_forward_tracks_f64() {
        let (w, h) = (32, 32);
        let g = rand_real(w, h, 17);
        let g32 = g.map(|&v| v as f32);
        let s64 = RfftPlan::<f64>::new(w, h).forward(&g);
        let s32 = RfftPlan::<f32>::new(w, h).forward(&g32);
        for (a, b) in s64.as_slice().iter().zip(s32.as_slice()) {
            assert!((a.re - f64::from(b.re)).abs() < 1e-3);
            assert!((a.im - f64::from(b.im)).abs() < 1e-3);
        }
    }
}
