//! Spectral (Fourier) resampling of periodic fields.
//!
//! Aerial images are band-limited, so a simulation computed on a coarse
//! grid can be rendered at any finer resolution *exactly* by zero-padding
//! its spectrum — the same identity the accelerated backend exploits
//! internally. [`upsample_spectral`] exposes it as a utility (e.g. for
//! writing 1 nm/px figures from an 8 nm/px simulation).

use crate::wrap_index;
use lsopc_grid::{Complex, Grid, Scalar};

/// Upsamples a real periodic field by an integer factor via spectral
/// zero-padding.
///
/// Exact for band-limited fields (the output interpolates the input at
/// the original sample points); fields with content at the Nyquist
/// frequency have that bin split symmetrically so the output stays real.
/// Non-band-limited inputs (e.g. binary masks) will show Gibbs ringing —
/// that is the correct spectral interpolation, not an error.
///
/// Generic over the scalar precision `T` (`f32`/`f64`); both the small
/// and the upsampled transform run at `T` through the shared plan cache.
/// The dense complex path is used deliberately — this is a one-shot
/// utility, not a hot loop — so the `f64` instantiation is bit-identical
/// to what it produced before the precision genericization.
///
/// # Panics
///
/// Panics if `factor` is zero, a dimension is not a power of two (FFT
/// requirement), or `dimension * factor` overflows `usize`.
///
/// # Example
///
/// ```
/// use lsopc_fft::upsample_spectral;
/// use lsopc_grid::Grid;
///
/// // A smooth band-limited field: one cosine period across the grid.
/// let n = 16;
/// let g = Grid::from_fn(n, n, |x, _| {
///     (2.0 * std::f64::consts::PI * x as f64 / n as f64).cos()
/// });
/// let up = upsample_spectral(&g, 4);
/// assert_eq!(up.dims(), (64, 64));
/// // The original samples are reproduced exactly.
/// assert!((up[(4 * 3, 0)] - g[(3, 0)]).abs() < 1e-12);
/// ```
pub fn upsample_spectral<T: Scalar>(g: &Grid<T>, factor: usize) -> Grid<T> {
    assert!(factor > 0, "factor must be positive");
    if factor == 1 {
        return g.clone();
    }
    let (w, h) = g.dims();
    let big_w = w
        .checked_mul(factor)
        .unwrap_or_else(|| panic!("upsampled width {w} * {factor} overflows usize"));
    let big_h = h
        .checked_mul(factor)
        .unwrap_or_else(|| panic!("upsampled height {h} * {factor} overflows usize"));
    let fft_small = crate::plan_t::<T>(w, h);
    let fft_big = crate::plan_t::<T>(big_w, big_h);
    let spectrum = fft_small.forward_real(g);

    let mut big = Grid::new(big_w, big_h, Complex::<T>::ZERO);
    // Copy centred frequencies; split the Nyquist row/column so the
    // padded spectrum keeps Hermitian symmetry (real output).
    let half_w = w as i64 / 2;
    let half_h = h as i64 / 2;
    let half = T::from_f64(0.5);
    for ky in -half_h..=half_h {
        for kx in -half_w..=half_w {
            let src = (wrap_index(kx, w), wrap_index(ky, h));
            let mut v = spectrum[src];
            let mut weight = T::ONE;
            if kx.abs() == half_w && w % 2 == 0 {
                weight *= half;
            }
            if ky.abs() == half_h && h % 2 == 0 {
                weight *= half;
            }
            if weight != T::ONE {
                v = v.scale(weight);
            }
            let dst = (wrap_index(kx, big_w), wrap_index(ky, big_h));
            big[dst] += v;
        }
    }
    let scale = T::from_usize(factor * factor);
    for v in big.as_mut_slice() {
        *v = v.scale(scale);
    }
    fft_big.inverse(&mut big);
    big.map(|v| v.re)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_field_stays_constant() {
        let g = Grid::new(8, 8, 2.5);
        let up = upsample_spectral(&g, 4);
        for (_, _, &v) in up.iter_coords() {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn factor_one_is_identity() {
        let g = Grid::from_fn(8, 8, |x, y| (x * 3 + y) as f64);
        assert_eq!(upsample_spectral(&g, 1), g);
    }

    #[test]
    fn band_limited_field_interpolates_exactly() {
        // Two low-frequency modes, well below Nyquist.
        let n = 16;
        let f = |x: f64, y: f64| {
            (2.0 * std::f64::consts::PI * 2.0 * x).cos()
                + 0.5 * (2.0 * std::f64::consts::PI * 3.0 * y).sin()
        };
        let g = Grid::from_fn(n, n, |x, y| f(x as f64 / n as f64, y as f64 / n as f64));
        let factor = 4;
        let up = upsample_spectral(&g, factor);
        // At every fine sample, the analytic value is reproduced.
        let big = n * factor;
        for y in 0..big {
            for x in 0..big {
                let expected = f(x as f64 / big as f64, y as f64 / big as f64);
                assert!(
                    (up[(x, y)] - expected).abs() < 1e-10,
                    "({x},{y}): {} vs {expected}",
                    up[(x, y)]
                );
            }
        }
    }

    #[test]
    fn output_is_real_even_with_nyquist_content() {
        // Alternating field = pure Nyquist mode; the split keeps the
        // upsampled output real and symmetric.
        let g = Grid::from_fn(8, 8, |x, y| if (x + y) % 2 == 0 { 1.0 } else { -1.0 });
        let up = upsample_spectral(&g, 2);
        // Original samples preserved.
        for y in 0..8 {
            for x in 0..8 {
                assert!((up[(2 * x, 2 * y)] - g[(x, y)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mean_is_preserved() {
        let g = Grid::from_fn(16, 16, |x, y| ((x * 7 + y * 13) % 5) as f64);
        let up = upsample_spectral(&g, 4);
        let mean_in = g.sum() / g.len() as f64;
        let mean_out = up.sum() / up.len() as f64;
        assert!((mean_in - mean_out).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_panics() {
        let _ = upsample_spectral(&Grid::new(4, 4, 0.0), 0);
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn pathological_factor_overflow_panics_cleanly() {
        let _ = upsample_spectral(&Grid::new(8, 8, 0.0), usize::MAX / 2);
    }

    #[test]
    fn f32_instantiation_tracks_f64() {
        let n = 16;
        let g64 = Grid::from_fn(n, n, |x, _| {
            (2.0 * std::f64::consts::PI * x as f64 / n as f64).cos()
        });
        let g32 = g64.map(|&v| v as f32);
        let up64 = upsample_spectral(&g64, 2);
        let up32 = upsample_spectral(&g32, 2);
        assert_eq!(up32.dims(), up64.dims());
        for (a, b) in up64.as_slice().iter().zip(up32.as_slice()) {
            assert!((a - f64::from(*b)).abs() < 1e-5);
        }
    }
}
