//! Spectral (Fourier) resampling of periodic fields.
//!
//! Aerial images are band-limited, so a simulation computed on a coarse
//! grid can be rendered at any finer resolution *exactly* by zero-padding
//! its spectrum — the same identity the accelerated backend exploits
//! internally. [`upsample_spectral`] exposes it as a utility (e.g. for
//! writing 1 nm/px figures from an 8 nm/px simulation).

use crate::wrap_index;
use lsopc_grid::{Grid, C64};

/// Upsamples a real periodic field by an integer factor via spectral
/// zero-padding.
///
/// Exact for band-limited fields (the output interpolates the input at
/// the original sample points); fields with content at the Nyquist
/// frequency have that bin split symmetrically so the output stays real.
/// Non-band-limited inputs (e.g. binary masks) will show Gibbs ringing —
/// that is the correct spectral interpolation, not an error.
///
/// # Panics
///
/// Panics if `factor` is zero, or a dimension is not a power of two (FFT
/// requirement).
///
/// # Example
///
/// ```
/// use lsopc_fft::upsample_spectral;
/// use lsopc_grid::Grid;
///
/// // A smooth band-limited field: one cosine period across the grid.
/// let n = 16;
/// let g = Grid::from_fn(n, n, |x, _| {
///     (2.0 * std::f64::consts::PI * x as f64 / n as f64).cos()
/// });
/// let up = upsample_spectral(&g, 4);
/// assert_eq!(up.dims(), (64, 64));
/// // The original samples are reproduced exactly.
/// assert!((up[(4 * 3, 0)] - g[(3, 0)]).abs() < 1e-12);
/// ```
pub fn upsample_spectral(g: &Grid<f64>, factor: usize) -> Grid<f64> {
    assert!(factor > 0, "factor must be positive");
    if factor == 1 {
        return g.clone();
    }
    let (w, h) = g.dims();
    let (big_w, big_h) = (w * factor, h * factor);
    let fft_small = crate::plan(w, h);
    let fft_big = crate::plan(big_w, big_h);
    let spectrum = fft_small.forward_real(g);

    let mut big = Grid::new(big_w, big_h, C64::ZERO);
    // Copy centred frequencies; split the Nyquist row/column so the
    // padded spectrum keeps Hermitian symmetry (real output).
    let half_w = w as i64 / 2;
    let half_h = h as i64 / 2;
    for ky in -half_h..=half_h {
        for kx in -half_w..=half_w {
            let src = (wrap_index(kx, w), wrap_index(ky, h));
            let mut v = spectrum[src];
            let mut weight = 1.0;
            if kx.abs() == half_w && w % 2 == 0 {
                weight *= 0.5;
            }
            if ky.abs() == half_h && h % 2 == 0 {
                weight *= 0.5;
            }
            if weight != 1.0 {
                v = v.scale(weight);
            }
            let dst = (wrap_index(kx, big_w), wrap_index(ky, big_h));
            big[dst] += v;
        }
    }
    let scale = (factor * factor) as f64;
    for v in big.as_mut_slice() {
        *v = v.scale(scale);
    }
    fft_big.inverse(&mut big);
    big.map(|v| v.re)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_field_stays_constant() {
        let g = Grid::new(8, 8, 2.5);
        let up = upsample_spectral(&g, 4);
        for (_, _, &v) in up.iter_coords() {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn factor_one_is_identity() {
        let g = Grid::from_fn(8, 8, |x, y| (x * 3 + y) as f64);
        assert_eq!(upsample_spectral(&g, 1), g);
    }

    #[test]
    fn band_limited_field_interpolates_exactly() {
        // Two low-frequency modes, well below Nyquist.
        let n = 16;
        let f = |x: f64, y: f64| {
            (2.0 * std::f64::consts::PI * 2.0 * x).cos()
                + 0.5 * (2.0 * std::f64::consts::PI * 3.0 * y).sin()
        };
        let g = Grid::from_fn(n, n, |x, y| f(x as f64 / n as f64, y as f64 / n as f64));
        let factor = 4;
        let up = upsample_spectral(&g, factor);
        // At every fine sample, the analytic value is reproduced.
        let big = n * factor;
        for y in 0..big {
            for x in 0..big {
                let expected = f(x as f64 / big as f64, y as f64 / big as f64);
                assert!(
                    (up[(x, y)] - expected).abs() < 1e-10,
                    "({x},{y}): {} vs {expected}",
                    up[(x, y)]
                );
            }
        }
    }

    #[test]
    fn output_is_real_even_with_nyquist_content() {
        // Alternating field = pure Nyquist mode; the split keeps the
        // upsampled output real and symmetric.
        let g = Grid::from_fn(8, 8, |x, y| if (x + y) % 2 == 0 { 1.0 } else { -1.0 });
        let up = upsample_spectral(&g, 2);
        // Original samples preserved.
        for y in 0..8 {
            for x in 0..8 {
                assert!((up[(2 * x, 2 * y)] - g[(x, y)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mean_is_preserved() {
        let g = Grid::from_fn(16, 16, |x, y| ((x * 7 + y * 13) % 5) as f64);
        let up = upsample_spectral(&g, 4);
        let mean_in = g.sum() / g.len() as f64;
        let mean_out = up.sum() / up.len() as f64;
        assert!((mean_in - mean_out).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_panics() {
        let _ = upsample_spectral(&Grid::new(4, 4, 0.0), 0);
    }
}
