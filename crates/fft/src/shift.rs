//! `fftshift`-style index utilities for centred spectra.
//!
//! The optics crate stores kernel spectra on small centred windows (DC in
//! the middle); the FFT works with DC at index 0. These helpers convert
//! between the two layouts.

use lsopc_grid::Grid;

/// Wraps a signed frequency index onto `[0, n)` (DFT bin layout).
///
/// # Example
///
/// ```
/// use lsopc_fft::wrap_index;
/// assert_eq!(wrap_index(-1, 8), 7);
/// assert_eq!(wrap_index(3, 8), 3);
/// ```
#[inline]
pub fn wrap_index(k: i64, n: usize) -> usize {
    let n = n as i64;
    (((k % n) + n) % n) as usize
}

/// Moves DC from index 0 to the centre of the grid (`fftshift`).
///
/// For even dimensions this is its own inverse; for general dimensions use
/// [`ifftshift`] to undo it.
pub fn fftshift<T: Copy>(g: &Grid<T>) -> Grid<T> {
    let (w, h) = g.dims();
    Grid::from_fn(w, h, |x, y| {
        let sx = (x + w.div_ceil(2)) % w;
        let sy = (y + h.div_ceil(2)) % h;
        g[(sx, sy)]
    })
}

/// Moves DC from the centre back to index 0 (inverse of [`fftshift`]).
pub fn ifftshift<T: Copy>(g: &Grid<T>) -> Grid<T> {
    let (w, h) = g.dims();
    Grid::from_fn(w, h, |x, y| {
        let sx = (x + w - w.div_ceil(2) + w) % w;
        let sy = (y + h - h.div_ceil(2) + h) % h;
        // Equivalent to indexing with x - floor((w+1)/2) wrapped.
        g[(sx % w, sy % h)]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_negative_and_positive() {
        assert_eq!(wrap_index(0, 4), 0);
        assert_eq!(wrap_index(-1, 4), 3);
        assert_eq!(wrap_index(-4, 4), 0);
        assert_eq!(wrap_index(5, 4), 1);
    }

    #[test]
    fn fftshift_moves_dc_to_center_even() {
        let mut g = Grid::new(4, 4, 0);
        g[(0, 0)] = 7;
        let s = fftshift(&g);
        assert_eq!(s[(2, 2)], 7);
    }

    #[test]
    fn fftshift_moves_dc_to_center_odd() {
        let mut g = Grid::new(5, 5, 0);
        g[(0, 0)] = 7;
        let s = fftshift(&g);
        assert_eq!(s[(2, 2)], 7);
    }

    #[test]
    fn shift_roundtrip_even_and_odd() {
        for &(w, h) in &[(4usize, 4usize), (5, 5), (4, 6), (3, 8)] {
            let g = Grid::from_fn(w, h, |x, y| (y * w + x) as i32);
            let round = ifftshift(&fftshift(&g));
            assert_eq!(round, g, "roundtrip failed for {w}x{h}");
        }
    }
}
