//! `fftshift`-style index utilities for centred spectra.
//!
//! The optics crate stores kernel spectra on small centred windows (DC in
//! the middle); the FFT works with DC at index 0. These helpers convert
//! between the two layouts.

use lsopc_grid::Grid;

/// Wraps a signed frequency index onto `[0, n)` (DFT bin layout).
///
/// # Example
///
/// ```
/// use lsopc_fft::wrap_index;
/// assert_eq!(wrap_index(-1, 8), 7);
/// assert_eq!(wrap_index(3, 8), 3);
/// ```
#[inline]
pub fn wrap_index(k: i64, n: usize) -> usize {
    let n = n as i64;
    (((k % n) + n) % n) as usize
}

/// Moves DC from index 0 to the centre of the grid (`fftshift`).
///
/// For even dimensions this is its own inverse; for general dimensions use
/// [`ifftshift`] to undo it.
pub fn fftshift<T: Copy>(g: &Grid<T>) -> Grid<T> {
    let (w, h) = g.dims();
    Grid::from_fn(w, h, |x, y| {
        let sx = (x + w.div_ceil(2)) % w;
        let sy = (y + h.div_ceil(2)) % h;
        g[(sx, sy)]
    })
}

/// Moves DC from the centre back to index 0 (inverse of [`fftshift`]).
pub fn ifftshift<T: Copy>(g: &Grid<T>) -> Grid<T> {
    let (w, h) = g.dims();
    Grid::from_fn(w, h, |x, y| {
        let sx = (x + w - w.div_ceil(2) + w) % w;
        let sy = (y + h - h.div_ceil(2) + h) % h;
        // Equivalent to indexing with x - floor((w+1)/2) wrapped.
        g[(sx % w, sy % h)]
    })
}

/// Translates a periodic field by whole pixels with wraparound: output
/// cell `(x, y)` takes the value of input cell `(x − dx, y − dy)` (mod
/// the grid), so positive shifts move content toward larger indices.
///
/// Cyclic shifts are exactly invertible — `cyclic_shift(&cyclic_shift(g,
/// dx, dy), -dx, -dy)` reproduces `g` bit-for-bit — which is what makes
/// them the right alignment primitive for the warm-start cache's
/// translation-invariant keying (shifted copies of a cached level set
/// round-trip without loss).
///
/// # Example
///
/// ```
/// use lsopc_fft::cyclic_shift;
/// use lsopc_grid::Grid;
///
/// let mut g = Grid::new(4, 4, 0);
/// g[(1, 2)] = 9;
/// let s = cyclic_shift(&g, 2, -1);
/// assert_eq!(s[(3, 1)], 9);
/// let back = cyclic_shift(&s, -2, 1);
/// assert_eq!(back, g);
/// ```
pub fn cyclic_shift<T: Copy>(g: &Grid<T>, dx: i64, dy: i64) -> Grid<T> {
    let (w, h) = g.dims();
    if wrap_index(dx, w) == 0 && wrap_index(dy, h) == 0 {
        return g.clone();
    }
    Grid::from_fn(w, h, |x, y| {
        let sx = wrap_index(x as i64 - dx, w);
        let sy = wrap_index(y as i64 - dy, h);
        g[(sx, sy)]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_negative_and_positive() {
        assert_eq!(wrap_index(0, 4), 0);
        assert_eq!(wrap_index(-1, 4), 3);
        assert_eq!(wrap_index(-4, 4), 0);
        assert_eq!(wrap_index(5, 4), 1);
    }

    #[test]
    fn fftshift_moves_dc_to_center_even() {
        let mut g = Grid::new(4, 4, 0);
        g[(0, 0)] = 7;
        let s = fftshift(&g);
        assert_eq!(s[(2, 2)], 7);
    }

    #[test]
    fn fftshift_moves_dc_to_center_odd() {
        let mut g = Grid::new(5, 5, 0);
        g[(0, 0)] = 7;
        let s = fftshift(&g);
        assert_eq!(s[(2, 2)], 7);
    }

    #[test]
    fn shift_roundtrip_even_and_odd() {
        for &(w, h) in &[(4usize, 4usize), (5, 5), (4, 6), (3, 8)] {
            let g = Grid::from_fn(w, h, |x, y| (y * w + x) as i32);
            let round = ifftshift(&fftshift(&g));
            assert_eq!(round, g, "roundtrip failed for {w}x{h}");
        }
    }

    #[test]
    fn cyclic_shift_moves_content_with_wraparound() {
        let mut g = Grid::new(4, 3, 0);
        g[(3, 2)] = 5;
        let s = cyclic_shift(&g, 1, 1);
        assert_eq!(s[(0, 0)], 5);
        assert_eq!(s.as_slice().iter().filter(|&&v| v != 0).count(), 1);
    }

    #[test]
    fn cyclic_shift_roundtrips_bitwise() {
        let g = Grid::from_fn(8, 8, |x, y| (x as f64 * 0.37 + y as f64 * 1.91).sin());
        for &(dx, dy) in &[(0i64, 0i64), (3, -2), (-7, 5), (8, 8), (13, -11)] {
            let round = cyclic_shift(&cyclic_shift(&g, dx, dy), -dx, -dy);
            for (a, b) in round.as_slice().iter().zip(g.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "shift ({dx},{dy}) lost bits");
            }
        }
    }

    #[test]
    fn cyclic_shift_by_zero_or_period_is_identity() {
        let g = Grid::from_fn(6, 4, |x, y| (y * 6 + x) as i32);
        assert_eq!(cyclic_shift(&g, 0, 0), g);
        assert_eq!(cyclic_shift(&g, 6, 4), g);
        assert_eq!(cyclic_shift(&g, -6, -4), g);
    }
}
