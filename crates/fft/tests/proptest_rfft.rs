//! Property and sweep tests for the real-input fast path ([`RfftPlan`]).
//!
//! The dense complex transform is the oracle throughout: every property
//! here compares the half-spectrum path against `Fft2d` on the same
//! input. The sweep tests cover every power-of-two size in 4..=512
//! deterministically (one pseudo-random grid per size); the proptests
//! then fuzz values on small sizes where the dense oracle is cheap.

use lsopc_fft::{HalfSpectrum, RfftPlan};
use lsopc_grid::{Complex, Grid};
use lsopc_parallel::ParallelContext;
use proptest::prelude::*;

/// Deterministic pseudo-random fill (no RNG state: reproducible per size).
fn sample(x: usize, y: usize, seed: u64) -> f64 {
    let h = (x as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((y as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
        .wrapping_add(seed.wrapping_mul(0x165667b19e3779f9));
    let h = (h ^ (h >> 29)).wrapping_mul(0xbf58476d1ce4e5b9);
    let h = h ^ (h >> 32);
    (h % 2_000_003) as f64 / 1_000_001.0 - 1.0
}

fn test_grid(w: usize, h: usize, seed: u64) -> Grid<f64> {
    Grid::from_fn(w, h, |x, y| sample(x, y, seed))
}

/// Dense-oracle forward: full w×h spectrum via the complex plan.
fn dense_forward(g: &Grid<f64>) -> Grid<Complex<f64>> {
    let (w, h) = g.dims();
    lsopc_fft::plan_t::<f64>(w, h).forward_real(g)
}

fn assert_forward_matches_dense(g: &Grid<f64>, tag: &str) {
    let (w, h) = g.dims();
    let half = RfftPlan::<f64>::new(w, h).forward(g);
    let dense = dense_forward(g);
    // Spectrum magnitudes grow with the sample count; scale the absolute
    // tolerance accordingly.
    let tol = 1e-11 * (w * h) as f64;
    for ky in 0..h {
        for kx in 0..w {
            let d = (half.at(kx, ky) - dense[(kx, ky)]).norm();
            assert!(d < tol, "{tag}: ({kx},{ky}) diff {d} (tol {tol})");
        }
    }
}

fn assert_roundtrip(g: &Grid<f64>, tag: &str) {
    let (w, h) = g.dims();
    let plan = RfftPlan::<f64>::new(w, h);
    let back = plan.inverse(&plan.forward(g));
    for (a, b) in g.as_slice().iter().zip(back.as_slice()) {
        assert!((a - b).abs() < 1e-11, "{tag}: {a} vs {b}");
    }
}

#[test]
fn power_of_two_sweep_matches_dense_oracle() {
    // Every square power-of-two size the optimizer can encounter.
    let mut n = 4;
    let mut seed = 1;
    while n <= 512 {
        let g = test_grid(n, n, seed);
        // The dense comparison is O(N²) lookups; keep it to moderate sizes
        // and check the large ones via the round trip below.
        if n <= 128 {
            assert_forward_matches_dense(&g, &format!("{n}x{n}"));
        }
        assert_roundtrip(&g, &format!("{n}x{n}"));
        n *= 2;
        seed += 1;
    }
}

#[test]
fn rectangular_sizes_match_dense_oracle() {
    for &(w, h) in &[(4, 512), (512, 4), (8, 64), (64, 8), (32, 4), (4, 32)] {
        let g = test_grid(w, h, (w * 1000 + h) as u64);
        if w * h <= 16_384 {
            assert_forward_matches_dense(&g, &format!("{w}x{h}"));
        }
        assert_roundtrip(&g, &format!("{w}x{h}"));
    }
}

#[test]
fn thread_counts_are_bit_identical() {
    let serial = ParallelContext::new(1);
    let threaded = ParallelContext::new(4);
    for &(w, h) in &[(64, 64), (128, 32), (4, 256)] {
        let g = test_grid(w, h, 7);
        let plan = RfftPlan::<f64>::new(w, h);
        let a = plan.forward_with(&serial, &g);
        let b = plan.forward_with(&threaded, &g);
        assert_eq!(a.as_slice(), b.as_slice(), "{w}x{h} forward");
        let ia = plan.inverse_with(&serial, &a);
        let ib = plan.inverse_with(&threaded, &b);
        assert_eq!(ia.as_slice(), ib.as_slice(), "{w}x{h} inverse");
    }
}

#[test]
fn hermitian_projection_round_trip() {
    // from_full_hermitian ∘ to_full reproduces the half layout up to the
    // projection zeroing round-off imaginary residue at the
    // self-conjugate bins (DC/Nyquist), and is idempotent bit-exactly
    // from there on.
    let g = test_grid(32, 16, 11);
    let half = RfftPlan::<f64>::new(32, 16).forward(&g);
    let once = HalfSpectrum::from_full_hermitian(&half.to_full());
    for (a, b) in half.as_slice().iter().zip(once.as_slice()) {
        assert!((*a - *b).norm() < 1e-12);
    }
    let twice = HalfSpectrum::from_full_hermitian(&once.to_full());
    assert_eq!(once.as_slice(), twice.as_slice());
}

fn real_grid(w: usize, h: usize) -> impl Strategy<Value = Grid<f64>> {
    prop::collection::vec(-10.0f64..10.0, w * h)
        .prop_map(move |v| Grid::from_fn(w, h, |x, y| v[y * w + x]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn forward_matches_dense_on_random_grids(g in real_grid(16, 8)) {
        let half = RfftPlan::<f64>::new(16, 8).forward(&g);
        let dense = dense_forward(&g);
        for ky in 0..8 {
            for kx in 0..16 {
                prop_assert!((half.at(kx, ky) - dense[(kx, ky)]).norm() < 1e-9);
            }
        }
    }

    #[test]
    fn roundtrip_is_identity_on_random_grids(g in real_grid(8, 16)) {
        let plan = RfftPlan::<f64>::new(8, 16);
        let back = plan.inverse(&plan.forward(&g));
        for (a, b) in g.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_agrees_with_dense_inverse_on_hermitian_spectra(g in real_grid(16, 16)) {
        // Build a Hermitian spectrum from a real grid, then invert it both
        // ways: through the half layout and through the dense plan.
        let plan = RfftPlan::<f64>::new(16, 16);
        let fft = lsopc_fft::plan_t::<f64>(16, 16);
        let half = plan.forward(&g);
        let mut dense = half.to_full();
        fft.inverse(&mut dense);
        let real = plan.inverse(&half);
        for (a, b) in real.as_slice().iter().zip(dense.as_slice()) {
            prop_assert!((a - b.re).abs() < 1e-10);
            prop_assert!(b.im.abs() < 1e-10);
        }
    }
}
