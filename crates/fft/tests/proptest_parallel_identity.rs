//! Parallel == serial bit-identity for every `Fft2d` pass.
//!
//! The parallel execution layer promises that chunk boundaries and
//! reduction order never depend on the thread count, so transforms must
//! be *bit*-identical — not merely close — on 1, 2, 3 or 8 threads,
//! including counts far above the row/column count of a tiny grid.

use lsopc_fft::Fft2d;
use lsopc_grid::{Complex, Grid, C64};
use lsopc_parallel::ParallelContext;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// Thread counts under test, shared across cases so pools are built once.
fn contexts() -> &'static [ParallelContext] {
    static CTXS: OnceLock<Vec<ParallelContext>> = OnceLock::new();
    CTXS.get_or_init(|| [1usize, 2, 3, 8].map(ParallelContext::new).to_vec())
}

fn rand_grid(w: usize, h: usize, seed: u64) -> Grid<C64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Grid::from_fn(w, h, |_, _| {
        C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    })
}

fn assert_bits_equal(a: &Grid<C64>, b: &Grid<C64>) -> Result<(), TestCaseError> {
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
        prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense forward and inverse transforms match the single-thread path
    /// bit for bit at every thread count.
    #[test]
    fn dense_transforms_are_thread_count_invariant(
        wexp in 2u32..=6,
        hexp in 2u32..=6,
        seed in any::<u64>(),
        inverse in any::<bool>(),
    ) {
        let (w, h) = (1usize << wexp, 1usize << hexp);
        let fft = Fft2d::<f64>::new(w, h);
        let input = rand_grid(w, h, seed);
        let mut reference = input.clone();
        if inverse {
            fft.inverse_with(&contexts()[0], &mut reference);
        } else {
            fft.forward_with(&contexts()[0], &mut reference);
        }
        for ctx in &contexts()[1..] {
            let mut got = input.clone();
            if inverse {
                fft.inverse_with(ctx, &mut got);
            } else {
                fft.forward_with(ctx, &mut got);
            }
            assert_bits_equal(&reference, &got)?;
        }
    }

    /// Band-limited transforms (the hot-path variants) are likewise
    /// bit-identical at every thread count, for arbitrary column subsets.
    #[test]
    fn band_transforms_are_thread_count_invariant(
        wexp in 2u32..=6,
        hexp in 2u32..=6,
        seed in any::<u64>(),
        colseed in any::<u64>(),
        inverse in any::<bool>(),
    ) {
        let (w, h) = (1usize << wexp, 1usize << hexp);
        let fft = Fft2d::<f64>::new(w, h);
        // A random non-empty, deduplicated column subset.
        let mut rng = StdRng::seed_from_u64(colseed);
        let mut cols: Vec<usize> = (0..w).filter(|_| rng.gen_range(0.0..1.0) < 0.4).collect();
        if cols.is_empty() {
            cols.push(rng.gen_range(0..w));
        }
        // For the inverse, the spectrum must actually live on the band.
        let noise = rand_grid(w, h, seed);
        let input = if inverse {
            Grid::from_fn(w, h, |x, y| {
                if cols.contains(&x) { noise[(x, y)] } else { Complex::ZERO }
            })
        } else {
            noise
        };
        let mut reference = input.clone();
        if inverse {
            fft.inverse_band_with(&contexts()[0], &mut reference, &cols);
        } else {
            fft.forward_band_with(&contexts()[0], &mut reference, &cols);
        }
        for ctx in &contexts()[1..] {
            let mut got = input.clone();
            if inverse {
                fft.inverse_band_with(ctx, &mut got, &cols);
            } else {
                fft.forward_band_with(ctx, &mut got, &cols);
            }
            if inverse {
                assert_bits_equal(&reference, &got)?;
            } else {
                // forward_band only specifies the listed columns.
                for &x in &cols {
                    for y in 0..h {
                        prop_assert_eq!(reference[(x, y)].re.to_bits(), got[(x, y)].re.to_bits());
                        prop_assert_eq!(reference[(x, y)].im.to_bits(), got[(x, y)].im.to_bits());
                    }
                }
            }
        }
    }
}
