//! Property tests for the process-wide FFT plan cache.

use std::sync::Arc;

use lsopc_fft::PlanCache;
use proptest::prelude::*;

proptest! {
    /// Concurrent lookups of the same size — including the racy first
    /// construction — must all observe the *same* `Arc` allocation.
    #[test]
    fn concurrent_lookups_share_one_plan(
        wexp in 0u32..=6,
        hexp in 0u32..=6,
        threads in 2usize..=8,
    ) {
        let cache = PlanCache::new();
        let (w, h) = (1usize << wexp, 1usize << hexp);
        let plans: Vec<_> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|_| cache.plan(w, h)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("worker panicked"))
                .collect()
        })
        .expect("crossbeam scope failed");
        for plan in &plans {
            prop_assert!(Arc::ptr_eq(&plans[0], plan));
        }
        // A later lookup still hits the same allocation, and exactly one
        // plan was built despite the racing threads.
        prop_assert!(Arc::ptr_eq(&plans[0], &cache.plan(w, h)));
        prop_assert_eq!(cache.len(), 1);
    }

    /// Looking up distinct sizes from concurrent threads builds exactly
    /// one plan per size, each shared across threads.
    #[test]
    fn distinct_sizes_get_distinct_shared_plans(
        exps in prop::collection::vec(0u32..=5, 1..5),
        threads in 2usize..=4,
    ) {
        let cache = PlanCache::new();
        let sizes: Vec<usize> = exps.iter().map(|&e| 1usize << e).collect();
        let rounds: Vec<Vec<_>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let sizes = &sizes;
                    let cache = &cache;
                    scope.spawn(move |_| {
                        sizes.iter().map(|&n| cache.plan(n, n)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("worker panicked"))
                .collect()
        })
        .expect("crossbeam scope failed");
        for round in &rounds {
            for (plan, first) in round.iter().zip(&rounds[0]) {
                prop_assert!(Arc::ptr_eq(plan, first));
            }
        }
        let distinct: std::collections::HashSet<usize> = sizes.iter().copied().collect();
        prop_assert_eq!(cache.len(), distinct.len());
    }
}
