//! Property-based invariants of the FFT substrate.

use lsopc_fft::{convolve_cyclic, naive_dft, Fft2d, FftPlan};
use lsopc_grid::{Grid, C64};
use proptest::prelude::*;

fn signal(len: usize) -> impl Strategy<Value = Vec<C64>> {
    prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| C64::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_matches_naive_dft(x in signal(64)) {
        let plan = FftPlan::<f64>::new(64);
        let mut fast = x.clone();
        plan.forward(&mut fast);
        let slow = naive_dft(&x, false);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).norm() < 1e-8);
        }
    }

    #[test]
    fn roundtrip_is_identity(x in signal(128)) {
        let plan = FftPlan::<f64>::new(128);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn transform_is_linear(a in signal(32), b in signal(32), s in -3.0f64..3.0) {
        let plan = FftPlan::<f64>::new(32);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        let mut combined: Vec<C64> = a.iter().zip(&b).map(|(x, y)| *x + y.scale(s)).collect();
        plan.forward(&mut combined);
        for ((x, y), z) in fa.iter().zip(&fb).zip(&combined) {
            prop_assert!((*x + y.scale(s) - *z).norm() < 1e-8);
        }
    }

    #[test]
    fn time_shift_preserves_magnitude(x in signal(64), shift in 0usize..64) {
        let plan = FftPlan::<f64>::new(64);
        let shifted: Vec<C64> = (0..64).map(|i| x[(i + shift) % 64]).collect();
        let mut fx = x;
        let mut fs = shifted;
        plan.forward(&mut fx);
        plan.forward(&mut fs);
        for (a, b) in fx.iter().zip(&fs) {
            prop_assert!((a.norm() - b.norm()).abs() < 1e-8);
        }
    }

    #[test]
    fn convolution_commutes(
        a in prop::collection::vec(-2.0f64..2.0, 64),
        b in prop::collection::vec(-2.0f64..2.0, 64),
    ) {
        let ga = Grid::from_fn(8, 8, |x, y| C64::from_real(a[y * 8 + x]));
        let gb = Grid::from_fn(8, 8, |x, y| C64::from_real(b[y * 8 + x]));
        let ab = convolve_cyclic(&ga, &gb);
        let ba = convolve_cyclic(&gb, &ga);
        for (p, q) in ab.as_slice().iter().zip(ba.as_slice()) {
            prop_assert!((*p - *q).norm() < 1e-8);
        }
    }

    #[test]
    fn convolution_total_mass_multiplies(
        a in prop::collection::vec(0.0f64..2.0, 64),
        b in prop::collection::vec(0.0f64..2.0, 64),
    ) {
        // Σ (a ⊗ b) = (Σ a)·(Σ b) for cyclic convolution.
        let ga = Grid::from_fn(8, 8, |x, y| C64::from_real(a[y * 8 + x]));
        let gb = Grid::from_fn(8, 8, |x, y| C64::from_real(b[y * 8 + x]));
        let conv = convolve_cyclic(&ga, &gb);
        let mass: f64 = conv.as_slice().iter().map(|v| v.re).sum();
        let expected: f64 = a.iter().sum::<f64>() * b.iter().sum::<f64>();
        prop_assert!((mass - expected).abs() < 1e-6 * (1.0 + expected.abs()));
    }

    #[test]
    fn fft2d_separability(vals in prop::collection::vec(-3.0f64..3.0, 16 * 16)) {
        // 2-D transform of a rank-1 field u(x)·v(y) is the outer product
        // of the 1-D transforms.
        let u: Vec<f64> = vals[..16].to_vec();
        let v: Vec<f64> = vals[16..32].to_vec();
        let grid = Grid::from_fn(16, 16, |x, y| C64::from_real(u[x] * v[y]));
        let mut f2 = grid;
        Fft2d::new(16, 16).forward(&mut f2);
        let plan = FftPlan::<f64>::new(16);
        let mut fu: Vec<C64> = u.iter().map(|&r| C64::from_real(r)).collect();
        let mut fv: Vec<C64> = v.iter().map(|&r| C64::from_real(r)).collect();
        plan.forward(&mut fu);
        plan.forward(&mut fv);
        for ky in 0..16 {
            for kx in 0..16 {
                let expected = fu[kx] * fv[ky];
                prop_assert!((f2[(kx, ky)] - expected).norm() < 1e-7);
            }
        }
    }
}
