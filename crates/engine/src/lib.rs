//! Headless job-execution engine for lsopc.
//!
//! The CLI front end used to own the whole job pipeline — building
//! simulators, wiring optimizer flags, installing trace sinks. This
//! crate carves that layer out behind a library API so other hosts (a
//! future `lsopc serve`, tests, notebooks) can run the same jobs:
//!
//! * [`Engine`] — long-lived shared state: one FFT plan / kernel-spectrum
//!   cache bundle ([`SimCaches`]), the global worker pool, a per-engine
//!   in-memory warm-start cache, and a simulator cache keyed by job
//!   geometry so repeated jobs share kernel construction.
//! * [`JobSpec`] — a plain-data description of one optimization job
//!   (target, optics size, optimizer parameters, precision, schedule,
//!   tiling, warm start, run control). Field semantics mirror the CLI
//!   flags one-to-one; a single-job engine run is bit-identical to the
//!   pre-engine CLI at the default f64 precision.
//! * [`Session`] — a handle that scopes trace delivery: events emitted
//!   while a session's closure runs (including on pool workers working
//!   for it) go to the session's sink, independent of — and in addition
//!   to — the process-global sink. Concurrent sessions get separate
//!   streams.
//! * [`JobOutcome`] — the optimized mask plus run statistics and the
//!   stop reason, for both the flat and the tiled path.
//! * [`Scorer`] — the shared f64 scoring simulator (scoring always runs
//!   at f64 regardless of the job precision).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), lsopc_engine::EngineError> {
//! use lsopc_engine::{Engine, JobSpec};
//! use lsopc_grid::Grid;
//!
//! let engine = Engine::builder().build();
//! let target = Grid::from_fn(128, 128, |x, y| {
//!     if (52..76).contains(&x) && (30..98).contains(&y) { 1.0 } else { 0.0 }
//! });
//! let mut spec = JobSpec::new(target);
//! spec.kernels = 4;
//! spec.iterations = 2;
//! let outcome = engine.submit(&spec)?;
//! assert_eq!(outcome.mask().width(), 128);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use lsopc_core::{
    GuardConfig, IltResult, LevelSetIlt, OptimizeError, RecoveryPolicy, ResolutionSchedule,
    RunControl, StopReason, TiledError, TiledIlt, TiledStats, WarmStartCache,
};
use lsopc_geometry::Layout;
use lsopc_grid::Grid;
use lsopc_litho::{
    AcceleratedBackend, BuildSimulatorError, LithoSimulator, MixedBackend, SimCaches,
};
use lsopc_metrics::MaskEvaluation;
use lsopc_optics::OpticsConfig;
use lsopc_trace::{MetricsRegistry, TraceSink};

// Re-export the types a host needs to build and control jobs without
// depending on the simulation crates directly.
pub use lsopc_core::{CancelToken, CheckpointSpec};
pub use lsopc_litho::SimCaches as Caches;

/// The optical field is always 2048 nm on a side; the grid size sets
/// the pixels across it.
pub const FIELD_NM: f64 = 2048.0;

/// Pixel pitch in nanometres for a `grid`-pixel field.
pub fn pixel_nm(grid: usize) -> f64 {
    FIELD_NM / grid as f64
}

/// Arithmetic used by the optimization loop. Scoring and reporting
/// always run at f64 regardless.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Full double precision — the default, bit-identical to the
    /// pre-generic pipeline.
    #[default]
    F64,
    /// Pure single precision fields and transforms (the paper's GPU
    /// arithmetic); the result mask is widened to f64 for scoring.
    F32,
    /// f32 convolutions/spectra with f64 accumulation and optimizer
    /// state (master-weights pattern).
    Mixed,
}

/// Coarse-to-fine schedule selection for a job.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Flat run at full resolution (the historical default).
    #[default]
    Off,
    /// Derive the stages from the solve grid, optics and iteration
    /// count; quietly degrades to a flat run when no coarser grid holds
    /// the optical band.
    Auto,
    /// Pinned stages.
    Fixed(ResolutionSchedule),
}

/// Validated tile geometry: an N×N core plus halo pixels of optical
/// context on each side.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Tiling {
    core: usize,
    halo: usize,
}

impl Tiling {
    /// Validates the geometry with the tiled optimizer's own rules
    /// (positive core, halo smaller than the core, core + 2·halo a
    /// power of two). Errors carry the optimizer's exact wording, so a
    /// host can reject the configuration before any I/O happens.
    pub fn new(core: usize, halo: usize) -> Result<Self, TiledError> {
        // The geometry checks live in TiledIlt::new; a throwaway
        // optimizer config makes them available at spec-building time.
        TiledIlt::new(LevelSetIlt::builder().build(), core, halo)?;
        Ok(Self { core, halo })
    }

    /// The core size in pixels.
    pub fn core(&self) -> usize {
        self.core
    }

    /// The halo size in pixels.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// The solve window (`core + 2·halo`) each tile optimizes on.
    pub fn window(&self) -> usize {
        self.core + 2 * self.halo
    }
}

/// Warm-start cache selection for tiled jobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WarmStart {
    /// The engine's shared in-memory cache — entries persist across
    /// jobs submitted to the same [`Engine`].
    Memory,
    /// A directory cache persisted across processes. Opened when the
    /// job is submitted.
    Directory(PathBuf),
}

/// A plain-data description of one optimization job.
///
/// Defaults mirror the CLI's `optimize` defaults; the grid size is
/// implied by the (square) target raster and the field is always
/// [`FIELD_NM`].
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The rasterized target pattern (square, power-of-two side).
    pub target: Grid<f64>,
    /// SOCS kernel count (default 24).
    pub kernels: usize,
    /// Maximum optimizer iterations (default 30).
    pub iterations: usize,
    /// Process-variation band weight (default 1.0).
    pub pvb_weight: f64,
    /// Solver health guard policy (default: recover and keep going).
    pub recovery: RecoveryPolicy,
    /// Loop arithmetic (default f64).
    pub precision: Precision,
    /// Real-input FFT routing: `Some` pins it for this job's backends,
    /// `None` keeps the process default (`LSOPC_RFFT` or off).
    pub rfft: Option<bool>,
    /// Coarse-to-fine schedule (default off).
    pub schedule: Schedule,
    /// Tile the field instead of solving it whole (f64 only).
    pub tiling: Option<Tiling>,
    /// Warm-start cache for tiled jobs.
    pub warm_start: Option<WarmStart>,
    /// Warm-tile refinement iterations (0 = the optimizer's default,
    /// a quarter of `iterations`).
    pub warm_iterations: usize,
    /// Cancellation, deadline, iteration budget and checkpoint policy.
    pub control: RunControl,
    /// Attach a [`JobMetrics`] summary to the outcome (default true).
    /// Collection scopes a per-job [`MetricsRegistry`] over the run,
    /// which turns the instrumentation points on for its duration; set
    /// false to keep the sub-1% disabled-path cost instead of the
    /// summary (`benches/telemetry.rs` reports the measured delta).
    pub collect_metrics: bool,
}

impl JobSpec {
    /// A job with the CLI `optimize` defaults for `target`.
    pub fn new(target: Grid<f64>) -> Self {
        Self {
            target,
            kernels: 24,
            iterations: 30,
            pvb_weight: 1.0,
            recovery: RecoveryPolicy::On(GuardConfig::default()),
            precision: Precision::F64,
            rfft: None,
            schedule: Schedule::Off,
            tiling: None,
            warm_start: None,
            warm_iterations: 0,
            control: RunControl::new(),
            collect_metrics: true,
        }
    }

    /// The grid size implied by the target raster.
    pub fn grid(&self) -> usize {
        self.target.width()
    }

    /// The grid each solve actually runs on: the tile window in tiled
    /// mode, the full grid otherwise. Schedules resolve against this.
    pub fn solve_px(&self) -> usize {
        self.tiling.map_or(self.grid(), |t| t.window())
    }
}

/// Why a job could not run or complete.
#[derive(Debug)]
pub enum EngineError {
    /// The spec is internally inconsistent (e.g. tiling at f32).
    Spec(String),
    /// Opening a spec-referenced path (warm-start directory) failed.
    Io(String),
    /// The simulator could not be constructed for the spec's geometry.
    Setup(BuildSimulatorError),
    /// The flat optimizer rejected its inputs or failed.
    Optimize(OptimizeError),
    /// The tiled optimizer rejected its configuration or failed.
    Tiled(TiledError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Spec(m) | Self::Io(m) => write!(f, "{m}"),
            Self::Setup(e) => write!(f, "{e}"),
            Self::Optimize(e) => write!(f, "{e}"),
            Self::Tiled(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<OptimizeError> for EngineError {
    fn from(e: OptimizeError) -> Self {
        Self::Optimize(e)
    }
}

impl From<TiledError> for EngineError {
    fn from(e: TiledError) -> Self {
        Self::Tiled(e)
    }
}

impl From<BuildSimulatorError> for EngineError {
    fn from(e: BuildSimulatorError) -> Self {
        Self::Setup(e)
    }
}

/// Per-path detail of a finished job.
#[derive(Clone, Debug)]
pub enum JobDetail {
    /// A whole-field solve: the full optimizer result.
    Flat(IltResult<f64>),
    /// A tiled solve: the stitched mask plus per-tile statistics.
    Tiled {
        /// The stitched full-field mask.
        mask: Grid<f64>,
        /// Tile counts, warm/cold split and iteration totals.
        stats: TiledStats,
    },
}

/// Aggregated timing for one span path over one job.
#[derive(Clone, Debug)]
pub struct SpanSummary {
    /// Full `/`-joined hierarchical span path.
    pub path: String,
    /// Times the span closed during the job.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub total_ns: u64,
    /// Total minus summed direct-children totals, clamped at 0.
    pub self_ns: u64,
    /// Median call duration (log-linear histogram bound, ≤ 6.25% high).
    pub p50_ns: u64,
    /// 99th-percentile call duration.
    pub p99_ns: u64,
}

/// Hit/miss totals for one cache family during one job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 with no traffic.
    pub fn ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Telemetry summary of one job, derived from a per-job
/// [`MetricsRegistry`] scoped over the run — embedders get stage
/// timings, cache behaviour and guard activity without parsing JSONL.
#[derive(Clone, Debug)]
pub struct JobMetrics {
    /// Wall-clock seconds spent inside [`Engine::submit`].
    pub wall_s: f64,
    /// Per-stage span totals and percentiles, sorted by path.
    pub spans: Vec<SpanSummary>,
    /// Every counter the job incremented, by name.
    pub counters: BTreeMap<String, u64>,
    /// Hit/miss totals per cache family (`plan`, `spectra`,
    /// `warmstart`, …).
    pub caches: BTreeMap<String, CacheStats>,
    /// Health-guard rollbacks during the job.
    pub guard_rollbacks: u64,
    /// Health-guard successful recoveries.
    pub guard_recoveries: u64,
    /// True when the guard exhausted its recovery budget.
    pub guard_gave_up: bool,
    /// Why the run stopped early, if it did.
    pub stop: Option<StopReason>,
    /// Checkpoint bytes written during the job.
    pub checkpoint_bytes: u64,
}

impl JobMetrics {
    /// Derives the summary from a job-scoped registry.
    fn from_registry(registry: &MetricsRegistry, wall_s: f64, stop: Option<StopReason>) -> Self {
        let counters = registry.counters();
        // Per-path span stats; self time = total − Σ direct children,
        // clamped at 0 (the MemorySink rule).
        let paths = registry.span_paths();
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for path in &paths {
            if let Some(hist) = registry.span_histogram(path) {
                totals.insert(path.clone(), hist.sum());
            }
        }
        let mut child_sums: BTreeMap<&str, u64> = BTreeMap::new();
        for (path, total) in &totals {
            if let Some(idx) = path.rfind('/') {
                let parent = &path[..idx];
                if totals.contains_key(parent) {
                    *child_sums.entry(parent).or_insert(0) += total;
                }
            }
        }
        let spans = paths
            .iter()
            .filter_map(|path| {
                let hist = registry.span_histogram(path)?;
                let total_ns = hist.sum();
                let children = child_sums.get(path.as_str()).copied().unwrap_or(0);
                Some(SpanSummary {
                    path: path.clone(),
                    calls: hist.count(),
                    total_ns,
                    self_ns: total_ns.saturating_sub(children),
                    p50_ns: hist.quantile(0.50),
                    p99_ns: hist.quantile(0.99),
                })
            })
            .collect();
        // Cache families: counters shaped `cache.<family>.hit|miss`.
        let mut caches: BTreeMap<String, CacheStats> = BTreeMap::new();
        for (name, total) in &counters {
            if let Some(rest) = name.strip_prefix("cache.") {
                if let Some(family) = rest.strip_suffix(".hit") {
                    caches.entry(family.to_string()).or_default().hits += total;
                } else if let Some(family) = rest.strip_suffix(".miss") {
                    caches.entry(family.to_string()).or_default().misses += total;
                }
            }
        }
        let counter = |name: &str| counters.get(name).copied().unwrap_or(0);
        Self {
            wall_s,
            spans,
            guard_rollbacks: counter("guard.rollback"),
            guard_recoveries: counter("guard.recovered"),
            guard_gave_up: counter("guard.gave_up") > 0,
            checkpoint_bytes: counter("checkpoint.bytes"),
            caches,
            counters,
            stop,
        }
    }
}

/// The outcome of one [`Engine::submit`] call.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// End-to-end wall-clock runtime of the optimization in seconds.
    pub runtime_s: f64,
    /// Why the run stopped early (`None` for a normal completion). A
    /// stopped outcome still carries the best-so-far mask.
    pub stopped: Option<StopReason>,
    /// Path-specific results.
    pub detail: JobDetail,
    /// Telemetry summary; `None` when the spec disabled collection.
    pub metrics: Option<JobMetrics>,
}

impl JobOutcome {
    /// The optimized mask (always f64, whatever the loop precision).
    pub fn mask(&self) -> &Grid<f64> {
        match &self.detail {
            JobDetail::Flat(result) => &result.mask,
            JobDetail::Tiled { mask, .. } => mask,
        }
    }
}

/// Simulator cache key: everything that feeds simulator construction.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct SimKey {
    grid: usize,
    kernels: usize,
    precision: Precision,
    rfft: Option<bool>,
}

#[derive(Debug)]
enum SimEntry {
    F64(Arc<LithoSimulator<f64>>),
    F32(Arc<LithoSimulator<f32>>),
}

#[derive(Debug)]
struct Inner {
    caches: SimCaches,
    warm_memory: WarmStartCache,
    pool_threads: usize,
    sims: Mutex<HashMap<SimKey, SimEntry>>,
}

/// Long-lived job executor: owns the shared caches and the simulator
/// pool. Cheap to clone (all clones share state) and safe to submit to
/// from multiple threads concurrently.
#[derive(Clone, Debug)]
pub struct Engine {
    inner: Arc<Inner>,
}

/// Configures an [`Engine`] before it is built.
#[derive(Debug, Default)]
pub struct EngineBuilder {
    threads: usize,
    caches: Option<SimCaches>,
}

impl EngineBuilder {
    /// Pins the shared worker pool size. 0 (the default) keeps the
    /// `LSOPC_THREADS` / available-core sizing. The pool is built once
    /// per process, so only the first engine (or other pool user) can
    /// still size it.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Uses an explicit cache bundle instead of the process-global
    /// caches — e.g. [`SimCaches::private`] to isolate an engine's FFT
    /// plans and kernel spectra from the rest of the process.
    pub fn caches(mut self, caches: SimCaches) -> Self {
        self.caches = Some(caches);
        self
    }

    /// Builds the engine, sizing the worker pool if requested.
    pub fn build(self) -> Engine {
        if self.threads > 0 {
            lsopc_parallel::init_global_threads(self.threads);
        }
        let pool_threads = lsopc_parallel::ParallelContext::global().threads();
        Engine {
            inner: Arc::new(Inner {
                caches: self.caches.unwrap_or_default(),
                warm_memory: WarmStartCache::in_memory(),
                pool_threads,
                sims: Mutex::new(HashMap::new()),
            }),
        }
    }
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The number of worker-pool threads jobs fan out over.
    pub fn pool_threads(&self) -> usize {
        self.inner.pool_threads
    }

    /// A session handle over this engine (no sink until
    /// [`Session::with_sink`]).
    pub fn session(&self) -> Session {
        Session {
            engine: self.clone(),
            sink: None,
            registry: Arc::new(MetricsRegistry::new()),
        }
    }

    /// The iccad2013 optics for a job's kernel count — the single
    /// source of optics settings for every engine job.
    fn optics(kernels: usize) -> OpticsConfig {
        OpticsConfig::iccad2013().with_kernel_count(kernels)
    }

    /// The cached f64 simulator for `key` (building it on first use).
    fn sim_f64(&self, key: SimKey) -> Result<Arc<LithoSimulator<f64>>, EngineError> {
        debug_assert_eq!(key.precision, Precision::F64);
        let mut sims = self.inner.sims.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(SimEntry::F64(sim)) = sims.get(&key) {
            return Ok(sim.clone());
        }
        let mut backend = AcceleratedBackend::new(self.inner.pool_threads);
        if let Some(rfft) = key.rfft {
            backend = backend.with_rfft(rfft);
        }
        let sim = Arc::new(
            LithoSimulator::from_optics(&Self::optics(key.kernels), key.grid, pixel_nm(key.grid))?
                .with_backend(Box::new(backend))
                .with_caches(self.inner.caches.clone()),
        );
        sims.insert(key, SimEntry::F64(sim.clone()));
        Ok(sim)
    }

    /// The cached f32 simulator for `key` (building it on first use).
    fn sim_f32(&self, key: SimKey) -> Result<Arc<LithoSimulator<f32>>, EngineError> {
        debug_assert_eq!(key.precision, Precision::F32);
        let mut sims = self.inner.sims.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(SimEntry::F32(sim)) = sims.get(&key) {
            return Ok(sim.clone());
        }
        let mut backend = AcceleratedBackend::new(self.inner.pool_threads);
        if let Some(rfft) = key.rfft {
            backend = backend.with_rfft(rfft);
        }
        let sim = Arc::new(
            LithoSimulator::<f32>::from_optics(
                &Self::optics(key.kernels),
                key.grid,
                pixel_nm(key.grid),
            )?
            .with_backend(Box::new(backend))
            .with_caches(self.inner.caches.clone()),
        );
        sims.insert(key, SimEntry::F32(sim.clone()));
        Ok(sim)
    }

    /// The cached mixed-precision simulator for `key`.
    fn sim_mixed(&self, key: SimKey) -> Result<Arc<LithoSimulator<f64>>, EngineError> {
        debug_assert_eq!(key.precision, Precision::Mixed);
        let mut sims = self.inner.sims.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(SimEntry::F64(sim)) = sims.get(&key) {
            return Ok(sim.clone());
        }
        let mut backend = MixedBackend::new();
        if let Some(rfft) = key.rfft {
            backend = backend.with_rfft(rfft);
        }
        let sim = Arc::new(
            LithoSimulator::from_optics(&Self::optics(key.kernels), key.grid, pixel_nm(key.grid))?
                .with_backend(Box::new(backend))
                .with_caches(self.inner.caches.clone()),
        );
        sims.insert(key, SimEntry::F64(sim.clone()));
        Ok(sim)
    }

    /// The shared f64 scoring simulator for a grid/kernel-count pair.
    ///
    /// `rfft` follows the job's routing so that scoring a job's mask
    /// reproduces the pre-engine CLI bit-for-bit.
    pub fn scorer(
        &self,
        grid: usize,
        kernels: usize,
        rfft: Option<bool>,
    ) -> Result<Scorer, EngineError> {
        let sim = self.sim_f64(SimKey {
            grid,
            kernels,
            precision: Precision::F64,
            rfft,
        })?;
        Ok(Scorer { sim })
    }

    /// Runs one job to completion (or to its graceful stop) and returns
    /// the mask plus statistics. Safe to call from multiple threads.
    ///
    /// Unless [`JobSpec::collect_metrics`] is false, a per-job
    /// [`MetricsRegistry`] is layered over the run's trace scope —
    /// composing with (never shadowing) any [`Session`] sink or global
    /// sink — and the derived [`JobMetrics`] ride on the outcome.
    pub fn submit(&self, spec: &JobSpec) -> Result<JobOutcome, EngineError> {
        if !spec.collect_metrics {
            return self.submit_inner(spec);
        }
        let registry = Arc::new(MetricsRegistry::new());
        let started = Instant::now();
        let mut outcome =
            lsopc_trace::with_layered_scoped_sink(registry.clone(), || self.submit_inner(spec))?;
        outcome.metrics = Some(JobMetrics::from_registry(
            &registry,
            started.elapsed().as_secs_f64(),
            outcome.stopped,
        ));
        Ok(outcome)
    }

    fn submit_inner(&self, spec: &JobSpec) -> Result<JobOutcome, EngineError> {
        let grid = spec.grid();
        if spec.target.height() != grid {
            return Err(EngineError::Spec(format!(
                "target raster must be square, got {}x{}",
                grid,
                spec.target.height()
            )));
        }
        let optics = Self::optics(spec.kernels);
        let schedule = match spec.schedule {
            Schedule::Off => None,
            Schedule::Auto => ResolutionSchedule::auto(spec.solve_px(), &optics, spec.iterations),
            Schedule::Fixed(s) => Some(s),
        };
        let ilt = LevelSetIlt::builder()
            .max_iterations(spec.iterations)
            .pvb_weight(spec.pvb_weight)
            .recovery(spec.recovery)
            .schedule(schedule)
            .build();

        if let Some(tiling) = spec.tiling {
            return self.submit_tiled(spec, &optics, ilt, tiling);
        }

        let key = SimKey {
            grid,
            kernels: spec.kernels,
            precision: spec.precision,
            rfft: spec.rfft,
        };
        let result = match spec.precision {
            Precision::F64 => {
                let sim = self.sim_f64(key)?;
                ilt.optimize_controlled(&sim, &spec.target, &spec.control)?
            }
            Precision::Mixed => {
                let sim = self.sim_mixed(key)?;
                ilt.optimize_controlled(&sim, &spec.target, &spec.control)?
            }
            Precision::F32 => {
                let sim = self.sim_f32(key)?;
                let target32 = spec.target.map(|&v| v as f32);
                ilt.optimize_controlled(&sim, &target32, &spec.control)?
                    .to_f64()
            }
        };
        Ok(JobOutcome {
            runtime_s: result.runtime_s,
            stopped: result.stopped,
            detail: JobDetail::Flat(result),
            metrics: None,
        })
    }

    fn submit_tiled(
        &self,
        spec: &JobSpec,
        optics: &OpticsConfig,
        ilt: LevelSetIlt,
        tiling: Tiling,
    ) -> Result<JobOutcome, EngineError> {
        if spec.precision != Precision::F64 {
            return Err(EngineError::Spec(
                "tiled jobs run at f64; drop the precision override or the tiling".into(),
            ));
        }
        let mut tiled = TiledIlt::new(ilt, tiling.core, tiling.halo)?;
        match &spec.warm_start {
            Some(WarmStart::Memory) => {
                tiled = tiled.with_warm_start(self.inner.warm_memory.clone());
            }
            Some(WarmStart::Directory(path)) => {
                let cache = WarmStartCache::directory(path).map_err(|e| {
                    EngineError::Io(format!(
                        "cannot open warm-start cache {}: {e}",
                        path.display()
                    ))
                })?;
                tiled = tiled.with_warm_start(cache);
            }
            None => {}
        }
        if spec.warm_iterations > 0 {
            tiled = tiled.with_warm_iterations(spec.warm_iterations);
        }
        tiled = tiled
            .with_run_control(spec.control.clone())
            .with_caches(self.inner.caches.clone());
        if let Some(rfft) = spec.rfft {
            tiled = tiled.with_rfft(rfft);
        }
        let started = Instant::now();
        let (mask, stats) =
            tiled.optimize_with_stats(optics, &spec.target, pixel_nm(spec.grid()))?;
        Ok(JobOutcome {
            runtime_s: started.elapsed().as_secs_f64(),
            stopped: stats.stopped,
            detail: JobDetail::Tiled { mask, stats },
            metrics: None,
        })
    }
}

/// A per-caller handle over a shared [`Engine`] that scopes trace
/// delivery: work run through [`Session::scoped`] (or
/// [`Session::submit`]) delivers its trace events to the session's
/// sink — on the calling thread and on pool workers executing its
/// chunks — in addition to any process-global sink. Two sessions
/// running concurrently get cleanly separated streams.
pub struct Session {
    engine: Engine,
    sink: Option<Arc<dyn TraceSink>>,
    /// Session-lifetime metrics, fed by every [`Session::scoped`] run
    /// and rendered by [`Session::exposition`].
    registry: Arc<MetricsRegistry>,
}

impl Session {
    /// Attaches the sink this session's events are delivered to (in
    /// addition to the session's own metrics registry).
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The engine this session submits to.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Runs `f` with the session's metrics registry — and the attached
    /// sink, if any — scoped in, so every event the work emits (on this
    /// thread and on pool workers executing its chunks) feeds the
    /// session's aggregate.
    pub fn scoped<R>(&self, f: impl FnOnce() -> R) -> R {
        let registry: Arc<dyn TraceSink> = self.registry.clone();
        let sink = match &self.sink {
            Some(user) => Arc::new(lsopc_trace::FanoutSink::new(vec![registry, user.clone()])),
            None => return lsopc_trace::with_scoped_sink(registry, f),
        };
        lsopc_trace::with_scoped_sink(sink, f)
    }

    /// Submits a job with this session's sink scoped in.
    pub fn submit(&self, spec: &JobSpec) -> Result<JobOutcome, EngineError> {
        self.scoped(|| self.engine.submit(spec))
    }

    /// Flushes the session sink's buffered output.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }

    /// The session-lifetime metrics registry: span-duration histograms,
    /// counter totals and gauge last-values aggregated across every
    /// [`Session::scoped`] / [`Session::submit`] run so far.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Renders the session's aggregated metrics in Prometheus text
    /// exposition format (span-duration histograms with cumulative `le`
    /// buckets in seconds, counters, gauges) — the scrape payload a
    /// future `lsopc serve` endpoint publishes per session.
    pub fn exposition(&self) -> String {
        self.registry.render_prometheus()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("engine", &self.engine)
            .field("sink", &self.sink.as_ref().map(|_| "dyn TraceSink"))
            .finish()
    }
}

/// The shared f64 scoring simulator: quality metrics always run at
/// full precision, whatever arithmetic the optimization loop used.
#[derive(Clone, Debug)]
pub struct Scorer {
    sim: Arc<LithoSimulator<f64>>,
}

impl Scorer {
    /// Simulates `mask` at the three process corners and measures #EPE,
    /// PVB and shape violations against the target.
    pub fn evaluate(
        &self,
        mask: &Grid<f64>,
        target_layout: &Layout,
        target_grid: &Grid<f64>,
    ) -> MaskEvaluation {
        lsopc_metrics::evaluate_mask(&self.sim, mask, target_layout, target_grid)
    }

    /// The scoring grid's pixel pitch in nanometres.
    pub fn pixel_nm(&self) -> f64 {
        self.sim.pixel_nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_target() -> Grid<f64> {
        Grid::from_fn(128, 128, |x, y| {
            if (52..76).contains(&x) && (30..98).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn engine_runs_a_default_spec() {
        let engine = Engine::builder().build();
        let mut spec = JobSpec::new(small_target());
        spec.kernels = 4;
        spec.iterations = 2;
        let outcome = engine.submit(&spec).expect("job runs");
        assert_eq!(outcome.mask().dims(), (128, 128));
        assert!(outcome.stopped.is_none());
    }

    #[test]
    fn non_square_target_is_a_spec_error() {
        let engine = Engine::builder().build();
        let spec = JobSpec::new(Grid::from_fn(64, 32, |_, _| 0.0));
        match engine.submit(&spec) {
            Err(EngineError::Spec(msg)) => assert!(msg.contains("square")),
            other => panic!("expected a spec error, got {other:?}"),
        }
    }

    #[test]
    fn bad_grid_is_a_setup_error() {
        let engine = Engine::builder().build();
        let mut spec = JobSpec::new(Grid::from_fn(48, 48, |_, _| 1.0));
        spec.kernels = 4;
        match engine.submit(&spec) {
            Err(EngineError::Setup(e)) => {
                assert!(e.to_string().contains("power of two"));
            }
            other => panic!("expected a setup error, got {other:?}"),
        }
    }

    #[test]
    fn tiling_rejects_non_f64_precision() {
        let engine = Engine::builder().build();
        let mut spec = JobSpec::new(small_target());
        spec.tiling = Some(Tiling::new(32, 16).expect("valid geometry"));
        spec.precision = Precision::F32;
        match engine.submit(&spec) {
            Err(EngineError::Spec(msg)) => assert!(msg.contains("f64")),
            other => panic!("expected a spec error, got {other:?}"),
        }
    }

    #[test]
    fn tiling_geometry_is_validated_up_front() {
        let err = Tiling::new(100, 64).expect_err("non-power-of-two window");
        assert!(err.to_string().contains("power of two"));
        let err = Tiling::new(128, 256).expect_err("halo too large");
        assert!(err.to_string().contains("smaller"));
    }

    #[test]
    fn submit_attaches_job_metrics_by_default() {
        let engine = Engine::builder().caches(SimCaches::private()).build();
        let mut spec = JobSpec::new(small_target());
        spec.kernels = 4;
        spec.iterations = 2;
        let outcome = engine.submit(&spec).expect("job runs");
        let metrics = outcome.metrics.as_ref().expect("metrics collected");
        assert!(metrics.wall_s > 0.0);
        assert!(
            metrics.spans.iter().any(|s| s.path.contains("optimize")),
            "span paths: {:?}",
            metrics.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
        );
        for span in &metrics.spans {
            assert!(span.calls > 0);
            assert!(span.p99_ns >= span.p50_ns, "p99 < p50 on {}", span.path);
            assert!(span.self_ns <= span.total_ns);
        }
        assert!(metrics.stop.is_none());
        assert!(!metrics.guard_gave_up);
        // A second identical job must hit the FFT-plan cache and say so
        // in its summary.
        let outcome2 = engine.submit(&spec).expect("job reruns");
        let metrics2 = outcome2.metrics.as_ref().unwrap();
        let plan = metrics2.caches.get("plan").expect("plan family");
        assert!(plan.hits > 0, "expected warm plan cache: {plan:?}");
        assert!(plan.ratio() > 0.0);
    }

    #[test]
    fn metrics_collection_can_be_disabled() {
        let engine = Engine::builder().caches(SimCaches::private()).build();
        let mut spec = JobSpec::new(small_target());
        spec.kernels = 4;
        spec.iterations = 1;
        spec.collect_metrics = false;
        let outcome = engine.submit(&spec).expect("job runs");
        assert!(outcome.metrics.is_none());
    }

    #[test]
    fn metrics_cache_ratios_match_scoped_counter_totals() {
        let engine = Engine::builder().caches(SimCaches::private()).build();
        let mut spec = JobSpec::new(small_target());
        spec.kernels = 4;
        spec.iterations = 2;
        let sink = Arc::new(lsopc_trace::MemorySink::new());
        let session = engine.session().with_sink(sink.clone());
        let outcome = session.submit(&spec).expect("job runs");
        let metrics = outcome.metrics.as_ref().unwrap();
        let report = sink.report();
        for (family, stats) in &metrics.caches {
            let hits = report
                .counters
                .get(&format!("cache.{family}.hit"))
                .copied()
                .unwrap_or(0);
            let misses = report
                .counters
                .get(&format!("cache.{family}.miss"))
                .copied()
                .unwrap_or(0);
            assert_eq!(
                (stats.hits, stats.misses),
                (hits, misses),
                "family {family}"
            );
        }
        // And the per-job counters must agree with the session stream.
        // (`iter.*` / `warnings` are synthesized by the registry from
        // structured events, so the raw stream has no such counters.)
        for (name, total) in &metrics.counters {
            if name.starts_with("iter.") || name == "warnings" {
                continue;
            }
            assert_eq!(
                report.counters.get(name),
                Some(total),
                "counter {name} diverged between job metrics and session sink"
            );
        }
    }

    #[test]
    fn session_exposition_renders_after_submit() {
        let engine = Engine::builder().caches(SimCaches::private()).build();
        let mut spec = JobSpec::new(small_target());
        spec.kernels = 4;
        spec.iterations = 1;
        let session = engine.session();
        session.submit(&spec).expect("job runs");
        let text = session.exposition();
        assert!(
            text.contains("# TYPE lsopc_span_duration_seconds histogram"),
            "exposition:\n{text}"
        );
        assert!(text.contains("lsopc_events_total"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn scorer_shares_the_f64_simulator_cache() {
        let engine = Engine::builder().caches(SimCaches::private()).build();
        let mut spec = JobSpec::new(small_target());
        spec.kernels = 4;
        spec.iterations = 2;
        engine.submit(&spec).expect("job runs");
        let scorer = engine.scorer(128, 4, None).expect("scorer builds");
        // Same SimKey → the cached simulator, not a fresh build.
        let again = engine.scorer(128, 4, None).expect("scorer rebuilds");
        assert!(Arc::ptr_eq(&scorer.sim, &again.sim));
    }
}
