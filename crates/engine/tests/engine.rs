//! Integration tests for the engine's cache-sharing and session
//! contracts: repeated submissions amortize the shared caches, and
//! concurrent sessions stay bit-identical with cleanly separated
//! scoped trace streams.

use lsopc_engine::{Caches, Engine, JobSpec, Precision};
use lsopc_grid::Grid;
use lsopc_trace::MemorySink;
use std::sync::Arc;

/// A 128px vertical wire; 128px is the smallest power of two whose
/// pixel pitch resolves the optical band of the fixed 2048nm field.
fn target() -> Grid<f64> {
    Grid::from_fn(128, 128, |x, y| {
        if (52..76).contains(&x) && (30..98).contains(&y) {
            1.0
        } else {
            0.0
        }
    })
}

fn small_spec() -> JobSpec {
    let mut spec = JobSpec::new(target());
    spec.kernels = 4;
    spec.iterations = 2;
    spec
}

fn counter(sink: &MemorySink, name: &str) -> u64 {
    sink.report().counters.get(name).copied().unwrap_or(0)
}

/// Two sequential submissions of the same optics: the first job pays
/// the FFT-plan and kernel-spectrum construction misses, the second
/// runs entirely out of the engine's shared caches — and produces the
/// same mask bit for bit.
#[test]
fn second_submission_runs_out_of_the_shared_caches() {
    // Private caches so counters reflect only this engine's jobs, not
    // whatever else ran in this test process.
    let engine = Engine::builder().caches(Caches::private()).build();
    // Mixed precision routes the convolutions through the embedded
    // spectrum cache (the accelerated f64 path windows the kernel set
    // directly), so both cache families show up in the counters.
    let mut spec = small_spec();
    spec.precision = Precision::Mixed;

    let first_sink = Arc::new(MemorySink::new());
    let first = engine
        .session()
        .with_sink(first_sink.clone())
        .submit(&spec)
        .expect("first job runs");
    assert!(
        counter(&first_sink, "cache.plan.miss") > 0,
        "first job builds FFT plans"
    );
    assert!(
        counter(&first_sink, "cache.spectra.miss") > 0,
        "first job transforms the kernel bands"
    );

    let second_sink = Arc::new(MemorySink::new());
    let second = engine
        .session()
        .with_sink(second_sink.clone())
        .submit(&spec)
        .expect("second job runs");
    assert_eq!(
        counter(&second_sink, "cache.plan.miss"),
        0,
        "second job builds no FFT plans"
    );
    assert_eq!(
        counter(&second_sink, "cache.spectra.miss"),
        0,
        "second job re-transforms no kernel bands"
    );
    assert!(counter(&second_sink, "cache.plan.hit") > 0);
    assert!(counter(&second_sink, "cache.spectra.hit") > 0);

    let (a, b) = (first.mask().as_slice(), second.mask().as_slice());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits(), "cache reuse changed the mask");
    }
}

/// Two threads submitting the same spec through one engine: both jobs
/// share the simulator and caches yet produce bit-identical masks, and
/// each session's scoped sink sees only its own thread's events.
#[test]
fn concurrent_sessions_are_bit_identical_with_separate_streams() {
    let engine = Engine::builder().caches(Caches::private()).build();
    // Warm the shared caches once so both threads race on the hit path.
    engine.submit(&small_spec()).expect("warm-up job runs");

    let run = |marker: &'static str| {
        let engine = engine.clone();
        move || {
            let sink = Arc::new(MemorySink::new());
            let session = engine.session().with_sink(sink.clone());
            let outcome = session.scoped(|| {
                lsopc_trace::count(marker, 1);
                session.engine().submit(&small_spec())
            });
            (outcome.expect("concurrent job runs"), sink)
        }
    };
    let a = std::thread::spawn(run("test.marker.a"));
    let b = std::thread::spawn(run("test.marker.b"));
    let (outcome_a, sink_a) = a.join().expect("thread a");
    let (outcome_b, sink_b) = b.join().expect("thread b");

    for (x, y) in outcome_a
        .mask()
        .as_slice()
        .iter()
        .zip(outcome_b.mask().as_slice())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "concurrent jobs diverged");
    }

    // Each scoped stream carries its own marker and its own job's
    // events, not the sibling's.
    assert_eq!(counter(&sink_a, "test.marker.a"), 1);
    assert_eq!(counter(&sink_a, "test.marker.b"), 0);
    assert_eq!(counter(&sink_b, "test.marker.b"), 1);
    assert_eq!(counter(&sink_b, "test.marker.a"), 0);
    assert!(
        counter(&sink_a, "cache.plan.hit") > 0,
        "session a saw its job's cache traffic"
    );
    assert!(
        counter(&sink_b, "cache.plan.hit") > 0,
        "session b saw its job's cache traffic"
    );
}

/// A session's sink only observes work submitted through that session:
/// nothing leaks in from jobs run outside its scope, and nothing it
/// scoped leaks out.
#[test]
fn session_sinks_do_not_leak_across_scopes() {
    let engine = Engine::builder().caches(Caches::private()).build();
    let sink = Arc::new(MemorySink::new());
    let session = engine.session().with_sink(sink.clone());

    session.submit(&small_spec()).expect("scoped job runs");
    let seen = counter(&sink, "cache.plan.miss") + counter(&sink, "cache.plan.hit");
    assert!(seen > 0, "scoped job was observed");

    // The same engine run *outside* the session must not reach its sink.
    engine.submit(&small_spec()).expect("unscoped job runs");
    let after = counter(&sink, "cache.plan.miss") + counter(&sink, "cache.plan.hit");
    assert_eq!(seen, after, "unscoped job leaked into the session sink");
}

/// Engines built with private caches are isolated from each other: one
/// engine's warm cache does not serve another's first job.
#[test]
fn private_caches_isolate_engines() {
    let first = Engine::builder().caches(Caches::private()).build();
    first.submit(&small_spec()).expect("first engine runs");

    let second = Engine::builder().caches(Caches::private()).build();
    let sink = Arc::new(MemorySink::new());
    second
        .session()
        .with_sink(sink.clone())
        .submit(&small_spec())
        .expect("second engine runs");
    assert!(
        counter(&sink, "cache.plan.miss") > 0,
        "a fresh engine pays its own cache misses"
    );
}
