//! Benchmark harness regenerating the paper's Table I, Table II and
//! figures.
//!
//! The binaries in `src/bin/` drive everything:
//!
//! * `table1` — quality comparison (#EPE / PVB / Score) of the four
//!   pixel-ILT baselines and the level-set method on B1–B10;
//! * `table2` — runtime comparison, including the CPU vs accelerated
//!   ("GPU") backends of the level-set method;
//! * `figures` — Fig. 1 metric illustrations, Fig. 2 evolution snapshots
//!   and the convergence-curve data;
//! * `ablation` — CG on/off, `w_pvb` sweep, fused-kernel error and
//!   backend-equality experiments beyond the paper.
//!
//! Common flags: `--grid <px>` (default 512, i.e. 4 nm/px over the 2048 nm
//! field; `--grid 2048` reproduces the contest's 1 nm/px), `--cases 1,3`
//! to subset, `--kernels <K>` (default 24), `--iters <N>`.
//!
//! The library part hosts the shared runner ([`run_suite`]), the method
//! registry ([`Method`]) and the paper's reference numbers ([`paper`]).

#![warn(missing_docs)]

pub mod paper;
pub mod report;
pub mod runner;

pub use runner::{run_suite, CaseOutcome, ExperimentConfig, Method};
