//! The paper's published numbers (Table I and Table II), used to report
//! paper-vs-measured comparisons.

/// One method's Table I row set: per-case `(EPE, PVB nm², score)`.
#[derive(Copy, Clone, Debug)]
pub struct Table1Row {
    /// Method name as printed in the paper.
    pub method: &'static str,
    /// `(#EPE, PVB, Score)` for B1..B10.
    pub cases: [(u32, u64, u64); 10],
    /// The paper's average score.
    pub avg_score: f64,
}

/// Table I: comparison with top winners of ICCAD 2013 and previous
/// algorithms.
pub const TABLE1: [Table1Row; 5] = [
    Table1Row {
        method: "MOSAIC_fast",
        cases: [
            (6, 58232, 263246),
            (10, 47139, 238812),
            (59, 82195, 624101),
            (1, 28244, 118298),
            (6, 56253, 255327),
            (1, 50981, 209238),
            (0, 46309, 185475),
            (2, 22482, 100186),
            (6, 65331, 291646),
            (0, 18868, 75703),
        ],
        avg_score: 236203.0,
    },
    Table1Row {
        method: "MOSAIC_exact",
        cases: [
            (9, 56890, 274267),
            (4, 48312, 214493),
            (52, 84608, 600955),
            (3, 24723, 115161),
            (2, 56299, 237363),
            (1, 49285, 204224),
            (0, 46280, 186761),
            (2, 22342, 100031),
            (3, 62529, 268138),
            (0, 18141, 73276),
        ],
        avg_score: 227467.0,
    },
    Table1Row {
        method: "robust OPC",
        cases: [
            (0, 66218, 265150),
            (0, 53434, 213878),
            (18, 146776, 677256),
            (0, 33266, 133371),
            (1, 65631, 267713),
            (0, 62068, 248625),
            (0, 51069, 204495),
            (0, 25898, 103691),
            (1, 75387, 306667),
            (0, 18536, 74205),
        ],
        avg_score: 249505.0,
    },
    Table1Row {
        method: "PVOPC",
        cases: [
            (2, 58269, 243240),
            (0, 52674, 210826),
            (47, 81541, 561367),
            (0, 26960, 108030),
            (4, 61820, 267342),
            (0, 55090, 220414),
            (0, 51977, 207982),
            (0, 22869, 91541),
            (0, 70713, 282907),
            (0, 17846, 71425),
        ],
        avg_score: 226507.0,
    },
    Table1Row {
        method: "Ours",
        cases: [
            (4, 62693, 270895),
            (1, 50724, 207977),
            (29, 100945, 598994),
            (0, 29831, 119508),
            (1, 56510, 231116),
            (1, 51204, 209881),
            (0, 45056, 180288),
            (1, 22757, 96095),
            (0, 64597, 258466),
            (0, 18769, 75140),
        ],
        avg_score: 224836.0,
    },
];

/// Table II: runtime (seconds) per case for
/// `[MOSAIC_fast, MOSAIC_exact, robust OPC, PVOPC, Ours-CPU, Ours-GPU]`.
pub const TABLE2: [[f64; 6]; 10] = [
    [318.0, 1707.0, 278.0, 164.0, 365.0, 123.0],
    [256.0, 1245.0, 142.0, 130.0, 303.0, 81.0],
    [321.0, 2523.0, 152.0, 203.0, 902.0, 214.0],
    [322.0, 1269.0, 307.0, 190.0, 591.0, 184.0],
    [315.0, 2167.0, 189.0, 62.0, 218.0, 76.0],
    [314.0, 2084.0, 353.0, 54.0, 223.0, 65.0],
    [239.0, 1641.0, 219.0, 74.0, 220.0, 64.0],
    [258.0, 663.0, 99.0, 65.0, 200.0, 67.0],
    [322.0, 3022.0, 119.0, 55.0, 219.0, 63.0],
    [231.0, 712.0, 61.0, 41.0, 206.0, 64.0],
];

/// Table II column labels.
pub const TABLE2_METHODS: [&str; 6] = [
    "MOSAIC_fast",
    "MOSAIC_exact",
    "robust OPC",
    "PVOPC",
    "Ours-CPU",
    "Ours-GPU",
];

/// Average runtimes as printed in the paper.
pub const TABLE2_AVG: [f64; 6] = [289.6, 1703.3, 191.9, 103.8, 344.7, 100.1];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_averages_match_rows() {
        for row in &TABLE1 {
            let avg: f64 = row.cases.iter().map(|&(_, _, s)| s as f64).sum::<f64>() / 10.0;
            // The printed averages round to the nearest integer.
            assert!(
                (avg - row.avg_score).abs() <= 1.0,
                "{}: computed {avg}, printed {}",
                row.method,
                row.avg_score
            );
        }
    }

    #[test]
    fn table2_averages_match_rows() {
        for (m, &printed) in TABLE2_AVG.iter().enumerate() {
            let avg: f64 = TABLE2.iter().map(|row| row[m]).sum::<f64>() / 10.0;
            assert!(
                (avg - printed).abs() <= 0.1,
                "{}: computed {avg}, printed {printed}",
                TABLE2_METHODS[m]
            );
        }
    }

    #[test]
    fn ours_has_best_average_score() {
        let ours = TABLE1.last().expect("five rows");
        assert_eq!(ours.method, "Ours");
        for other in &TABLE1[..4] {
            assert!(ours.avg_score < other.avg_score);
        }
    }

    #[test]
    fn gpu_is_faster_than_cpu_everywhere() {
        for row in &TABLE2 {
            assert!(row[5] < row[4]);
        }
    }
}
