//! Shared experiment runner: method registry + suite loop.

use lsopc_baselines::{MaskOptimizer, PixelIlt, PixelIltMode, PvOpc, RobustOpc};
use lsopc_benchsuite::{CaseSpec, Iccad2013Suite};
use lsopc_core::LevelSetIlt;
use lsopc_geometry::{rasterize, Layout};
use lsopc_grid::Grid;
use lsopc_litho::LithoSimulator;
use lsopc_metrics::{evaluate_mask, ContestScore};
use lsopc_optics::OpticsConfig;
use serde::{Deserialize, Serialize};

/// A method entry of the comparison tables.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// MOSAIC_fast-style pixel ILT.
    MosaicFast,
    /// MOSAIC_exact-style pixel ILT.
    MosaicExact,
    /// Robust OPC-style pixel ILT (two simulated corners/iteration).
    RobustOpc,
    /// PVOPC-style pixel ILT with momentum.
    PvOpc,
    /// The paper's level-set method on the per-kernel FFT backend
    /// ("CPU" column).
    LevelSetCpu,
    /// The paper's level-set method on the accelerated backend
    /// ("GPU" column; see DESIGN.md §2).
    LevelSetGpu,
}

impl Method {
    /// All methods in Table II column order.
    pub fn all() -> [Method; 6] {
        [
            Method::MosaicFast,
            Method::MosaicExact,
            Method::RobustOpc,
            Method::PvOpc,
            Method::LevelSetCpu,
            Method::LevelSetGpu,
        ]
    }

    /// The Table I method set (the level-set entry is the fast backend).
    pub fn table1() -> [Method; 5] {
        [
            Method::MosaicFast,
            Method::MosaicExact,
            Method::RobustOpc,
            Method::PvOpc,
            Method::LevelSetGpu,
        ]
    }

    /// Method label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Method::MosaicFast => "mosaic-fast",
            Method::MosaicExact => "mosaic-exact",
            Method::RobustOpc => "robust-opc",
            Method::PvOpc => "pvopc",
            Method::LevelSetCpu => "levelset-cpu",
            Method::LevelSetGpu => "levelset-gpu",
        }
    }

    /// Parses a label back into a method.
    pub fn parse(label: &str) -> Option<Method> {
        Method::all().into_iter().find(|m| m.label() == label)
    }
}

/// Scale and budget of a suite run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Simulation grid (pixels per side); the pixel size is
    /// `2048 / grid_px` nm.
    pub grid_px: usize,
    /// Optical kernel count `K`.
    pub kernel_count: usize,
    /// Iteration budget of the level-set method.
    pub levelset_iterations: usize,
    /// Iteration budgets of the baselines (fast, exact, robust, pvopc).
    pub baseline_iterations: [usize; 4],
    /// Thread fan-out of the accelerated backend.
    pub threads: usize,
    /// Case indices to run (0-based; empty = all ten).
    pub case_filter: Vec<usize>,
}

impl ExperimentConfig {
    /// The default reproduction scale: 512 px (4 nm/px), K = 24, tuned
    /// iteration budgets (see EXPERIMENTS.md). MOSAIC_exact gets a 4x
    /// budget because its published version iterates to tight convergence
    /// — that is what its Table II runtime column reflects.
    pub fn default_scale() -> Self {
        Self {
            grid_px: 512,
            kernel_count: 24,
            levelset_iterations: 50,
            baseline_iterations: [50, 80, 25, 15],
            threads: 1,
            case_filter: Vec::new(),
        }
    }

    /// Pixel size in nm for the 2048 nm field.
    pub fn pixel_nm(&self) -> f64 {
        2048.0 / self.grid_px as f64
    }

    /// Builds the simulator for one method.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (grid not a power of two or
    /// too small for the optical band).
    pub fn simulator(&self, method: Method) -> LithoSimulator {
        let optics = OpticsConfig::iccad2013().with_kernel_count(self.kernel_count);
        let sim = LithoSimulator::from_optics(&optics, self.grid_px, self.pixel_nm())
            .expect("valid experiment configuration");
        match method {
            // The level-set "GPU" column and all pixel baselines run on
            // the accelerated backend (the paper's baselines are equally
            // FFT-based); the "CPU" column uses the per-kernel FFT path.
            Method::LevelSetCpu => sim,
            Method::LevelSetGpu => sim.with_accelerated_backend(self.threads),
            _ => sim,
        }
    }

    /// Cases selected by the filter.
    pub fn cases(&self) -> Vec<CaseSpec> {
        let suite = Iccad2013Suite::new();
        suite
            .cases()
            .iter()
            .filter(|c| self.case_filter.is_empty() || self.case_filter.contains(&c.index))
            .cloned()
            .collect()
    }
}

/// Everything measured for one `(method, case)` pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CaseOutcome {
    /// Method that produced the mask.
    pub method: Method,
    /// Case name (`B1`..`B10`).
    pub case: String,
    /// Pattern area of the case, nm².
    pub pattern_area_nm2: i64,
    /// EPE violations of the nominal print.
    pub epe_violations: usize,
    /// PV band area, nm².
    pub pvb_nm2: f64,
    /// Shape violations.
    pub shape_violations: usize,
    /// End-to-end optimization runtime, seconds.
    pub runtime_s: f64,
    /// Contest score (Eq. (18)).
    pub score: f64,
}

/// Optimizes one case with one method and measures the contest metrics.
///
/// # Panics
///
/// Panics if the optimization fails (malformed target), which cannot
/// happen for the built-in suite.
pub fn run_case(
    method: Method,
    cfg: &ExperimentConfig,
    case: &CaseSpec,
    layout: &Layout,
) -> CaseOutcome {
    let sim = cfg.simulator(method);
    let target = rasterize(layout, cfg.grid_px, cfg.grid_px, cfg.pixel_nm());
    let (mask, runtime_s) = optimize(method, cfg, &sim, &target);
    let eval = evaluate_mask(&sim, &mask, layout, &target);
    let score = ContestScore {
        runtime_s,
        pvb_nm2: eval.pvb_area_nm2,
        epe_violations: eval.epe.violations,
        shape_violations: eval.shapes.total(),
    };
    CaseOutcome {
        method,
        case: case.name.clone(),
        pattern_area_nm2: case.target_area_nm2,
        epe_violations: eval.epe.violations,
        pvb_nm2: eval.pvb_area_nm2,
        shape_violations: eval.shapes.total(),
        runtime_s,
        score: score.value(),
    }
}

fn optimize(
    method: Method,
    cfg: &ExperimentConfig,
    sim: &LithoSimulator,
    target: &Grid<f64>,
) -> (Grid<f64>, f64) {
    match method {
        Method::MosaicFast => {
            let result = PixelIlt::new(PixelIltMode::Fast)
                .with_iterations(cfg.baseline_iterations[0])
                .optimize(sim, target)
                .expect("suite targets are well-formed");
            (result.mask, result.runtime_s)
        }
        Method::MosaicExact => {
            let result = PixelIlt::new(PixelIltMode::Exact)
                .with_iterations(cfg.baseline_iterations[1])
                .optimize(sim, target)
                .expect("suite targets are well-formed");
            (result.mask, result.runtime_s)
        }
        Method::RobustOpc => {
            let result = RobustOpc::new()
                .with_iterations(cfg.baseline_iterations[2])
                .optimize(sim, target)
                .expect("suite targets are well-formed");
            (result.mask, result.runtime_s)
        }
        Method::PvOpc => {
            let result = PvOpc::new()
                .with_iterations(cfg.baseline_iterations[3])
                .optimize(sim, target)
                .expect("suite targets are well-formed");
            (result.mask, result.runtime_s)
        }
        Method::LevelSetCpu | Method::LevelSetGpu => {
            let result = LevelSetIlt::builder()
                .max_iterations(cfg.levelset_iterations)
                .build()
                .optimize(sim, target)
                .expect("suite targets are well-formed");
            (result.mask, result.runtime_s)
        }
    }
}

/// Runs a set of methods over the (filtered) suite, reporting progress on
/// stderr.
pub fn run_suite(methods: &[Method], cfg: &ExperimentConfig) -> Vec<CaseOutcome> {
    let suite = Iccad2013Suite::new();
    let cases = cfg.cases();
    let mut outcomes = Vec::new();
    for case in &cases {
        let layout = suite.layout(case);
        for &method in methods {
            // allow-print: deliberate stderr progress reporting (fn docs).
            eprintln!(
                "[suite] {} / {} (grid {} px, K = {})",
                case.name,
                method.label(),
                cfg.grid_px,
                cfg.kernel_count
            );
            outcomes.push(run_case(method, cfg, case, &layout));
        }
    }
    outcomes
}

/// Parses the common CLI flags (`--grid`, `--kernels`, `--iters`,
/// `--threads`, `--cases`) into a config; unknown flags are ignored so
/// binaries can add their own.
pub fn config_from_args(args: &[String]) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::default_scale();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--grid" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    cfg.grid_px = v;
                }
            }
            "--kernels" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    cfg.kernel_count = v;
                }
            }
            "--iters" => {
                if let Some(v) = it.next().and_then(|s| s.parse::<usize>().ok()) {
                    cfg.levelset_iterations = v;
                    cfg.baseline_iterations = [v, v, v, v];
                }
            }
            "--threads" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    cfg.threads = v;
                }
            }
            "--cases" => {
                if let Some(list) = it.next() {
                    cfg.case_filter = list
                        .split(',')
                        .filter_map(|t| t.trim().parse::<usize>().ok())
                        .map(|one_based: usize| one_based.saturating_sub(1))
                        .collect();
                }
            }
            _ => {}
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_consistent() {
        let cfg = ExperimentConfig::default_scale();
        assert_eq!(cfg.pixel_nm(), 4.0);
        assert_eq!(cfg.cases().len(), 10);
    }

    #[test]
    fn case_filter_selects_subset() {
        let mut cfg = ExperimentConfig::default_scale();
        cfg.case_filter = vec![0, 9];
        let cases = cfg.cases();
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].name, "B1");
        assert_eq!(cases[1].name, "B10");
    }

    #[test]
    fn args_parse_round_trip() {
        let args: Vec<String> = [
            "--grid",
            "256",
            "--kernels",
            "8",
            "--iters",
            "5",
            "--threads",
            "2",
            "--cases",
            "1,4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = config_from_args(&args);
        assert_eq!(cfg.grid_px, 256);
        assert_eq!(cfg.kernel_count, 8);
        assert_eq!(cfg.levelset_iterations, 5);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.case_filter, vec![0, 3]);
    }

    #[test]
    fn method_labels_round_trip() {
        for m in Method::all() {
            assert_eq!(Method::parse(m.label()), Some(m));
        }
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn tiny_end_to_end_case_runs() {
        // A minimal smoke run: one case, tiny budgets, coarse grid.
        let mut cfg = ExperimentConfig::default_scale();
        cfg.grid_px = 256;
        cfg.kernel_count = 4;
        cfg.levelset_iterations = 2;
        cfg.baseline_iterations = [2, 2, 2, 2];
        cfg.case_filter = vec![3]; // B4, the smallest pattern
        let outcomes = run_suite(&[Method::LevelSetGpu, Method::PvOpc], &cfg);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.runtime_s > 0.0);
            assert!(o.score >= 0.0);
            assert_eq!(o.case, "B4");
        }
    }
}
