//! Table rendering and CSV output.

use crate::runner::{CaseOutcome, Method};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

/// Groups outcomes per case (preserving B1..B10 order) and per method.
pub fn group_by_case(outcomes: &[CaseOutcome]) -> Vec<(String, Vec<&CaseOutcome>)> {
    let mut order: Vec<String> = Vec::new();
    let mut map: BTreeMap<String, Vec<&CaseOutcome>> = BTreeMap::new();
    for o in outcomes {
        if !order.contains(&o.case) {
            order.push(o.case.clone());
        }
        map.entry(o.case.clone()).or_default().push(o);
    }
    order
        .into_iter()
        .map(|case| {
            let rows = map.remove(&case).unwrap_or_default();
            (case, rows)
        })
        .collect()
}

/// Renders the Table I-style quality table to a string (two header
/// rows: method names spanning their `#EPE | PVB | score` columns).
pub fn render_table1(outcomes: &[CaseOutcome], methods: &[Method]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<6}{:>14}", "", ""));
    for m in methods {
        out.push_str(&format!("{:>31}", m.label()));
    }
    out.push('\n');
    out.push_str(&format!("{:<6}{:>14}", "case", "area(nm2)"));
    for _ in methods {
        out.push_str(&format!("{:>8}{:>11}{:>12}", "#EPE", "PVB", "score"));
    }
    out.push('\n');
    let grouped = group_by_case(outcomes);
    let mut sums: BTreeMap<&'static str, f64> = BTreeMap::new();
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for (case, rows) in &grouped {
        let area = rows.first().map_or(0, |o| o.pattern_area_nm2);
        out.push_str(&format!("{case:<6}{area:>14}"));
        for m in methods {
            if let Some(o) = rows.iter().find(|o| o.method == *m) {
                out.push_str(&format!(
                    "{:>8}{:>11.0}{:>12.0}",
                    o.epe_violations, o.pvb_nm2, o.score
                ));
                *sums.entry(m.label()).or_default() += o.score;
                *counts.entry(m.label()).or_default() += 1;
            } else {
                out.push_str(&format!("{:>8}{:>11}{:>12}", "-", "-", "-"));
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<6}{:>14}", "avg", ""));
    for m in methods {
        let label = m.label();
        let avg = sums.get(label).copied().unwrap_or(0.0)
            / counts.get(label).copied().unwrap_or(1).max(1) as f64;
        out.push_str(&format!("{:>8}{:>11}{:>12.0}", "", "", avg));
    }
    out.push('\n');
    out
}

/// Renders the Table II-style runtime table to a string.
pub fn render_table2(outcomes: &[CaseOutcome], methods: &[Method]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<6}", "case"));
    for m in methods {
        out.push_str(&format!("{:>14}", m.label()));
    }
    out.push('\n');
    let grouped = group_by_case(outcomes);
    let mut sums = vec![0.0f64; methods.len()];
    let mut counts = vec![0usize; methods.len()];
    for (case, rows) in &grouped {
        out.push_str(&format!("{case:<6}"));
        for (i, m) in methods.iter().enumerate() {
            if let Some(o) = rows.iter().find(|o| o.method == *m) {
                out.push_str(&format!("{:>14.1}", o.runtime_s));
                sums[i] += o.runtime_s;
                counts[i] += 1;
            } else {
                out.push_str(&format!("{:>14}", "-"));
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<6}", "avg"));
    for (i, _) in methods.iter().enumerate() {
        out.push_str(&format!("{:>14.1}", sums[i] / counts[i].max(1) as f64));
    }
    out.push('\n');
    out
}

/// Writes outcomes as CSV.
///
/// # Errors
///
/// Returns an [`std::io::Error`] when the file cannot be written.
pub fn write_csv(outcomes: &[CaseOutcome], path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut buf = Vec::new();
    writeln!(
        buf,
        "case,method,pattern_area_nm2,epe_violations,pvb_nm2,shape_violations,runtime_s,score"
    )?;
    for o in outcomes {
        writeln!(
            buf,
            "{},{},{},{},{:.1},{},{:.3},{:.1}",
            o.case,
            o.method.label(),
            o.pattern_area_nm2,
            o.epe_violations,
            o.pvb_nm2,
            o.shape_violations,
            o.runtime_s,
            o.score
        )?;
    }
    std::fs::write(path, buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(case: &str, method: Method, score: f64) -> CaseOutcome {
        CaseOutcome {
            method,
            case: case.to_string(),
            pattern_area_nm2: 1000,
            epe_violations: 1,
            pvb_nm2: 500.0,
            shape_violations: 0,
            runtime_s: 2.0,
            score,
        }
    }

    #[test]
    fn grouping_preserves_case_order() {
        let outcomes = vec![
            outcome("B2", Method::PvOpc, 1.0),
            outcome("B1", Method::PvOpc, 2.0),
            outcome("B2", Method::LevelSetGpu, 3.0),
        ];
        let grouped = group_by_case(&outcomes);
        assert_eq!(grouped[0].0, "B2");
        assert_eq!(grouped[0].1.len(), 2);
        assert_eq!(grouped[1].0, "B1");
    }

    #[test]
    fn tables_render_all_methods() {
        let methods = [Method::PvOpc, Method::LevelSetGpu];
        let outcomes = vec![
            outcome("B1", Method::PvOpc, 100.0),
            outcome("B1", Method::LevelSetGpu, 90.0),
        ];
        let t1 = render_table1(&outcomes, &methods);
        assert!(t1.contains("B1"));
        assert!(t1.contains("avg"));
        let t2 = render_table2(&outcomes, &methods);
        assert!(t2.contains("levelset-gpu"));
        assert!(t2.contains("2.0"));
    }

    #[test]
    fn csv_roundtrip_fields() {
        let path = std::env::temp_dir().join(format!("lsopc_csv_{}.csv", std::process::id()));
        write_csv(&[outcome("B1", Method::PvOpc, 1.5)], &path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.starts_with("case,method"));
        assert!(text.contains("B1,pvopc,1000,1,500.0,0,2.000,1.5"));
        std::fs::remove_file(path).ok();
    }
}
