//! Regenerates the paper's **Table I**: #EPE / PVB / Score comparison of
//! MOSAIC_fast, MOSAIC_exact, robust OPC, PVOPC and the level-set method
//! on the B1–B10 suite.
//!
//! ```text
//! cargo run -p lsopc-bench --release --bin table1 [--grid 512] [--cases 1,2,...] [--kernels 24]
//! ```
//!
//! Prints the measured table, the paper's reference numbers, and writes
//! `results/table1.csv`.

use lsopc_bench::report::{render_table1, write_csv};
use lsopc_bench::runner::config_from_args;
use lsopc_bench::{paper, run_suite, Method};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = config_from_args(&args);
    let methods = Method::table1();

    eprintln!(
        "table1: grid {} px ({} nm/px), K = {}, cases = {}",
        cfg.grid_px,
        cfg.pixel_nm(),
        cfg.kernel_count,
        if cfg.case_filter.is_empty() {
            "all".to_string()
        } else {
            format!(
                "{:?}",
                cfg.case_filter.iter().map(|i| i + 1).collect::<Vec<_>>()
            )
        }
    );

    let outcomes = run_suite(&methods, &cfg);

    println!("== Table I (measured, this reproduction) ==");
    println!("{}", render_table1(&outcomes, &methods));

    println!("== Table I (paper, for reference) ==");
    println!(
        "{:<14}{:>10}{:>12}{:>12}",
        "method", "avg #EPE", "avg PVB", "avg score"
    );
    for row in &paper::TABLE1 {
        let epe: f64 = row.cases.iter().map(|&(e, _, _)| e as f64).sum::<f64>() / 10.0;
        let pvb: f64 = row.cases.iter().map(|&(_, p, _)| p as f64).sum::<f64>() / 10.0;
        println!(
            "{:<14}{:>10.1}{:>12.0}{:>12.0}",
            row.method, epe, pvb, row.avg_score
        );
    }

    // Shape check: does the level-set method win on average score?
    let avg_score = |m: Method| {
        let scores: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.method == m)
            .map(|o| o.score)
            .collect();
        scores.iter().sum::<f64>() / scores.len().max(1) as f64
    };
    let ours = avg_score(Method::LevelSetGpu);
    println!("\n== shape check ==");
    for m in [
        Method::MosaicFast,
        Method::MosaicExact,
        Method::RobustOpc,
        Method::PvOpc,
    ] {
        let s = avg_score(m);
        println!(
            "levelset vs {:<13} avg score ratio {:.3} ({})",
            m.label(),
            ours / s,
            if ours <= s { "ours wins" } else { "ours loses" }
        );
    }

    std::fs::create_dir_all("results").ok();
    if let Err(e) = write_csv(&outcomes, "results/table1.csv") {
        eprintln!("warning: could not write results/table1.csv: {e}");
    } else {
        eprintln!("wrote results/table1.csv");
    }
}
