//! Ablation experiments beyond the paper's tables, pinning its design
//! choices:
//!
//! * evolution schemes: PRP conjugate gradient (Section III-C claim) vs
//!   plain descent vs heavy-ball momentum;
//! * `w_pvb` sweep (Section III-B trade-off between EPE and PVB);
//! * the Eq. (17) fused-kernel approximation error (DESIGN.md §7);
//! * the extensions: curvature regularization, backtracking line search,
//!   narrow-band evolution, SRAF seeding, and mask-complexity of
//!   level-set vs pixel-ILT masks.
//!
//! ```text
//! cargo run -p lsopc-bench --release --bin ablation [--grid 512] [--cases 1]
//! ```
//!
//! Writes `results/ablation.csv`.

use lsopc_baselines::{MaskOptimizer, PixelIlt, PixelIltMode};
use lsopc_bench::runner::config_from_args;
use lsopc_bench::Method;
use lsopc_benchsuite::Iccad2013Suite;
use lsopc_core::sraf::{seed_srafs, SrafRule};
use lsopc_core::{Evolution, LevelSetIlt};
use lsopc_geometry::rasterize;
use lsopc_litho::{fused_aerial_image, ProcessCondition};
use lsopc_metrics::{evaluate_mask, MaskComplexity};
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = config_from_args(&args);
    if cfg.case_filter.is_empty() {
        cfg.case_filter = vec![0];
    }
    std::fs::create_dir_all("results").ok();

    let suite = Iccad2013Suite::new();
    let case = cfg.cases().into_iter().next().expect("case selected");
    let layout = suite.layout(&case);
    let sim = cfg.simulator(Method::LevelSetGpu);
    let target = rasterize(&layout, cfg.grid_px, cfg.grid_px, cfg.pixel_nm());
    let mut csv = String::from("experiment,variant,final_cost,epe,pvb_nm2,runtime_s\n");

    eprintln!("ablation: case {}, grid {} px", case.name, cfg.grid_px);

    // ---- 1. Evolution schemes: PRP CG vs plain vs heavy-ball -------------
    for (variant, evolution) in [
        ("prp-cg", Evolution::PrpConjugateGradient),
        ("plain", Evolution::Plain),
        ("heavy-ball", Evolution::HeavyBall { beta: 0.5 }),
    ] {
        let result = LevelSetIlt::builder()
            .max_iterations(cfg.levelset_iterations)
            .evolution(evolution)
            .build()
            .optimize(&sim, &target)
            .expect("well-formed target");
        let eval = evaluate_mask(&sim, &result.mask, &layout, &target);
        let final_cost = result.final_cost();
        println!(
            "evolution / {variant:<10}: final cost {final_cost:>10.2}, #EPE {:>3}, PVB {:>9.0}",
            eval.epe.violations, eval.pvb_area_nm2
        );
        let _ = writeln!(
            csv,
            "evolution,{variant},{final_cost:.3},{},{:.0},{:.3}",
            eval.epe.violations, eval.pvb_area_nm2, result.runtime_s
        );
    }

    // ---- 1b. Line search and narrow band (extensions) ---------------------
    for (variant, line_search, band) in [
        ("baseline", false, 0.0),
        ("line-search", true, 0.0),
        ("narrow-band6", false, 6.0),
    ] {
        let result = LevelSetIlt::builder()
            .max_iterations(cfg.levelset_iterations)
            .line_search(line_search)
            .narrow_band(band)
            .build()
            .optimize(&sim, &target)
            .expect("well-formed target");
        let eval = evaluate_mask(&sim, &result.mask, &layout, &target);
        println!(
            "stabilizers / {variant:<12}: final cost {:>10.2}, #EPE {:>3}, rt {:.2}s",
            result.final_cost(),
            eval.epe.violations,
            result.runtime_s
        );
        let _ = writeln!(
            csv,
            "stabilizers,{variant},{:.3},{},{:.0},{:.3}",
            result.final_cost(),
            eval.epe.violations,
            eval.pvb_area_nm2,
            result.runtime_s
        );
    }

    // ---- 2. w_pvb sweep ----------------------------------------------------
    for w in [0.0, 0.5, 1.0, 2.0] {
        let result = LevelSetIlt::builder()
            .max_iterations(cfg.levelset_iterations)
            .pvb_weight(w)
            .build()
            .optimize(&sim, &target)
            .expect("well-formed target");
        let eval = evaluate_mask(&sim, &result.mask, &layout, &target);
        println!(
            "w_pvb sweep / {w:<4}: #EPE {:>3}, PVB {:>9.0} nm²",
            eval.epe.violations, eval.pvb_area_nm2
        );
        let _ = writeln!(
            csv,
            "w_pvb,{w},{:.3},{},{:.0},{:.3}",
            result.final_cost(),
            eval.epe.violations,
            eval.pvb_area_nm2,
            result.runtime_s
        );
    }

    // ---- 3. Curvature regularization (extension) ---------------------------
    for w in [0.0, 0.5] {
        let result = LevelSetIlt::builder()
            .max_iterations(cfg.levelset_iterations)
            .curvature_weight(w)
            .build()
            .optimize(&sim, &target)
            .expect("well-formed target");
        let eval = evaluate_mask(&sim, &result.mask, &layout, &target);
        println!(
            "curvature / {w:<4}: final cost {:>10.2}, #EPE {:>3}",
            result.final_cost(),
            eval.epe.violations
        );
        let _ = writeln!(
            csv,
            "curvature,{w},{:.3},{},{:.0},{:.3}",
            result.final_cost(),
            eval.epe.violations,
            eval.pvb_area_nm2,
            result.runtime_s
        );
    }

    // ---- 4. Eq. (17) fused-kernel approximation error ----------------------
    let kernels = sim.kernels_for(ProcessCondition::NOMINAL.defocus_nm);
    let exact = sim.aerial(&target, ProcessCondition::NOMINAL);
    let fused = fused_aerial_image(&kernels, &target);
    let (mut num, mut den, mut max_err) = (0.0f64, 0.0f64, 0.0f64);
    for (a, b) in exact.as_slice().iter().zip(fused.as_slice()) {
        num += (a - b) * (a - b);
        den += a * a;
        max_err = max_err.max((a - b).abs());
    }
    let rel = (num / den).sqrt();
    println!(
        "fused kernel (Eq. 17): relative L2 error {rel:.4}, max abs error {max_err:.4} \
         — the fusion is a coherent approximation, not an identity (DESIGN.md §7)"
    );
    let _ = writeln!(csv, "fused_kernel,rel_l2,{rel:.6},0,0,0");
    let _ = writeln!(csv, "fused_kernel,max_abs,{max_err:.6},0,0,0");

    // ---- 5. SRAF seeding (extension) --------------------------------------
    {
        let plain_eval = {
            let result = LevelSetIlt::builder()
                .max_iterations(cfg.levelset_iterations)
                .build()
                .optimize(&sim, &target)
                .expect("well-formed target");
            evaluate_mask(&sim, &result.mask, &layout, &target)
        };
        let seeded_target = seed_srafs(&target, SrafRule::iccad2013_4nm());
        // Seed, then let the optimizer refine from the seeded state by
        // evaluating the seeded mask directly (seeding alone) — the
        // optimizer path starts from the target by design.
        let seeded_eval = evaluate_mask(&sim, &seeded_target, &layout, &target);
        println!(
            "sraf seeding: PVB {:.0} -> {:.0} nm² (optimized-no-sraf vs seeded-unoptimized)",
            plain_eval.pvb_area_nm2, seeded_eval.pvb_area_nm2
        );
        let _ = writeln!(
            csv,
            "sraf,optimized_no_sraf,0,{},{:.0},0",
            plain_eval.epe.violations, plain_eval.pvb_area_nm2
        );
        let _ = writeln!(
            csv,
            "sraf,seeded_unoptimized,0,{},{:.0},0",
            seeded_eval.epe.violations, seeded_eval.pvb_area_nm2
        );
    }

    // ---- 6. Mask complexity: level-set vs pixel ILT -----------------------
    {
        let ls = LevelSetIlt::builder()
            .max_iterations(cfg.levelset_iterations)
            .build()
            .optimize(&sim, &target)
            .expect("well-formed target");
        let px = PixelIlt::new(PixelIltMode::Exact)
            .with_iterations(cfg.levelset_iterations)
            .optimize(&sim, &target)
            .expect("well-formed target");
        let c_ls = MaskComplexity::measure(&ls.mask);
        let c_px = MaskComplexity::measure(&px.mask);
        println!(
            "mask complexity: level-set {} fragments / jaggedness {:.2};              pixel-ilt {} fragments / jaggedness {:.2}              (paper §I: level-set suppresses irregularity)",
            c_ls.fragments, c_ls.jaggedness, c_px.fragments, c_px.jaggedness
        );
        let _ = writeln!(
            csv,
            "complexity,levelset,{:.3},{},0,0",
            c_ls.jaggedness, c_ls.fragments
        );
        let _ = writeln!(
            csv,
            "complexity,pixel_ilt,{:.3},{},0,0",
            c_px.jaggedness, c_px.fragments
        );
    }

    std::fs::write("results/ablation.csv", csv).ok();
    eprintln!("wrote results/ablation.csv");
}
