//! Regenerates the paper's figures:
//!
//! * **Fig. 1(a)** — EPE measurement: probe displacements along target
//!   edges (`results/fig1a_epe_probes.csv`);
//! * **Fig. 1(b)** — PV band: the XOR region between the outer and inner
//!   printed contours (`results/fig1b_pvband.pgm`);
//! * **Fig. 2** — level-set boundary evolution: mask snapshots at the
//!   initial and later iterations (`results/fig2_iterN.pgm` +
//!   `results/fig2_contours.csv`);
//! * convergence curves (CG vs plain gradient), beyond the paper's
//!   figures but matching its Section III-C claim
//!   (`results/convergence.csv`).
//!
//! ```text
//! cargo run -p lsopc-bench --release --bin figures [--grid 512] [--cases 1]
//! ```

use lsopc_bench::runner::config_from_args;
use lsopc_bench::Method;
use lsopc_benchsuite::Iccad2013Suite;
use lsopc_core::LevelSetIlt;
use lsopc_geometry::{extract_contours, rasterize};
use lsopc_grid::write_pgm;
use lsopc_metrics::{evaluate_mask, EpeChecker};
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = config_from_args(&args);
    if cfg.case_filter.is_empty() {
        cfg.case_filter = vec![0]; // B1 by default
    }
    std::fs::create_dir_all("results").ok();

    let suite = Iccad2013Suite::new();
    let case = cfg.cases().into_iter().next().expect("case selected");
    let layout = suite.layout(&case);
    let sim = cfg.simulator(Method::LevelSetGpu);
    let target = rasterize(&layout, cfg.grid_px, cfg.grid_px, cfg.pixel_nm());

    eprintln!(
        "figures: case {}, grid {} px, K = {}",
        case.name, cfg.grid_px, cfg.kernel_count
    );

    // ---- Fig. 2: evolution snapshots -----------------------------------
    let snap_every = (cfg.levelset_iterations / 4).max(1);
    let result = LevelSetIlt::builder()
        .max_iterations(cfg.levelset_iterations)
        .snapshot_interval(snap_every)
        .build()
        .optimize(&sim, &target)
        .expect("suite targets are well-formed");
    let mut contour_csv = String::from("iteration,contour_id,x_px,y_px\n");
    for (iter, mask) in &result.snapshots {
        let path = format!("results/fig2_iter{iter}.pgm");
        if let Err(e) = write_pgm(mask, &path) {
            eprintln!("warning: {e}");
        }
        for (cid, contour) in extract_contours(mask, 0.5).iter().enumerate() {
            for p in &contour.points {
                let _ = writeln!(contour_csv, "{iter},{cid},{:.2},{:.2}", p.x, p.y);
            }
        }
    }
    std::fs::write("results/fig2_contours.csv", contour_csv).ok();
    eprintln!(
        "fig2: {} snapshots written (iterations {:?})",
        result.snapshots.len(),
        result.snapshots.iter().map(|(i, _)| *i).collect::<Vec<_>>()
    );

    // ---- Fig. 1(a): EPE probes ------------------------------------------
    let eval = evaluate_mask(&sim, &result.mask, &layout, &target);
    let checker = EpeChecker::iccad2013();
    let report = checker.check(&layout, &eval.printed_nominal, cfg.pixel_nm());
    let mut epe_csv = String::from("x_nm,y_nm,axis,displacement_nm,violation\n");
    for m in &report.measurements {
        let _ = writeln!(
            epe_csv,
            "{:.1},{:.1},{:?},{},{}",
            m.site.pos.x,
            m.site.pos.y,
            m.site.axis,
            m.displacement_nm
                .map_or("none".to_string(), |d| format!("{d:.2}")),
            m.violation
        );
    }
    std::fs::write("results/fig1a_epe_probes.csv", epe_csv).ok();
    eprintln!(
        "fig1a: {} probes, {} violations",
        report.total_probes, report.violations
    );

    // ---- Fig. 1(b): PV band map ------------------------------------------
    if let Err(e) = write_pgm(&eval.pvb_map, "results/fig1b_pvband.pgm") {
        eprintln!("warning: {e}");
    }
    eprintln!("fig1b: PVB = {:.0} nm²", eval.pvb_area_nm2);

    // ---- Convergence curves: CG vs plain gradient -------------------------
    let mut conv_csv = String::from("iteration,cg_cost,plain_cost\n");
    let cg = result; // reuse the CG run above
    let plain = LevelSetIlt::builder()
        .max_iterations(cfg.levelset_iterations)
        .conjugate_gradient(false)
        .build()
        .optimize(&sim, &target)
        .expect("suite targets are well-formed");
    for i in 0..cg.history.len().max(plain.history.len()) {
        let a = cg
            .history
            .get(i)
            .map_or(String::new(), |r| format!("{:.4}", r.cost_total));
        let b = plain
            .history
            .get(i)
            .map_or(String::new(), |r| format!("{:.4}", r.cost_total));
        let _ = writeln!(conv_csv, "{i},{a},{b}");
    }
    std::fs::write("results/convergence.csv", conv_csv).ok();
    let final_cg = cg.history.last().map_or(f64::NAN, |r| r.cost_total);
    let final_plain = plain.history.last().map_or(f64::NAN, |r| r.cost_total);
    eprintln!(
        "convergence: final cost CG {final_cg:.2} vs plain {final_plain:.2} \
         (paper claims CG improves convergence)"
    );

    println!("figures written to results/ (fig1a, fig1b, fig2_*, convergence.csv)");
}
