//! Runs the full benchmark suite once (all six methods) and regenerates
//! **both** Table I and Table II from the same measurements — the
//! recommended way to reproduce the paper's evaluation in one sitting.
//!
//! ```text
//! cargo run -p lsopc-bench --release --bin tables [--grid 256] [--cases 1,2]
//! ```
//!
//! Writes `results/table1.csv` and `results/table2.csv`.

use lsopc_bench::report::{render_table1, render_table2, write_csv};
use lsopc_bench::runner::config_from_args;
use lsopc_bench::{paper, run_suite, Method};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = config_from_args(&args);
    let methods = Method::all();
    eprintln!(
        "tables: grid {} px ({} nm/px), K = {}, levelset N = {}",
        cfg.grid_px,
        cfg.pixel_nm(),
        cfg.kernel_count,
        cfg.levelset_iterations
    );

    let outcomes = run_suite(&methods, &cfg);
    let table1_methods = Method::table1();

    println!("== Table I (measured; quality) ==");
    println!("{}", render_table1(&outcomes, &table1_methods));
    println!("== Table II (measured; runtime, seconds) ==");
    println!("{}", render_table2(&outcomes, &methods));

    // Shape checks against the paper's claims.
    let avg = |m: Method, f: &dyn Fn(&lsopc_bench::CaseOutcome) -> f64| {
        let xs: Vec<f64> = outcomes.iter().filter(|o| o.method == m).map(f).collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    let score = |m: Method| avg(m, &|o| o.score);
    let rt = |m: Method| avg(m, &|o| o.runtime_s);
    println!("== shape checks ==");
    let ours = score(Method::LevelSetGpu);
    for m in [
        Method::MosaicFast,
        Method::MosaicExact,
        Method::RobustOpc,
        Method::PvOpc,
    ] {
        println!(
            "score: levelset vs {:<13} ratio {:.3} ({})",
            m.label(),
            ours / score(m),
            if ours <= score(m) {
                "ours wins"
            } else {
                "ours loses"
            }
        );
    }
    let (cpu, gpu, exact) = (
        rt(Method::LevelSetCpu),
        rt(Method::LevelSetGpu),
        rt(Method::MosaicExact),
    );
    println!(
        "runtime: accelerated vs cpu reduction {:.1}% (paper 71%)",
        100.0 * (1.0 - gpu / cpu)
    );
    println!(
        "runtime: cpu vs mosaic-exact speedup {:.2}x (paper 4.94x)",
        exact / cpu
    );
    println!(
        "runtime: accelerated fastest overall: {}",
        Method::all()
            .into_iter()
            .filter(|m| *m != Method::LevelSetGpu)
            .all(|m| gpu <= rt(m))
    );
    println!(
        "paper reference averages: scores {:?}, runtimes {:?}",
        paper::TABLE1
            .iter()
            .map(|r| r.avg_score)
            .collect::<Vec<_>>(),
        paper::TABLE2_AVG
    );

    std::fs::create_dir_all("results").ok();
    write_csv(&outcomes, "results/table1.csv").ok();
    write_csv(&outcomes, "results/table2.csv").ok();
    eprintln!("wrote results/table1.csv and results/table2.csv");
}
