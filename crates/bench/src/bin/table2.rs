//! Regenerates the paper's **Table II**: runtime comparison, including the
//! level-set method's CPU (per-kernel FFT) vs "GPU" (accelerated batched)
//! backends.
//!
//! ```text
//! cargo run -p lsopc-bench --release --bin table2 [--grid 512] [--cases 1,2] [--threads 1]
//! ```
//!
//! Prints the measured runtimes, the paper's reference runtimes, the
//! CPU→GPU reduction, and writes `results/table2.csv`.

use lsopc_bench::report::{render_table2, write_csv};
use lsopc_bench::runner::config_from_args;
use lsopc_bench::{paper, run_suite, Method};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = config_from_args(&args);
    let methods = Method::all();

    eprintln!(
        "table2: grid {} px ({} nm/px), K = {}, threads = {}",
        cfg.grid_px,
        cfg.pixel_nm(),
        cfg.kernel_count,
        cfg.threads
    );

    let outcomes = run_suite(&methods, &cfg);

    println!("== Table II (measured, this reproduction; seconds) ==");
    println!("{}", render_table2(&outcomes, &methods));

    println!("== Table II (paper; seconds) ==");
    print!("{:<6}", "case");
    for m in paper::TABLE2_METHODS {
        print!("{m:>14}");
    }
    println!();
    for (i, row) in paper::TABLE2.iter().enumerate() {
        print!("B{:<5}", i + 1);
        for v in row {
            print!("{v:>14.1}");
        }
        println!();
    }
    print!("{:<6}", "avg");
    for v in paper::TABLE2_AVG {
        print!("{v:>14.1}");
    }
    println!();

    // Shape checks the paper reports: GPU ≈ 71 % faster than CPU;
    // ≈ 4.9x vs MOSAIC_exact.
    let avg = |m: Method| {
        let xs: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.method == m)
            .map(|o| o.runtime_s)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    let cpu = avg(Method::LevelSetCpu);
    let gpu = avg(Method::LevelSetGpu);
    let exact = avg(Method::MosaicExact);
    println!("\n== shape check ==");
    println!(
        "levelset accelerated vs cpu: {:.1}% runtime reduction (paper: 71%)",
        100.0 * (1.0 - gpu / cpu)
    );
    println!(
        "levelset cpu vs mosaic-exact: {:.2}x speedup (paper: 4.94x)",
        exact / cpu
    );
    println!(
        "levelset accelerated is fastest: {}",
        Method::all()
            .into_iter()
            .filter(|m| *m != Method::LevelSetGpu)
            .all(|m| gpu <= avg(m))
    );

    std::fs::create_dir_all("results").ok();
    if let Err(e) = write_csv(&outcomes, "results/table2.csv") {
        eprintln!("warning: could not write results/table2.csv: {e}");
    } else {
        eprintln!("wrote results/table2.csv");
    }
}
