//! Microbenchmarks of the FFT substrate (supports the Table II runtime
//! analysis: full-size FFTs dominate the per-iteration cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsopc_fft::{Fft2d, FftPlan};
use lsopc_grid::{Grid, C64};

fn bench_fft_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_1d");
    for &n in &[256usize, 1024, 4096] {
        let plan = FftPlan::<f64>::new(n);
        let data: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf);
                buf
            });
        });
    }
    group.finish();
}

fn bench_fft_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_2d");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        let fft = Fft2d::<f64>::new(n, n);
        let grid = Grid::from_fn(n, n, |x, y| C64::new((x % 7) as f64, (y % 5) as f64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut g = grid.clone();
                fft.forward(&mut g);
                g
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft_1d, bench_fft_2d);
criterion_main!(benches);
