//! Forward-simulation and gradient benchmarks: the CPU (per-kernel FFT)
//! backend against the accelerated ("GPU") backend. These are the
//! building blocks of the paper's Table II runtime story.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsopc_grid::Grid;
use lsopc_litho::{AcceleratedBackend, FftBackend, SimBackend};
use lsopc_optics::OpticsConfig;

fn mask(n: usize) -> Grid<f64> {
    Grid::from_fn(n, n, |x, y| {
        if (n / 4..n / 2).contains(&x) && (n / 4..3 * n / 4).contains(&y) {
            1.0
        } else {
            0.0
        }
    })
}

fn bench_aerial(c: &mut Criterion) {
    let mut group = c.benchmark_group("aerial_image");
    group.sample_size(10);
    for &n in &[256usize, 512] {
        let kernels = OpticsConfig::iccad2013()
            .with_field_nm(2048.0)
            .with_kernel_count(24)
            .kernels(0.0);
        let m = mask(n);
        let fft = FftBackend::new();
        let acc = AcceleratedBackend::new(1);
        group.bench_with_input(BenchmarkId::new("fft_cpu", n), &n, |b, _| {
            b.iter(|| fft.aerial_image(&kernels, &m));
        });
        group.bench_with_input(BenchmarkId::new("accelerated", n), &n, |b, _| {
            b.iter(|| acc.aerial_image(&kernels, &m));
        });
    }
    group.finish();
}

fn bench_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient");
    group.sample_size(10);
    for &n in &[256usize, 512] {
        let kernels = OpticsConfig::iccad2013()
            .with_field_nm(2048.0)
            .with_kernel_count(24)
            .kernels(0.0);
        let m = mask(n);
        let z = Grid::from_fn(n, n, |x, y| 0.01 * ((x + y) % 9) as f64);
        let fft = FftBackend::new();
        let acc = AcceleratedBackend::new(1);
        group.bench_with_input(BenchmarkId::new("fft_cpu", n), &n, |b, _| {
            b.iter(|| fft.gradient(&kernels, &m, &z));
        });
        group.bench_with_input(BenchmarkId::new("accelerated", n), &n, |b, _| {
            b.iter(|| acc.gradient(&kernels, &m, &z));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aerial, bench_gradient);
criterion_main!(benches);
