//! Telemetry cost: histogram record latency and the price of running a
//! simulation pass under a metrics registry sink.
//!
//! Two numbers from DESIGN.md §17, measured honestly:
//!
//! 1. `Histogram::record` per event — one relaxed bucket `fetch_add`
//!    plus count/sum/min/max updates — in a tight loop over samples of
//!    mixed magnitude, so the bucket-index path (leading-zeros plus
//!    shift) is exercised, not just one hot cache line.
//! 2. A 512² / K = 24 `cost_and_gradient` pass untraced versus the same
//!    pass under a scoped [`MetricsRegistry`] (the sink
//!    `lsopc-engine` layers onto every job when per-job metrics are
//!    on, which is the default). Both walls are min-of-N to push back
//!    scheduler noise; the overhead is reported as a percentage and not
//!    gated here — the hard bounds live in
//!    `lsopc-core/tests/trace_overhead.rs`.
//!
//! Writes `BENCH_telemetry.json` to the workspace root. `cargo test`
//! runs this harness with `--test`: a small smoke configuration that
//! asserts the mechanisms engage and writes no JSON.

use lsopc_grid::Grid;
use lsopc_litho::{cost_and_gradient, LithoSimulator};
use lsopc_optics::OpticsConfig;
use lsopc_parallel::ParallelContext;
use lsopc_trace::{Histogram, MetricsRegistry};
use std::sync::Arc;
use std::time::Instant;

struct Config {
    n: usize,
    k: usize,
    record_reps: u64,
    passes: usize,
}

fn sim(cfg: &Config) -> LithoSimulator {
    let pixel_nm = lsopc_benchsuite::FIELD_NM as f64 / cfg.n as f64;
    LithoSimulator::from_optics(
        &OpticsConfig::iccad2013().with_kernel_count(cfg.k),
        cfg.n,
        pixel_nm,
    )
    .expect("valid configuration")
    .with_accelerated_backend(ParallelContext::global().threads())
}

fn target(cfg: &Config) -> Grid<f64> {
    let n = cfg.n;
    Grid::from_fn(n, n, |x, y| {
        let period = n / 8;
        let in_wire = (x % period) >= period / 4 && (x % period) < period / 2;
        if in_wire && (n / 8..7 * n / 8).contains(&y) {
            1.0
        } else {
            0.0
        }
    })
}

/// Minimum wall time of `passes` evaluations, in seconds.
fn min_pass_s(sim: &LithoSimulator, mask: &Grid<f64>, target: &Grid<f64>, passes: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let t = Instant::now();
        let _ = std::hint::black_box(cost_and_gradient(sim, mask, target, 1.0));
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let cfg = if smoke {
        Config {
            n: 128,
            k: 4,
            record_reps: 100_000,
            passes: 2,
        }
    } else {
        Config {
            n: 512,
            k: 24,
            record_reps: 20_000_000,
            passes: 5,
        }
    };

    // 1. Per-event histogram record cost over mixed magnitudes. The
    //    sample stream comes from a cheap LCG; its own cost is measured
    //    and subtracted so the reported number is the record alone.
    let hist = Histogram::new();
    let lcg = |state: &mut u64| {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 20 // ~44-bit values: exercises the log-linear path
    };
    let mut state = 0x5eed;
    let t = Instant::now();
    for _ in 0..cfg.record_reps {
        std::hint::black_box(lcg(&mut state));
    }
    let lcg_ns = t.elapsed().as_nanos() as f64 / cfg.record_reps as f64;
    let mut state = 0x5eed;
    let t = Instant::now();
    for _ in 0..cfg.record_reps {
        hist.record(lcg(&mut state));
    }
    let loop_ns = t.elapsed().as_nanos() as f64 / cfg.record_reps as f64;
    let record_ns = (loop_ns - lcg_ns).max(0.0);
    assert_eq!(hist.count(), cfg.record_reps, "every record landed");
    println!(
        "histogram.record   {record_ns:.1} ns/event ({} events, loop {loop_ns:.1} ns incl. {lcg_ns:.1} ns LCG)",
        cfg.record_reps
    );

    // 2. Untraced vs registry-traced simulation pass.
    let sim = sim(&cfg);
    let tgt = target(&cfg);
    let mask = tgt.clone();
    let _ = cost_and_gradient(&sim, &mask, &tgt, 1.0); // warm caches

    let untraced_s = min_pass_s(&sim, &mask, &tgt, cfg.passes);
    let registry = Arc::new(MetricsRegistry::new());
    let traced_s = lsopc_trace::with_scoped_sink(registry.clone(), || {
        min_pass_s(&sim, &mask, &tgt, cfg.passes)
    });
    let span_events: u64 = registry
        .span_paths()
        .iter()
        .filter_map(|p| registry.span_histogram(p).map(|h| h.count()))
        .sum();
    assert!(span_events > 0, "the registry saw the traced passes");
    let overhead_pct = (traced_s - untraced_s) / untraced_s * 100.0;
    println!(
        "sim pass {}²/K={}  untraced={:.4}s traced={:.4}s ({overhead_pct:+.2}%, {span_events} span events)",
        cfg.n, cfg.k, untraced_s, traced_s
    );

    if smoke {
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"telemetry\",\n",
            "  \"histogram_record_ns\": {record:.2},\n",
            "  \"histogram_record_events\": {reps},\n",
            "  \"grid\": {grid},\n",
            "  \"kernels\": {k},\n",
            "  \"sim_pass_untraced_s\": {off:.5},\n",
            "  \"sim_pass_registry_s\": {on:.5},\n",
            "  \"registry_overhead_pct\": {pct:.3},\n",
            "  \"span_events_per_run\": {events}\n",
            "}}\n"
        ),
        record = record_ns,
        reps = cfg.record_reps,
        grid = cfg.n,
        k = cfg.k,
        off = untraced_s,
        on = traced_s,
        pct = overhead_pct,
        events = span_events,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    std::fs::write(path, json).expect("write BENCH_telemetry.json");
    println!("wrote {path}");
}
