//! Cost of the tracing layer itself.
//!
//! `disabled_*` measures the fast path every instrumentation point pays
//! when no sink is installed (one relaxed atomic load) — the number the
//! <1% production-overhead budget rests on. `memory_*` and `jsonl_*`
//! measure the full per-event cost with a sink attached, and
//! `traced_sim_pass` puts the end-to-end effect on a real 512²/K=8
//! aerial pass next to its untraced twin.

use criterion::{criterion_group, criterion_main, Criterion};
use lsopc_grid::Grid;
use lsopc_litho::{FftBackend, SimBackend};
use lsopc_optics::{KernelSet, OpticsConfig};
use std::sync::Arc;

const N: usize = 512;
const K: usize = 8;

fn kernels() -> KernelSet {
    OpticsConfig::iccad2013()
        .with_field_nm(N as f64)
        .with_kernel_count(K)
        .kernels(0.0)
}

fn mask() -> Grid<f64> {
    Grid::from_fn(N, N, |x, y| {
        if (N / 4..N / 2).contains(&x) && (N / 8..7 * N / 8).contains(&y) {
            1.0
        } else {
            0.0
        }
    })
}

fn bench_trace(c: &mut Criterion) {
    let ks = kernels();
    let m = mask();
    let backend = FftBackend::new();
    let warm = backend.aerial_image(&ks, &m);
    assert!(warm.sum() > 0.0);

    let mut group = c.benchmark_group("trace");

    // The disabled path: what every span!/count() costs in production
    // when no --trace/--metrics sink is installed.
    lsopc_trace::uninstall();
    group.bench_function("disabled_span", |b| {
        b.iter(|| {
            let _ = std::hint::black_box(lsopc_trace::span!("bench.probe"));
        })
    });
    group.bench_function("disabled_count", |b| {
        b.iter(|| lsopc_trace::count("bench.probe", std::hint::black_box(1)))
    });
    group.bench_function("untraced_sim_pass", |b| {
        b.iter(|| backend.aerial_image(&ks, &m))
    });

    // Full per-event cost with the in-memory aggregator attached.
    let memory = Arc::new(lsopc_trace::MemorySink::new());
    lsopc_trace::install(memory.clone());
    group.bench_function("memory_span", |b| {
        b.iter(|| {
            let _ = std::hint::black_box(lsopc_trace::span!("bench.probe"));
        })
    });
    group.bench_function("memory_count", |b| {
        b.iter(|| lsopc_trace::count("bench.probe", std::hint::black_box(1)))
    });
    group.bench_function("traced_sim_pass", |b| {
        b.iter(|| backend.aerial_image(&ks, &m))
    });
    lsopc_trace::uninstall();

    // Event-stream writer cost (to an in-memory buffer, not disk, so
    // the measurement is the serialization + lock, not the filesystem).
    let jsonl = Arc::new(lsopc_trace::JsonlSink::new(Vec::new()));
    lsopc_trace::install(jsonl);
    group.bench_function("jsonl_span", |b| {
        b.iter(|| {
            let _ = std::hint::black_box(lsopc_trace::span!("bench.probe"));
        })
    });
    lsopc_trace::uninstall();

    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
