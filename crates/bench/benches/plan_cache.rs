//! Cached vs cold simulation hot path (the tentpole measurement).
//!
//! `cold_*` replays the pre-cache implementation faithfully: a fresh
//! `Fft2d` plan per call, dense per-kernel spectrum embeddings and full
//! dense transforms. `cached_*` is the production [`FftBackend`], which
//! pulls the shared plan from `lsopc_fft::plan`, applies the sparse
//! cached spectra from the per-`(KernelSet, grid)` cache and runs
//! band-limited transforms that skip provably-zero spectrum columns.
//! Target on the 1024² / K = 24 configuration: ≥ 1.5× per pass.

use criterion::{criterion_group, criterion_main, Criterion};
use lsopc_fft::{wrap_index, Fft2d};
use lsopc_grid::{Grid, C64};
use lsopc_litho::{FftBackend, SimBackend};
use lsopc_optics::{KernelSet, OpticsConfig};

const N: usize = 1024;
const K: usize = 24;

fn kernels() -> KernelSet {
    OpticsConfig::iccad2013()
        .with_field_nm(N as f64) // 1 nm/px
        .with_kernel_count(K)
        .kernels(0.0)
}

fn mask() -> Grid<f64> {
    Grid::from_fn(N, N, |x, y| {
        let a = (N / 8..N / 2).contains(&x) && (N / 4..N / 2).contains(&y);
        let b = (5 * N / 8..7 * N / 8).contains(&x) && (N / 8..7 * N / 8).contains(&y);
        if a || b {
            1.0
        } else {
            0.0
        }
    })
}

fn sensitivity() -> Grid<f64> {
    Grid::from_fn(N, N, |x, y| {
        0.02 * ((x as f64 * 0.21).sin() + (y as f64 * 0.13).cos())
    })
}

/// The seed's aerial pass: fresh plan, dense embeddings, dense FFTs.
fn cold_aerial(kernels: &KernelSet, mask: &Grid<f64>) -> Grid<f64> {
    let (w, h) = mask.dims();
    let fft = Fft2d::<f64>::new(w, h);
    let mhat = fft.forward_real(mask);
    let mut intensity = Grid::new(w, h, 0.0);
    for k in 0..kernels.len() {
        let mut field = kernels.embed_full(k, w, h).zip_map(&mhat, |&s, &m| s * m);
        fft.inverse(&mut field);
        let wk = kernels.weight(k);
        for (dst, e) in intensity.as_mut_slice().iter_mut().zip(field.as_slice()) {
            *dst += wk * e.norm_sqr();
        }
    }
    intensity
}

/// The seed's gradient pass: fresh plan, dense embeddings, dense FFTs.
fn cold_gradient(kernels: &KernelSet, mask: &Grid<f64>, z: &Grid<f64>) -> Grid<f64> {
    let (w, h) = mask.dims();
    let fft = Fft2d::<f64>::new(w, h);
    let mhat = fft.forward_real(mask);
    let mut acc: Grid<C64> = Grid::new(w, h, C64::ZERO);
    let c = kernels.center() as i64;
    for k in 0..kernels.len() {
        let mut field = kernels.embed_full(k, w, h).zip_map(&mhat, |&s, &m| s * m);
        fft.inverse(&mut field);
        for (fv, &zv) in field.as_mut_slice().iter_mut().zip(z.as_slice()) {
            *fv = fv.scale(zv);
        }
        fft.forward(&mut field);
        let window = kernels.spectrum(k);
        let wk = kernels.weight(k);
        for (i, j, &s) in window.iter_coords() {
            if s == C64::ZERO {
                continue;
            }
            let idx = (wrap_index(i as i64 - c, w), wrap_index(j as i64 - c, h));
            acc[idx] += s.conj() * field[idx].scale(wk);
        }
    }
    fft.inverse(&mut acc);
    acc.map(|v| 2.0 * v.re)
}

fn bench_plan_cache(c: &mut Criterion) {
    let ks = kernels();
    let m = mask();
    let z = sensitivity();
    let backend = FftBackend::new();
    // Warm the plan and spectrum caches so `cached_*` measures the
    // steady state the optimizer loop sees.
    let warm = backend.aerial_image(&ks, &m);
    assert!(warm.sum() > 0.0);

    let mut group = c.benchmark_group("sim_pass_1024x1024_k24");
    group.sample_size(2);
    group.bench_function("cold_aerial", |b| b.iter(|| cold_aerial(&ks, &m)));
    group.bench_function("cached_aerial", |b| {
        b.iter(|| backend.aerial_image(&ks, &m))
    });
    group.bench_function("cold_gradient", |b| b.iter(|| cold_gradient(&ks, &m, &z)));
    group.bench_function("cached_gradient", |b| {
        b.iter(|| backend.gradient(&ks, &m, &z))
    });
    group.finish();
}

criterion_group!(benches, bench_plan_cache);
criterion_main!(benches);
