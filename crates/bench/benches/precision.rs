//! Precision throughput: f64 vs f32 vs mixed forward/adjoint passes.
//!
//! Measures aerial-image and gradient wall time at the paper's
//! 1024² / K = 24 configuration for the three CLI precisions, every
//! pass on the same single-lane [`ParallelContext`] so the comparison
//! is pure arithmetic cost, and writes a `BENCH_precision.json`
//! summary to the workspace root next to the parallel-scaling numbers.
//! Each row also records the measured max |Δ| of its aerial image and
//! gradient against the f64 reference on the same mask, so the
//! accuracy cost of each precision ships with its speedup.
//!
//! `cargo test` runs this harness with `--test`; that executes a small
//! smoke configuration once and writes no JSON.

use lsopc_grid::Grid;
use lsopc_litho::{AcceleratedBackend, MixedBackend, SimBackend};
use lsopc_optics::OpticsConfig;
use lsopc_parallel::ParallelContext;
use std::time::Instant;

struct Config {
    n: usize,
    k: usize,
    samples: usize,
}

fn optics(cfg: &Config) -> OpticsConfig {
    OpticsConfig::iccad2013()
        .with_field_nm(cfg.n as f64) // 1 nm/px
        .with_kernel_count(cfg.k)
}

fn mask(n: usize) -> Grid<f64> {
    Grid::from_fn(n, n, |x, y| {
        let a = (n / 8..n / 2).contains(&x) && (n / 4..n / 2).contains(&y);
        let b = (5 * n / 8..7 * n / 8).contains(&x) && (n / 8..7 * n / 8).contains(&y);
        if a || b {
            1.0
        } else {
            0.0
        }
    })
}

fn sensitivity(n: usize) -> Grid<f64> {
    Grid::from_fn(n, n, |x, y| {
        0.02 * ((x as f64 * 0.21).sin() + (y as f64 * 0.13).cos())
    })
}

/// Best-of-`samples` wall time of `f`, after one warm-up call.
fn time_best(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn max_dev(a: &Grid<f64>, b: &Grid<f64>) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

struct Row {
    precision: &'static str,
    aerial_s: f64,
    gradient_s: f64,
    max_aerial_dev: f64,
    max_gradient_dev: f64,
}

fn measure(cfg: &Config) -> Vec<Row> {
    let ctx = ParallelContext::new(1);
    let ks = optics(cfg).kernels(0.0);
    let ks32 = ks.cast::<f32>();
    let m = mask(cfg.n);
    let m32 = m.map(|&v| v as f32);
    let z = sensitivity(cfg.n);
    let z32 = z.map(|&v| v as f32);
    let acc = AcceleratedBackend::with_context(ctx.clone());
    let mixed = MixedBackend::with_context(ctx);

    let ref_aerial: Grid<f64> = acc.aerial_image(&ks, &m);
    let ref_gradient: Grid<f64> = acc.gradient(&ks, &m, &z);
    assert!(ref_aerial.sum() > 0.0);

    let mut rows = Vec::new();

    rows.push(Row {
        precision: "f64",
        aerial_s: time_best(cfg.samples, || {
            let img: Grid<f64> = acc.aerial_image(&ks, &m);
            assert!(img.sum() > 0.0);
        }),
        gradient_s: time_best(cfg.samples, || {
            let g: Grid<f64> = acc.gradient(&ks, &m, &z);
            assert!(g.as_slice().iter().any(|&v| v != 0.0));
        }),
        max_aerial_dev: 0.0,
        max_gradient_dev: 0.0,
    });

    let aerial32: Grid<f32> = acc.aerial_image(&ks32, &m32);
    let gradient32: Grid<f32> = acc.gradient(&ks32, &m32, &z32);
    rows.push(Row {
        precision: "f32",
        aerial_s: time_best(cfg.samples, || {
            let img: Grid<f32> = acc.aerial_image(&ks32, &m32);
            assert!(img.sum() > 0.0);
        }),
        gradient_s: time_best(cfg.samples, || {
            let g: Grid<f32> = acc.gradient(&ks32, &m32, &z32);
            assert!(g.as_slice().iter().any(|&v| v != 0.0));
        }),
        max_aerial_dev: max_dev(&aerial32.map(|&v| v as f64), &ref_aerial),
        max_gradient_dev: max_dev(&gradient32.map(|&v| v as f64), &ref_gradient),
    });

    let aerial_mx = mixed.aerial_image(&ks, &m);
    let gradient_mx = mixed.gradient(&ks, &m, &z);
    rows.push(Row {
        precision: "mixed",
        aerial_s: time_best(cfg.samples, || {
            let img = mixed.aerial_image(&ks, &m);
            assert!(img.sum() > 0.0);
        }),
        gradient_s: time_best(cfg.samples, || {
            let g = mixed.gradient(&ks, &m, &z);
            assert!(g.as_slice().iter().any(|&v| v != 0.0));
        }),
        max_aerial_dev: max_dev(&aerial_mx, &ref_aerial),
        max_gradient_dev: max_dev(&gradient_mx, &ref_gradient),
    });

    rows
}

fn write_json(cfg: &Config, rows: &[Row]) {
    let base = &rows[0];
    let mut entries = Vec::new();
    for r in rows {
        entries.push(format!(
            concat!(
                "    {{\"precision\": \"{}\", \"aerial_s\": {:.6}, \"gradient_s\": {:.6}, ",
                "\"aerial_speedup\": {:.3}, \"gradient_speedup\": {:.3}, ",
                "\"max_aerial_dev\": {:.3e}, \"max_gradient_dev\": {:.3e}}}"
            ),
            r.precision,
            r.aerial_s,
            r.gradient_s,
            base.aerial_s / r.aerial_s,
            base.gradient_s / r.gradient_s,
            r.max_aerial_dev,
            r.max_gradient_dev,
        ));
    }
    let note = concat!(
        "speedups are relative to the f64 row on one lane; ",
        "max_*_dev is the measured max |delta| vs the f64 backend on the ",
        "same mask (aerial intensity is O(1), gradient O(0.01)). ",
        "mixed is slower than f64 on CPU: it pays f32 transforms plus a ",
        "per-kernel f64 widening/accumulation pass; the pattern models GPU ",
        "master weights, where the f32 math is nearly free. ",
        "See DESIGN.md section 11 for the precision model."
    );
    let json = format!(
        "{{\n  \"benchmark\": \"precision\",\n  \"grid\": {},\n  \"kernels\": {},\n  \
         \"host_lanes\": {},\n  \"samples_per_point\": {},\n  \"rows\": [\n{}\n  ],\n  \
         \"note\": \"{}\"\n}}\n",
        cfg.n,
        cfg.k,
        ParallelContext::global().threads(),
        cfg.samples,
        entries.join(",\n"),
        note
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_precision.json");
    std::fs::write(path, json).expect("write BENCH_precision.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let cfg = if smoke {
        Config {
            n: 64,
            k: 4,
            samples: 1,
        }
    } else {
        Config {
            n: 1024,
            k: 24,
            samples: 2,
        }
    };
    let rows = measure(&cfg);
    for row in &rows {
        println!(
            "precision={:<5} aerial={:.4}s gradient={:.4}s max_dev(aerial)={:.2e} max_dev(grad)={:.2e}",
            row.precision, row.aerial_s, row.gradient_s, row.max_aerial_dev, row.max_gradient_dev
        );
    }
    if !smoke {
        write_json(&cfg, &rows);
    }
}
