//! Thread-scaling of the parallel execution layer.
//!
//! Measures aerial-image, gradient and one full optimizer iteration at
//! the paper's 1024² / K = 24 configuration for thread counts
//! {1, 2, 4, 8}, each on its own [`ParallelContext`] over a persistent
//! pool, and writes a `BENCH_parallel.json` scaling summary to the
//! workspace root, next to the plan-cache numbers.
//!
//! `cargo test` runs this harness with `--test`; that executes a small
//! smoke configuration once and writes no JSON. The speedup column is a
//! property of the host: on a single-core machine every context has one
//! lane and all rows measure the same inline path.

use lsopc_core::LevelSetIlt;
use lsopc_grid::Grid;
use lsopc_litho::{AcceleratedBackend, LithoSimulator, SimBackend};
use lsopc_optics::{KernelSet, OpticsConfig};
use lsopc_parallel::ParallelContext;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Config {
    n: usize,
    k: usize,
    samples: usize,
}

fn kernels(cfg: &Config) -> KernelSet {
    optics(cfg).kernels(0.0)
}

fn optics(cfg: &Config) -> OpticsConfig {
    OpticsConfig::iccad2013()
        .with_field_nm(cfg.n as f64) // 1 nm/px
        .with_kernel_count(cfg.k)
}

fn mask(n: usize) -> Grid<f64> {
    Grid::from_fn(n, n, |x, y| {
        let a = (n / 8..n / 2).contains(&x) && (n / 4..n / 2).contains(&y);
        let b = (5 * n / 8..7 * n / 8).contains(&x) && (n / 8..7 * n / 8).contains(&y);
        if a || b {
            1.0
        } else {
            0.0
        }
    })
}

fn sensitivity(n: usize) -> Grid<f64> {
    Grid::from_fn(n, n, |x, y| {
        0.02 * ((x as f64 * 0.21).sin() + (y as f64 * 0.13).cos())
    })
}

/// Best-of-`samples` wall time of `f`, after one warm-up call.
fn time_best(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    threads: usize,
    aerial_s: f64,
    gradient_s: f64,
    iteration_s: f64,
}

fn measure(cfg: &Config, threads: usize) -> Row {
    let ctx = ParallelContext::new(threads);
    let ks = kernels(cfg);
    let m = mask(cfg.n);
    let z = sensitivity(cfg.n);
    let backend = AcceleratedBackend::with_context(ctx.clone());
    let aerial_s = time_best(cfg.samples, || {
        let img = backend.aerial_image(&ks, &m);
        assert!(img.sum() > 0.0);
    });
    let gradient_s = time_best(cfg.samples, || {
        let g = backend.gradient(&ks, &m, &z);
        assert!(g.as_slice().iter().any(|&v| v != 0.0));
    });

    let sim = LithoSimulator::from_optics(&optics(cfg), cfg.n, 1.0)
        .expect("valid configuration")
        .with_backend(Box::new(AcceleratedBackend::with_context(ctx)));
    let opt = LevelSetIlt::builder().max_iterations(1).build();
    let target = mask(cfg.n);
    let iteration_s = time_best(cfg.samples, || {
        let result = opt.optimize(&sim, &target).expect("one iteration");
        assert_eq!(result.iterations, 1);
    });

    Row {
        threads,
        aerial_s,
        gradient_s,
        iteration_s,
    }
}

fn write_json(cfg: &Config, rows: &[Row]) {
    let base = &rows[0];
    let mut entries = Vec::new();
    for r in rows {
        entries.push(format!(
            concat!(
                "    {{\"threads\": {}, \"aerial_s\": {:.6}, \"gradient_s\": {:.6}, ",
                "\"iteration_s\": {:.6}, \"aerial_speedup\": {:.3}, ",
                "\"gradient_speedup\": {:.3}, \"iteration_speedup\": {:.3}}}"
            ),
            r.threads,
            r.aerial_s,
            r.gradient_s,
            r.iteration_s,
            base.aerial_s / r.aerial_s,
            base.gradient_s / r.gradient_s,
            base.iteration_s / r.iteration_s,
        ));
    }
    let host_lanes = ParallelContext::global().threads();
    let json = format!(
        "{{\n  \"benchmark\": \"parallel_scaling\",\n  \"grid\": {},\n  \"kernels\": {},\n  \
         \"host_lanes\": {},\n  \"samples_per_point\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        cfg.n,
        cfg.k,
        host_lanes,
        cfg.samples,
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, json).expect("write BENCH_parallel.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let cfg = if smoke {
        Config {
            n: 64,
            k: 4,
            samples: 1,
        }
    } else {
        Config {
            n: 1024,
            k: 24,
            samples: 2,
        }
    };
    let mut rows = Vec::new();
    for &t in &THREADS {
        let row = measure(&cfg, t);
        println!(
            "threads={:<2} aerial={:.4}s gradient={:.4}s iteration={:.4}s",
            row.threads, row.aerial_s, row.gradient_s, row.iteration_s
        );
        rows.push(row);
    }
    if !smoke {
        write_json(&cfg, &rows);
    }
}
