//! Level-set toolkit benchmarks: signed distance transform and upwind
//! gradient (the non-simulation part of each optimizer iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsopc_grid::Grid;
use lsopc_levelset::{godunov_gradient, gradient_magnitude, signed_distance};

fn mask(n: usize) -> Grid<f64> {
    Grid::from_fn(n, n, |x, y| {
        let a = (n / 8..n / 3).contains(&x) && (n / 8..7 * n / 8).contains(&y);
        let b = (n / 2..3 * n / 4).contains(&x) && (n / 4..n / 2).contains(&y);
        if a || b {
            1.0
        } else {
            0.0
        }
    })
}

fn bench_sdf(c: &mut Criterion) {
    let mut group = c.benchmark_group("signed_distance");
    for &n in &[256usize, 512, 1024] {
        let m = mask(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| signed_distance(&m));
        });
    }
    group.finish();
}

fn bench_gradients(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient_schemes");
    for &n in &[256usize, 512] {
        let psi = signed_distance(&mask(n));
        let speed = Grid::from_fn(n, n, |x, y| ((x * 3 + y) % 5) as f64 - 2.0);
        group.bench_with_input(BenchmarkId::new("central", n), &n, |b, _| {
            b.iter(|| gradient_magnitude(&psi));
        });
        group.bench_with_input(BenchmarkId::new("godunov", n), &n, |b, _| {
            b.iter(|| godunov_gradient(&psi, &speed));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sdf, bench_gradients);
criterion_main!(benches);
