//! Coarse-to-fine schedule and warm-start cache on a repeated-pattern
//! workload.
//!
//! Two claims from DESIGN.md §14, measured at the paper's 1024² / K = 24
//! configuration on the [`RepeatedTileSpec`] layout (16 identical contact
//! motifs on a 512 nm cell grid):
//!
//! 1. A [`ResolutionSchedule`] spends most iterations on a quarter-size
//!    grid with half the kernel rank, so a scheduled full-grid run beats
//!    the flat run's wall-clock at a matched iteration budget.
//! 2. A [`WarmStartCache`] on a [`TiledIlt`] run collapses the 16
//!    translation-equivalent tiles onto one cache key, so all but the
//!    first tile skip to a short warm refinement — far fewer
//!    full-resolution iterations than the uncached run.
//!
//! Writes `BENCH_warmstart.json` to the workspace root. `cargo test`
//! runs this harness with `--test`: a small smoke configuration that
//! asserts both mechanisms engage and writes no JSON.

use lsopc_benchsuite::RepeatedTileSpec;
use lsopc_core::{LevelSetIlt, ResolutionSchedule, TiledIlt, TiledStats, WarmStartCache};
use lsopc_geometry::{rasterize, Layout};
use lsopc_grid::Grid;
use lsopc_litho::LithoSimulator;
use lsopc_metrics::evaluate_mask;
use lsopc_optics::OpticsConfig;
use std::time::Instant;

struct Config {
    /// Full-grid side, px. The 2048 nm field fixes `pixel_nm`.
    n: usize,
    /// Kernel rank of the fine (and flat) stage.
    k: usize,
    /// Iteration budget per tile / per full-grid run.
    iters: usize,
    /// Warm-tile refinement budget.
    warm_iters: usize,
}

impl Config {
    fn pixel_nm(&self) -> f64 {
        lsopc_benchsuite::FIELD_NM as f64 / self.n as f64
    }

    /// Tile core matching the 512 nm cell period, so every populated
    /// tile is the same motif up to whole-pixel translation.
    fn core_px(&self, spec: &RepeatedTileSpec) -> usize {
        (spec.cell_nm as f64 / self.pixel_nm()) as usize
    }
}

fn optics(cfg: &Config) -> OpticsConfig {
    OpticsConfig::iccad2013().with_kernel_count(cfg.k)
}

fn target(cfg: &Config, spec: &RepeatedTileSpec) -> Grid<f64> {
    rasterize(&spec.generate(), cfg.n, cfg.n, cfg.pixel_nm())
}

struct FullRun {
    wall_s: f64,
    full_iterations: usize,
    coarse_iterations: usize,
    final_cost: f64,
    quality: Quality,
}

/// Contest-metric quality of a final mask (EPE violations at the
/// nominal print, PV band area), the same quantities
/// `tests/precision_tolerance.rs` bounds across precisions.
#[derive(Copy, Clone, Default)]
struct Quality {
    epe_violations: usize,
    pvb_nm2: f64,
}

fn quality(cfg: &Config, layout: &Layout, tgt: &Grid<f64>, mask: &Grid<f64>) -> Quality {
    let sim = LithoSimulator::from_optics(&optics(cfg), cfg.n, cfg.pixel_nm())
        .expect("valid configuration")
        .with_accelerated_backend(1);
    let eval = evaluate_mask(&sim, mask, layout, tgt);
    Quality {
        epe_violations: eval.epe.violations,
        pvb_nm2: eval.pvb_area_nm2,
    }
}

/// One untiled full-grid run, flat or scheduled.
fn run_full(cfg: &Config, tgt: &Grid<f64>, scheduled: bool) -> (FullRun, Grid<f64>) {
    let sim = LithoSimulator::from_optics(&optics(cfg), cfg.n, cfg.pixel_nm())
        .expect("valid configuration")
        .with_accelerated_backend(1);
    let schedule = if scheduled {
        Some(
            ResolutionSchedule::auto(cfg.n, sim.optics(), cfg.iters)
                .expect("grid is schedulable at this size"),
        )
    } else {
        None
    };
    let opt = LevelSetIlt::builder()
        .max_iterations(cfg.iters)
        .schedule(schedule)
        .build();
    let t = Instant::now();
    let result = opt.optimize(&sim, tgt).expect("full-grid run");
    let wall_s = t.elapsed().as_secs_f64();
    let run = FullRun {
        wall_s,
        full_iterations: result.iterations - result.coarse_iterations,
        coarse_iterations: result.coarse_iterations,
        final_cost: result.final_cost(),
        quality: Quality::default(),
    };
    (run, result.mask)
}

struct TiledRun {
    wall_s: f64,
    stats: TiledStats,
    quality: Quality,
}

/// One tiled run over the repeated layout, optionally warm-started.
fn run_tiled(
    cfg: &Config,
    spec: &RepeatedTileSpec,
    tgt: &Grid<f64>,
    cache: Option<WarmStartCache>,
) -> (TiledRun, Grid<f64>) {
    let opt = LevelSetIlt::builder().max_iterations(cfg.iters).build();
    let mut ilt = TiledIlt::new(opt, cfg.core_px(spec), 0)
        .expect("valid tiling")
        .with_warm_iterations(cfg.warm_iters);
    if let Some(cache) = cache {
        ilt = ilt.with_warm_start(cache);
    }
    let t = Instant::now();
    let (mask, stats) = ilt
        .optimize_with_stats(&optics(cfg), tgt, cfg.pixel_nm())
        .expect("tiled run");
    let wall_s = t.elapsed().as_secs_f64();
    let run = TiledRun {
        wall_s,
        stats,
        quality: Quality::default(),
    };
    (run, mask)
}

fn tiled_entry(name: &str, r: &TiledRun) -> String {
    format!(
        concat!(
            "    {{\"variant\": \"{}\", \"wall_s\": {:.4}, \"tiles\": {}, ",
            "\"cold\": {}, \"warm\": {}, \"full_iterations\": {}, ",
            "\"coarse_iterations\": {}, \"epe_violations\": {}, ",
            "\"pvb_nm2\": {:.0}}}"
        ),
        name,
        r.wall_s,
        r.stats.tiles,
        r.stats.cold,
        r.stats.warm,
        r.stats.full_iterations(),
        r.stats.coarse_iterations,
        r.quality.epe_violations,
        r.quality.pvb_nm2,
    )
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    cfg: &Config,
    spec: &RepeatedTileSpec,
    flat: &FullRun,
    scheduled: &FullRun,
    no_cache: &TiledRun,
    cold: &TiledRun,
    warm: &TiledRun,
) {
    let full_entries = [("flat", flat), ("scheduled", scheduled)]
        .iter()
        .map(|(name, r)| {
            format!(
                concat!(
                    "    {{\"variant\": \"{}\", \"wall_s\": {:.4}, ",
                    "\"full_iterations\": {}, \"coarse_iterations\": {}, ",
                    "\"final_cost\": {:.4}, \"epe_violations\": {}, ",
                    "\"pvb_nm2\": {:.0}}}"
                ),
                name,
                r.wall_s,
                r.full_iterations,
                r.coarse_iterations,
                r.final_cost,
                r.quality.epe_violations,
                r.quality.pvb_nm2
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let tiled_entries = [
        ("no_cache", no_cache),
        ("cold_cache", cold),
        ("warm_cache", warm),
    ]
    .iter()
    .map(|(name, r)| tiled_entry(name, r))
    .collect::<Vec<_>>()
    .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"warmstart\",\n",
            "  \"grid\": {grid},\n",
            "  \"kernels\": {k},\n",
            "  \"pixel_nm\": {px},\n",
            "  \"iterations\": {iters},\n",
            "  \"warm_iterations\": {warm_iters},\n",
            "  \"tile_core_px\": {core},\n",
            "  \"tile_halo_px\": 0,\n",
            "  \"full_grid\": [\n{full}\n  ],\n",
            "  \"schedule_speedup\": {sched_speedup:.3},\n",
            "  \"tiled\": [\n{tiled}\n  ],\n",
            "  \"warm_iteration_reduction\": {warm_red:.3}\n",
            "}}\n"
        ),
        grid = cfg.n,
        k = cfg.k,
        px = cfg.pixel_nm(),
        iters = cfg.iters,
        warm_iters = cfg.warm_iters,
        core = cfg.core_px(spec),
        full = full_entries,
        sched_speedup = flat.wall_s / scheduled.wall_s,
        tiled = tiled_entries,
        warm_red = no_cache.stats.full_iterations() as f64 / warm.stats.full_iterations() as f64,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_warmstart.json");
    std::fs::write(path, json).expect("write BENCH_warmstart.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let cfg = if smoke {
        Config {
            n: 256,
            k: 4,
            iters: 3,
            warm_iters: 1,
        }
    } else {
        Config {
            n: 1024,
            k: 24,
            iters: 9,
            warm_iters: 3,
        }
    };
    let spec = RepeatedTileSpec::default_repeated();
    let tgt = target(&cfg, &spec);
    let tiles = spec.cells_per_side() * spec.cells_per_side();

    let layout = spec.generate();

    let (mut flat, flat_mask) = run_full(&cfg, &tgt, false);
    flat.quality = quality(&cfg, &layout, &tgt, &flat_mask);
    println!(
        "full flat      wall={:.3}s full_iters={} cost={:.1} epe={} pvb={:.0}",
        flat.wall_s,
        flat.full_iterations,
        flat.final_cost,
        flat.quality.epe_violations,
        flat.quality.pvb_nm2
    );
    let (mut scheduled, scheduled_mask) = run_full(&cfg, &tgt, true);
    scheduled.quality = quality(&cfg, &layout, &tgt, &scheduled_mask);
    println!(
        "full scheduled wall={:.3}s full_iters={} coarse_iters={} cost={:.1} epe={} pvb={:.0}",
        scheduled.wall_s,
        scheduled.full_iterations,
        scheduled.coarse_iterations,
        scheduled.final_cost,
        scheduled.quality.epe_violations,
        scheduled.quality.pvb_nm2
    );

    let (mut no_cache, no_cache_mask) = run_tiled(&cfg, &spec, &tgt, None);
    no_cache.quality = quality(&cfg, &layout, &tgt, &no_cache_mask);
    println!("tiled {}", tiled_entry("no_cache", &no_cache).trim_start());
    // One cache across two runs: the first populates it (one cold solve,
    // in-run repeats warm), the second is the repeat-customer case where
    // every tile warm-starts from the cache.
    let cache = WarmStartCache::in_memory();
    let (mut cold, cold_mask) = run_tiled(&cfg, &spec, &tgt, Some(cache.clone()));
    cold.quality = quality(&cfg, &layout, &tgt, &cold_mask);
    println!("tiled {}", tiled_entry("cold_cache", &cold).trim_start());
    let (mut warm, warm_mask) = run_tiled(&cfg, &spec, &tgt, Some(cache));
    warm.quality = quality(&cfg, &layout, &tgt, &warm_mask);
    println!("tiled {}", tiled_entry("warm_cache", &warm).trim_start());

    // The two claims this bench exists to document, checked in both
    // modes so the smoke run guards the mechanisms.
    assert!(
        scheduled.coarse_iterations > 0 && scheduled.full_iterations < flat.full_iterations,
        "schedule must shift iterations onto the coarse grid"
    );
    assert_eq!(
        (no_cache.stats.tiles, no_cache.stats.cold),
        (tiles, tiles),
        "every populated tile solves cold without a cache"
    );
    assert_eq!(
        (cold.stats.cold, cold.stats.warm),
        (1, tiles - 1),
        "repeated tiles collapse onto one cold representative"
    );
    assert_eq!(
        (warm.stats.cold, warm.stats.warm),
        (0, tiles),
        "a populated cache warm-starts every tile"
    );
    assert!(
        no_cache.stats.full_iterations() >= 2 * warm.stats.full_iterations(),
        "warm-start must cut full-resolution iterations at least 2x"
    );

    if !smoke {
        // Quality bounds in the style of tests/precision_tolerance.rs:
        // the cheap variant must match its reference within ±3 EPE
        // violations and 10 % PV band area. Only checked at the full
        // configuration — the smoke budget is too short for any
        // variant's mask to be near-converged.
        for (name, q, r) in [
            ("scheduled vs flat", scheduled.quality, flat.quality),
            ("warm vs no_cache", warm.quality, no_cache.quality),
        ] {
            assert!(
                q.epe_violations <= r.epe_violations + 3,
                "{name}: EPE {} exceeds reference {} + 3",
                q.epe_violations,
                r.epe_violations
            );
            assert!(
                (q.pvb_nm2 - r.pvb_nm2).abs() <= 0.10 * r.pvb_nm2,
                "{name}: PVB {} vs reference {}",
                q.pvb_nm2,
                r.pvb_nm2
            );
        }
        write_json(&cfg, &spec, &flat, &scheduled, &no_cache, &cold, &warm);
    }
}
