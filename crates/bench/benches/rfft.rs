//! Real-input FFT throughput: the dense complex path vs the half-spectrum
//! fast path ([`RfftPlan`]), at the paper's 1024² / K = 24 configuration.
//!
//! Two groups of rows, all on the same single-lane [`ParallelContext`]:
//!
//! * raw transforms — mask → spectrum (`forward`) and spectrum → real
//!   image (`inverse`), the steps the rfft trick halves;
//! * whole backend passes — aerial and gradient for [`FftBackend`] and
//!   [`AcceleratedBackend`] with the routing off vs on, each rfft row
//!   recording its measured max |Δ| against the dense pass it replaces.
//!
//! Writes a `BENCH_rfft.json` summary to the workspace root next to the
//! other benchmark reports.
//!
//! `cargo test` runs this harness with `--test`; that executes a small
//! smoke configuration once and writes no JSON.
//!
//! [`RfftPlan`]: lsopc_fft::RfftPlan
//! [`FftBackend`]: lsopc_litho::FftBackend
//! [`AcceleratedBackend`]: lsopc_litho::AcceleratedBackend

use lsopc_grid::Grid;
use lsopc_litho::{AcceleratedBackend, FftBackend, SimBackend};
use lsopc_optics::OpticsConfig;
use lsopc_parallel::ParallelContext;
use std::time::Instant;

struct Config {
    n: usize,
    k: usize,
    samples: usize,
}

fn optics(cfg: &Config) -> OpticsConfig {
    OpticsConfig::iccad2013()
        .with_field_nm(cfg.n as f64) // 1 nm/px
        .with_kernel_count(cfg.k)
}

fn mask(n: usize) -> Grid<f64> {
    Grid::from_fn(n, n, |x, y| {
        let a = (n / 8..n / 2).contains(&x) && (n / 4..n / 2).contains(&y);
        let b = (5 * n / 8..7 * n / 8).contains(&x) && (n / 8..7 * n / 8).contains(&y);
        if a || b {
            1.0
        } else {
            0.0
        }
    })
}

fn sensitivity(n: usize) -> Grid<f64> {
    Grid::from_fn(n, n, |x, y| {
        0.02 * ((x as f64 * 0.21).sin() + (y as f64 * 0.13).cos())
    })
}

/// Best-of-`samples` wall time of `f`, after one warm-up call.
fn time_best(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn max_dev(a: &Grid<f64>, b: &Grid<f64>) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

struct Row {
    op: &'static str,
    dense_s: f64,
    rfft_s: f64,
    max_dev: f64,
}

fn transform_rows(cfg: &Config, ctx: &ParallelContext) -> Vec<Row> {
    let n = cfg.n;
    let m = mask(n);
    let fft = lsopc_fft::plan_t::<f64>(n, n);
    let rplan = lsopc_fft::rplan_t::<f64>(n, n);

    let dense_spec = fft.forward_real(&m);
    let half_spec = rplan.forward_with(ctx, &m);
    let mut rows = Vec::new();

    rows.push(Row {
        op: "forward (mask -> spectrum)",
        dense_s: time_best(cfg.samples, || {
            let s = fft.forward_real(&m);
            assert!(s.as_slice()[0].norm() > 0.0);
        }),
        rfft_s: time_best(cfg.samples, || {
            let s = rplan.forward_with(ctx, &m);
            assert!(s.as_slice()[0].norm() > 0.0);
        }),
        // The forward spectra agree by the proptest suite; the deviation
        // that matters downstream is measured on the real outputs below.
        max_dev: 0.0,
    });

    let dense_inv = {
        let mut g = dense_spec.clone();
        fft.inverse(&mut g);
        g.map(|v| v.re)
    };
    let rfft_inv = rplan.inverse_with(ctx, &half_spec);
    rows.push(Row {
        op: "inverse (spectrum -> real image)",
        dense_s: time_best(cfg.samples, || {
            let mut g = dense_spec.clone();
            fft.inverse(&mut g);
            assert!(g.as_slice()[0].re.is_finite());
        }),
        rfft_s: time_best(cfg.samples, || {
            let g = rplan.inverse_with(ctx, &half_spec);
            assert!(g.as_slice()[0].is_finite());
        }),
        max_dev: max_dev(&rfft_inv, &dense_inv),
    });
    rows
}

fn backend_rows(cfg: &Config, ctx: &ParallelContext) -> Vec<Row> {
    let ks = optics(cfg).kernels(0.0);
    let m = mask(cfg.n);
    let z = sensitivity(cfg.n);
    let mut rows = Vec::new();

    macro_rules! pass {
        ($op:expr, $dense:expr, $rfft:expr, $call:expr) => {{
            let dense_backend = $dense;
            let rfft_backend = $rfft;
            let reference: Grid<f64> = $call(&dense_backend);
            let routed: Grid<f64> = $call(&rfft_backend);
            rows.push(Row {
                op: $op,
                dense_s: time_best(cfg.samples, || {
                    let g: Grid<f64> = $call(&dense_backend);
                    assert!(g.as_slice().iter().any(|&v| v != 0.0));
                }),
                rfft_s: time_best(cfg.samples, || {
                    let g: Grid<f64> = $call(&rfft_backend);
                    assert!(g.as_slice().iter().any(|&v| v != 0.0));
                }),
                max_dev: max_dev(&routed, &reference),
            });
        }};
    }

    pass!(
        "fft backend aerial",
        FftBackend::with_context(ctx.clone()).with_rfft(false),
        FftBackend::with_context(ctx.clone()).with_rfft(true),
        |b: &FftBackend| b.aerial_image(&ks, &m)
    );
    pass!(
        "fft backend gradient",
        FftBackend::with_context(ctx.clone()).with_rfft(false),
        FftBackend::with_context(ctx.clone()).with_rfft(true),
        |b: &FftBackend| b.gradient(&ks, &m, &z)
    );
    pass!(
        "accelerated aerial",
        AcceleratedBackend::with_context(ctx.clone()).with_rfft(false),
        AcceleratedBackend::with_context(ctx.clone()).with_rfft(true),
        |b: &AcceleratedBackend| b.aerial_image(&ks, &m)
    );
    pass!(
        "accelerated gradient",
        AcceleratedBackend::with_context(ctx.clone()).with_rfft(false),
        AcceleratedBackend::with_context(ctx.clone()).with_rfft(true),
        |b: &AcceleratedBackend| b.gradient(&ks, &m, &z)
    );
    rows
}

fn write_json(cfg: &Config, rows: &[Row]) {
    let mut entries = Vec::new();
    for r in rows {
        entries.push(format!(
            concat!(
                "    {{\"op\": \"{}\", \"dense_s\": {:.6}, \"rfft_s\": {:.6}, ",
                "\"speedup\": {:.3}, \"max_dev\": {:.3e}}}"
            ),
            r.op,
            r.dense_s,
            r.rfft_s,
            r.dense_s / r.rfft_s,
            r.max_dev,
        ));
    }
    let note = concat!(
        "dense_s is the complex-transform path, rfft_s the half-spectrum ",
        "real-input path (opt-in via with_rfft/--rfft/LSOPC_RFFT), both on ",
        "one lane; speedup = dense_s / rfft_s. max_dev is the measured max ",
        "|delta| of the rfft result vs the dense result on the same input ",
        "(aerial intensity is O(1), gradient O(0.01)) — round-off only, ",
        "far inside the f32 budgets of DESIGN.md section 11. ",
        "See DESIGN.md section 13 for the half-spectrum layout."
    );
    let json = format!(
        "{{\n  \"benchmark\": \"rfft\",\n  \"grid\": {},\n  \"kernels\": {},\n  \
         \"host_lanes\": {},\n  \"samples_per_point\": {},\n  \"rows\": [\n{}\n  ],\n  \
         \"note\": \"{}\"\n}}\n",
        cfg.n,
        cfg.k,
        ParallelContext::global().threads(),
        cfg.samples,
        entries.join(",\n"),
        note
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rfft.json");
    std::fs::write(path, json).expect("write BENCH_rfft.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let cfg = if smoke {
        Config {
            n: 64,
            k: 4,
            samples: 1,
        }
    } else {
        Config {
            n: 1024,
            k: 24,
            samples: 2,
        }
    };
    let ctx = ParallelContext::new(1);
    let mut rows = transform_rows(&cfg, &ctx);
    rows.extend(backend_rows(&cfg, &ctx));
    for row in &rows {
        println!(
            "op={:<34} dense={:.4}s rfft={:.4}s speedup={:.3} max_dev={:.2e}",
            row.op,
            row.dense_s,
            row.rfft_s,
            row.dense_s / row.rfft_s,
            row.max_dev
        );
    }
    if !smoke {
        write_json(&cfg, &rows);
    }
}
