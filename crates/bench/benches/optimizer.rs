//! End-to-end optimizer benchmarks: full level-set ILT iterations on a
//! small benchmark tile, CPU vs accelerated backend, CG on/off.

use criterion::{criterion_group, criterion_main, Criterion};
use lsopc_benchsuite::Iccad2013Suite;
use lsopc_core::LevelSetIlt;
use lsopc_geometry::rasterize;
use lsopc_litho::LithoSimulator;
use lsopc_optics::OpticsConfig;

fn bench_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("levelset_ilt_3iter");
    group.sample_size(10);
    let suite = Iccad2013Suite::new();
    let case = &suite.cases()[3]; // B4, the smallest pattern
    let layout = suite.layout(case);
    let grid = 256;
    let px = 2048.0 / grid as f64;
    let target = rasterize(&layout, grid, grid, px);
    let optics = OpticsConfig::iccad2013().with_kernel_count(24);

    let cpu = LithoSimulator::from_optics(&optics, grid, px).expect("valid configuration");
    let gpu = LithoSimulator::from_optics(&optics, grid, px)
        .expect("valid configuration")
        .with_accelerated_backend(1);
    let opt = LevelSetIlt::builder().max_iterations(3).build();
    let opt_nocg = LevelSetIlt::builder()
        .max_iterations(3)
        .conjugate_gradient(false)
        .build();

    group.bench_function("cpu_backend", |b| {
        b.iter(|| opt.optimize(&cpu, &target).expect("runs"));
    });
    group.bench_function("accelerated_backend", |b| {
        b.iter(|| opt.optimize(&gpu, &target).expect("runs"));
    });
    group.bench_function("accelerated_no_cg", |b| {
        b.iter(|| opt_nocg.optimize(&gpu, &target).expect("runs"));
    });
    group.finish();
}

criterion_group!(benches, bench_iterations);
criterion_main!(benches);
