//! Checkpointing overhead and kill/resume fidelity at the paper's
//! 1024² / K = 24 configuration.
//!
//! Three questions from DESIGN.md §15, measured on a dense-wire target:
//!
//! 1. What does periodic checkpointing cost per iteration? The
//!    per-write cost (state widening + serialization + atomic write)
//!    is measured directly from the `checkpoint.write` trace span —
//!    single-shot wall-clock differences at this scale carry a few
//!    percent of page-cache/scheduler noise, the same order as the
//!    signal, so the end-to-end deltas are reported but the budget is
//!    gated on the span measurement. The default `--checkpoint-every
//!    10` must keep the measured write time under the 2 % of-run
//!    budget — that budget is what sized the default: at every-5 the
//!    pre-optimization write path measured 3.5 % end to end on this
//!    host. The every-iteration worst case (~34 MB per write at 1024²)
//!    is reported honestly even where it exceeds the budget.
//! 2. What does a kill/resume round trip cost end to end? A run killed
//!    at the halfway boundary plus its resumed second half, versus the
//!    uninterrupted run, with the `checkpoint.load` span cost called
//!    out separately.
//! 3. Is the resumed mask really the baseline mask? Asserted bitwise
//!    here (the fuller sweep lives in `tests/resume_identity.rs`).
//!
//! Writes `BENCH_resume.json` to the workspace root. `cargo test` runs
//! this harness with `--test`: a small smoke configuration that asserts
//! the mechanisms engage and writes no JSON (timing asserts are skipped
//! — smoke runs are too short to time meaningfully).

use lsopc_core::{CheckpointSpec, IltResult, LevelSetIlt, RunControl, StopReason};
use lsopc_grid::Grid;
use lsopc_litho::LithoSimulator;
use lsopc_optics::OpticsConfig;
use lsopc_trace::MemorySink;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    /// Grid side, px. The 2048 nm field fixes `pixel_nm`.
    n: usize,
    /// Kernel rank.
    k: usize,
    /// Iteration budget per run.
    iters: usize,
}

impl Config {
    fn pixel_nm(&self) -> f64 {
        lsopc_benchsuite::FIELD_NM as f64 / self.n as f64
    }
}

fn sim(cfg: &Config) -> LithoSimulator {
    LithoSimulator::from_optics(
        &OpticsConfig::iccad2013().with_kernel_count(cfg.k),
        cfg.n,
        cfg.pixel_nm(),
    )
    .expect("valid configuration")
    .with_accelerated_backend(1)
}

/// Dense vertical wires: enough structure that every iteration does
/// real work, with no dependence on layout files.
fn target(cfg: &Config) -> Grid<f64> {
    let n = cfg.n;
    Grid::from_fn(n, n, |x, y| {
        let period = n / 8;
        let in_wire = (x % period) >= period / 4 && (x % period) < period / 2;
        if in_wire && (n / 8..7 * n / 8).contains(&y) {
            1.0
        } else {
            0.0
        }
    })
}

fn ck_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lsopc_bench_resume_{}_{name}", std::process::id()))
}

/// One timed run under `control`, traced through an in-memory sink so
/// the checkpoint spans can be read back. Every run (baseline included)
/// carries the same tracing, so walls stay comparable.
fn run(
    cfg: &Config,
    opt: &LevelSetIlt,
    tgt: &Grid<f64>,
    control: &RunControl,
) -> (f64, IltResult, lsopc_trace::ProfileReport) {
    let sim = sim(cfg);
    let sink = Arc::new(MemorySink::new());
    lsopc_trace::install(sink.clone());
    let t = Instant::now();
    let result = opt.optimize_controlled(&sim, tgt, control);
    let wall = t.elapsed().as_secs_f64();
    lsopc_trace::uninstall();
    (wall, result.expect("bench run"), sink.report())
}

/// Sums `(calls, total seconds)` over every span path ending in `leaf`
/// (checkpoint spans nest under the optimizer's iteration spans).
fn span_cost(report: &lsopc_trace::ProfileReport, leaf: &str) -> (u64, f64) {
    report
        .spans
        .iter()
        .filter(|s| s.path == leaf || s.path.ends_with(&format!("/{leaf}")))
        .fold((0, 0.0), |(c, t), s| {
            (c + s.calls, t + s.total_ns as f64 / 1e9)
        })
}

fn assert_masks_match(a: &IltResult, b: &IltResult, what: &str) {
    for (i, (va, vb)) in a.mask.as_slice().iter().zip(b.mask.as_slice()).enumerate() {
        assert_eq!(va.to_bits(), vb.to_bits(), "{what}: mask pixel {i} differs");
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let cfg = if smoke {
        // Twelve iterations so the default every-10 interval fires at
        // least once (completed runs don't write a redundant final
        // checkpoint).
        Config {
            n: 256,
            k: 4,
            iters: 12,
        }
    } else {
        Config {
            n: 1024,
            k: 24,
            iters: 12,
        }
    };
    let tgt = target(&cfg);
    let opt = LevelSetIlt::builder().max_iterations(cfg.iters).build();

    // 1. Baseline: no checkpointing. Two timed runs, keeping the faster
    //    one — single-shot walls at this scale carry a few percent of
    //    page-cache/scheduler noise.
    let (wall_a, baseline, _) = run(&cfg, &opt, &tgt, &RunControl::new());
    let (wall_b, _, _) = run(&cfg, &opt, &tgt, &RunControl::new());
    let wall_off = wall_a.min(wall_b);
    println!(
        "checkpoint off     wall={:.3}s ({:.4}s/iter)",
        wall_off,
        wall_off / cfg.iters as f64
    );

    // 2. Periodic checkpointing at every iteration and at the default
    //    interval (10). `write_pct` is the span-measured write time as
    //    a fraction of the baseline wall (the budgeted number);
    //    `delta_pct` is the noisy end-to-end difference.
    let mut rows = Vec::new();
    for every in [1usize, 10] {
        let ck = ck_path(&format!("every{every}.lsckpt"));
        std::fs::remove_file(&ck).ok();
        let control = RunControl::new().with_checkpoint(CheckpointSpec::new(&ck, every));
        let (wall, result, report) = run(&cfg, &opt, &tgt, &control);
        assert!(ck.exists(), "every={every}: checkpoint on disk");
        assert_masks_match(&baseline, &result, "checkpointing must only observe");
        let (writes, write_s) = span_cost(&report, "checkpoint.write");
        assert!(writes > 0, "every={every}: checkpoint.write span recorded");
        let ck_bytes = std::fs::metadata(&ck).map(|m| m.len()).unwrap_or(0);
        let write_pct = write_s / wall_off * 100.0;
        let delta_pct = (wall - wall_off) / wall_off * 100.0;
        println!(
            "checkpoint every={every} wall={wall:.3}s writes={writes}x{:.1}ms \
             write={write_pct:+.2}% (end-to-end {delta_pct:+.2}%) file={:.1}MB",
            write_s / writes as f64 * 1e3,
            ck_bytes as f64 / 1e6
        );
        rows.push((every, wall, writes, write_s, write_pct, delta_pct, ck_bytes));
        std::fs::remove_file(ck).ok();
    }

    // 3. Kill at the halfway boundary, resume, compare end-to-end cost
    //    and final-mask bits against the uninterrupted run.
    let ck = ck_path("kill.lsckpt");
    std::fs::remove_file(&ck).ok();
    let kill_at = cfg.iters / 2;
    let control = RunControl::new()
        .with_iteration_budget(kill_at)
        .with_checkpoint(CheckpointSpec::new(&ck, 10));
    let (wall_killed, killed, _) = run(&cfg, &opt, &tgt, &control);
    assert_eq!(killed.stopped, Some(StopReason::Budget));
    let (wall_resumed, resumed, resume_report) =
        run(&cfg, &opt, &tgt, &RunControl::new().with_resume(&ck));
    assert!(resumed.stopped.is_none(), "resume runs to completion");
    assert_masks_match(&baseline, &resumed, "kill/resume");
    std::fs::remove_file(&ck).ok();
    let (_, load_s) = span_cost(&resume_report, "checkpoint.load");
    let roundtrip = wall_killed + wall_resumed;
    let penalty_pct = (roundtrip - wall_off) / wall_off * 100.0;
    println!(
        "kill@{kill_at}+resume    wall={roundtrip:.3}s (uninterrupted {wall_off:.3}s, \
         {penalty_pct:+.2}%), load={:.1}ms",
        load_s * 1e3
    );

    if smoke {
        return;
    }

    // The default interval carries the documented per-iteration budget;
    // every-iteration checkpointing is reported but not gated (at 1024²
    // a full-state write is ~34 MB and may legitimately exceed 2 %).
    let every10_write_pct = rows[1].4;
    assert!(
        every10_write_pct < 2.0,
        "default-interval checkpoint write cost {every10_write_pct:.2}% exceeds the 2% budget"
    );

    let entries = rows
        .iter()
        .map(
            |(every, wall, writes, write_s, write_pct, delta_pct, bytes)| {
                format!(
                    concat!(
                        "    {{\"every\": {}, \"wall_s\": {:.4}, \"writes\": {}, ",
                        "\"write_s_total\": {:.4}, \"write_overhead_pct\": {:.3}, ",
                        "\"end_to_end_delta_pct\": {:.3}, \"checkpoint_bytes\": {}}}"
                    ),
                    every, wall, writes, write_s, write_pct, delta_pct, bytes
                )
            },
        )
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"resume\",\n",
            "  \"grid\": {grid},\n",
            "  \"kernels\": {k},\n",
            "  \"pixel_nm\": {px},\n",
            "  \"iterations\": {iters},\n",
            "  \"wall_s_no_checkpoint\": {base:.4},\n",
            "  \"checkpointed\": [\n{entries}\n  ],\n",
            "  \"kill_at\": {kill_at},\n",
            "  \"kill_resume_wall_s\": {roundtrip:.4},\n",
            "  \"kill_resume_penalty_pct\": {penalty:.3},\n",
            "  \"checkpoint_load_s\": {load:.4},\n",
            "  \"resumed_mask_bit_identical\": true\n",
            "}}\n"
        ),
        grid = cfg.n,
        k = cfg.k,
        px = cfg.pixel_nm(),
        iters = cfg.iters,
        base = wall_off,
        entries = entries,
        kill_at = kill_at,
        roundtrip = roundtrip,
        penalty = penalty_pct,
        load = load_s,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_resume.json");
    std::fs::write(path, json).expect("write BENCH_resume.json");
    println!("wrote {path}");
}
