//! Metric-suite and mask-vectorization benchmarks (the non-simulation
//! part of a contest evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsopc_benchsuite::Iccad2013Suite;
use lsopc_geometry::{mask_to_polygons, rasterize};
use lsopc_levelset::fast_marching_redistance;
use lsopc_levelset::signed_distance;
use lsopc_metrics::{EpeChecker, MaskComplexity, PvBand, ShapeViolations};

fn bench_metrics(c: &mut Criterion) {
    let suite = Iccad2013Suite::new();
    let case = &suite.cases()[0];
    let layout = suite.layout(case);
    for &grid in &[256usize, 512] {
        let px = 2048.0 / grid as f64;
        let target = rasterize(&layout, grid, grid, px);
        // A plausible "printed" image: the target eroded by one pixel
        // (cheap stand-in so the benchmark has no simulator dependency).
        let psi = signed_distance(&target);
        let printed = psi.map(|&d| if d <= -1.0 { 1.0 } else { 0.0 });

        let mut group = c.benchmark_group(format!("metrics_{grid}px"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("epe_check", grid), |b| {
            let checker = EpeChecker::iccad2013();
            b.iter(|| checker.check(&layout, &printed, px));
        });
        group.bench_function(BenchmarkId::new("pv_band", grid), |b| {
            b.iter(|| PvBand::measure(&printed, &target, px));
        });
        group.bench_function(BenchmarkId::new("shape_violations", grid), |b| {
            b.iter(|| ShapeViolations::count(&printed, &target));
        });
        group.bench_function(BenchmarkId::new("mask_complexity", grid), |b| {
            b.iter(|| MaskComplexity::measure(&printed));
        });
        group.bench_function(BenchmarkId::new("vectorize", grid), |b| {
            b.iter(|| mask_to_polygons(&target, px));
        });
        group.bench_function(BenchmarkId::new("fmm_redistance", grid), |b| {
            b.iter(|| fast_marching_redistance(&psi));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
