//! EPE probe-site generation.
//!
//! The ICCAD 2013 contest measures edge placement error at sample points
//! placed every 40 nm along the horizontal and vertical edges of the target
//! pattern. [`probe_sites`] generates those sample points together with the
//! outward edge normal, which the EPE checker uses to measure the printed
//! contour displacement.

use crate::{FPoint, Layout};
use serde::{Deserialize, Serialize};

/// Orientation of the target edge a probe sits on.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Edge runs horizontally; the normal is vertical.
    Horizontal,
    /// Edge runs vertically; the normal is horizontal.
    Vertical,
}

/// One EPE measurement site on a target edge.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProbeSite {
    /// Position on the target edge, in nanometres.
    pub pos: FPoint,
    /// Edge orientation.
    pub axis: Axis,
    /// Unit normal pointing out of the pattern.
    pub outward: FPoint,
}

/// Generates probe sites along every edge of every shape, spaced
/// `spacing_nm` apart.
///
/// Edges shorter than the spacing receive a single probe at their midpoint;
/// longer edges receive `floor(L / spacing)` probes centred on the edge
/// (offset `spacing/2 + k·spacing` from a corner-symmetric start), so no
/// probe sits on a corner.
///
/// # Panics
///
/// Panics if `spacing_nm` is not positive.
///
/// # Example
///
/// ```
/// use lsopc_geometry::{probe_sites, Layout, Rect};
///
/// let mut layout = Layout::new();
/// layout.push(Rect::new(0, 0, 100, 40).into());
/// let probes = probe_sites(&layout, 40.0);
/// // Two 100nm edges get 2 probes each, two 40nm edges get 1 each.
/// assert_eq!(probes.len(), 6);
/// ```
pub fn probe_sites(layout: &Layout, spacing_nm: f64) -> Vec<ProbeSite> {
    assert!(spacing_nm > 0.0, "probe spacing must be positive");
    let mut sites = Vec::new();
    for shape in layout.shapes() {
        let poly = shape.to_polygon();
        for (a, b) in poly.edges() {
            let (ax, ay) = (a.x as f64, a.y as f64);
            let (bx, by) = (b.x as f64, b.y as f64);
            let len = ((bx - ax).abs() + (by - ay).abs()).max(0.0); // axis-parallel
            if len == 0.0 {
                continue;
            }
            let dir = FPoint::new((bx - ax) / len, (by - ay) / len);
            let axis = if a.y == b.y {
                Axis::Horizontal
            } else {
                Axis::Vertical
            };
            // Decide outward normal by probing just off the edge midpoint.
            let mid = FPoint::new((ax + bx) / 2.0, (ay + by) / 2.0);
            let n = FPoint::new(-dir.y, dir.x);
            let eps = 0.25;
            let outward = if poly.contains(mid.x + n.x * eps, mid.y + n.y * eps) {
                FPoint::new(-n.x, -n.y)
            } else {
                n
            };
            // Probe positions along the edge.
            let count = (len / spacing_nm).floor() as usize;
            if count == 0 {
                sites.push(ProbeSite {
                    pos: mid,
                    axis,
                    outward,
                });
            } else {
                // Centre the probe train on the edge.
                let margin = (len - count as f64 * spacing_nm) / 2.0;
                for k in 0..count {
                    let t = margin + spacing_nm * (k as f64 + 0.5);
                    sites.push(ProbeSite {
                        pos: FPoint::new(ax + dir.x * t, ay + dir.y * t),
                        axis,
                        outward,
                    });
                }
            }
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    fn rect_layout(r: Rect) -> Layout {
        let mut l = Layout::new();
        l.push(r.into());
        l
    }

    #[test]
    fn outward_normals_point_away_from_rect() {
        let layout = rect_layout(Rect::new(0, 0, 100, 100));
        let probes = probe_sites(&layout, 40.0);
        for p in &probes {
            // Moving 1nm outward must leave the rectangle.
            let out = FPoint::new(p.pos.x + p.outward.x, p.pos.y + p.outward.y);
            let inside = out.x > 0.0 && out.x < 100.0 && out.y > 0.0 && out.y < 100.0;
            assert!(!inside, "probe at {:?} has inward normal", p.pos);
            // Moving 1nm inward must stay inside.
            let inn = FPoint::new(p.pos.x - p.outward.x, p.pos.y - p.outward.y);
            assert!(inn.x > 0.0 && inn.x < 100.0 && inn.y > 0.0 && inn.y < 100.0);
        }
    }

    #[test]
    fn short_edges_get_midpoint_probe() {
        let layout = rect_layout(Rect::new(0, 0, 30, 30));
        let probes = probe_sites(&layout, 40.0);
        assert_eq!(probes.len(), 4);
        // All probes at edge midpoints.
        assert!(probes.iter().any(|p| p.pos == FPoint::new(15.0, 0.0)));
        assert!(probes.iter().any(|p| p.pos == FPoint::new(15.0, 30.0)));
    }

    #[test]
    fn probe_count_scales_with_edge_length() {
        let layout = rect_layout(Rect::new(0, 0, 200, 40));
        let probes = probe_sites(&layout, 40.0);
        // 200nm edges: 5 probes each; 40nm edges: 1 each.
        assert_eq!(probes.len(), 5 + 5 + 1 + 1);
    }

    #[test]
    fn axes_are_labelled() {
        let layout = rect_layout(Rect::new(0, 0, 80, 40));
        let probes = probe_sites(&layout, 40.0);
        let horizontal = probes.iter().filter(|p| p.axis == Axis::Horizontal).count();
        let vertical = probes.iter().filter(|p| p.axis == Axis::Vertical).count();
        assert_eq!(horizontal, 4); // two 80nm edges, 2 probes each
        assert_eq!(vertical, 2); // two 40nm edges, 1 probe each
    }

    #[test]
    fn probes_avoid_corners() {
        let layout = rect_layout(Rect::new(0, 0, 120, 120));
        for p in probe_sites(&layout, 40.0) {
            let on_corner =
                (p.pos.x == 0.0 || p.pos.x == 120.0) && (p.pos.y == 0.0 || p.pos.y == 120.0);
            assert!(!on_corner);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_spacing_panics() {
        let _ = probe_sites(&Layout::new(), 0.0);
    }
}
