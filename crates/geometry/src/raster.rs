//! Layout rasterization onto pixel grids.

use crate::{Layout, Shape};
use lsopc_grid::Grid;

/// Rasterizes a layout onto a `width` x `height` binary grid with square
/// pixels of `pixel_nm` nanometres.
///
/// Pixel `(i, j)` covers `[i·p, (i+1)·p) x [j·p, (j+1)·p)` in layout
/// coordinates and is set to `1.0` when its centre lies inside any shape
/// (even-odd rule for polygons). At 1 nm/px this reproduces shape areas
/// exactly thanks to the half-open rectangle convention.
///
/// # Panics
///
/// Panics if `pixel_nm` is not positive or a grid dimension is zero.
///
/// # Example
///
/// ```
/// use lsopc_geometry::{rasterize, Layout, Rect};
///
/// let mut layout = Layout::new();
/// layout.push(Rect::new(4, 4, 12, 8).into());
/// let g = rasterize(&layout, 16, 16, 1.0);
/// assert_eq!(g.sum() as i64, 8 * 4);
/// let g2 = rasterize(&layout, 8, 8, 2.0); // coarser pixels
/// assert_eq!(g2.sum() as i64, 4 * 2);
/// ```
pub fn rasterize(layout: &Layout, width: usize, height: usize, pixel_nm: f64) -> Grid<f64> {
    assert!(pixel_nm > 0.0, "pixel size must be positive");
    let mut grid = Grid::new(width, height, 0.0);
    for shape in layout.shapes() {
        match shape {
            Shape::Rect(r) => rasterize_rect(&mut grid, r, pixel_nm),
            Shape::Polygon(p) => rasterize_polygon(&mut grid, p, pixel_nm),
        }
    }
    grid
}

fn rasterize_rect(grid: &mut Grid<f64>, r: &crate::Rect, p: f64) {
    let (w, h) = grid.dims();
    // Pixel centre c = (i + 0.5)p inside [x0, x1)  ⇔  i in [ceil(x0/p - 0.5), ...).
    let ix0 = ((r.x0 as f64 / p - 0.5).ceil().max(0.0)) as usize;
    let iy0 = ((r.y0 as f64 / p - 0.5).ceil().max(0.0)) as usize;
    for j in iy0..h {
        let cy = (j as f64 + 0.5) * p;
        if cy >= r.y1 as f64 {
            break;
        }
        for i in ix0..w {
            let cx = (i as f64 + 0.5) * p;
            if cx >= r.x1 as f64 {
                break;
            }
            grid[(i, j)] = 1.0;
        }
    }
}

fn rasterize_polygon(grid: &mut Grid<f64>, poly: &crate::Polygon, p: f64) {
    let (w, h) = grid.dims();
    let bbox = poly.bbox();
    let ix0 = ((bbox.x0 as f64 / p - 0.5).ceil().max(0.0)) as usize;
    let iy0 = ((bbox.y0 as f64 / p - 0.5).ceil().max(0.0)) as usize;
    // Scanline fill: for each pixel row, collect vertical-edge crossings of
    // the horizontal line through the pixel centres and fill between pairs.
    for j in iy0..h {
        let cy = (j as f64 + 0.5) * p;
        if cy >= bbox.y1 as f64 {
            break;
        }
        let mut xs: Vec<f64> = Vec::new();
        for (a, b) in poly.edges() {
            if a.y == b.y {
                continue; // horizontal edge, cannot cross
            }
            let (ylo, yhi) = (a.y.min(b.y) as f64, a.y.max(b.y) as f64);
            if cy >= ylo && cy < yhi {
                xs.push(a.x as f64);
            }
        }
        xs.sort_by(|u, v| u.partial_cmp(v).expect("finite coordinates"));
        for pair in xs.chunks_exact(2) {
            let (x_enter, x_exit) = (pair[0], pair[1]);
            let istart = ((x_enter / p - 0.5).ceil().max(0.0)) as usize;
            for i in istart.max(ix0)..w {
                let cx = (i as f64 + 0.5) * p;
                if cx >= x_exit {
                    break;
                }
                grid[(i, j)] = 1.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Point, Polygon, Rect};

    #[test]
    fn rect_area_exact_at_1nm() {
        let mut l = Layout::new();
        l.push(Rect::new(3, 5, 17, 11).into());
        let g = rasterize(&l, 32, 32, 1.0);
        assert_eq!(g.sum() as i64, 14 * 6);
    }

    #[test]
    fn adjacent_rects_do_not_double_count() {
        let mut l = Layout::new();
        l.push(Rect::new(0, 0, 8, 8).into());
        l.push(Rect::new(8, 0, 16, 8).into());
        let g = rasterize(&l, 16, 16, 1.0);
        assert_eq!(g.sum() as i64, 128);
    }

    #[test]
    fn polygon_matches_equivalent_rects() {
        // The L-shape equals two rectangles.
        let poly = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(20, 0),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .expect("valid");
        let mut l1 = Layout::new();
        l1.push(poly.into());
        let mut l2 = Layout::new();
        l2.push(Rect::new(0, 0, 20, 10).into());
        l2.push(Rect::new(0, 10, 10, 30).into());
        let g1 = rasterize(&l1, 32, 32, 1.0);
        let g2 = rasterize(&l2, 32, 32, 1.0);
        assert_eq!(g1, g2);
        assert_eq!(g1.sum() as i64, 400);
    }

    #[test]
    fn coarse_pixels_scale_area() {
        let mut l = Layout::new();
        l.push(Rect::new(0, 0, 16, 8).into());
        let g = rasterize(&l, 8, 8, 4.0);
        // 16x8 nm at 4 nm/px = 4x2 px.
        assert_eq!(g.sum() as i64, 8);
        assert_eq!(g[(0, 0)], 1.0);
        assert_eq!(g[(4, 0)], 0.0);
    }

    #[test]
    fn shapes_clip_to_grid() {
        let mut l = Layout::new();
        l.push(Rect::new(-10, -10, 5, 5).into());
        let g = rasterize(&l, 8, 8, 1.0);
        assert_eq!(g.sum() as i64, 25);
    }

    #[test]
    fn empty_layout_rasterizes_to_zero() {
        let g = rasterize(&Layout::new(), 4, 4, 1.0);
        assert_eq!(g.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pixel_size_panics() {
        let _ = rasterize(&Layout::new(), 4, 4, 0.0);
    }
}
