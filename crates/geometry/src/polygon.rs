//! Rectilinear (axis-parallel) simple polygons.

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A simple rectilinear polygon given by its vertices in order.
///
/// The polygon is implicitly closed (the last vertex connects back to the
/// first). Every edge must be axis-parallel; [`Polygon::new`] validates
/// this.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use lsopc_geometry::{Point, Polygon};
///
/// // An L-shape.
/// let poly = Polygon::new(vec![
///     Point::new(0, 0), Point::new(20, 0), Point::new(20, 10),
///     Point::new(10, 10), Point::new(10, 30), Point::new(0, 30),
/// ])?;
/// assert_eq!(poly.area(), 20 * 10 + 10 * 20);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

/// Error constructing a [`Polygon`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than four vertices (the smallest rectilinear polygon is a
    /// rectangle).
    TooFewVertices(usize),
    /// An edge is neither horizontal nor vertical.
    NotRectilinear {
        /// Index of the offending edge's first vertex.
        index: usize,
    },
    /// Two consecutive vertices coincide.
    DegenerateEdge {
        /// Index of the offending edge's first vertex.
        index: usize,
    },
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewVertices(n) => write!(f, "polygon needs at least 4 vertices, got {n}"),
            Self::NotRectilinear { index } => {
                write!(f, "edge starting at vertex {index} is not axis-parallel")
            }
            Self::DegenerateEdge { index } => {
                write!(f, "edge starting at vertex {index} has zero length")
            }
        }
    }
}

impl std::error::Error for PolygonError {}

impl Polygon {
    /// Creates a polygon after validating rectilinearity.
    ///
    /// # Errors
    ///
    /// Returns [`PolygonError`] if fewer than four vertices are supplied,
    /// an edge is diagonal, or an edge has zero length.
    pub fn new(vertices: Vec<Point>) -> Result<Self, PolygonError> {
        if vertices.len() < 4 {
            return Err(PolygonError::TooFewVertices(vertices.len()));
        }
        let n = vertices.len();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            if a == b {
                return Err(PolygonError::DegenerateEdge { index: i });
            }
            if a.x != b.x && a.y != b.y {
                return Err(PolygonError::NotRectilinear { index: i });
            }
        }
        Ok(Self { vertices })
    }

    /// The vertices in order.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Iterator over directed edges `(from, to)`, including the closing
    /// edge.
    pub fn edges(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| (self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Absolute enclosed area (shoelace formula), in nm².
    pub fn area(&self) -> i64 {
        self.signed_area().abs()
    }

    /// Signed shoelace area: positive when vertices wind counter-clockwise
    /// in a y-up frame (equivalently clockwise in the y-down grid frame).
    ///
    /// Accumulates in `i128`: individual cross terms reach 2·|coord|² and
    /// would overflow `i64` for coordinates past ±2³⁰ nm even though the
    /// final area of a simple polygon with such coordinates still fits.
    pub fn signed_area(&self) -> i64 {
        let n = self.vertices.len();
        let mut acc = 0i128;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.x as i128 * b.y as i128 - b.x as i128 * a.y as i128;
        }
        (acc / 2) as i64
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        let mut it = self.vertices.iter();
        let first = it.next().expect("validated non-empty");
        let mut r = Rect::new(first.x, first.y, first.x, first.y);
        for p in it {
            r.x0 = r.x0.min(p.x);
            r.y0 = r.y0.min(p.y);
            r.x1 = r.x1.max(p.x);
            r.y1 = r.y1.max(p.y);
        }
        r
    }

    /// Even-odd point-in-polygon test at a floating-point location.
    ///
    /// Points exactly on the boundary may report either side; the
    /// rasterizer only queries pixel centres, which it keeps off integer
    /// edges where possible.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        let mut inside = false;
        for (a, b) in self.edges() {
            // Only non-horizontal edges can cross a horizontal ray.
            if a.y == b.y {
                continue;
            }
            let (ylo, yhi) = (a.y.min(b.y) as f64, a.y.max(b.y) as f64);
            if y >= ylo && y < yhi {
                // Rectilinear: edge is vertical, at x == a.x.
                if (a.x as f64) > x {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Translates every vertex by `(dx, dy)`.
    pub fn translated(&self, dx: i64, dy: i64) -> Polygon {
        Polygon {
            vertices: self
                .vertices
                .iter()
                .map(|p| Point::new(p.x + dx, p.y + dy))
                .collect(),
        }
    }
}

impl From<Rect> for Polygon {
    fn from(r: Rect) -> Self {
        Polygon {
            vertices: r.corners().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0, 0),
            Point::new(20, 0),
            Point::new(20, 10),
            Point::new(10, 10),
            Point::new(10, 30),
            Point::new(0, 30),
        ])
        .expect("valid")
    }

    #[test]
    fn rejects_diagonal_edges() {
        let err = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(10, 10),
            Point::new(10, 0),
            Point::new(0, 0),
        ])
        .expect_err("diagonal");
        assert!(matches!(err, PolygonError::NotRectilinear { index: 0 }));
    }

    #[test]
    fn rejects_too_few_vertices() {
        let err = Polygon::new(vec![Point::new(0, 0), Point::new(1, 0), Point::new(1, 1)])
            .expect_err("too few");
        assert_eq!(err, PolygonError::TooFewVertices(3));
    }

    #[test]
    fn rejects_zero_length_edge() {
        let err = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(10, 10),
        ])
        .expect_err("degenerate");
        assert!(matches!(err, PolygonError::DegenerateEdge { index: 0 }));
    }

    #[test]
    fn area_of_l_shape() {
        assert_eq!(l_shape().area(), 400);
    }

    #[test]
    fn rect_conversion_matches_area() {
        let r = Rect::new(2, 3, 12, 9);
        let p: Polygon = r.into();
        assert_eq!(p.area(), r.area());
        assert_eq!(p.bbox(), r);
    }

    #[test]
    fn contains_interior_and_notch() {
        let p = l_shape();
        assert!(p.contains(5.0, 5.0)); // in the horizontal arm
        assert!(p.contains(5.0, 25.0)); // in the vertical arm
        assert!(!p.contains(15.0, 20.0)); // in the notch
        assert!(!p.contains(-1.0, 5.0));
    }

    #[test]
    fn bbox_of_l_shape() {
        assert_eq!(l_shape().bbox(), Rect::new(0, 0, 20, 30));
    }

    #[test]
    fn translation_preserves_area() {
        let p = l_shape().translated(100, -50);
        assert_eq!(p.area(), 400);
        assert_eq!(p.bbox(), Rect::new(100, -50, 120, -20));
    }

    #[test]
    fn edge_count_includes_closure() {
        assert_eq!(l_shape().edges().count(), 6);
    }
}
