//! Connected-component labelling of binary grids.
//!
//! Used by the shape-violation checker to find printed blobs and compare
//! them against target features.

use crate::Rect;
use lsopc_grid::Grid;

/// One 4-connected component of a binary grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Component {
    /// Label (index into the component list).
    pub label: u32,
    /// Number of pixels.
    pub area: usize,
    /// Bounding box in pixel coordinates (half-open).
    pub bbox: Rect,
    /// One pixel inside the component (useful as a seed).
    pub seed: (usize, usize),
}

/// Labels the 4-connected components of `grid >= threshold`.
///
/// Returns the label grid (0 = background, `k` = component `k-1`) and the
/// component descriptors ordered by discovery (row-major scan of seeds).
///
/// # Example
///
/// ```
/// use lsopc_geometry::label_components;
/// use lsopc_grid::Grid;
///
/// let mut g = Grid::new(8, 8, 0.0);
/// g[(1, 1)] = 1.0;
/// g[(2, 1)] = 1.0;
/// g[(6, 6)] = 1.0;
/// let (labels, comps) = label_components(&g, 0.5);
/// assert_eq!(comps.len(), 2);
/// assert_eq!(comps[0].area, 2);
/// assert_eq!(labels[(6, 6)], 2);
/// ```
pub fn label_components(grid: &Grid<f64>, threshold: f64) -> (Grid<u32>, Vec<Component>) {
    let (w, h) = grid.dims();
    let mut labels: Grid<u32> = Grid::new(w, h, 0);
    let mut components = Vec::new();
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let mut next_label = 1u32;

    for sy in 0..h {
        for sx in 0..w {
            if grid[(sx, sy)] < threshold || labels[(sx, sy)] != 0 {
                continue;
            }
            // Flood-fill a new component.
            let label = next_label;
            next_label += 1;
            let mut area = 0usize;
            let mut bbox = Rect::new(sx as i64, sy as i64, sx as i64 + 1, sy as i64 + 1);
            stack.push((sx, sy));
            labels[(sx, sy)] = label;
            while let Some((x, y)) = stack.pop() {
                area += 1;
                bbox = bbox.union_bbox(&Rect::new(x as i64, y as i64, x as i64 + 1, y as i64 + 1));
                let visit = |nx: usize,
                             ny: usize,
                             labels: &mut Grid<u32>,
                             stack: &mut Vec<(usize, usize)>| {
                    if grid[(nx, ny)] >= threshold && labels[(nx, ny)] == 0 {
                        labels[(nx, ny)] = label;
                        stack.push((nx, ny));
                    }
                };
                if x > 0 {
                    visit(x - 1, y, &mut labels, &mut stack);
                }
                if x + 1 < w {
                    visit(x + 1, y, &mut labels, &mut stack);
                }
                if y > 0 {
                    visit(x, y - 1, &mut labels, &mut stack);
                }
                if y + 1 < h {
                    visit(x, y + 1, &mut labels, &mut stack);
                }
            }
            components.push(Component {
                label,
                area,
                bbox,
                seed: (sx, sy),
            });
        }
    }
    (labels, components)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_has_no_components() {
        let g = Grid::new(4, 4, 0.0);
        let (_, comps) = label_components(&g, 0.5);
        assert!(comps.is_empty());
    }

    #[test]
    fn full_grid_is_one_component() {
        let g = Grid::new(5, 3, 1.0);
        let (labels, comps) = label_components(&g, 0.5);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].area, 15);
        assert_eq!(comps[0].bbox, Rect::new(0, 0, 5, 3));
        assert!(labels.as_slice().iter().all(|&l| l == 1));
    }

    #[test]
    fn diagonal_pixels_are_separate_in_4_connectivity() {
        let mut g = Grid::new(4, 4, 0.0);
        g[(0, 0)] = 1.0;
        g[(1, 1)] = 1.0;
        let (_, comps) = label_components(&g, 0.5);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn u_shape_is_one_component() {
        let mut g = Grid::new(5, 5, 0.0);
        for y in 0..5 {
            g[(0, y)] = 1.0;
            g[(4, y)] = 1.0;
        }
        for x in 0..5 {
            g[(x, 4)] = 1.0;
        }
        let (_, comps) = label_components(&g, 0.5);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].area, 13);
    }

    #[test]
    fn labels_match_component_order() {
        let mut g = Grid::new(8, 2, 0.0);
        g[(0, 0)] = 1.0;
        g[(4, 0)] = 1.0;
        g[(7, 1)] = 1.0;
        let (labels, comps) = label_components(&g, 0.5);
        assert_eq!(comps.len(), 3);
        assert_eq!(labels[(0, 0)], comps[0].label);
        assert_eq!(labels[(4, 0)], comps[1].label);
        assert_eq!(labels[(7, 1)], comps[2].label);
    }
}
