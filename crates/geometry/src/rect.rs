//! Axis-aligned rectangles.

use crate::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle `[x0, x1) x [y0, y1)` in nanometres.
///
/// The half-open convention means two rectangles sharing an edge do not
/// overlap, and the pixel area of a rectangle rasterized at 1 nm/px equals
/// [`Rect::area`].
///
/// # Example
///
/// ```
/// use lsopc_geometry::Rect;
/// let r = Rect::new(0, 0, 10, 4);
/// assert_eq!(r.area(), 40);
/// assert!(r.contains(9, 3));
/// assert!(!r.contains(10, 3)); // exclusive upper edge
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: i64,
    /// Top edge (inclusive).
    pub y0: i64,
    /// Right edge (exclusive).
    pub x1: i64,
    /// Bottom edge (exclusive).
    pub y1: i64,
}

impl Rect {
    /// Creates a rectangle, normalizing coordinate order.
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        Self {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Creates a rectangle from origin and size.
    pub fn from_origin_size(x: i64, y: i64, w: i64, h: i64) -> Self {
        Self::new(x, y, x + w, y + h)
    }

    /// Width in nm.
    pub fn width(&self) -> i64 {
        self.x1 - self.x0
    }

    /// Height in nm.
    pub fn height(&self) -> i64 {
        self.y1 - self.y0
    }

    /// Area in nm².
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// True if the rectangle has zero area.
    pub fn is_degenerate(&self) -> bool {
        self.x0 == self.x1 || self.y0 == self.y1
    }

    /// True if the point `(x, y)` lies inside (half-open).
    pub fn contains(&self, x: i64, y: i64) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// True if the two rectangles share interior area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Intersection rectangle, or `None` if disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if self.intersects(other) {
            Some(Rect {
                x0: self.x0.max(other.x0),
                y0: self.y0.max(other.y0),
                x1: self.x1.min(other.x1),
                y1: self.y1.min(other.y1),
            })
        } else {
            None
        }
    }

    /// Smallest rectangle containing both.
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Translates by `(dx, dy)`.
    pub fn translated(&self, dx: i64, dy: i64) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// Expands every edge outward by `margin` (may be negative to shrink).
    pub fn inflated(&self, margin: i64) -> Rect {
        Rect::new(
            self.x0 - margin,
            self.y0 - margin,
            self.x1 + margin,
            self.y1 + margin,
        )
    }

    /// The four corners in clockwise order starting at `(x0, y0)`.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.x0, self.y0),
            Point::new(self.x1, self.y0),
            Point::new(self.x1, self.y1),
            Point::new(self.x0, self.y1),
        ]
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}) x [{}, {})", self.x0, self.x1, self.y0, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_order() {
        let r = Rect::new(10, 8, 2, 4);
        assert_eq!(r, Rect::new(2, 4, 10, 8));
        assert_eq!(r.width(), 8);
        assert_eq!(r.height(), 4);
    }

    #[test]
    fn touching_rects_do_not_intersect() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn overlapping_intersection() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        let i = a.intersection(&b).expect("overlap");
        assert_eq!(i, Rect::new(5, 5, 10, 10));
        assert_eq!(i.area(), 25);
    }

    #[test]
    fn union_bbox_covers_both() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(10, 10, 12, 13);
        let u = a.union_bbox(&b);
        assert_eq!(u, Rect::new(0, 0, 12, 13));
    }

    #[test]
    fn translate_and_inflate() {
        let r = Rect::new(0, 0, 4, 4).translated(1, 2);
        assert_eq!(r, Rect::new(1, 2, 5, 6));
        assert_eq!(r.inflated(1), Rect::new(0, 1, 6, 7));
        assert_eq!(r.inflated(-2).area(), 0);
    }

    #[test]
    fn degenerate_detection() {
        assert!(Rect::new(3, 3, 3, 9).is_degenerate());
        assert!(!Rect::new(0, 0, 1, 1).is_degenerate());
    }

    #[test]
    fn corners_clockwise() {
        let c = Rect::new(0, 0, 2, 3).corners();
        assert_eq!(c[0], Point::new(0, 0));
        assert_eq!(c[1], Point::new(2, 0));
        assert_eq!(c[2], Point::new(2, 3));
        assert_eq!(c[3], Point::new(0, 3));
    }
}
