//! Layouts: collections of shapes forming one benchmark tile.

use crate::{Polygon, Rect};
use serde::{Deserialize, Serialize};

/// Either a rectangle or a general rectilinear polygon.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// An axis-aligned rectangle.
    Rect(Rect),
    /// A rectilinear polygon.
    Polygon(Polygon),
}

impl Shape {
    /// Enclosed area in nm² (shapes are assumed disjoint within a layout).
    pub fn area(&self) -> i64 {
        match self {
            Shape::Rect(r) => r.area(),
            Shape::Polygon(p) => p.area(),
        }
    }

    /// Axis-aligned bounding box.
    pub fn bbox(&self) -> Rect {
        match self {
            Shape::Rect(r) => *r,
            Shape::Polygon(p) => p.bbox(),
        }
    }

    /// Translated copy.
    pub fn translated(&self, dx: i64, dy: i64) -> Shape {
        match self {
            Shape::Rect(r) => Shape::Rect(r.translated(dx, dy)),
            Shape::Polygon(p) => Shape::Polygon(p.translated(dx, dy)),
        }
    }

    /// View as a polygon (rectangles are converted).
    pub fn to_polygon(&self) -> Polygon {
        match self {
            Shape::Rect(r) => (*r).into(),
            Shape::Polygon(p) => p.clone(),
        }
    }
}

impl From<Rect> for Shape {
    fn from(r: Rect) -> Self {
        Shape::Rect(r)
    }
}

impl From<Polygon> for Shape {
    fn from(p: Polygon) -> Self {
        Shape::Polygon(p)
    }
}

/// A design layout: a set of non-overlapping shapes in one tile.
///
/// # Example
///
/// ```
/// use lsopc_geometry::{Layout, Rect};
///
/// let mut layout = Layout::new();
/// layout.push(Rect::new(0, 0, 100, 40).into());
/// layout.push(Rect::new(0, 80, 100, 120).into());
/// assert_eq!(layout.total_area(), 100 * 40 * 2);
/// assert_eq!(layout.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    shapes: Vec<Shape>,
    /// Optional cell name carried from / written to `.glp`.
    pub name: Option<String>,
}

impl Layout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a shape.
    pub fn push(&mut self, shape: Shape) {
        self.shapes.push(shape);
    }

    /// The shapes in insertion order.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Number of shapes.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// True if the layout has no shapes.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Sum of shape areas in nm² (assumes disjoint shapes).
    pub fn total_area(&self) -> i64 {
        self.shapes.iter().map(Shape::area).sum()
    }

    /// Bounding box over all shapes, or `None` when empty.
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.shapes.iter();
        let first = it.next()?.bbox();
        Some(it.fold(first, |acc, s| acc.union_bbox(&s.bbox())))
    }

    /// Translated copy of the whole layout.
    pub fn translated(&self, dx: i64, dy: i64) -> Layout {
        Layout {
            shapes: self.shapes.iter().map(|s| s.translated(dx, dy)).collect(),
            name: self.name.clone(),
        }
    }
}

impl FromIterator<Shape> for Layout {
    fn from_iter<I: IntoIterator<Item = Shape>>(iter: I) -> Self {
        Layout {
            shapes: iter.into_iter().collect(),
            name: None,
        }
    }
}

impl Extend<Shape> for Layout {
    fn extend<I: IntoIterator<Item = Shape>>(&mut self, iter: I) {
        self.shapes.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    #[test]
    fn empty_layout() {
        let l = Layout::new();
        assert!(l.is_empty());
        assert_eq!(l.total_area(), 0);
        assert!(l.bbox().is_none());
    }

    #[test]
    fn bbox_spans_shapes() {
        let l: Layout = [
            Shape::from(Rect::new(0, 0, 10, 10)),
            Shape::from(Rect::new(50, 20, 60, 40)),
        ]
        .into_iter()
        .collect();
        assert_eq!(l.bbox(), Some(Rect::new(0, 0, 60, 40)));
    }

    #[test]
    fn mixed_shapes_area() {
        let poly = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(10, 10),
            Point::new(0, 10),
        ])
        .expect("valid");
        let mut l = Layout::new();
        l.push(Rect::new(20, 0, 30, 10).into());
        l.push(poly.into());
        assert_eq!(l.total_area(), 200);
    }

    #[test]
    fn translate_moves_bbox() {
        let mut l = Layout::new();
        l.push(Rect::new(0, 0, 4, 4).into());
        let t = l.translated(10, 20);
        assert_eq!(t.bbox(), Some(Rect::new(10, 20, 14, 24)));
        assert_eq!(t.total_area(), l.total_area());
    }

    #[test]
    fn extend_appends() {
        let mut l = Layout::new();
        l.extend([
            Shape::from(Rect::new(0, 0, 1, 1)),
            Shape::from(Rect::new(2, 2, 3, 3)),
        ]);
        assert_eq!(l.len(), 2);
    }
}
