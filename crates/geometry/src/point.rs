//! Integer and floating-point 2-D points.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An integer point in nanometre layout coordinates.
///
/// # Example
///
/// ```
/// use lsopc_geometry::Point;
/// let p = Point::new(10, -4) + Point::new(2, 4);
/// assert_eq!(p, Point::new(12, 0));
/// ```
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate (nm).
    pub x: i64,
    /// Vertical coordinate (nm).
    pub y: i64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: i64, y: i64) -> Self {
        Self { x, y }
    }

    /// Converts to floating point.
    pub fn to_fpoint(self) -> FPoint {
        FPoint {
            x: self.x as f64,
            y: self.y as f64,
        }
    }
}

impl std::ops::Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A floating-point 2-D point (contour vertices, probe positions).
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FPoint {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl FPoint {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: FPoint) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

impl fmt::Display for FPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(3, 4);
        let b = Point::new(1, -2);
        assert_eq!(a + b, Point::new(4, 2));
        assert_eq!(a - b, Point::new(2, 6));
    }

    #[test]
    fn fpoint_distance() {
        let a = FPoint::new(0.0, 0.0);
        let b = FPoint::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
    }

    #[test]
    fn conversion() {
        assert_eq!(Point::new(2, 3).to_fpoint(), FPoint::new(2.0, 3.0));
    }

    #[test]
    fn display() {
        assert_eq!(Point::new(1, 2).to_string(), "(1, 2)");
    }
}
