//! Rectilinear layout geometry for mask optimization.
//!
//! The ICCAD 2013 benchmarks are rectilinear metal-layer layouts given in a
//! textual `.glp` format. This crate supplies everything the optimizer and
//! the metric suite need to work with such layouts:
//!
//! * [`Rect`], [`Polygon`], [`Shape`], [`Layout`] — integer-nanometre
//!   rectilinear geometry;
//! * [`glp`] — parse/write the contest-style `.glp` text format;
//! * [`gds`] — minimal GDSII stream reader/writer (BOUNDARY subset);
//! * [`rasterize`] — layout → binary pixel grid at a chosen resolution;
//! * [`contour`] — marching-squares iso-contour extraction;
//! * [`components`] — connected-component labelling of binary grids;
//! * [`probes`] — EPE probe-site generation along target edges;
//! * [`mask_to_polygons`] — vectorize an optimized mask back into exact
//!   rectilinear polygons for `.glp` export.
//!
//! # Example
//!
//! ```
//! use lsopc_geometry::{Layout, Rect, rasterize};
//!
//! let mut layout = Layout::new();
//! layout.push(Rect::new(8, 8, 24, 16).into()); // 16nm x 8nm wire
//! let grid = rasterize(&layout, 32, 32, 1.0);
//! assert_eq!(grid[(10, 10)], 1.0);
//! assert_eq!(grid[(0, 0)], 0.0);
//! assert_eq!(grid.sum() as i64, 16 * 8);
//! ```

#![warn(missing_docs)]

/// Largest coordinate magnitude (nm) the parsers accept: ±2³⁰ nm ≈ ±1.07 m,
/// far beyond any reticle. Bounding parsed coordinates here keeps every
/// downstream integer computation (rect sizes, shoelace areas, bounding
/// boxes) inside `i64`/`i128` range, so adversarial inputs cannot trigger
/// arithmetic overflow.
pub const MAX_COORD: i64 = 1 << 30;

pub mod components;
pub mod contour;
pub mod gds;
pub mod glp;
pub mod probes;

mod layout;
mod point;
mod polygon;
mod raster;
mod rect;
mod vectorize;

pub use components::{label_components, Component};
pub use contour::{extract_contours, Contour};
pub use gds::{parse_gds, write_gds, ParseGdsError};
pub use glp::{parse_glp, write_glp, ParseGlpError};
pub use layout::{Layout, Shape};
pub use point::{FPoint, Point};
pub use polygon::Polygon;
pub use probes::{probe_sites, Axis, ProbeSite};
pub use raster::rasterize;
pub use rect::Rect;
pub use vectorize::{mask_to_polygons, polygons_to_layout};
