//! Binary-mask → rectilinear-polygon extraction (mask vectorization).
//!
//! An OPC flow ends by writing the optimized mask back out as geometry.
//! [`mask_to_polygons`] traces the pixel-boundary loops of a binary grid
//! into exact rectilinear [`Polygon`]s (vertices on pixel corners), so a
//! mask optimized at 1 nm/px round-trips losslessly to `.glp` via
//! [`crate::write_glp`].
//!
//! Hole boundaries are returned as separate loops with opposite
//! orientation (negative [`Polygon::signed_area`] relative to their
//! parent); consumers that cannot represent holes may filter on the sign.

use crate::{Layout, Point, Polygon, Shape};
use lsopc_grid::Grid;
use std::collections::HashMap;

/// Direction of travel along a boundary edge (y grows downward).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum Dir {
    Right,
    Down,
    Left,
    Up,
}

impl Dir {
    fn delta(self) -> (i64, i64) {
        match self {
            Dir::Right => (1, 0),
            Dir::Down => (0, 1),
            Dir::Left => (-1, 0),
            Dir::Up => (0, -1),
        }
    }

    /// Turn preference when multiple boundary edges leave one corner
    /// (saddle configuration): with the interior on the travel
    /// direction's right (y-down frame), taking the sharpest turn toward
    /// the interior first keeps the two touching loops separate.
    fn preference(self) -> [Dir; 4] {
        match self {
            Dir::Right => [Dir::Down, Dir::Right, Dir::Up, Dir::Left],
            Dir::Down => [Dir::Left, Dir::Down, Dir::Right, Dir::Up],
            Dir::Left => [Dir::Up, Dir::Left, Dir::Down, Dir::Right],
            Dir::Up => [Dir::Right, Dir::Up, Dir::Left, Dir::Down],
        }
    }
}

/// Traces the boundary loops of `mask >= 0.5` into rectilinear polygons
/// with vertices in units of `pixel_nm` (pixel corners).
///
/// Outer boundaries and hole boundaries are both returned; each loop's
/// orientation is consistent, so holes can be told apart by comparing
/// containment (or simply by rasterizing the result — see
/// [`polygons_to_layout`]). Collinear vertices are collapsed.
///
/// # Panics
///
/// Panics if `pixel_nm` is not positive.
///
/// # Example
///
/// ```
/// use lsopc_geometry::{mask_to_polygons, rasterize, Layout, Rect};
/// use lsopc_grid::Grid;
///
/// let mut layout = Layout::new();
/// layout.push(Rect::new(2, 3, 10, 9).into());
/// let grid = rasterize(&layout, 16, 16, 1.0);
/// let polys = mask_to_polygons(&grid, 1.0);
/// assert_eq!(polys.len(), 1);
/// assert_eq!(polys[0].area(), 8 * 6);
/// ```
pub fn mask_to_polygons(mask: &Grid<f64>, pixel_nm: f64) -> Vec<Polygon> {
    assert!(pixel_nm > 0.0, "pixel size must be positive");
    let (w, h) = mask.dims();
    let inside = |x: i64, y: i64| -> bool {
        x >= 0 && y >= 0 && x < w as i64 && y < h as i64 && mask[(x as usize, y as usize)] >= 0.5
    };

    // Collect directed boundary edges with the interior on the left
    // (y-down frame): top edges point +x, right edges +y, bottom −x,
    // left −y.
    let mut outgoing: HashMap<(i64, i64), Vec<Dir>> = HashMap::new();
    let mut push = |x: i64, y: i64, d: Dir| outgoing.entry((x, y)).or_default().push(d);
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            if !inside(x, y) {
                continue;
            }
            if !inside(x, y - 1) {
                push(x, y, Dir::Right); // top side
            }
            if !inside(x + 1, y) {
                push(x + 1, y, Dir::Down); // right side
            }
            if !inside(x, y + 1) {
                push(x + 1, y + 1, Dir::Left); // bottom side
            }
            if !inside(x - 1, y) {
                push(x, y + 1, Dir::Up); // left side
            }
        }
    }

    // Stitch directed edges into loops.
    let mut polygons = Vec::new();
    let mut starts: Vec<(i64, i64)> = outgoing.keys().copied().collect();
    starts.sort_unstable();
    for start in starts {
        while let Some(first_dir) = outgoing.get_mut(&start).and_then(Vec::pop) {
            let mut vertices: Vec<Point> = vec![Point::new(start.0, start.1)];
            let mut pos = start;
            let mut dir = first_dir;
            loop {
                let (dx, dy) = dir.delta();
                pos = (pos.0 + dx, pos.1 + dy);
                if pos == start {
                    break;
                }
                // Choose the continuation, sharpest-left first.
                let options = outgoing.get_mut(&pos).expect("boundary loops are closed");
                let next_dir = *dir
                    .preference()
                    .iter()
                    .find(|d| options.contains(d))
                    .expect("boundary loops are closed");
                options.retain(|&d| d != next_dir);
                if next_dir != dir {
                    vertices.push(Point::new(pos.0, pos.1));
                }
                dir = next_dir;
            }
            // Collapse a possible collinear seam at the start vertex.
            if vertices.len() >= 3 {
                let a = vertices[vertices.len() - 1];
                let b = vertices[0];
                let c = vertices[1];
                if (a.x == b.x && b.x == c.x) || (a.y == b.y && b.y == c.y) {
                    vertices.remove(0);
                }
            }
            // Scale pixel corners to nanometres.
            if pixel_nm != 1.0 {
                for v in &mut vertices {
                    v.x = (v.x as f64 * pixel_nm).round() as i64;
                    v.y = (v.y as f64 * pixel_nm).round() as i64;
                }
            }
            polygons.push(Polygon::new(vertices).expect("traced loops are rectilinear"));
        }
    }
    polygons
}

/// Wraps extracted polygons into a [`Layout`], dropping hole loops (loops
/// fully contained in another loop). Suitable for `.glp` export of masks
/// without ring structures.
pub fn polygons_to_layout(polygons: &[Polygon]) -> Layout {
    let mut layout = Layout::new();
    'outer: for (i, poly) in polygons.iter().enumerate() {
        // A hole's bbox is contained in another polygon's bbox and one of
        // its vertices lies strictly inside that polygon.
        for (j, other) in polygons.iter().enumerate() {
            if i == j {
                continue;
            }
            let v = poly.vertices()[0];
            // Probe just inside the first corner.
            if other.contains(v.x as f64 + 0.5, v.y as f64 + 0.5)
                && other.bbox().inflated(1).intersects(&poly.bbox())
            {
                continue 'outer;
            }
        }
        layout.push(Shape::Polygon(poly.clone()));
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rasterize, Rect};

    fn raster_of(shapes: &[Shape], n: usize) -> Grid<f64> {
        let mut layout = Layout::new();
        for s in shapes {
            layout.push(s.clone());
        }
        rasterize(&layout, n, n, 1.0)
    }

    #[test]
    fn single_rect_roundtrip() {
        let grid = raster_of(&[Rect::new(3, 4, 11, 9).into()], 16);
        let polys = mask_to_polygons(&grid, 1.0);
        assert_eq!(polys.len(), 1);
        assert_eq!(polys[0].vertices().len(), 4);
        assert_eq!(polys[0].bbox(), Rect::new(3, 4, 11, 9));
        assert_eq!(polys[0].area(), 40);
    }

    #[test]
    fn l_shape_roundtrip_through_raster() {
        let poly = Polygon::new(vec![
            Point::new(2, 2),
            Point::new(12, 2),
            Point::new(12, 6),
            Point::new(6, 6),
            Point::new(6, 12),
            Point::new(2, 12),
        ])
        .expect("valid");
        let grid = raster_of(&[poly.clone().into()], 16);
        let extracted = mask_to_polygons(&grid, 1.0);
        assert_eq!(extracted.len(), 1);
        assert_eq!(extracted[0].area(), poly.area());
        assert_eq!(extracted[0].vertices().len(), 6);
    }

    #[test]
    fn two_components_give_two_polygons() {
        let grid = raster_of(
            &[Rect::new(1, 1, 5, 5).into(), Rect::new(8, 8, 14, 12).into()],
            16,
        );
        let polys = mask_to_polygons(&grid, 1.0);
        assert_eq!(polys.len(), 2);
        let total: i64 = polys.iter().map(Polygon::area).sum();
        assert_eq!(total, 16 + 24);
    }

    #[test]
    fn donut_produces_outer_and_hole_loops() {
        // A ring: 10x10 outer, 4x4 hole.
        let grid = Grid::from_fn(16, 16, |x, y| {
            let outer = (2..12).contains(&x) && (2..12).contains(&y);
            let hole = (5..9).contains(&x) && (5..9).contains(&y);
            if outer && !hole {
                1.0
            } else {
                0.0
            }
        });
        let polys = mask_to_polygons(&grid, 1.0);
        assert_eq!(polys.len(), 2);
        let mut areas: Vec<i64> = polys.iter().map(Polygon::area).collect();
        areas.sort_unstable();
        assert_eq!(areas, vec![16, 100]);
        // The layout wrapper drops the hole.
        let layout = polygons_to_layout(&polys);
        assert_eq!(layout.len(), 1);
        assert_eq!(layout.total_area(), 100);
    }

    #[test]
    fn diagonal_touch_splits_into_two_loops() {
        // Two pixels sharing only a corner (saddle case).
        let mut grid = Grid::new(6, 6, 0.0);
        grid[(2, 2)] = 1.0;
        grid[(3, 3)] = 1.0;
        let polys = mask_to_polygons(&grid, 1.0);
        assert_eq!(polys.len(), 2, "saddle must split into two loops");
        assert!(polys.iter().all(|p| p.area() == 1));
    }

    #[test]
    fn rasterize_of_extraction_reproduces_mask() {
        // Full roundtrip: mask -> polygons -> raster == mask.
        let original = raster_of(
            &[
                Rect::new(1, 2, 7, 5).into(),
                Rect::new(9, 6, 14, 14).into(),
                Rect::new(1, 8, 6, 13).into(),
            ],
            16,
        );
        let polys = mask_to_polygons(&original, 1.0);
        let layout = polygons_to_layout(&polys);
        let round = rasterize(&layout, 16, 16, 1.0);
        assert_eq!(round, original);
    }

    #[test]
    fn pixel_scaling_multiplies_coordinates() {
        let grid = raster_of(&[Rect::new(2, 2, 6, 6).into()], 8);
        let polys = mask_to_polygons(&grid, 4.0);
        assert_eq!(polys[0].bbox(), Rect::new(8, 8, 24, 24));
    }

    #[test]
    fn empty_mask_yields_nothing() {
        let grid = Grid::new(8, 8, 0.0);
        assert!(mask_to_polygons(&grid, 1.0).is_empty());
    }
}
