//! Marching-squares iso-contour extraction.
//!
//! Used to trace printed-image boundaries for figure generation and for
//! sub-pixel EPE measurements.

use crate::FPoint;
use lsopc_grid::Grid;

/// One open or closed iso-contour polyline in pixel coordinates.
#[derive(Clone, Debug, PartialEq)]
pub struct Contour {
    /// Polyline vertices; for closed contours the first vertex is repeated
    /// at the end.
    pub points: Vec<FPoint>,
    /// True when the contour closes on itself.
    pub closed: bool,
}

impl Contour {
    /// Total polyline length in pixels.
    pub fn length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(w[1])).sum()
    }
}

/// Extracts the `level` iso-contours of a scalar field using marching
/// squares with linear interpolation.
///
/// Contour vertices lie on cell edges of the dual grid (between pixel
/// centres), in units of pixels, with pixel `(i, j)`'s centre at
/// `(i + 0.5, j + 0.5)`. Segments are stitched into polylines.
///
/// # Example
///
/// ```
/// use lsopc_geometry::extract_contours;
/// use lsopc_grid::Grid;
///
/// // A disc of radius 5 around the grid centre.
/// let g = Grid::from_fn(24, 24, |x, y| {
///     let (dx, dy) = (x as f64 - 12.0, y as f64 - 12.0);
///     if (dx * dx + dy * dy).sqrt() < 5.0 { 1.0 } else { 0.0 }
/// });
/// let contours = extract_contours(&g, 0.5);
/// assert_eq!(contours.len(), 1);
/// assert!(contours[0].closed);
/// ```
pub fn extract_contours(g: &Grid<f64>, level: f64) -> Vec<Contour> {
    let (w, h) = g.dims();
    if w < 2 || h < 2 {
        return Vec::new();
    }
    // Collect line segments per marching-squares cell. A cell (i, j) has
    // corners at pixel centres (i, j), (i+1, j), (i, j+1), (i+1, j+1).
    let mut segments: Vec<(FPoint, FPoint)> = Vec::new();
    for j in 0..h - 1 {
        for i in 0..w - 1 {
            let v = [
                g[(i, j)],         // top-left
                g[(i + 1, j)],     // top-right
                g[(i + 1, j + 1)], // bottom-right
                g[(i, j + 1)],     // bottom-left
            ];
            let mut case = 0u8;
            for (bit, &val) in v.iter().enumerate() {
                if val >= level {
                    case |= 1 << bit;
                }
            }
            if case == 0 || case == 15 {
                continue;
            }
            let cx = i as f64 + 0.5;
            let cy = j as f64 + 0.5;
            // Interpolated crossing points on the four cell edges.
            let lerp = |a: f64, b: f64| -> f64 {
                if (b - a).abs() < 1e-300 {
                    0.5
                } else {
                    ((level - a) / (b - a)).clamp(0.0, 1.0)
                }
            };
            let top = FPoint::new(cx + lerp(v[0], v[1]), cy);
            let right = FPoint::new(cx + 1.0, cy + lerp(v[1], v[2]));
            let bottom = FPoint::new(cx + lerp(v[3], v[2]), cy + 1.0);
            let left = FPoint::new(cx, cy + lerp(v[0], v[3]));
            // Standard marching-squares case table (ambiguous saddles split
            // by the cell-centre average).
            let mut push = |a: FPoint, b: FPoint| segments.push((a, b));
            match case {
                1 => push(left, top),
                2 => push(top, right),
                3 => push(left, right),
                4 => push(right, bottom),
                5 => {
                    let centre = (v[0] + v[1] + v[2] + v[3]) / 4.0;
                    if centre >= level {
                        push(left, bottom);
                        push(top, right);
                    } else {
                        push(left, top);
                        push(right, bottom);
                    }
                }
                6 => push(top, bottom),
                7 => push(left, bottom),
                8 => push(bottom, left),
                9 => push(bottom, top),
                10 => {
                    let centre = (v[0] + v[1] + v[2] + v[3]) / 4.0;
                    if centre >= level {
                        push(top, right);
                        push(bottom, left);
                    } else {
                        push(top, left);
                        push(bottom, right);
                    }
                }
                11 => push(bottom, right),
                12 => push(right, left),
                13 => push(right, top),
                14 => push(top, left),
                _ => unreachable!("cases 0 and 15 skipped"),
            }
        }
    }
    stitch(segments)
}

/// Quantizes a point for hash-join stitching (contour vertices are exact
/// cell-edge positions up to FP rounding).
fn key(p: FPoint) -> (i64, i64) {
    ((p.x * 1024.0).round() as i64, (p.y * 1024.0).round() as i64)
}

fn stitch(segments: Vec<(FPoint, FPoint)>) -> Vec<Contour> {
    use std::collections::HashMap;
    // Adjacency map from endpoint to (segment index, endpoint side).
    let mut adj: HashMap<(i64, i64), Vec<(usize, bool)>> = HashMap::new();
    for (idx, (a, b)) in segments.iter().enumerate() {
        adj.entry(key(*a)).or_default().push((idx, false));
        adj.entry(key(*b)).or_default().push((idx, true));
    }
    let mut used = vec![false; segments.len()];
    let mut contours = Vec::new();
    for start in 0..segments.len() {
        if used[start] {
            continue;
        }
        used[start] = true;
        let (a, b) = segments[start];
        let mut points = vec![a, b];
        // Walk forward from b.
        loop {
            let tail = *points.last().expect("non-empty");
            let mut advanced = false;
            if let Some(cands) = adj.get(&key(tail)) {
                for &(idx, side) in cands {
                    if used[idx] {
                        continue;
                    }
                    used[idx] = true;
                    let (sa, sb) = segments[idx];
                    points.push(if side { sa } else { sb });
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        // Walk backward from a.
        loop {
            let head = points[0];
            let mut advanced = false;
            if let Some(cands) = adj.get(&key(head)) {
                for &(idx, side) in cands {
                    if used[idx] {
                        continue;
                    }
                    used[idx] = true;
                    let (sa, sb) = segments[idx];
                    points.insert(0, if side { sa } else { sb });
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        let closed = points.len() > 2 && key(points[0]) == key(*points.last().expect("non-empty"));
        contours.push(Contour { points, closed });
    }
    contours
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disc(w: usize, h: usize, cx: f64, cy: f64, r: f64) -> Grid<f64> {
        Grid::from_fn(w, h, |x, y| {
            let dx = x as f64 + 0.5 - cx;
            let dy = y as f64 + 0.5 - cy;
            // Smooth field so interpolation is meaningful.
            r - (dx * dx + dy * dy).sqrt()
        })
    }

    #[test]
    fn single_disc_gives_one_closed_contour() {
        let g = disc(32, 32, 16.0, 16.0, 6.0);
        let cs = extract_contours(&g, 0.0);
        assert_eq!(cs.len(), 1);
        assert!(cs[0].closed);
        // Circumference of a radius-6 circle is about 37.7 pixels.
        let len = cs[0].length();
        assert!(
            (len - 2.0 * std::f64::consts::PI * 6.0).abs() < 2.0,
            "len={len}"
        );
    }

    #[test]
    fn contour_vertices_lie_near_radius() {
        let g = disc(32, 32, 16.0, 16.0, 5.0);
        let cs = extract_contours(&g, 0.0);
        for p in &cs[0].points {
            let d = ((p.x - 16.0).powi(2) + (p.y - 16.0).powi(2)).sqrt();
            assert!((d - 5.0).abs() < 0.3, "vertex at distance {d}");
        }
    }

    #[test]
    fn two_discs_give_two_contours() {
        let a = disc(48, 24, 10.0, 12.0, 4.0);
        let b = disc(48, 24, 36.0, 12.0, 4.0);
        let g = a.zip_map(&b, |&u, &v| u.max(v));
        let cs = extract_contours(&g, 0.0);
        assert_eq!(cs.len(), 2);
        assert!(cs.iter().all(|c| c.closed));
    }

    #[test]
    fn flat_field_has_no_contours() {
        let g = Grid::new(8, 8, 1.0);
        assert!(extract_contours(&g, 0.5).is_empty());
    }

    #[test]
    fn tiny_grid_is_empty() {
        let g = Grid::new(1, 1, 0.0);
        assert!(extract_contours(&g, 0.5).is_empty());
    }
}
