//! Reader/writer for the contest-style `.glp` layout text format.
//!
//! The ICCAD 2013 benchmarks ship as `.glp` files. This module implements a
//! compatible dialect:
//!
//! ```text
//! BEGIN
//! CELL my_cell
//!   RECT 100 200 80 40 ;          # x y width height (nm)
//!   PGON 0 0 60 0 60 40 0 40 ;    # vertex list, implicitly closed
//! END
//! ```
//!
//! Unknown keywords are skipped so that files with extra header lines
//! (`EQUIV`, `LEVEL`, …) still parse.

use crate::{Layout, Point, Polygon, Rect, Shape};
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_glp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGlpError {
    line: usize,
    message: String,
}

impl ParseGlpError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseGlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "glp parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseGlpError {}

/// Parses a `.glp` document into a [`Layout`].
///
/// # Errors
///
/// Returns [`ParseGlpError`] when a `RECT` or `PGON` record is malformed
/// (wrong arity, non-integer coordinate, coordinate beyond
/// ±[`MAX_COORD`](crate::MAX_COORD), or non-rectilinear polygon). The error
/// carries the 1-based line number; no input panics the parser.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use lsopc_geometry::parse_glp;
///
/// let layout = parse_glp("BEGIN\nCELL t1\nRECT 0 0 40 20 ;\nEND\n")?;
/// assert_eq!(layout.total_area(), 800);
/// assert_eq!(layout.name.as_deref(), Some("t1"));
/// # Ok(())
/// # }
/// ```
pub fn parse_glp(text: &str) -> Result<Layout, ParseGlpError> {
    let mut layout = Layout::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        // Strip comments and the trailing record terminator.
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.last() == Some(&";") {
            tokens.pop();
        }
        // A bare ";" line leaves no tokens; treat it as blank.
        let Some(first) = tokens.first() else {
            continue;
        };
        match first.to_ascii_uppercase().as_str() {
            "RECT" => {
                let nums = parse_ints(&tokens[1..], lineno)?;
                if nums.len() != 4 {
                    return Err(ParseGlpError::new(
                        lineno,
                        format!("RECT expects 4 integers, got {}", nums.len()),
                    ));
                }
                let r = Rect::from_origin_size(nums[0], nums[1], nums[2], nums[3]);
                if r.is_degenerate() {
                    return Err(ParseGlpError::new(lineno, "RECT has zero area"));
                }
                layout.push(Shape::Rect(r));
            }
            "PGON" => {
                let nums = parse_ints(&tokens[1..], lineno)?;
                if nums.len() < 8 || nums.len() % 2 != 0 {
                    return Err(ParseGlpError::new(
                        lineno,
                        "PGON expects an even number (>= 8) of integers",
                    ));
                }
                let vertices: Vec<Point> = nums
                    .chunks_exact(2)
                    .map(|c| Point::new(c[0], c[1]))
                    .collect();
                let poly = Polygon::new(vertices)
                    .map_err(|e| ParseGlpError::new(lineno, e.to_string()))?;
                layout.push(Shape::Polygon(poly));
            }
            "CELL" | "CNAME" => {
                if let Some(name) = tokens.get(1) {
                    layout.name = Some((*name).to_string());
                }
            }
            // Header/footer and unknown records are tolerated.
            _ => {}
        }
    }
    Ok(layout)
}

fn parse_ints(tokens: &[&str], lineno: usize) -> Result<Vec<i64>, ParseGlpError> {
    tokens
        .iter()
        .map(|t| {
            let v = t
                .parse::<i64>()
                .map_err(|_| ParseGlpError::new(lineno, format!("invalid integer `{t}`")))?;
            // Range test, not `abs()`: `i64::MIN.abs()` itself overflows.
            if !(-crate::MAX_COORD..=crate::MAX_COORD).contains(&v) {
                return Err(ParseGlpError::new(
                    lineno,
                    format!("coordinate {v} exceeds ±2^30 nm"),
                ));
            }
            Ok(v)
        })
        .collect()
}

/// Serializes a [`Layout`] to the `.glp` dialect accepted by [`parse_glp`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use lsopc_geometry::{parse_glp, write_glp, Layout, Rect};
///
/// let mut layout = Layout::new();
/// layout.name = Some("case".to_string());
/// layout.push(Rect::new(0, 0, 10, 10).into());
/// let text = write_glp(&layout);
/// assert_eq!(parse_glp(&text)?, layout);
/// # Ok(())
/// # }
/// ```
pub fn write_glp(layout: &Layout) -> String {
    let mut out = String::from("BEGIN\n");
    if let Some(name) = &layout.name {
        out.push_str(&format!("CELL {name}\n"));
    }
    for shape in layout.shapes() {
        match shape {
            Shape::Rect(r) => {
                out.push_str(&format!(
                    "  RECT {} {} {} {} ;\n",
                    r.x0,
                    r.y0,
                    r.width(),
                    r.height()
                ));
            }
            Shape::Polygon(p) => {
                out.push_str("  PGON");
                for v in p.vertices() {
                    out.push_str(&format!(" {} {}", v.x, v.y));
                }
                out.push_str(" ;\n");
            }
        }
    }
    out.push_str("END\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rects_and_polygons() {
        let text = "BEGIN\nCELL b1\nRECT 10 20 30 40 ;\nPGON 0 0 20 0 20 10 0 10 ;\nEND\n";
        let layout = parse_glp(text).expect("valid");
        assert_eq!(layout.len(), 2);
        assert_eq!(layout.total_area(), 30 * 40 + 200);
        assert_eq!(layout.name.as_deref(), Some("b1"));
    }

    #[test]
    fn tolerates_headers_and_comments() {
        let text = "EQUIV 1 1000 MICRON +X,+Y\nLEVEL M1\nRECT 0 0 5 5 ; # a square\n";
        let layout = parse_glp(text).expect("valid");
        assert_eq!(layout.total_area(), 25);
    }

    #[test]
    fn rejects_bad_arity() {
        let err = parse_glp("RECT 1 2 3 ;").expect_err("bad");
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("4 integers"));
    }

    #[test]
    fn rejects_non_integer() {
        let err = parse_glp("RECT a 2 3 4 ;").expect_err("bad");
        assert!(err.to_string().contains("invalid integer"));
    }

    #[test]
    fn rejects_degenerate_rect() {
        let err = parse_glp("RECT 0 0 0 5 ;").expect_err("bad");
        assert!(err.to_string().contains("zero area"));
    }

    #[test]
    fn rejects_diagonal_polygon() {
        let err = parse_glp("PGON 0 0 5 5 10 0 0 0 ;").expect_err("bad");
        assert!(
            err.to_string().contains("axis-parallel") || err.to_string().contains("zero length")
        );
    }

    #[test]
    fn tolerates_bare_semicolon_lines() {
        let layout = parse_glp(";\nRECT 0 0 5 5 ;\n  ;  \n").expect("valid");
        assert_eq!(layout.total_area(), 25);
    }

    #[test]
    fn rejects_out_of_range_coordinate() {
        let err = parse_glp("RECT 2000000000 0 5 5 ;").expect_err("bad");
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("exceeds"));
        // Values past i64 entirely are invalid integers, not panics.
        let err = parse_glp("PGON 99999999999999999999 0 1 0 1 1 0 1 ;").expect_err("bad");
        assert!(err.to_string().contains("invalid integer"));
    }

    #[test]
    fn roundtrip_mixed_layout() {
        let text = "BEGIN\nCELL rt\nRECT 1 2 3 4 ;\nPGON 0 0 30 0 30 10 10 10 10 30 0 30 ;\nEND\n";
        let layout = parse_glp(text).expect("valid");
        let rewritten = write_glp(&layout);
        let reparsed = parse_glp(&rewritten).expect("valid");
        assert_eq!(layout, reparsed);
    }
}
