//! Minimal GDSII stream-format reader/writer.
//!
//! `.glp` is the contest's exchange format, but real flows move layouts
//! as GDSII streams. This module implements the subset needed to
//! round-trip rectilinear mask layouts: one library, one structure,
//! `BOUNDARY` elements with `LAYER`/`XY` records, and the GDSII 8-byte
//! excess-64 real encoding for the `UNITS` record. Database units are
//! 1 nm (`UNITS` = 0.001 user units per db unit, 1e-9 m per db unit).
//!
//! Unsupported records (`PATH`, `SREF`, text, properties…) are rejected
//! with a descriptive error rather than silently dropped.

use crate::{Layout, Point, Polygon, Shape};
use std::error::Error;
use std::fmt;

// Record tags: (record type << 8) | data type.
const HEADER: u16 = 0x0002;
const BGNLIB: u16 = 0x0102;
const LIBNAME: u16 = 0x0206;
const UNITS: u16 = 0x0305;
const ENDLIB: u16 = 0x0400;
const BGNSTR: u16 = 0x0502;
const STRNAME: u16 = 0x0606;
const ENDSTR: u16 = 0x0700;
const BOUNDARY: u16 = 0x0800;
const LAYER: u16 = 0x0D02;
const DATATYPE: u16 = 0x0E02;
const XY: u16 = 0x1003;
const ENDEL: u16 = 0x1100;

/// Error reading a GDSII stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGdsError {
    offset: usize,
    message: String,
}

impl ParseGdsError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset,
            message: message.into(),
        }
    }

    /// Byte offset of the offending record.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseGdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gds parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for ParseGdsError {}

/// Encodes an `f64` as a GDSII 8-byte real (excess-64, base-16).
pub fn to_gds_real(v: f64) -> [u8; 8] {
    if v == 0.0 {
        return [0; 8];
    }
    let sign = if v < 0.0 { 0x80u8 } else { 0 };
    let mut mag = v.abs();
    // Find exponent e with mag / 16^(e-64) in [1/16, 1).
    let mut e = 64i32;
    while mag >= 1.0 {
        mag /= 16.0;
        e += 1;
    }
    while mag < 1.0 / 16.0 {
        mag *= 16.0;
        e -= 1;
    }
    // 56-bit mantissa.
    let mant = (mag * (1u64 << 56) as f64).round() as u64;
    let mut out = [0u8; 8];
    out[0] = sign | (e as u8);
    for i in 0..7 {
        out[1 + i] = ((mant >> (8 * (6 - i))) & 0xFF) as u8;
    }
    out
}

/// Decodes a GDSII 8-byte real.
pub fn from_gds_real(bytes: [u8; 8]) -> f64 {
    let sign = if bytes[0] & 0x80 != 0 { -1.0 } else { 1.0 };
    let e = (bytes[0] & 0x7F) as i32 - 64;
    let mut mant = 0u64;
    for &b in &bytes[1..8] {
        mant = (mant << 8) | b as u64;
    }
    sign * (mant as f64 / (1u64 << 56) as f64) * 16f64.powi(e)
}

/// Serializes a layout as a single-structure GDSII stream on `layer`
/// (datatype 0), with 1 nm database units.
pub fn write_gds(layout: &Layout, layer: i16) -> Vec<u8> {
    let mut out = Vec::new();
    let name = layout.name.clone().unwrap_or_else(|| "LSOPC".to_string());
    push_record(&mut out, HEADER, &600i16.to_be_bytes());
    push_record(&mut out, BGNLIB, &[0u8; 24]); // zeroed timestamps
    push_string(&mut out, LIBNAME, &name);
    let mut units = Vec::with_capacity(16);
    units.extend_from_slice(&to_gds_real(1e-3)); // user units / db unit
    units.extend_from_slice(&to_gds_real(1e-9)); // db unit in meters (1 nm)
    push_record(&mut out, UNITS, &units);
    push_record(&mut out, BGNSTR, &[0u8; 24]);
    push_string(&mut out, STRNAME, &name);
    for shape in layout.shapes() {
        let poly = shape.to_polygon();
        push_record(&mut out, BOUNDARY, &[]);
        push_record(&mut out, LAYER, &layer.to_be_bytes());
        push_record(&mut out, DATATYPE, &0i16.to_be_bytes());
        let mut xy = Vec::with_capacity((poly.vertices().len() + 1) * 8);
        for v in poly.vertices() {
            xy.extend_from_slice(&(v.x as i32).to_be_bytes());
            xy.extend_from_slice(&(v.y as i32).to_be_bytes());
        }
        // GDSII closes boundaries explicitly.
        let first = poly.vertices()[0];
        xy.extend_from_slice(&(first.x as i32).to_be_bytes());
        xy.extend_from_slice(&(first.y as i32).to_be_bytes());
        push_record(&mut out, XY, &xy);
        push_record(&mut out, ENDEL, &[]);
    }
    push_record(&mut out, ENDSTR, &[]);
    push_record(&mut out, ENDLIB, &[]);
    out
}

fn push_record(out: &mut Vec<u8>, tag: u16, payload: &[u8]) {
    let len = (payload.len() + 4) as u16;
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&tag.to_be_bytes());
    out.extend_from_slice(payload);
}

fn push_string(out: &mut Vec<u8>, tag: u16, s: &str) {
    let mut payload = s.as_bytes().to_vec();
    if payload.len() % 2 == 1 {
        payload.push(0); // pad to even length per spec
    }
    push_record(out, tag, &payload);
}

/// Parses a GDSII stream produced by [`write_gds`] (or any stream
/// restricted to `BOUNDARY` elements) back into a [`Layout`].
///
/// All structures are merged; the first structure name becomes the layout
/// name; layers are ignored on read.
///
/// # Errors
///
/// Returns [`ParseGdsError`] on truncated records, unsupported element
/// types, coordinates beyond ±[`MAX_COORD`](crate::MAX_COORD), or
/// non-rectilinear boundaries. The error carries the byte offset of the
/// offending record; no input panics the parser.
pub fn parse_gds(bytes: &[u8]) -> Result<Layout, ParseGdsError> {
    let mut layout = Layout::new();
    let mut pos = 0usize;
    let mut in_boundary = false;
    let mut xy: Option<Vec<Point>> = None;
    while pos + 4 <= bytes.len() {
        let len = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]) as usize;
        let tag = u16::from_be_bytes([bytes[pos + 2], bytes[pos + 3]]);
        if len < 4 || pos + len > bytes.len() {
            return Err(ParseGdsError::new(pos, format!("bad record length {len}")));
        }
        let payload = &bytes[pos + 4..pos + len];
        match tag {
            HEADER | BGNLIB | UNITS | LIBNAME | BGNSTR | LAYER | DATATYPE => {}
            STRNAME => {
                if layout.name.is_none() {
                    let text: Vec<u8> = payload.iter().copied().take_while(|&b| b != 0).collect();
                    layout.name = Some(String::from_utf8_lossy(&text).into_owned());
                }
            }
            BOUNDARY => {
                in_boundary = true;
                xy = None;
            }
            XY => {
                if !in_boundary {
                    return Err(ParseGdsError::new(pos, "XY outside BOUNDARY"));
                }
                if !payload.len().is_multiple_of(8) {
                    return Err(ParseGdsError::new(pos, "XY payload not 8-byte aligned"));
                }
                let mut pts = Vec::with_capacity(payload.len() / 8);
                for chunk in payload.chunks_exact(8) {
                    let x = i32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) as i64;
                    let y = i32::from_be_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]) as i64;
                    if x.abs() > crate::MAX_COORD || y.abs() > crate::MAX_COORD {
                        return Err(ParseGdsError::new(
                            pos,
                            format!("coordinate ({x}, {y}) exceeds ±2^30 nm"),
                        ));
                    }
                    pts.push(Point::new(x, y));
                }
                xy = Some(pts);
            }
            ENDEL => {
                if in_boundary {
                    let mut pts = xy
                        .take()
                        .ok_or_else(|| ParseGdsError::new(pos, "BOUNDARY without XY"))?;
                    // Drop the explicit closing vertex.
                    if pts.len() >= 2 && pts.first() == pts.last() {
                        pts.pop();
                    }
                    let poly =
                        Polygon::new(pts).map_err(|e| ParseGdsError::new(pos, e.to_string()))?;
                    layout.push(Shape::Polygon(poly));
                    in_boundary = false;
                }
            }
            ENDSTR => {}
            ENDLIB => return Ok(layout),
            other => {
                return Err(ParseGdsError::new(
                    pos,
                    format!("unsupported record 0x{other:04X}"),
                ));
            }
        }
        pos += len;
    }
    Err(ParseGdsError::new(pos, "missing ENDLIB"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    #[test]
    fn gds_real_encodes_known_values() {
        // 1.0 = 16^1 · 1/16 → exponent 65, mantissa 0x10000000000000.
        assert_eq!(to_gds_real(1.0), [0x41, 0x10, 0, 0, 0, 0, 0, 0]);
        assert_eq!(to_gds_real(0.0), [0; 8]);
        // Sign bit.
        assert_eq!(to_gds_real(-1.0)[0], 0xC1);
    }

    #[test]
    fn gds_real_roundtrip() {
        for v in [
            0.0, 1.0, -1.0, 0.001, 1e-9, 2048.0, 193.5, -0.06125, 6.02e23, 1.6e-19,
        ] {
            let round = from_gds_real(to_gds_real(v));
            let err = if v == 0.0 {
                round.abs()
            } else {
                ((round - v) / v).abs()
            };
            assert!(err < 1e-14, "value {v} round-tripped to {round}");
        }
    }

    fn sample_layout() -> Layout {
        let mut layout = Layout::new();
        layout.name = Some("TESTCHIP".to_string());
        layout.push(Rect::new(0, 0, 100, 40).into());
        layout.push(
            Polygon::new(vec![
                Point::new(200, 0),
                Point::new(260, 0),
                Point::new(260, 30),
                Point::new(230, 30),
                Point::new(230, 80),
                Point::new(200, 80),
            ])
            .expect("valid")
            .into(),
        );
        layout
    }

    #[test]
    fn stream_roundtrip_preserves_geometry() {
        let layout = sample_layout();
        let bytes = write_gds(&layout, 1);
        let parsed = parse_gds(&bytes).expect("roundtrip parses");
        assert_eq!(parsed.name.as_deref(), Some("TESTCHIP"));
        assert_eq!(parsed.len(), layout.len());
        assert_eq!(parsed.total_area(), layout.total_area());
        // Shapes come back as polygons; compare vertex sets via areas and
        // bboxes.
        for (a, b) in parsed.shapes().iter().zip(layout.shapes()) {
            assert_eq!(a.area(), b.area());
            assert_eq!(a.bbox(), b.bbox());
        }
    }

    #[test]
    fn units_record_is_nanometres() {
        let bytes = write_gds(&sample_layout(), 1);
        // Find the UNITS record and decode its two reals.
        let mut pos = 0;
        while pos + 4 <= bytes.len() {
            let len = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]) as usize;
            let tag = u16::from_be_bytes([bytes[pos + 2], bytes[pos + 3]]);
            if tag == UNITS {
                let payload = &bytes[pos + 4..pos + len];
                let user: [u8; 8] = payload[..8].try_into().expect("8 bytes");
                let meters: [u8; 8] = payload[8..16].try_into().expect("8 bytes");
                assert!((from_gds_real(user) - 1e-3).abs() < 1e-18);
                assert!((from_gds_real(meters) - 1e-9).abs() < 1e-24);
                return;
            }
            pos += len;
        }
        panic!("UNITS record missing");
    }

    #[test]
    fn rejects_truncation() {
        let bytes = write_gds(&sample_layout(), 1);
        let err = parse_gds(&bytes[..bytes.len() - 6]).expect_err("truncated");
        assert!(err.to_string().contains("ENDLIB") || err.to_string().contains("length"));
    }

    #[test]
    fn rejects_unsupported_records() {
        // A PATH element (0x0900) inside a structure.
        let mut bytes = Vec::new();
        push_record(&mut bytes, HEADER, &600i16.to_be_bytes());
        push_record(&mut bytes, 0x0900, &[]);
        let err = parse_gds(&bytes).expect_err("unsupported");
        assert!(err.to_string().contains("0x0900"));
        assert!(err.offset() > 0);
    }

    #[test]
    fn rejects_diagonal_boundary() {
        let mut bytes = Vec::new();
        push_record(&mut bytes, HEADER, &600i16.to_be_bytes());
        push_record(&mut bytes, BOUNDARY, &[]);
        let mut xy = Vec::new();
        for &(x, y) in &[(0i32, 0i32), (10, 10), (10, 0), (0, 5), (0, 0)] {
            xy.extend_from_slice(&x.to_be_bytes());
            xy.extend_from_slice(&y.to_be_bytes());
        }
        push_record(&mut bytes, XY, &xy);
        push_record(&mut bytes, ENDEL, &[]);
        push_record(&mut bytes, ENDLIB, &[]);
        let err = parse_gds(&bytes).expect_err("diagonal");
        assert!(err.to_string().contains("axis-parallel"), "got: {err}");
    }

    #[test]
    fn rejects_out_of_range_coordinates() {
        let mut bytes = Vec::new();
        push_record(&mut bytes, HEADER, &600i16.to_be_bytes());
        push_record(&mut bytes, BOUNDARY, &[]);
        let mut xy = Vec::new();
        for &(x, y) in &[(0i32, 0i32), (i32::MAX, 0), (i32::MAX, 10), (0, 10), (0, 0)] {
            xy.extend_from_slice(&x.to_be_bytes());
            xy.extend_from_slice(&y.to_be_bytes());
        }
        push_record(&mut bytes, XY, &xy);
        push_record(&mut bytes, ENDEL, &[]);
        push_record(&mut bytes, ENDLIB, &[]);
        let err = parse_gds(&bytes).expect_err("out of range");
        assert!(err.to_string().contains("exceeds"), "got: {err}");
        assert!(err.offset() > 0);
    }

    #[test]
    fn glp_and_gds_agree() {
        // The two formats carry the same geometry.
        let layout = sample_layout();
        let via_gds = parse_gds(&write_gds(&layout, 7)).expect("gds parses");
        let via_glp = crate::parse_glp(&crate::write_glp(&layout)).expect("glp parses");
        assert_eq!(via_gds.total_area(), via_glp.total_area());
        assert_eq!(via_gds.bbox(), via_glp.bbox());
    }
}
