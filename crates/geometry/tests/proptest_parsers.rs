//! Adversarial-input properties of the layout parsers: arbitrary bytes
//! and mutated-but-plausible records must never panic, and every failure
//! must carry a position (line for `.glp`, byte offset for GDSII) that
//! points back into the input.

use lsopc_geometry::{parse_gds, parse_glp, write_gds, Layout, Rect};
use proptest::prelude::*;

/// A pool of adversarial integer tokens: boundary values, overflow
/// candidates, and values just past the parser's ±2³⁰ coordinate bound.
fn token(ix: u8, raw: i64) -> String {
    match ix % 8 {
        0 => raw.to_string(),
        1 => i64::MAX.to_string(),
        2 => i64::MIN.to_string(),
        3 => "99999999999999999999".to_string(), // past i64
        4 => ((1i64 << 30) + 1).to_string(),     // past MAX_COORD
        5 => "1e9".to_string(),                  // not an integer
        6 => ";".to_string(),
        _ => "-".to_string(),
    }
}

fn glp_line(kind: u8, tokens: &[(u8, i64)]) -> String {
    let keyword = match kind % 6 {
        0 => "RECT",
        1 => "PGON",
        2 => "CELL",
        3 => "rect",
        4 => "",
        _ => "NOISE",
    };
    let mut line = keyword.to_string();
    for &(ix, raw) in tokens {
        line.push(' ');
        line.push_str(&token(ix, raw));
    }
    if kind.is_multiple_of(2) {
        line.push_str(" ;");
    }
    line
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes, decoded lossily, never panic `parse_glp`; any
    /// error names a line inside the input.
    #[test]
    fn glp_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_glp(&text) {
            let nlines = text.lines().count().max(1);
            prop_assert!(e.line() >= 1 && e.line() <= nlines,
                "line {} outside input ({} lines)", e.line(), nlines);
        }
    }

    /// Structured-but-hostile records (overflowing coordinates, odd
    /// arity, stray separators) never panic; errors stay line-addressed.
    #[test]
    fn glp_survives_adversarial_records(
        lines in prop::collection::vec(
            (any::<u8>(), prop::collection::vec((any::<u8>(), any::<i64>()), 0..12)),
            0..8,
        )
    ) {
        let text: String = lines
            .iter()
            .map(|(kind, tokens)| glp_line(*kind, tokens) + "\n")
            .collect();
        if let Err(e) = parse_glp(&text) {
            let nlines = text.lines().count().max(1);
            prop_assert!(e.line() >= 1 && e.line() <= nlines);
            prop_assert!(!e.to_string().is_empty());
        }
    }

    /// Raw bytes never panic `parse_gds`; any error carries an offset no
    /// further than one record header past the end of the input.
    #[test]
    fn gds_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Err(e) = parse_gds(&bytes) {
            prop_assert!(e.offset() <= bytes.len(),
                "offset {} beyond input ({} bytes)", e.offset(), bytes.len());
        }
    }

    /// A valid stream with one corrupted byte (truncated records, bogus
    /// tags, warped coordinates) parses or fails cleanly — never panics.
    #[test]
    fn gds_survives_single_byte_corruption(
        x0 in -512i64..512, y0 in -512i64..512,
        w in 1i64..256, h in 1i64..256,
        at in any::<u16>(), to in any::<u8>(),
    ) {
        let mut layout = Layout::new();
        layout.push(Rect::from_origin_size(x0, y0, w, h).into());
        let mut bytes = write_gds(&layout, 1);
        let at = at as usize % bytes.len();
        bytes[at] = to;
        if let Err(e) = parse_gds(&bytes) {
            prop_assert!(e.offset() <= bytes.len());
        }
    }

    /// Truncating a valid stream at any point fails cleanly with an
    /// in-range offset (or still parses, when the cut lands after ENDLIB).
    #[test]
    fn gds_survives_truncation_everywhere(
        w in 1i64..256, h in 1i64..256, cut in any::<u16>(),
    ) {
        let mut layout = Layout::new();
        layout.push(Rect::from_origin_size(0, 0, w, h).into());
        let bytes = write_gds(&layout, 1);
        let cut = cut as usize % bytes.len();
        if let Err(e) = parse_gds(&bytes[..cut]) {
            prop_assert!(e.offset() <= cut);
        }
    }
}
