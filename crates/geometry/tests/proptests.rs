//! Property-based invariants of the geometry kit.

use lsopc_geometry::{
    label_components, mask_to_polygons, parse_glp, polygons_to_layout, probe_sites, rasterize,
    write_glp, Layout, Polygon, Rect,
};
use proptest::prelude::*;

/// Disjoint rectangles on an 8-px-pitch grid inside a 64x64 field.
fn disjoint_rects() -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec((0usize..8, 0usize..8, 1i64..7, 1i64..7), 1..8).prop_map(|cells| {
        let mut seen = std::collections::HashSet::new();
        let mut rects = Vec::new();
        for (cx, cy, w, h) in cells {
            if seen.insert((cx, cy)) {
                let x0 = cx as i64 * 8;
                let y0 = cy as i64 * 8;
                rects.push(Rect::new(x0, y0, x0 + w.min(7), y0 + h.min(7)));
            }
        }
        rects
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rasterization at 1 nm/px reproduces exact areas for disjoint rects.
    #[test]
    fn raster_area_exact(rects in disjoint_rects()) {
        let layout: Layout = rects.iter().map(|&r| r.into()).collect();
        let grid = rasterize(&layout, 64, 64, 1.0);
        prop_assert_eq!(grid.sum() as i64, layout.total_area());
    }

    /// Vectorize(rasterize(x)) re-rasterizes to the same grid — the mask
    /// export path is lossless.
    #[test]
    fn vectorize_roundtrip(rects in disjoint_rects()) {
        let layout: Layout = rects.iter().map(|&r| r.into()).collect();
        let grid = rasterize(&layout, 64, 64, 1.0);
        let polys = mask_to_polygons(&grid, 1.0);
        let back = rasterize(&polygons_to_layout(&polys), 64, 64, 1.0);
        prop_assert_eq!(back, grid);
    }

    /// Extracted polygon count equals the connected-component count (no
    /// holes exist for disjoint solid rects, though touching rects merge).
    #[test]
    fn vectorize_counts_components(rects in disjoint_rects()) {
        let layout: Layout = rects.iter().map(|&r| r.into()).collect();
        let grid = rasterize(&layout, 64, 64, 1.0);
        let (_, comps) = label_components(&grid, 0.5);
        let polys = mask_to_polygons(&grid, 1.0);
        prop_assert_eq!(polys.len(), comps.len());
    }

    /// `.glp` round-trips arbitrary layouts of rects exactly.
    #[test]
    fn glp_roundtrip(rects in disjoint_rects()) {
        let mut layout: Layout = rects.iter().map(|&r| r.into()).collect();
        layout.name = Some("prop".to_string());
        let reparsed = parse_glp(&write_glp(&layout)).expect("written glp parses");
        prop_assert_eq!(layout, reparsed);
    }

    /// Every probe site sits exactly on a shape edge, with a unit normal.
    #[test]
    fn probes_sit_on_edges(rects in disjoint_rects(), spacing in 2.0f64..20.0) {
        let layout: Layout = rects.iter().map(|&r| r.into()).collect();
        for p in probe_sites(&layout, spacing) {
            let n2 = p.outward.x * p.outward.x + p.outward.y * p.outward.y;
            prop_assert!((n2 - 1.0).abs() < 1e-12);
            // On some rect boundary: x or y coordinate matches an edge
            // and the other lies within the rect span.
            let on_edge = rects.iter().any(|r| {
                let (x, y) = (p.pos.x, p.pos.y);
                let on_v = (x == r.x0 as f64 || x == r.x1 as f64)
                    && y >= r.y0 as f64 && y <= r.y1 as f64;
                let on_h = (y == r.y0 as f64 || y == r.y1 as f64)
                    && x >= r.x0 as f64 && x <= r.x1 as f64;
                on_v || on_h
            });
            prop_assert!(on_edge, "probe at {:?} off every edge", p.pos);
        }
    }

    /// Shoelace area of a rect-as-polygon equals the rect area regardless
    /// of traversal direction.
    #[test]
    fn polygon_area_sign_invariant(x0 in -50i64..50, y0 in -50i64..50, w in 1i64..40, h in 1i64..40) {
        let r = Rect::from_origin_size(x0, y0, w, h);
        let poly: Polygon = r.into();
        let mut reversed: Vec<_> = poly.vertices().to_vec();
        reversed.reverse();
        let rpoly = Polygon::new(reversed).expect("still rectilinear");
        prop_assert_eq!(poly.area(), r.area());
        prop_assert_eq!(rpoly.area(), r.area());
        prop_assert_eq!(poly.signed_area(), -rpoly.signed_area());
    }
}
