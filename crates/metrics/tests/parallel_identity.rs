//! Parallel == serial bit-identity for PV-band simulation.

use lsopc_grid::Grid;
use lsopc_litho::LithoSimulator;
use lsopc_metrics::PvBand;
use lsopc_optics::OpticsConfig;
use lsopc_parallel::ParallelContext;

fn sim() -> LithoSimulator {
    LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(6), 64, 4.0)
        .expect("valid configuration")
}

fn wire_mask() -> Grid<f64> {
    Grid::from_fn(64, 64, |x, y| {
        if (26..38).contains(&x) && (12..52).contains(&y) {
            1.0
        } else {
            0.0
        }
    })
}

/// The concurrent process-corner simulations must produce the exact same
/// PV-band map as the serial path, for every thread count — including
/// counts far above the two corners being simulated.
#[test]
fn pvband_maps_are_thread_count_invariant() {
    let sim = sim();
    let mask = wire_mask();
    let reference = PvBand::simulate_with(&ParallelContext::new(1), &sim, &mask);
    assert!(reference.area_nm2 > 0.0, "premise: a real band exists");
    for threads in [2usize, 3, 8] {
        let ctx = ParallelContext::new(threads);
        let got = PvBand::simulate_with(&ctx, &sim, &mask);
        assert_eq!(got.area_nm2.to_bits(), reference.area_nm2.to_bits());
        for (a, b) in got.map.as_slice().iter().zip(reference.map.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// `simulate` agrees with measuring prints produced one at a time.
#[test]
fn simulate_matches_sequential_prints() {
    let sim = sim();
    let mask = wire_mask();
    let via_simulate = PvBand::simulate(&sim, &mask);
    let inner = sim.print(&mask, sim.corners().inner);
    let outer = sim.print(&mask, sim.corners().outer);
    let via_measure = PvBand::measure(&inner, &outer, sim.pixel_nm());
    assert_eq!(via_simulate, via_measure);
}

/// `print_corners` (used by `evaluate_mask`) is likewise invariant.
#[test]
fn print_corners_are_thread_count_invariant() {
    let sim = sim();
    let mask = wire_mask();
    let reference = sim.print_corners_with(&ParallelContext::new(1), &mask);
    for threads in [2usize, 3, 8] {
        let got = sim.print_corners_with(&ParallelContext::new(threads), &mask);
        assert_eq!(got.nominal, reference.nominal);
        assert_eq!(got.inner, reference.inner);
        assert_eq!(got.outer, reference.outer);
    }
}
