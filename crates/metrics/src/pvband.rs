//! Process-variation band (paper Fig. 1(b)).

use lsopc_grid::Grid;
use lsopc_litho::LithoSimulator;
use lsopc_parallel::ParallelContext;

/// The process-variation band: the XOR region between the outermost and
/// innermost printed contours over the process window.
///
/// # Example
///
/// ```
/// use lsopc_grid::Grid;
/// use lsopc_metrics::PvBand;
///
/// let inner = Grid::from_fn(8, 8, |x, y| {
///     if (3..5).contains(&x) && (3..5).contains(&y) { 1.0 } else { 0.0 }
/// });
/// let outer = Grid::from_fn(8, 8, |x, y| {
///     if (2..6).contains(&x) && (2..6).contains(&y) { 1.0 } else { 0.0 }
/// });
/// let pvb = PvBand::measure(&inner, &outer, 2.0);
/// assert_eq!(pvb.area_nm2, (16.0 - 4.0) * 4.0); // 12 px at 4 nm² each
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PvBand {
    /// Band area in nm².
    pub area_nm2: f64,
    /// Binary map of the band (1 inside the XOR region), for figures.
    pub map: Grid<f64>,
}

impl PvBand {
    /// Measures the PV band from hard prints at the innermost and
    /// outermost process corners.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ in shape or `pixel_nm` is not positive.
    pub fn measure(inner: &Grid<f64>, outer: &Grid<f64>, pixel_nm: f64) -> Self {
        assert!(pixel_nm > 0.0, "pixel size must be positive");
        assert_eq!(inner.dims(), outer.dims(), "grid dimensions must match");
        let map = inner.zip_map(outer, |&a, &b| {
            let ia = a >= 0.5;
            let ib = b >= 0.5;
            if ia != ib {
                1.0
            } else {
                0.0
            }
        });
        let area_nm2 = map.sum() * pixel_nm * pixel_nm;
        Self { area_nm2, map }
    }

    /// Simulates `mask` at the innermost and outermost process corners
    /// and measures the band between the two prints.
    ///
    /// The two corner simulations are independent and run concurrently on
    /// the shared pool; results are identical to simulating them one
    /// after the other.
    ///
    /// # Panics
    ///
    /// Panics if the mask dimensions do not match the simulator grid.
    pub fn simulate(sim: &LithoSimulator, mask: &Grid<f64>) -> Self {
        Self::simulate_with(ParallelContext::global(), sim, mask)
    }

    /// [`Self::simulate`] on an explicit [`ParallelContext`].
    pub fn simulate_with(ctx: &ParallelContext, sim: &LithoSimulator, mask: &Grid<f64>) -> Self {
        let _span = lsopc_trace::span!("pvband.simulate");
        let corners = [sim.corners().inner, sim.corners().outer];
        // Warm the kernel cache serially so concurrent corners don't
        // both generate the same defocus kernels on a cache miss.
        for c in &corners {
            let _ = sim.kernels_for(c.defocus_nm);
        }
        let prints = ctx.par_map(corners.len(), |i| sim.print(mask, corners[i]));
        Self::measure(&prints[0], &prints[1], sim.pixel_nm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_prints_have_zero_band() {
        let g = Grid::from_fn(16, 16, |x, _| if x > 8 { 1.0 } else { 0.0 });
        let pvb = PvBand::measure(&g, &g, 1.0);
        assert_eq!(pvb.area_nm2, 0.0);
        assert_eq!(pvb.map.sum(), 0.0);
    }

    #[test]
    fn area_scales_with_pixel_size() {
        let inner = Grid::new(4, 4, 0.0);
        let outer = Grid::new(4, 4, 1.0);
        assert_eq!(PvBand::measure(&inner, &outer, 1.0).area_nm2, 16.0);
        assert_eq!(PvBand::measure(&inner, &outer, 4.0).area_nm2, 256.0);
    }

    #[test]
    fn xor_is_symmetric() {
        let a = Grid::from_fn(8, 8, |x, _| if x < 3 { 1.0 } else { 0.0 });
        let b = Grid::from_fn(8, 8, |_, y| if y < 2 { 1.0 } else { 0.0 });
        let p1 = PvBand::measure(&a, &b, 1.0);
        let p2 = PvBand::measure(&b, &a, 1.0);
        assert_eq!(p1.area_nm2, p2.area_nm2);
        // |A| + |B| − 2|A∩B| = 24 + 16 − 2·6 = 28.
        assert_eq!(p1.area_nm2, 28.0);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_grids_panic() {
        let a = Grid::new(4, 4, 0.0);
        let b = Grid::new(8, 8, 0.0);
        let _ = PvBand::measure(&a, &b, 1.0);
    }
}
