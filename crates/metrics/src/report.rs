//! Human-readable mask quality reports.
//!
//! Bundles every measurement the workspace can make about one optimized
//! mask — contest metrics, manufacturability, probe statistics — into a
//! plain-text report for logs and the CLI.

use crate::{EpeReport, MaskComplexity, MaskEvaluation, MrcReport};
use std::fmt::Write as _;

/// Summary statistics of the per-probe EPE displacements.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct EpeStatistics {
    /// Probes with a measurable contour crossing.
    pub measured: usize,
    /// Probes with no contour inside the search range.
    pub lost: usize,
    /// Mean |displacement| over measured probes, nm.
    pub mean_abs_nm: f64,
    /// Largest |displacement|, nm.
    pub max_abs_nm: f64,
    /// Root-mean-square displacement, nm.
    pub rms_nm: f64,
}

impl EpeStatistics {
    /// Computes displacement statistics from an EPE report.
    ///
    /// # Example
    ///
    /// ```
    /// use lsopc_metrics::{EpeReport, EpeStatistics};
    /// let stats = EpeStatistics::from_report(&EpeReport {
    ///     violations: 0,
    ///     total_probes: 0,
    ///     measurements: Vec::new(),
    /// });
    /// assert_eq!(stats.measured, 0);
    /// ```
    pub fn from_report(report: &EpeReport) -> Self {
        let mut stats = Self::default();
        let mut sum_abs = 0.0;
        let mut sum_sq = 0.0;
        for m in &report.measurements {
            match m.displacement_nm {
                Some(d) => {
                    stats.measured += 1;
                    sum_abs += d.abs();
                    sum_sq += d * d;
                    stats.max_abs_nm = stats.max_abs_nm.max(d.abs());
                }
                None => stats.lost += 1,
            }
        }
        if stats.measured > 0 {
            stats.mean_abs_nm = sum_abs / stats.measured as f64;
            stats.rms_nm = (sum_sq / stats.measured as f64).sqrt();
        }
        stats
    }
}

/// Renders a complete plain-text quality report for one mask.
///
/// `mrc` is optional because rule values are flow-specific; pass the
/// check result when you have one.
pub fn render_report(
    title: &str,
    eval: &MaskEvaluation,
    complexity: &MaskComplexity,
    mrc: Option<&MrcReport>,
    runtime_s: f64,
) -> String {
    let stats = EpeStatistics::from_report(&eval.epe);
    let score = eval.score(runtime_s);
    let mut out = String::new();
    let _ = writeln!(out, "=== mask quality report: {title} ===");
    let _ = writeln!(
        out,
        "score        {:.0}  (runtime {:.1}s + 4*PVB + 5000*#EPE + 10000*shapes)",
        score.value(),
        runtime_s
    );
    let _ = writeln!(
        out,
        "epe          {} violations / {} probes (mean |d| {:.1} nm, rms {:.1} nm, max {:.1} nm, lost {})",
        eval.epe.violations,
        eval.epe.total_probes,
        stats.mean_abs_nm,
        stats.rms_nm,
        stats.max_abs_nm,
        stats.lost
    );
    let _ = writeln!(out, "pv band      {:.0} nm²", eval.pvb_area_nm2);
    let _ = writeln!(
        out,
        "shapes       {} total (extra {}, missing {}, bridges {})",
        eval.shapes.total(),
        eval.shapes.extra,
        eval.shapes.missing,
        eval.shapes.bridges
    );
    let _ = writeln!(
        out,
        "complexity   {} fragments, perimeter {} px, smallest {} px, jaggedness {:.2}",
        complexity.fragments,
        complexity.perimeter_px,
        complexity.smallest_fragment_px,
        complexity.jaggedness
    );
    if let Some(mrc) = mrc {
        let _ = writeln!(
            out,
            "mrc          {} width + {} spacing violations",
            mrc.width_violations, mrc.spacing_violations
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate_mask, EpeMeasurement};
    use lsopc_geometry::{probe_sites, rasterize, Layout, Rect};
    use lsopc_litho::LithoSimulator;
    use lsopc_optics::OpticsConfig;

    #[test]
    fn statistics_from_synthetic_measurements() {
        let mut layout = Layout::new();
        layout.push(Rect::new(0, 0, 100, 100).into());
        let sites = probe_sites(&layout, 40.0);
        let measurements: Vec<EpeMeasurement> = sites
            .iter()
            .enumerate()
            .map(|(i, &site)| EpeMeasurement {
                site,
                displacement_nm: if i == 0 { None } else { Some(3.0) },
                violation: i == 0,
            })
            .collect();
        let report = EpeReport {
            violations: 1,
            total_probes: measurements.len(),
            measurements,
        };
        let stats = EpeStatistics::from_report(&report);
        assert_eq!(stats.lost, 1);
        assert_eq!(stats.measured, report.total_probes - 1);
        assert!((stats.mean_abs_nm - 3.0).abs() < 1e-12);
        assert!((stats.rms_nm - 3.0).abs() < 1e-12);
        assert_eq!(stats.max_abs_nm, 3.0);
    }

    #[test]
    fn report_contains_every_section() {
        let sim =
            LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
                .expect("valid configuration");
        let mut layout = Layout::new();
        layout.push(Rect::new(80, 48, 176, 208).into());
        let target = rasterize(&layout, 64, 64, 4.0);
        let eval = evaluate_mask(&sim, &target, &layout, &target);
        let complexity = MaskComplexity::measure(&target);
        let mrc = MrcReport::check(&target, 4, 4);
        let text = render_report("unit-test", &eval, &complexity, Some(&mrc), 1.5);
        for needle in [
            "score",
            "epe",
            "pv band",
            "shapes",
            "complexity",
            "mrc",
            "unit-test",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn report_without_mrc_omits_the_line() {
        let report = render_report(
            "bare",
            &MaskEvaluation {
                epe: EpeReport {
                    violations: 0,
                    total_probes: 0,
                    measurements: Vec::new(),
                },
                pvb_area_nm2: 0.0,
                pvb_map: lsopc_grid::Grid::new(1, 1, 0.0),
                shapes: crate::ShapeViolations::default(),
                printed_nominal: lsopc_grid::Grid::new(1, 1, 0.0),
            },
            &MaskComplexity::default(),
            None,
            0.0,
        );
        assert!(!report.contains("mrc"));
    }
}
