//! The contest score function (paper Eq. (18)).

use serde::{Deserialize, Serialize};

/// The ICCAD 2013 score:
/// `Score = RT + 4·PVBand + 5000·#EPE + 10000·ShapeViol`
/// with the runtime in seconds and the PV band in nm².
///
/// # Example
///
/// ```
/// use lsopc_metrics::ContestScore;
///
/// let score = ContestScore {
///     runtime_s: 100.0,
///     pvb_nm2: 50_000.0,
///     epe_violations: 2,
///     shape_violations: 0,
/// };
/// assert_eq!(score.value(), 100.0 + 4.0 * 50_000.0 + 5000.0 * 2.0);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ContestScore {
    /// End-to-end optimization runtime in seconds.
    pub runtime_s: f64,
    /// PV band area in nm².
    pub pvb_nm2: f64,
    /// Number of EPE violations.
    pub epe_violations: usize,
    /// Number of shape violations.
    pub shape_violations: usize,
}

impl ContestScore {
    /// Weight of the PV band term.
    pub const PVB_WEIGHT: f64 = 4.0;
    /// Weight of each EPE violation.
    pub const EPE_WEIGHT: f64 = 5000.0;
    /// Weight of each shape violation.
    pub const SHAPE_WEIGHT: f64 = 10000.0;

    /// The combined score (lower is better).
    pub fn value(&self) -> f64 {
        self.runtime_s
            + Self::PVB_WEIGHT * self.pvb_nm2
            + Self::EPE_WEIGHT * self.epe_violations as f64
            + Self::SHAPE_WEIGHT * self.shape_violations as f64
    }
}

impl std::fmt::Display for ContestScore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "score {:.0} (rt {:.1}s, pvb {:.0} nm², #epe {}, shapes {})",
            self.value(),
            self.runtime_s,
            self.pvb_nm2,
            self.epe_violations,
            self.shape_violations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_match_equation_18() {
        assert_eq!(ContestScore::PVB_WEIGHT, 4.0);
        assert_eq!(ContestScore::EPE_WEIGHT, 5000.0);
        assert_eq!(ContestScore::SHAPE_WEIGHT, 10000.0);
    }

    #[test]
    fn zero_metrics_zero_score() {
        assert_eq!(ContestScore::default().value(), 0.0);
    }

    #[test]
    fn each_term_contributes() {
        let base = ContestScore {
            runtime_s: 10.0,
            pvb_nm2: 1000.0,
            epe_violations: 1,
            shape_violations: 1,
        };
        assert_eq!(base.value(), 10.0 + 4000.0 + 5000.0 + 10000.0);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = ContestScore {
            runtime_s: 1.0,
            pvb_nm2: 2.0,
            epe_violations: 3,
            shape_violations: 4,
        }
        .to_string();
        assert!(s.contains("#epe 3") && s.contains("shapes 4"));
    }
}
