//! ICCAD 2013 contest metrics: edge placement error, process-variation
//! band, shape violations and the combined score (paper Eq. (18)).
//!
//! The paper evaluates masks with four numbers (Section IV):
//!
//! * **#EPE** — count of probe sites whose printed contour is displaced by
//!   at least 15 nm from the target edge ([`EpeChecker`]);
//! * **PVB** — the area between the outermost and innermost printed
//!   contours over the process window ([`PvBand`]);
//! * **ShapeViol** — extra / missing / bridged printed features
//!   ([`ShapeViolations`]);
//! * **Score** `= RT + 4·PVB + 5000·#EPE + 10000·ShapeViol`
//!   ([`ContestScore`]).
//!
//! [`evaluate_mask`] bundles the full pipeline: simulate the three process
//! corners, measure everything, return a [`MaskEvaluation`].
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use lsopc_geometry::{rasterize, Layout, Rect};
//! use lsopc_litho::LithoSimulator;
//! use lsopc_metrics::evaluate_mask;
//! use lsopc_optics::OpticsConfig;
//!
//! let mut layout = Layout::new();
//! layout.push(Rect::new(96, 64, 160, 192).into());
//! let sim = LithoSimulator::from_optics(
//!     &OpticsConfig::iccad2013().with_kernel_count(4),
//!     64,
//!     4.0,
//! )?;
//! let target = rasterize(&layout, 64, 64, 4.0);
//! // Evaluate the uncorrected mask (the target itself).
//! let eval = evaluate_mask(&sim, &target, &layout, &target);
//! assert!(eval.pvb_area_nm2 > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod complexity;
mod epe;
mod evaluate;
mod pvband;
mod report;
mod score;
mod shapes;

pub use complexity::{MaskComplexity, MrcReport};
pub use epe::{EpeChecker, EpeMeasurement, EpeReport};
pub use evaluate::{evaluate_mask, MaskEvaluation};
pub use pvband::PvBand;
pub use report::{render_report, EpeStatistics};
pub use score::ContestScore;
pub use shapes::ShapeViolations;
