//! Edge placement error measurement (paper Fig. 1(a), Eq. (4)).

use lsopc_geometry::{probe_sites, Layout, ProbeSite};
use lsopc_grid::Grid;
use serde::{Deserialize, Serialize};

/// One EPE measurement at a probe site.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpeMeasurement {
    /// The probe site on the target edge.
    pub site: ProbeSite,
    /// Signed displacement of the printed contour along the outward
    /// normal, in nm (positive = printed edge outside the target edge);
    /// `None` when no contour was found within the search range.
    pub displacement_nm: Option<f64>,
    /// True when `|D| >= th_EPE` (or no contour was found).
    pub violation: bool,
}

/// Summary of an EPE check.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpeReport {
    /// Number of violating probes (the paper's #EPE).
    pub violations: usize,
    /// Total probes measured.
    pub total_probes: usize,
    /// Per-probe details.
    pub measurements: Vec<EpeMeasurement>,
}

/// The EPE checker: probes every `spacing_nm` along target edges and
/// flags displacements of `threshold_nm` or more (contest values: 40 nm
/// spacing, 15 nm threshold).
///
/// # Example
///
/// ```
/// use lsopc_metrics::EpeChecker;
/// let checker = EpeChecker::iccad2013();
/// assert_eq!(checker.threshold_nm(), 15.0);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpeChecker {
    spacing_nm: f64,
    threshold_nm: f64,
    search_nm: f64,
}

impl EpeChecker {
    /// Creates a checker.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold_nm <= search_nm` and `spacing_nm > 0`.
    pub fn new(spacing_nm: f64, threshold_nm: f64, search_nm: f64) -> Self {
        assert!(spacing_nm > 0.0, "spacing must be positive");
        assert!(threshold_nm > 0.0, "threshold must be positive");
        assert!(
            search_nm >= threshold_nm,
            "search range must cover the threshold"
        );
        Self {
            spacing_nm,
            threshold_nm,
            search_nm,
        }
    }

    /// The contest configuration: 40 nm spacing, 15 nm threshold, with a
    /// 40 nm search range.
    pub fn iccad2013() -> Self {
        Self::new(40.0, 15.0, 40.0)
    }

    /// Probe spacing in nm.
    pub fn spacing_nm(&self) -> f64 {
        self.spacing_nm
    }

    /// Violation threshold `th_EPE` in nm.
    pub fn threshold_nm(&self) -> f64 {
        self.threshold_nm
    }

    /// How far along the normal the printed contour is searched, in nm.
    pub fn search_nm(&self) -> f64 {
        self.search_nm
    }

    /// Measures the EPE of a printed (hard-thresholded) image against the
    /// target layout. `pixel_nm` converts between layout nanometres and
    /// grid pixels.
    ///
    /// At each probe the printed image is sampled along the edge normal;
    /// the nearest 0/1 transition gives the contour displacement. Probes
    /// with no transition inside the search range (feature vanished or
    /// bridged) count as violations.
    ///
    /// # Panics
    ///
    /// Panics if `pixel_nm` is not positive.
    pub fn check(&self, target: &Layout, printed: &Grid<f64>, pixel_nm: f64) -> EpeReport {
        assert!(pixel_nm > 0.0, "pixel size must be positive");
        let sites = probe_sites(target, self.spacing_nm);
        let mut measurements = Vec::with_capacity(sites.len());
        let mut violations = 0;
        for site in sites {
            let displacement = self.contour_displacement(&site, printed, pixel_nm);
            let violation = match displacement {
                Some(d) => d.abs() >= self.threshold_nm,
                None => true,
            };
            if violation {
                violations += 1;
            }
            measurements.push(EpeMeasurement {
                site,
                displacement_nm: displacement,
                violation,
            });
        }
        EpeReport {
            violations,
            total_probes: measurements.len(),
            measurements,
        }
    }

    /// Finds the signed distance from the probe to the nearest printed
    /// contour crossing along the outward normal, with sub-pixel
    /// localization by bilinear interpolation.
    fn contour_displacement(
        &self,
        site: &ProbeSite,
        printed: &Grid<f64>,
        pixel_nm: f64,
    ) -> Option<f64> {
        let step = (pixel_nm / 2.0).min(1.0);
        let sample = |t: f64| -> f64 {
            let x = site.pos.x + site.outward.x * t;
            let y = site.pos.y + site.outward.y * t;
            sample_bilinear(printed, x, y, pixel_nm)
        };
        // Walk outward in both directions simultaneously, returning the
        // crossing nearest to the edge; refine each crossing linearly.
        let refine = |t_prev: f64, t: f64, v_prev: f64, v: f64| -> f64 {
            if (v - v_prev).abs() < 1e-12 {
                (t_prev + t) / 2.0
            } else {
                t_prev + (t - t_prev) * (0.5 - v_prev) / (v - v_prev)
            }
        };
        let mut best: Option<f64> = None;
        let steps = (self.search_nm / step).ceil() as i64;
        let mut prev_out = sample(0.0);
        let mut prev_in = prev_out;
        for i in 1..=steps {
            let t = i as f64 * step;
            let v_out = sample(t);
            if (v_out >= 0.5) != (prev_out >= 0.5) {
                best = Some(refine(t - step, t, prev_out, v_out));
                break;
            }
            prev_out = v_out;
            let v_in = sample(-t);
            if (v_in >= 0.5) != (prev_in >= 0.5) {
                best = Some(refine(-(t - step), -t, prev_in, v_in));
                break;
            }
            prev_in = v_in;
        }
        best
    }
}

impl Default for EpeChecker {
    fn default() -> Self {
        Self::iccad2013()
    }
}

/// Bilinear sample of a grid at layout coordinates (nm); pixel `(i, j)`'s
/// value is located at its centre `((i + 0.5)·p, (j + 0.5)·p)`, and the
/// field is clamped at the borders.
fn sample_bilinear(grid: &Grid<f64>, x_nm: f64, y_nm: f64, pixel_nm: f64) -> f64 {
    let (w, h) = grid.dims();
    let fx = (x_nm / pixel_nm - 0.5).clamp(0.0, (w - 1) as f64);
    let fy = (y_nm / pixel_nm - 0.5).clamp(0.0, (h - 1) as f64);
    let i0 = fx.floor() as usize;
    let j0 = fy.floor() as usize;
    let i1 = (i0 + 1).min(w - 1);
    let j1 = (j0 + 1).min(h - 1);
    let tx = fx - i0 as f64;
    let ty = fy - j0 as f64;
    let top = grid[(i0, j0)] * (1.0 - tx) + grid[(i1, j0)] * tx;
    let bottom = grid[(i0, j1)] * (1.0 - tx) + grid[(i1, j1)] * tx;
    top * (1.0 - ty) + bottom * ty
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_geometry::{rasterize, Rect};

    fn wire_layout() -> Layout {
        let mut l = Layout::new();
        l.push(Rect::new(80, 40, 176, 216).into());
        l
    }

    /// Rasterize the layout displaced uniformly by `d` nm in every
    /// outward direction (positive inflates).
    fn printed_with_bias(d: i64) -> Grid<f64> {
        let mut l = Layout::new();
        l.push(Rect::new(80 - d, 40 - d, 176 + d, 216 + d).into());
        rasterize(&l, 256, 256, 1.0)
    }

    #[test]
    fn perfect_print_has_no_violations() {
        let layout = wire_layout();
        let printed = printed_with_bias(0);
        let report = EpeChecker::iccad2013().check(&layout, &printed, 1.0);
        assert!(report.total_probes > 0);
        assert_eq!(report.violations, 0);
        for m in &report.measurements {
            let d = m.displacement_nm.expect("contour present");
            assert!(d.abs() <= 1.0, "displacement {d}");
        }
    }

    #[test]
    fn small_bias_is_tolerated() {
        let report = EpeChecker::iccad2013().check(&wire_layout(), &printed_with_bias(10), 1.0);
        assert_eq!(report.violations, 0);
        // Every displacement reads close to +10 nm (outward).
        for m in &report.measurements {
            let d = m.displacement_nm.expect("contour present");
            assert!((d - 10.0).abs() <= 1.5, "displacement {d}");
        }
    }

    #[test]
    fn large_bias_violates_everywhere() {
        let report = EpeChecker::iccad2013().check(&wire_layout(), &printed_with_bias(20), 1.0);
        assert_eq!(report.violations, report.total_probes);
        assert!(report.violations > 0);
    }

    #[test]
    fn shrunken_print_gives_negative_displacement() {
        let report = EpeChecker::iccad2013().check(&wire_layout(), &printed_with_bias(-10), 1.0);
        assert_eq!(report.violations, 0);
        for m in &report.measurements {
            let d = m.displacement_nm.expect("contour present");
            assert!((d + 10.0).abs() <= 1.5, "displacement {d}");
        }
    }

    #[test]
    fn vanished_feature_counts_all_probes() {
        let layout = wire_layout();
        let empty = Grid::new(256, 256, 0.0);
        let report = EpeChecker::iccad2013().check(&layout, &empty, 1.0);
        assert_eq!(report.violations, report.total_probes);
        assert!(report
            .measurements
            .iter()
            .all(|m| m.displacement_nm.is_none()));
    }

    #[test]
    fn coarse_pixels_still_measure() {
        let layout = wire_layout();
        let mut l = Layout::new();
        l.push(Rect::new(60, 20, 196, 236).into()); // +20nm bias
        let printed = rasterize(&l, 64, 64, 4.0);
        let report = EpeChecker::iccad2013().check(&layout, &printed, 4.0);
        assert_eq!(report.violations, report.total_probes);
    }

    #[test]
    #[should_panic(expected = "search range")]
    fn search_below_threshold_panics() {
        let _ = EpeChecker::new(40.0, 15.0, 10.0);
    }
}
