//! Shape-violation detection.
//!
//! The contest score penalizes "shape violations … visually checked from
//! the final printed image" (paper Eq. (18)). This module makes that
//! check mechanical by comparing connected components of the printed
//! image against the target:
//!
//! * **extra** — printed blobs (SRAF remnants, stains) that touch no
//!   target feature;
//! * **missing** — target features with no printed counterpart;
//! * **bridges** — printed blobs merging two or more target features.

use lsopc_geometry::label_components;
use lsopc_grid::Grid;
use serde::{Deserialize, Serialize};

/// Printed-vs-target shape violations.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShapeViolations {
    /// Printed components overlapping no target feature.
    pub extra: usize,
    /// Target features with no printed overlap.
    pub missing: usize,
    /// Each printed component merging `n ≥ 2` target features adds
    /// `n − 1`.
    pub bridges: usize,
}

impl ShapeViolations {
    /// Counts violations between a printed binary image and the target
    /// binary image (same grid).
    ///
    /// # Panics
    ///
    /// Panics if the grids differ in shape.
    ///
    /// # Example
    ///
    /// ```
    /// use lsopc_grid::Grid;
    /// use lsopc_metrics::ShapeViolations;
    ///
    /// let target = Grid::from_fn(16, 16, |x, y| {
    ///     if (2..6).contains(&x) && (2..14).contains(&y) { 1.0 } else { 0.0 }
    /// });
    /// let v = ShapeViolations::count(&target, &target);
    /// assert_eq!(v.total(), 0);
    /// ```
    pub fn count(printed: &Grid<f64>, target: &Grid<f64>) -> Self {
        assert_eq!(printed.dims(), target.dims(), "grid dimensions must match");
        let (printed_labels, printed_comps) = label_components(printed, 0.5);
        let (target_labels, target_comps) = label_components(target, 0.5);

        // For every printed component, the set of target components it
        // touches; and for every target component, whether it is covered.
        let mut touched_targets = vec![std::collections::BTreeSet::new(); printed_comps.len()];
        let mut target_covered = vec![false; target_comps.len()];
        let (w, h) = printed.dims();
        for y in 0..h {
            for x in 0..w {
                let p = printed_labels[(x, y)];
                let t = target_labels[(x, y)];
                if p != 0 && t != 0 {
                    touched_targets[(p - 1) as usize].insert(t);
                    target_covered[(t - 1) as usize] = true;
                }
            }
        }
        let extra = touched_targets.iter().filter(|s| s.is_empty()).count();
        let missing = target_covered.iter().filter(|covered| !*covered).count();
        let bridges = touched_targets
            .iter()
            .map(|s| s.len().saturating_sub(1))
            .sum();
        Self {
            extra,
            missing,
            bridges,
        }
    }

    /// Total violation count (the paper's ShapeViol).
    pub fn total(&self) -> usize {
        self.extra + self.missing + self.bridges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bars() -> Grid<f64> {
        Grid::from_fn(32, 16, |x, y| {
            if ((4..12).contains(&x) || (20..28).contains(&x)) && (2..14).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn perfect_print_is_clean() {
        let t = two_bars();
        let v = ShapeViolations::count(&t, &t);
        assert_eq!(v, ShapeViolations::default());
        assert_eq!(v.total(), 0);
    }

    #[test]
    fn isolated_stain_counts_as_extra() {
        let t = two_bars();
        let mut p = t.clone();
        p[(16, 1)] = 1.0; // a speck between the bars
        let v = ShapeViolations::count(&p, &t);
        assert_eq!(v.extra, 1);
        assert_eq!(v.total(), 1);
    }

    #[test]
    fn vanished_feature_counts_as_missing() {
        let t = two_bars();
        let p = Grid::from_fn(32, 16, |x, y| {
            if (4..12).contains(&x) && (2..14).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        let v = ShapeViolations::count(&p, &t);
        assert_eq!(v.missing, 1);
        assert_eq!(v.extra, 0);
        assert_eq!(v.total(), 1);
    }

    #[test]
    fn bridge_counts_once_per_extra_feature() {
        let t = two_bars();
        // One blob covering both bars and the gap.
        let p = Grid::from_fn(32, 16, |x, y| {
            if (4..28).contains(&x) && (2..14).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        let v = ShapeViolations::count(&p, &t);
        assert_eq!(v.bridges, 1);
        assert_eq!(v.missing, 0);
        assert_eq!(v.total(), 1);
    }

    #[test]
    fn everything_wrong_at_once() {
        let t = two_bars();
        let mut p = Grid::new(32, 16, 0.0);
        p[(0, 15)] = 1.0; // stain, everything else missing
        let v = ShapeViolations::count(&p, &t);
        assert_eq!(v.extra, 1);
        assert_eq!(v.missing, 2);
        assert_eq!(v.total(), 3);
    }
}
