//! One-call mask evaluation (the contest flow).

use crate::{ContestScore, EpeChecker, EpeReport, PvBand, ShapeViolations};
use lsopc_geometry::Layout;
use lsopc_grid::Grid;
use lsopc_litho::LithoSimulator;

/// Everything the contest measures about one optimized mask.
#[derive(Clone, Debug)]
pub struct MaskEvaluation {
    /// EPE report at the nominal print.
    pub epe: EpeReport,
    /// PV band area in nm².
    pub pvb_area_nm2: f64,
    /// PV band map (for figures).
    pub pvb_map: Grid<f64>,
    /// Shape violations of the nominal print.
    pub shapes: ShapeViolations,
    /// The nominal hard print (kept for inspection).
    pub printed_nominal: Grid<f64>,
}

impl MaskEvaluation {
    /// Combines the metrics with a measured runtime into a contest score.
    pub fn score(&self, runtime_s: f64) -> ContestScore {
        ContestScore {
            runtime_s,
            pvb_nm2: self.pvb_area_nm2,
            epe_violations: self.epe.violations,
            shape_violations: self.shapes.total(),
        }
    }
}

/// Simulates `mask` at the three process corners and measures #EPE, PVB
/// and shape violations against the target.
///
/// `target_layout` is the geometric target (for probe placement);
/// `target_grid` its rasterization on the simulator grid.
///
/// # Panics
///
/// Panics if the mask or target grid dimensions do not match the
/// simulator.
pub fn evaluate_mask(
    sim: &LithoSimulator,
    mask: &Grid<f64>,
    target_layout: &Layout,
    target_grid: &Grid<f64>,
) -> MaskEvaluation {
    let _span = lsopc_trace::span!("metrics.evaluate");
    let corners = sim.print_corners(mask);
    let pixel_nm = sim.pixel_nm();
    let epe = EpeChecker::iccad2013().check(target_layout, &corners.nominal, pixel_nm);
    let pvb = PvBand::measure(&corners.inner, &corners.outer, pixel_nm);
    let shapes = ShapeViolations::count(&corners.nominal, target_grid);
    MaskEvaluation {
        epe,
        pvb_area_nm2: pvb.area_nm2,
        pvb_map: pvb.map,
        shapes,
        printed_nominal: corners.nominal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_geometry::{rasterize, Rect};
    use lsopc_optics::OpticsConfig;

    fn setup() -> (LithoSimulator, Layout, Grid<f64>) {
        let sim =
            LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(6), 64, 4.0)
                .expect("valid configuration");
        let mut layout = Layout::new();
        // A comfortable 96nm x 160nm block in the 256nm field.
        layout.push(Rect::new(80, 48, 176, 208).into());
        let target = rasterize(&layout, 64, 64, 4.0);
        (sim, layout, target)
    }

    #[test]
    fn uncorrected_mask_has_nonzero_pvb() {
        let (sim, layout, target) = setup();
        let eval = evaluate_mask(&sim, &target, &layout, &target);
        assert!(eval.pvb_area_nm2 > 0.0);
        assert_eq!(eval.pvb_map.sum() * sim.pixel_area_nm2(), eval.pvb_area_nm2);
        assert!(eval.epe.total_probes > 0);
    }

    #[test]
    fn score_combines_runtime() {
        let (sim, layout, target) = setup();
        let eval = evaluate_mask(&sim, &target, &layout, &target);
        let s = eval.score(12.0);
        assert_eq!(s.runtime_s, 12.0);
        assert!(s.value() >= 12.0);
    }

    #[test]
    fn dark_mask_loses_the_feature() {
        let (sim, layout, target) = setup();
        let dark = Grid::new(64, 64, 0.0);
        let eval = evaluate_mask(&sim, &dark, &layout, &target);
        assert_eq!(eval.shapes.missing, 1);
        assert_eq!(eval.epe.violations, eval.epe.total_probes);
    }
}
