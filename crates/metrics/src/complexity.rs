//! Mask complexity and manufacturability metrics.
//!
//! The paper motivates the level-set formulation by the "unwanted tiny
//! isolated stains and edge glitches" that pixel-wise ILT produces
//! (Section I). This module makes that claim measurable:
//!
//! * [`MaskComplexity`] — fragment count, perimeter, smallest fragment,
//!   and jaggedness (perimeter²/area, scale-free);
//! * [`MrcReport`] — mask rule checks: minimum feature width and minimum
//!   spacing violations, measured by morphological probing.
//!
//! These feed the ablation study comparing level-set masks against
//! pixel-ILT masks.

use lsopc_geometry::label_components;
use lsopc_grid::Grid;
use serde::{Deserialize, Serialize};

/// Geometric complexity measures of a binary mask.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MaskComplexity {
    /// Number of connected mask fragments.
    pub fragments: usize,
    /// Total boundary length in pixel edges (4-neighbour transitions).
    pub perimeter_px: usize,
    /// Pixel area of the smallest fragment (0 when the mask is empty).
    pub smallest_fragment_px: usize,
    /// Isoperimetric jaggedness `perimeter² / (16·area)`: 1.0 for a
    /// square, larger for more ragged geometry.
    pub jaggedness: f64,
}

impl MaskComplexity {
    /// Measures a binary mask (`>= 0.5` is inside).
    ///
    /// # Example
    ///
    /// ```
    /// use lsopc_grid::Grid;
    /// use lsopc_metrics::MaskComplexity;
    ///
    /// // A single 8x8 square: jaggedness exactly 1.
    /// let mask = Grid::from_fn(16, 16, |x, y| {
    ///     if (4..12).contains(&x) && (4..12).contains(&y) { 1.0 } else { 0.0 }
    /// });
    /// let c = MaskComplexity::measure(&mask);
    /// assert_eq!(c.fragments, 1);
    /// assert_eq!(c.perimeter_px, 32);
    /// assert!((c.jaggedness - 1.0).abs() < 1e-12);
    /// ```
    pub fn measure(mask: &Grid<f64>) -> Self {
        let (w, h) = mask.dims();
        let inside = |x: i64, y: i64| -> bool {
            if x < 0 || y < 0 || x >= w as i64 || y >= h as i64 {
                false
            } else {
                mask[(x as usize, y as usize)] >= 0.5
            }
        };
        let mut perimeter = 0usize;
        let mut area = 0usize;
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                if !inside(x, y) {
                    continue;
                }
                area += 1;
                for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                    if !inside(x + dx, y + dy) {
                        perimeter += 1;
                    }
                }
            }
        }
        let (_, comps) = label_components(mask, 0.5);
        let smallest = comps.iter().map(|c| c.area).min().unwrap_or(0);
        let jaggedness = if area > 0 {
            (perimeter * perimeter) as f64 / (16.0 * area as f64)
        } else {
            0.0
        };
        Self {
            fragments: comps.len(),
            perimeter_px: perimeter,
            smallest_fragment_px: smallest,
            jaggedness,
        }
    }
}

/// Mask rule check results.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MrcReport {
    /// Mask pixels sitting in a run (horizontal or vertical) narrower than
    /// the minimum width.
    pub width_violations: usize,
    /// Background pixels in a gap narrower than the minimum spacing that
    /// separates two mask pixels.
    pub spacing_violations: usize,
}

impl MrcReport {
    /// Checks minimum width and spacing (both in pixels) by run-length
    /// scanning every row and column.
    ///
    /// A run of consecutive mask pixels shorter than `min_width_px` in
    /// *both* directions marks its pixels as width violations (thin in
    /// one direction only is fine — that is just a wire seen across).
    /// A run of background pixels shorter than `min_space_px` with mask
    /// on both sides marks spacing violations.
    ///
    /// # Panics
    ///
    /// Panics if either minimum is zero.
    ///
    /// # Example
    ///
    /// ```
    /// use lsopc_grid::Grid;
    /// use lsopc_metrics::MrcReport;
    ///
    /// // Two bars 2px apart: spacing check at 4px flags the gap.
    /// let mask = Grid::from_fn(16, 8, |x, _| {
    ///     if (2..6).contains(&x) || (8..12).contains(&x) { 1.0 } else { 0.0 }
    /// });
    /// let mrc = MrcReport::check(&mask, 3, 4);
    /// assert_eq!(mrc.width_violations, 0);
    /// assert!(mrc.spacing_violations > 0);
    /// ```
    pub fn check(mask: &Grid<f64>, min_width_px: usize, min_space_px: usize) -> Self {
        assert!(min_width_px > 0, "minimum width must be positive");
        assert!(min_space_px > 0, "minimum spacing must be positive");
        let (w, h) = mask.dims();
        let is_in = |x: usize, y: usize| mask[(x, y)] >= 0.5;

        // Horizontal and vertical run lengths per pixel.
        let mut run_h: Grid<u32> = Grid::new(w, h, 0);
        let mut run_v: Grid<u32> = Grid::new(w, h, 0);
        for y in 0..h {
            let mut x = 0;
            while x < w {
                if is_in(x, y) {
                    let start = x;
                    while x < w && is_in(x, y) {
                        x += 1;
                    }
                    let len = (x - start) as u32;
                    for i in start..x {
                        run_h[(i, y)] = len;
                    }
                } else {
                    x += 1;
                }
            }
        }
        for x in 0..w {
            let mut y = 0;
            while y < h {
                if is_in(x, y) {
                    let start = y;
                    while y < h && is_in(x, y) {
                        y += 1;
                    }
                    let len = (y - start) as u32;
                    for j in start..y {
                        run_v[(x, j)] = len;
                    }
                } else {
                    y += 1;
                }
            }
        }
        let mut width_violations = 0usize;
        for y in 0..h {
            for x in 0..w {
                if is_in(x, y)
                    && (run_h[(x, y)] as usize) < min_width_px
                    && (run_v[(x, y)] as usize) < min_width_px
                {
                    width_violations += 1;
                }
            }
        }

        // Spacing: short background runs bounded by mask on both sides.
        let mut spacing_violations = 0usize;
        for y in 0..h {
            let mut x = 1;
            while x < w {
                if !is_in(x, y) && is_in(x - 1, y) {
                    let start = x;
                    while x < w && !is_in(x, y) {
                        x += 1;
                    }
                    if x < w && (x - start) < min_space_px {
                        spacing_violations += x - start;
                    }
                } else {
                    x += 1;
                }
            }
        }
        for x in 0..w {
            let mut y = 1;
            while y < h {
                if !is_in(x, y) && is_in(x, y - 1) {
                    let start = y;
                    while y < h && !is_in(x, y) {
                        y += 1;
                    }
                    if y < h && (y - start) < min_space_px {
                        spacing_violations += y - start;
                    }
                } else {
                    y += 1;
                }
            }
        }
        Self {
            width_violations,
            spacing_violations,
        }
    }

    /// Total rule violations.
    pub fn total(&self) -> usize {
        self.width_violations + self.spacing_violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(n: usize, lo: usize, hi: usize) -> Grid<f64> {
        Grid::from_fn(n, n, |x, y| {
            if (lo..hi).contains(&x) && (lo..hi).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn square_complexity_is_canonical() {
        let c = MaskComplexity::measure(&square(32, 8, 24));
        assert_eq!(c.fragments, 1);
        assert_eq!(c.perimeter_px, 4 * 16);
        assert_eq!(c.smallest_fragment_px, 256);
        assert!((c.jaggedness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speckle_raises_fragment_count_and_jaggedness() {
        let mut m = square(32, 8, 24);
        m[(2, 2)] = 1.0;
        m[(29, 3)] = 1.0;
        let c = MaskComplexity::measure(&m);
        assert_eq!(c.fragments, 3);
        assert_eq!(c.smallest_fragment_px, 1);
        assert!(c.jaggedness > 1.0);
    }

    #[test]
    fn empty_mask_measures_zero() {
        let c = MaskComplexity::measure(&Grid::new(8, 8, 0.0));
        assert_eq!(c, MaskComplexity::default());
    }

    #[test]
    fn wide_wire_passes_width_check() {
        // A 4px-wide wire: thin horizontally but long vertically — legal.
        let m = Grid::from_fn(16, 16, |x, _| if (6..10).contains(&x) { 1.0 } else { 0.0 });
        let mrc = MrcReport::check(&m, 4, 2);
        assert_eq!(mrc.width_violations, 0);
    }

    #[test]
    fn isolated_speck_fails_width_check() {
        let mut m = Grid::new(16, 16, 0.0);
        m[(8, 8)] = 1.0;
        let mrc = MrcReport::check(&m, 3, 3);
        assert_eq!(mrc.width_violations, 1);
    }

    #[test]
    fn close_bars_fail_spacing_check() {
        let m = Grid::from_fn(16, 4, |x, _| {
            if (2..5).contains(&x) || (7..10).contains(&x) {
                1.0
            } else {
                0.0
            }
        });
        // Gap is 2px wide (x = 5, 6): at min_space 3, both gap pixels per
        // row violate (4 rows × 2 px).
        let mrc = MrcReport::check(&m, 1, 3);
        assert_eq!(mrc.spacing_violations, 8);
        // Relaxing the rule to 2px clears it.
        assert_eq!(MrcReport::check(&m, 1, 2).spacing_violations, 0);
    }

    #[test]
    fn grid_edge_gaps_are_not_spacing_violations() {
        // Background between mask and the field edge does not count.
        let m = square(16, 0, 4);
        let mrc = MrcReport::check(&m, 2, 8);
        assert_eq!(mrc.spacing_violations, 0);
        assert_eq!(mrc.total(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rule_panics() {
        let _ = MrcReport::check(&Grid::new(4, 4, 0.0), 0, 1);
    }
}
