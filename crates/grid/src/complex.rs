//! A minimal complex-number type, generic over [`Scalar`].

use crate::Scalar;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i*im`.
///
/// The workspace implements its own complex type instead of pulling in an
/// external numerics crate; only the operations needed by the FFT and the
/// Hopkins imaging model are provided.
///
/// # Example
///
/// ```
/// use lsopc_grid::Complex;
///
/// let z = Complex::from_polar(2.0_f64, std::f64::consts::FRAC_PI_2);
/// assert!((z.re).abs() < 1e-15);
/// assert!((z.im - 2.0).abs() < 1e-15);
/// assert!((z.norm_sqr() - 4.0).abs() < 1e-15);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

impl<T: Scalar> Complex<T> {
    /// Complex zero.
    pub const ZERO: Self = Self {
        re: T::ZERO,
        im: T::ZERO,
    };
    /// Complex one.
    pub const ONE: Self = Self {
        re: T::ONE,
        im: T::ZERO,
    };
    /// The imaginary unit `i`.
    pub const I: Self = Self {
        re: T::ZERO,
        im: T::ONE,
    };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub fn from_real(re: T) -> Self {
        Self { re, im: T::ZERO }
    }

    /// Creates `r * exp(i*theta)`.
    #[inline]
    pub fn from_polar(r: T, theta: T) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Creates `exp(i*theta)`, a unit phasor.
    #[inline]
    pub fn cis(theta: T) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `sqrt(re² + im²)`.
    #[inline]
    pub fn norm(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: T) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// `self * other.conj()`, fused for the common correlation pattern.
    #[inline]
    pub fn mul_conj(self, other: Self) -> Self {
        Self {
            re: self.re * other.re + self.im * other.im,
            im: self.im * other.re - self.re * other.im,
        }
    }

    /// Converts the component precision (e.g. `f64` → `f32`).
    #[inline]
    pub fn cast<U: Scalar>(self) -> Complex<U> {
        Complex {
            re: U::from_f64(self.re.to_f64()),
            im: U::from_f64(self.im.to_f64()),
        }
    }
}

impl<T: Scalar> Add for Complex<T> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl<T: Scalar> Sub for Complex<T> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl<T: Scalar> Mul for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl<T: Scalar> Div for Complex<T> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl<T: Scalar> Neg for Complex<T> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl<T: Scalar> AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: Scalar> SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: Scalar> MulAssign for Complex<T> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Scalar> Mul<T> for Complex<T> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: T) -> Self {
        self.scale(rhs)
    }
}

impl<T: Scalar> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<T: Scalar> From<T> for Complex<T> {
    fn from(re: T) -> Self {
        Self::from_real(re)
    }
}

impl<T: Scalar> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im < T::ZERO {
            write!(f, "{}-{}i", self.re, self.im.abs())
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C64;

    fn close(a: C64, b: C64) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -2.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert!(close(z * C64::I * C64::I, -z));
        assert!(close(z / z, C64::ONE));
    }

    #[test]
    fn conjugate_properties() {
        let z = C64::new(1.5, 2.5);
        assert_eq!(z.conj().conj(), z);
        assert_eq!((z * z.conj()).im, 0.0);
        assert!((z.norm_sqr() - (z * z.conj()).re).abs() < 1e-12);
    }

    #[test]
    fn mul_conj_matches_explicit() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-0.5, 3.0);
        assert!(close(a.mul_conj(b), a * b.conj()));
    }

    #[test]
    fn polar_and_cis() {
        let z = C64::from_polar(2.0, std::f64::consts::PI);
        assert!(close(z, C64::new(-2.0, 0.0)));
        let u = C64::cis(std::f64::consts::FRAC_PI_4);
        assert!((u.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1--2i".replace("--", "-"));
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
    }

    #[test]
    fn cast_to_f32_and_back() {
        let z = C64::new(0.5, -0.25);
        let w: Complex<f32> = z.cast();
        let back: C64 = w.cast();
        assert!(close(back, z));
    }

    #[test]
    fn sum_of_phasors_cancels() {
        // The 8 eighth-roots of unity sum to zero.
        let total: C64 = (0..8)
            .map(|k| C64::cis(2.0 * std::f64::consts::PI * k as f64 / 8.0))
            .sum();
        assert!(total.norm() < 1e-14);
    }
}
