//! Dense 2-D grid and complex-number substrate for lithography simulation.
//!
//! Every field manipulated by the `lsopc` workspace — binary masks, aerial
//! images, level-set functions, kernel spectra — is stored in a [`Grid`],
//! a row-major dense 2-D array. Complex-valued fields use the crate's own
//! [`Complex`] type (no external numerics dependency), generic over the
//! floating-point [`Scalar`] trait so that both `f64` (reference path) and
//! `f32` (accelerated path) are supported.
//!
//! # Example
//!
//! ```
//! use lsopc_grid::{Grid, Complex};
//!
//! // A 4x4 real grid filled from a function of the pixel coordinates.
//! let g = Grid::from_fn(4, 4, |x, y| (x + y) as f64);
//! assert_eq!(g[(3, 3)], 6.0);
//!
//! // Complex arithmetic.
//! let z = Complex::new(1.0, 2.0) * Complex::new(3.0, -1.0);
//! assert_eq!(z, Complex::new(5.0, 5.0));
//! ```

#![warn(missing_docs)]

mod complex;
mod grid;
mod io;
mod scalar;
mod stats;

pub use complex::Complex;
pub use grid::Grid;
pub use io::{write_csv, write_pgm, GridIoError};
pub use scalar::Scalar;
pub use stats::{dot, l2_norm, l2_norm_sq, max_abs};

/// Complex number specialised to `f64`, the workspace's reference precision.
pub type C64 = Complex<f64>;
/// Complex number specialised to `f32`, used by the accelerated backend.
pub type C32 = Complex<f32>;
