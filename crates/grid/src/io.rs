//! Export of grids to portable graymap (PGM) images and CSV, used by the
//! examples and the figure-regeneration harness.

use crate::Grid;
use std::error::Error;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Error returned by grid export functions.
#[derive(Debug)]
pub struct GridIoError {
    path: String,
    source: std::io::Error,
}

impl fmt::Display for GridIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to write grid to {}: {}", self.path, self.source)
    }
}

impl Error for GridIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

fn io_err(path: &Path, source: std::io::Error) -> GridIoError {
    GridIoError {
        path: path.display().to_string(),
        source,
    }
}

/// Writes a real grid as a binary 8-bit PGM image, linearly normalizing
/// values to `[0, 255]` (a constant grid is written as mid-gray).
///
/// # Errors
///
/// Returns [`GridIoError`] if the file cannot be created or written.
///
/// # Example
///
/// ```no_run
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use lsopc_grid::{Grid, write_pgm};
/// let g = Grid::from_fn(64, 64, |x, y| (x * y) as f64);
/// write_pgm(&g, "out.pgm")?;
/// # Ok(())
/// # }
/// ```
pub fn write_pgm(g: &Grid<f64>, path: impl AsRef<Path>) -> Result<(), GridIoError> {
    let path = path.as_ref();
    let (lo, hi) = g
        .as_slice()
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = hi - lo;
    let mut buf = Vec::with_capacity(32 + g.len());
    write!(&mut buf, "P5\n{} {}\n255\n", g.width(), g.height()).expect("in-memory write");
    for &v in g.as_slice() {
        let byte = if span > 0.0 {
            (((v - lo) / span) * 255.0).round() as u8
        } else {
            128
        };
        buf.push(byte);
    }
    std::fs::write(path, buf).map_err(|e| io_err(path, e))
}

/// Writes a real grid as CSV, one row per line.
///
/// # Errors
///
/// Returns [`GridIoError`] if the file cannot be created or written.
pub fn write_csv(g: &Grid<f64>, path: impl AsRef<Path>) -> Result<(), GridIoError> {
    let path = path.as_ref();
    let mut out = String::with_capacity(g.len() * 8);
    for y in 0..g.height() {
        let row = g.row(y);
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{v}"));
        }
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| io_err(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lsopc_grid_io_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn pgm_header_and_size() {
        let g = Grid::from_fn(8, 4, |x, _| x as f64);
        let path = tmp("a.pgm");
        write_pgm(&g, &path).expect("write");
        let bytes = std::fs::read(&path).expect("read");
        assert!(bytes.starts_with(b"P5\n8 4\n255\n"));
        assert_eq!(bytes.len(), b"P5\n8 4\n255\n".len() + 32);
        // min maps to 0, max to 255
        assert_eq!(bytes[b"P5\n8 4\n255\n".len()], 0);
        assert_eq!(bytes[b"P5\n8 4\n255\n".len() + 7], 255);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn pgm_constant_grid_is_midgray() {
        let g = Grid::new(2, 2, 3.0);
        let path = tmp("b.pgm");
        write_pgm(&g, &path).expect("write");
        let bytes = std::fs::read(&path).expect("read");
        assert_eq!(*bytes.last().expect("nonempty"), 128);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_roundtrip_values() {
        let g = Grid::from_vec(2, 2, vec![1.0, 2.5, -3.0, 0.0]);
        let path = tmp("c.csv");
        write_csv(&g, &path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text, "1,2.5\n-3,0\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn error_includes_path() {
        let g = Grid::new(1, 1, 0.0);
        let err = write_pgm(&g, "/nonexistent_dir_lsopc/x.pgm").expect_err("should fail");
        assert!(err.to_string().contains("nonexistent_dir_lsopc"));
        assert!(err.source().is_some());
    }
}
