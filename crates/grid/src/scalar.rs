//! The [`Scalar`] trait abstracting over `f32` and `f64`.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar used throughout the workspace.
///
/// Implemented for `f32` and `f64` only (the trait is sealed by construction:
/// all methods are required and mirror the std float API, so implementing it
/// for other types is possible but unsupported).
///
/// # Example
///
/// ```
/// use lsopc_grid::Scalar;
///
/// fn hypotenuse<T: Scalar>(a: T, b: T) -> T {
///     (a * a + b * b).sqrt()
/// }
/// assert_eq!(hypotenuse(3.0_f64, 4.0_f64), 5.0);
/// ```
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Archimedes' constant.
    const PI: Self;
    /// Machine epsilon: the difference between 1.0 and the next
    /// representable value. Guard thresholds scale with this so f32 runs
    /// tolerate proportionally larger round-off.
    const EPSILON: Self;
    /// Smallest positive normal value.
    const MIN_POSITIVE: Self;
    /// Positive infinity.
    const INFINITY: Self;

    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64`.
    fn to_f64(self) -> f64;
    /// Conversion from `usize` (exact for the magnitudes used here).
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }

    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Larger of two values (NaN-propagating like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// Smaller of two values.
    fn min(self, other: Self) -> Self;
    /// True if the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;
    /// Raise to an integer power.
    fn powi(self, n: i32) -> Self;
    /// Raise to a floating-point power.
    fn powf(self, n: Self) -> Self;
    /// Restrict to `[min, max]` with `f64::clamp` semantics (NaN passes
    /// through; `min`/`max` folds would swallow it).
    fn clamp(self, min: Self, max: Self) -> Self;
    /// Euclidean distance `sqrt(self² + other²)` without intermediate
    /// overflow/underflow.
    fn hypot(self, other: Self) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty, $pi:expr) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const PI: Self = $pi;
            const EPSILON: Self = <$t>::EPSILON;
            const MIN_POSITIVE: Self = <$t>::MIN_POSITIVE;
            const INFINITY: Self = <$t>::INFINITY;

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            #[inline]
            fn powi(self, n: i32) -> Self {
                self.powi(n)
            }
            #[inline]
            fn powf(self, n: Self) -> Self {
                self.powf(n)
            }
            #[inline]
            fn clamp(self, min: Self, max: Self) -> Self {
                self.clamp(min, max)
            }
            #[inline]
            fn hypot(self, other: Self) -> Self {
                self.hypot(other)
            }
        }
    };
}

impl_scalar!(f32, std::f32::consts::PI);
impl_scalar!(f64, std::f64::consts::PI);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>(v: f64) -> f64 {
        T::from_f64(v).to_f64()
    }

    #[test]
    fn constants_match_std() {
        assert_eq!(f64::PI, std::f64::consts::PI);
        assert_eq!(f32::PI, std::f32::consts::PI);
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f64::ONE, 1.0);
    }

    #[test]
    fn f64_roundtrip_is_exact() {
        for v in [0.0, 1.5, -3.25, 1e-12, 1e12] {
            assert_eq!(roundtrip::<f64>(v), v);
        }
    }

    #[test]
    fn f32_roundtrip_within_precision() {
        for v in [0.0, 1.5, -3.25] {
            assert_eq!(roundtrip::<f32>(v), v);
        }
        assert!((roundtrip::<f32>(0.1) - 0.1).abs() < 1e-7);
    }

    #[test]
    fn from_usize_is_exact_for_grid_sizes() {
        assert_eq!(f64::from_usize(2048), 2048.0);
        assert_eq!(f32::from_usize(4096), 4096.0);
    }

    #[test]
    fn math_delegates_to_std() {
        assert_eq!(4.0_f64.sqrt(), Scalar::sqrt(4.0_f64));
        assert_eq!(0.5_f32.exp(), Scalar::exp(0.5_f32));
        assert!(Scalar::is_finite(1.0_f64));
        assert!(!Scalar::is_finite(f64::NAN));
    }

    #[test]
    fn epsilon_and_limits_match_std() {
        assert_eq!(<f64 as Scalar>::EPSILON, f64::EPSILON);
        assert_eq!(<f32 as Scalar>::EPSILON, f32::EPSILON);
        assert_eq!(<f64 as Scalar>::MIN_POSITIVE, f64::MIN_POSITIVE);
        assert_eq!(<f32 as Scalar>::INFINITY, f32::INFINITY);
        // f32 round-off is ~2^29 times coarser than f64: the ratio used to
        // scale guard thresholds per precision.
        let ratio = <f32 as Scalar>::EPSILON.to_f64() / <f64 as Scalar>::EPSILON;
        assert_eq!(ratio, (1u64 << 29) as f64);
    }

    #[test]
    fn powf_delegates_to_std() {
        assert_eq!(Scalar::powf(2.0_f64, 0.5), 2.0_f64.powf(0.5));
        assert_eq!(Scalar::powf(3.0_f32, 1.5), 3.0_f32.powf(1.5));
        // powf(1.5) is the curvature denominator |∇ψ|³ from |∇ψ|².
        assert_eq!(Scalar::powf(4.0_f64, 1.5), 8.0);
    }

    #[test]
    fn clamp_keeps_f64_semantics() {
        assert_eq!(Scalar::clamp(5.0_f64, -1.0, 1.0), 1.0);
        assert_eq!(Scalar::clamp(-5.0_f32, -1.0, 1.0), -1.0);
        assert!(Scalar::clamp(f64::NAN, -1.0, 1.0).is_nan());
    }

    #[test]
    fn hypot_avoids_overflow() {
        assert_eq!(Scalar::hypot(3.0_f64, 4.0), 5.0);
        assert_eq!(Scalar::hypot(3.0_f32, 4.0), 5.0);
        // Naive sqrt(a²+b²) would overflow here; hypot must not.
        assert!(Scalar::hypot(1e300_f64, 1e300).is_finite());
        assert!(Scalar::hypot(1e30_f32, 1e30).is_finite());
    }
}
