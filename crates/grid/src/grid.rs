//! The dense row-major 2-D array type [`Grid`].

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::scalar::Scalar;

/// A dense 2-D array with row-major storage, indexed as `(x, y)` where `x`
/// is the column and `y` the row.
///
/// `Grid` is the common carrier for every field in the workspace: binary
/// masks, aerial intensities, level-set functions and complex spectra.
///
/// # Example
///
/// ```
/// use lsopc_grid::Grid;
///
/// let mut g = Grid::new(3, 2, 0.0_f64);
/// g[(2, 1)] = 7.0;
/// assert_eq!(g.width(), 3);
/// assert_eq!(g.height(), 2);
/// assert_eq!(g.as_slice()[5], 7.0); // row-major: index = y*width + x
/// ```
#[derive(Clone, PartialEq)]
pub struct Grid<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: Clone> Grid<T> {
    /// Creates a `width` x `height` grid with every cell set to `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `height == 0`.
    pub fn new(width: usize, height: usize, fill: T) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
        Self {
            width,
            height,
            data: vec![fill; width * height],
        }
    }

    /// Creates a grid from an existing row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
        assert_eq!(
            data.len(),
            width * height,
            "data length {} does not match {}x{}",
            data.len(),
            width,
            height
        );
        Self {
            width,
            height,
            data,
        }
    }

    /// Fills every cell with `value`.
    pub fn fill(&mut self, value: T) {
        for v in &mut self.data {
            *v = value.clone();
        }
    }
}

impl<T> Grid<T> {
    /// Creates a grid by evaluating `f(x, y)` at every cell.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Self {
            width,
            height,
            data,
        }
    }

    /// Grid width (number of columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (number of rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false: grids have non-zero dimensions by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Row-major view of the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major view of the underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid, returning the underlying vector.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        assert!(y < self.height, "row {y} out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// One row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        assert!(y < self.height, "row {y} out of bounds");
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// Checked access: `None` outside the grid.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Option<&T> {
        if x < self.width && y < self.height {
            Some(&self.data[y * self.width + x])
        } else {
            None
        }
    }

    /// Iterator over `(x, y, &value)` in row-major order.
    pub fn iter_coords(&self) -> impl Iterator<Item = (usize, usize, &T)> + '_ {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (i % w, i / w, v))
    }

    /// Maps every cell through `f`, producing a grid of a new element type.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Grid<U> {
        Grid {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Combines two same-shape grids element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the grids have different dimensions.
    pub fn zip_map<U, V>(&self, other: &Grid<U>, mut f: impl FnMut(&T, &U) -> V) -> Grid<V> {
        assert_eq!(self.dims(), other.dims(), "grid dimensions must match");
        Grid {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| f(a, b))
                .collect(),
        }
    }

    /// Applies `f` to every cell in place.
    pub fn apply(&mut self, mut f: impl FnMut(&mut T)) {
        for v in &mut self.data {
            f(v);
        }
    }
}

impl<T: Copy> Grid<T> {
    /// Transposed copy of the grid.
    pub fn transposed(&self) -> Grid<T> {
        Grid::from_fn(self.height, self.width, |x, y| self[(y, x)])
    }

    /// Extracts the `w` x `h` sub-grid whose top-left corner is `(x0, y0)`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit inside the grid.
    pub fn window(&self, x0: usize, y0: usize, w: usize, h: usize) -> Grid<T> {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "window out of bounds"
        );
        Grid::from_fn(w, h, |x, y| self[(x0 + x, y0 + y)])
    }
}

impl Grid<f64> {
    /// Downsamples by integer `factor`, averaging each `factor` x `factor`
    /// block. Used to rescale 1 nm/px layouts to coarser simulation grids.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not divisible by `factor` or
    /// `factor == 0`.
    pub fn downsample(&self, factor: usize) -> Grid<f64> {
        assert!(factor > 0, "factor must be positive");
        assert!(
            self.width.is_multiple_of(factor) && self.height.is_multiple_of(factor),
            "dimensions {}x{} not divisible by {}",
            self.width,
            self.height,
            factor
        );
        let inv = 1.0 / (factor * factor) as f64;
        Grid::from_fn(self.width / factor, self.height / factor, |x, y| {
            let mut acc = 0.0;
            for dy in 0..factor {
                for dx in 0..factor {
                    acc += self[(x * factor + dx, y * factor + dy)];
                }
            }
            acc * inv
        })
    }

    /// Upsamples by integer `factor` using nearest-neighbour replication.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn upsample_nearest(&self, factor: usize) -> Grid<f64> {
        assert!(factor > 0, "factor must be positive");
        Grid::from_fn(self.width * factor, self.height * factor, |x, y| {
            self[(x / factor, y / factor)]
        })
    }
}

impl<T: Scalar> Grid<T> {
    /// Binarizes the grid at `threshold`: cells `>= threshold` become 1.0.
    pub fn binarize(&self, threshold: f64) -> Grid<T> {
        let threshold = T::from_f64(threshold);
        self.map(|&v| if v >= threshold { T::ONE } else { T::ZERO })
    }

    /// Sum of all cells.
    pub fn sum(&self) -> T {
        self.data.iter().copied().sum()
    }
}

impl<T> Index<(usize, usize)> for Grid<T> {
    type Output = T;
    /// Indexing by `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= width` or `y >= height`.
    #[inline]
    fn index(&self, (x, y): (usize, usize)) -> &T {
        debug_assert!(
            x < self.width && y < self.height,
            "index ({x},{y}) out of bounds"
        );
        &self.data[y * self.width + x]
    }
}

impl<T> IndexMut<(usize, usize)> for Grid<T> {
    #[inline]
    fn index_mut(&mut self, (x, y): (usize, usize)) -> &mut T {
        debug_assert!(
            x < self.width && y < self.height,
            "index ({x},{y}) out of bounds"
        );
        &mut self.data[y * self.width + x]
    }
}

impl<T: fmt::Debug> fmt::Debug for Grid<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Grid {}x{} ", self.width, self.height)?;
        if self.len() <= 64 {
            for y in 0..self.height {
                writeln!(f)?;
                write!(f, "  ")?;
                for x in 0..self.width {
                    write!(f, "{:?} ", self.data[y * self.width + x])?;
                }
            }
            Ok(())
        } else {
            write!(f, "[{} cells]", self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index() {
        let mut g = Grid::new(4, 3, 0i32);
        g[(1, 2)] = 5;
        assert_eq!(g[(1, 2)], 5);
        assert_eq!(g.as_slice()[2 * 4 + 1], 5);
        assert_eq!(g.dims(), (4, 3));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_panic() {
        let _ = Grid::new(0, 3, 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        let _ = Grid::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn from_fn_coordinates() {
        let g = Grid::from_fn(3, 2, |x, y| 10 * y + x);
        assert_eq!(g[(2, 0)], 2);
        assert_eq!(g[(0, 1)], 10);
        assert_eq!(g[(2, 1)], 12);
    }

    #[test]
    fn rows_are_contiguous() {
        let g = Grid::from_fn(3, 3, |x, y| (x, y));
        assert_eq!(g.row(1), &[(0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Grid::from_fn(2, 2, |x, y| (x + y) as f64);
        let b = a.map(|v| v * 2.0);
        let c = a.zip_map(&b, |x, y| y - x);
        assert_eq!(c.as_slice(), &[0.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn transpose_involution() {
        let g = Grid::from_fn(4, 2, |x, y| x * 10 + y);
        assert_eq!(g.transposed().transposed(), g);
        assert_eq!(g.transposed()[(1, 3)], g[(3, 1)]);
    }

    #[test]
    fn window_extracts_block() {
        let g = Grid::from_fn(4, 4, |x, y| y * 4 + x);
        let w = g.window(1, 2, 2, 2);
        assert_eq!(w.as_slice(), &[9, 10, 13, 14]);
    }

    #[test]
    fn downsample_averages_blocks() {
        let g = Grid::from_fn(4, 4, |x, _| x as f64);
        let d = g.downsample(2);
        assert_eq!(d.dims(), (2, 2));
        assert_eq!(d[(0, 0)], 0.5);
        assert_eq!(d[(1, 0)], 2.5);
    }

    #[test]
    fn upsample_then_downsample_roundtrips() {
        let g = Grid::from_fn(3, 3, |x, y| (x * y) as f64);
        assert_eq!(g.upsample_nearest(2).downsample(2), g);
    }

    #[test]
    fn binarize_threshold() {
        let g = Grid::from_vec(2, 1, vec![0.2, 0.8]);
        assert_eq!(g.binarize(0.5).as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn iter_coords_visits_all_cells() {
        let g = Grid::from_fn(3, 2, |x, y| x + 10 * y);
        let coords: Vec<_> = g.iter_coords().map(|(x, y, &v)| (x, y, v)).collect();
        assert_eq!(coords.len(), 6);
        assert_eq!(coords[4], (1, 1, 11));
    }

    #[test]
    fn debug_small_grid_prints_rows() {
        let g = Grid::new(2, 2, 1);
        let s = format!("{g:?}");
        assert!(s.contains("Grid 2x2"));
        assert!(s.contains('1'));
    }
}

impl<T: serde::Serialize> serde::Serialize for Grid<T> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("Grid", 3)?;
        st.serialize_field("width", &self.width)?;
        st.serialize_field("height", &self.height)?;
        st.serialize_field("data", &self.data)?;
        st.end()
    }
}

impl<'de, T: serde::Deserialize<'de> + Clone> serde::Deserialize<'de> for Grid<T> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Raw<T> {
            width: usize,
            height: usize,
            data: Vec<T>,
        }
        let raw = Raw::<T>::deserialize(deserializer)?;
        if raw.width == 0 || raw.height == 0 || raw.data.len() != raw.width * raw.height {
            return Err(serde::de::Error::custom(format!(
                "invalid grid: {}x{} with {} cells",
                raw.width,
                raw.height,
                raw.data.len()
            )));
        }
        Ok(Grid::from_vec(raw.width, raw.height, raw.data))
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    /// serde_json is not a workspace dependency, so the round-trip is
    /// exercised by downstream crates; here we pin that the impls exist
    /// for the element types the workspace serializes.
    #[test]
    fn grid_is_serde_serializable() {
        fn assert_impls<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_impls::<Grid<f64>>();
        assert_impls::<Grid<u32>>();
    }
}
