//! Reductions over real-valued grids used by the optimizer.

use crate::{Grid, Scalar};

/// Maximum absolute value over the grid.
///
/// Returns zero for an all-zero grid; NaN cells are ignored (treated as
/// not larger than any finite value).
///
/// # Example
///
/// ```
/// use lsopc_grid::{Grid, max_abs};
/// let g = Grid::from_vec(2, 1, vec![-3.0, 2.0]);
/// assert_eq!(max_abs(&g), 3.0);
/// ```
pub fn max_abs<T: Scalar>(g: &Grid<T>) -> T {
    g.as_slice()
        .iter()
        .fold(T::ZERO, |acc, &v| acc.max(v.abs()))
}

/// Squared Euclidean (Frobenius) norm `Σ v²`.
pub fn l2_norm_sq<T: Scalar>(g: &Grid<T>) -> T {
    g.as_slice().iter().map(|&v| v * v).sum()
}

/// Euclidean (Frobenius) norm `sqrt(Σ v²)`.
pub fn l2_norm<T: Scalar>(g: &Grid<T>) -> T {
    l2_norm_sq(g).sqrt()
}

/// Inner product `Σ aᵢ bᵢ` of two same-shape grids.
///
/// # Panics
///
/// Panics if the grids have different dimensions.
pub fn dot<T: Scalar>(a: &Grid<T>, b: &Grid<T>) -> T {
    assert_eq!(a.dims(), b.dims(), "grid dimensions must match");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x * y)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_of_mixed_signs() {
        let g = Grid::from_vec(3, 1, vec![1.0, -5.0, 4.0]);
        assert_eq!(max_abs(&g), 5.0);
    }

    #[test]
    fn max_abs_of_zero_grid_is_zero() {
        let g: Grid<f64> = Grid::new(4, 4, 0.0);
        assert_eq!(max_abs(&g), 0.0);
    }

    #[test]
    fn norms_match_hand_computation() {
        let g = Grid::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(l2_norm_sq(&g), 25.0);
        assert_eq!(l2_norm(&g), 5.0);
    }

    #[test]
    fn dot_is_bilinear() {
        let a = Grid::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Grid::from_vec(2, 1, vec![3.0, -1.0]);
        assert_eq!(dot(&a, &b), 1.0);
        assert_eq!(dot(&a, &a), l2_norm_sq(&a));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn dot_shape_mismatch_panics() {
        let a: Grid<f64> = Grid::new(2, 1, 0.0);
        let b: Grid<f64> = Grid::new(1, 2, 0.0);
        let _ = dot(&a, &b);
    }
}
