//! [`ParallelContext`]: the handle hot paths hold to run work on the
//! shared pool, plus the process-global default and `LSOPC_THREADS`
//! resolution.
//!
//! Every primitive here is deterministic by construction:
//!
//! * [`par_ranges`](ParallelContext::par_ranges) and
//!   [`par_chunks_mut`](ParallelContext::par_chunks_mut) only hand out
//!   disjoint index ranges / subslices — whichever thread runs a range,
//!   the bytes written are the same.
//! * [`par_map`](ParallelContext::par_map) writes each result into its
//!   own slot, so output order is index order regardless of scheduling.
//! * [`par_map_reduce`](ParallelContext::par_map_reduce) splits the item
//!   range into [`REDUCE_CHUNKS`] chunks — a constant, **not** a function
//!   of the thread count — and folds the per-chunk partials in chunk-index
//!   order. Floating-point reductions are therefore bit-identical for any
//!   thread count, including the inline serial path.

use crate::cancel::CancelToken;
use crate::pool::ThreadPool;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

/// Number of chunks a `par_map_reduce` splits its items into.
///
/// Fixed (rather than derived from the thread count) so the reduction
/// tree — and with it every floating-point rounding — is the same no
/// matter how many threads execute it. Eight chunks keep all lanes of
/// any plausible CPU busy while bounding the partial-state memory to 8×.
pub const REDUCE_CHUNKS: usize = 8;

/// Splits `0..items` into `chunks` contiguous ranges as evenly as
/// possible (the first `items % chunks` ranges are one longer).
fn chunk_bounds(items: usize, chunks: usize, i: usize) -> Range<usize> {
    debug_assert!(i < chunks);
    let base = items / chunks;
    let rem = items % chunks;
    let start = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    start..start + len
}

/// Raw pointer wrapper so disjoint-write closures can be shared across
/// threads. Callers guarantee every index is written by at most one chunk.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// A handle to a (possibly shared) [`ThreadPool`] with a fan-out cap.
///
/// Cloning is cheap and shares the underlying pool. Most code uses
/// [`ParallelContext::global`]; tests and benchmarks build private
/// contexts with [`ParallelContext::new`] to pin exact thread counts
/// without touching process state.
#[derive(Clone, Debug)]
pub struct ParallelContext {
    pool: Arc<ThreadPool>,
    max_threads: usize,
}

impl ParallelContext {
    /// Builds a context with its own pool of `threads` execution lanes.
    /// `0` is sanitized to 1 with a logged warning rather than panicking.
    pub fn new(threads: usize) -> Self {
        let threads = sanitize_thread_count(threads, "ParallelContext::new");
        Self {
            pool: Arc::new(ThreadPool::new(threads)),
            max_threads: threads,
        }
    }

    /// A strictly serial context: no workers, every primitive runs inline
    /// on the calling thread. Shares code (and chunking) with the
    /// parallel path, so results are identical by construction.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A context sharing this one's pool but fanning out over at most
    /// `max_threads` lanes. Useful to honor a user-requested thread count
    /// smaller than the global pool.
    pub fn with_max_threads(&self, max_threads: usize) -> Self {
        let max_threads = sanitize_thread_count(max_threads, "with_max_threads");
        Self {
            pool: Arc::clone(&self.pool),
            max_threads,
        }
    }

    /// The process-global default context.
    ///
    /// Sized, on first use, from `LSOPC_THREADS` if set (invalid values
    /// degrade to 1 with a warning on stderr) or from
    /// [`std::thread::available_parallelism`] otherwise. Call
    /// [`init_global_threads`] before first use to override in code.
    pub fn global() -> &'static ParallelContext {
        global_cell().get_or_init(|| {
            let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
            let env = std::env::var("LSOPC_THREADS").ok();
            let (threads, warning) = resolve_threads(env.as_deref(), hardware);
            if let Some(msg) = warning {
                lsopc_trace::warn("parallel", &msg);
            }
            ParallelContext::new(threads)
        })
    }

    /// Effective maximum number of execution lanes for this context.
    pub fn threads(&self) -> usize {
        self.max_threads.min(self.pool.threads())
    }

    /// OS threads ever spawned by the underlying pool (constant after
    /// construction; see [`ThreadPool::os_threads_spawned`]).
    pub fn os_threads_spawned(&self) -> usize {
        self.pool.os_threads_spawned()
    }

    /// Runs `f` over contiguous subranges of `0..items` in parallel.
    ///
    /// Intended for disjoint-write loops (e.g. "FFT each row"): the union
    /// of ranges is exactly `0..items` with no overlap, so the result is
    /// bit-identical however the ranges are scheduled or even split.
    pub fn par_ranges(&self, items: usize, f: impl Fn(Range<usize>) + Sync) {
        if items == 0 {
            return;
        }
        // Over-decompose ~4× the lane count for load balancing; writes are
        // disjoint so the chunk count never affects results.
        let chunks = (self.threads() * 4).clamp(1, items);
        self.pool.execute(chunks, self.max_threads, &|i| {
            f(chunk_bounds(items, chunks, i));
        });
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements (the
    /// last may be shorter) and runs `f(chunk_index, chunk)` on each in
    /// parallel. Chunks are disjoint, so results are scheduling-invariant.
    pub fn par_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let items = data.len();
        if items == 0 {
            return;
        }
        let chunks = items.div_ceil(chunk_len);
        let ptr = SendPtr(data.as_mut_ptr());
        // Borrow the wrapper (not its raw-pointer field) so the closure
        // captures a `&SendPtr<T>`, which is `Sync`.
        let ptr = &ptr;
        self.pool.execute(chunks, self.max_threads, &|i| {
            let start = i * chunk_len;
            let len = chunk_len.min(items - start);
            // SAFETY: chunk `i` covers exactly `start..start + len`;
            // chunks are disjoint and in-bounds, and the borrow of `data`
            // outlives `execute` (which blocks until all chunks finish).
            let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(start), len) };
            f(i, chunk);
        });
    }

    /// Computes `f(i)` for every `i in 0..n` in parallel and returns the
    /// results in index order.
    pub fn par_map<T: Send>(&self, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let ptr = SendPtr(slots.as_mut_ptr());
        let ptr = &ptr;
        self.pool.execute(n, self.max_threads, &|i| {
            // SAFETY: each index is claimed by exactly one chunk and the
            // slot vector outlives `execute`.
            unsafe { ptr.0.add(i).write(Some(f(i))) };
        });
        slots
            .into_iter()
            .map(|s| s.expect("every index produced a value"))
            .collect()
    }

    /// [`ParallelContext::par_map`] with a cooperative cancellation
    /// point at every chunk claim.
    ///
    /// Each index checks `token` immediately after being claimed; once
    /// the token is cancelled, remaining indices return `None` without
    /// calling `f`, so a long fan-out drains within one in-flight item
    /// per worker instead of finishing all queued work. Indices that did
    /// run hold `Some` in index order with exactly the values `par_map`
    /// would have produced — an uncancelled call is bit-identical to
    /// `par_map` at any thread count.
    ///
    /// Which indices ran when a cancellation races the fan-out is
    /// inherently timing-dependent; callers that need determinism must
    /// only rely on the uncancelled path (or cancel before submitting).
    pub fn par_map_cancellable<T: Send>(
        &self,
        n: usize,
        token: &CancelToken,
        f: impl Fn(usize) -> T + Sync,
    ) -> Vec<Option<T>> {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let ptr = SendPtr(slots.as_mut_ptr());
        let ptr = &ptr;
        self.pool.execute(n, self.max_threads, &|i| {
            if token.is_cancelled() {
                return;
            }
            // SAFETY: each index is claimed by exactly one chunk and the
            // slot vector outlives `execute`.
            unsafe { ptr.0.add(i).write(Some(f(i))) };
        });
        slots
    }

    /// Maps contiguous subranges of `0..items` to partial values and
    /// folds them **in chunk-index order**.
    ///
    /// The range is split into [`REDUCE_CHUNKS`] chunks regardless of the
    /// thread count, so both the per-chunk accumulation order and the
    /// merge order are fixed — floating-point results are bit-identical
    /// for 1 thread, 8 threads, or the inline serial path. Returns `None`
    /// when `items == 0`.
    pub fn par_map_reduce<A: Send>(
        &self,
        items: usize,
        map: impl Fn(Range<usize>) -> A + Sync,
        reduce: impl FnMut(A, A) -> A,
    ) -> Option<A> {
        if items == 0 {
            return None;
        }
        let chunks = REDUCE_CHUNKS.min(items);
        let partials = self.par_map(chunks, |i| map(chunk_bounds(items, chunks, i)));
        partials.into_iter().reduce(reduce)
    }
}

fn global_cell() -> &'static OnceLock<ParallelContext> {
    static GLOBAL: OnceLock<ParallelContext> = OnceLock::new();
    &GLOBAL
}

/// Sets the process-global context to `threads` lanes if it has not been
/// built yet. Returns `false` (leaving the existing context in place)
/// when the global was already initialized.
pub fn init_global_threads(threads: usize) -> bool {
    let threads = sanitize_thread_count(threads, "init_global_threads");
    global_cell().set(ParallelContext::new(threads)).is_ok()
}

/// Clamps a requested thread count to at least 1, warning (through the
/// active trace sink, stderr otherwise) when a caller asked for 0
/// instead of panicking.
pub fn sanitize_thread_count(requested: usize, origin: &str) -> usize {
    if requested == 0 {
        lsopc_trace::warn(
            "parallel",
            &format!("{origin} requested 0 threads; degrading to 1"),
        );
        1
    } else {
        requested
    }
}

/// Resolves a thread count from an `LSOPC_THREADS` value and the hardware
/// lane count. Returns the count plus an optional warning to log.
///
/// * unset / empty → hardware count, no warning;
/// * a positive integer → that count;
/// * `0` or non-numeric → 1 thread, with a warning (never a panic).
pub fn resolve_threads(env: Option<&str>, hardware: usize) -> (usize, Option<String>) {
    let hardware = hardware.max(1);
    match env.map(str::trim) {
        None | Some("") => (hardware, None),
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => (n, None),
            Ok(_) => (
                1,
                Some("LSOPC_THREADS=0 is invalid; degrading to 1 thread".to_string()),
            ),
            Err(_) => (
                1,
                Some(format!(
                    "LSOPC_THREADS={raw:?} is not a number; degrading to 1 thread"
                )),
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_range_exactly() {
        for items in [1usize, 7, 8, 9, 100] {
            for chunks in 1..=items.min(12) {
                let mut next = 0;
                for i in 0..chunks {
                    let r = chunk_bounds(items, chunks, i);
                    assert_eq!(r.start, next, "gap at chunk {i} ({items}/{chunks})");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, items);
            }
        }
    }

    #[test]
    fn par_ranges_visits_every_index_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1usize, 2, 3, 8] {
            let ctx = ParallelContext::new(threads);
            let hits: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
            ctx.par_ranges(hits.len(), |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn par_chunks_mut_writes_are_disjoint_and_complete() {
        for threads in [1usize, 2, 3, 8] {
            let ctx = ParallelContext::new(threads);
            let mut data = vec![0usize; 103];
            ctx.par_chunks_mut(&mut data, 10, |ci, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = ci * 10 + j + 1;
                }
            });
            let expect: Vec<usize> = (1..=103).collect();
            assert_eq!(data, expect);
        }
    }

    #[test]
    fn par_map_preserves_index_order() {
        for threads in [1usize, 2, 3, 8] {
            let ctx = ParallelContext::new(threads);
            // More threads than items exercises the over-subscribed path.
            let out = ctx.par_map(3, |i| i * i);
            assert_eq!(out, vec![0, 1, 4]);
            let out = ctx.par_map(40, |i| i as i64 - 7);
            assert_eq!(out, (0..40).map(|i| i - 7).collect::<Vec<i64>>());
        }
    }

    #[test]
    fn par_map_reduce_is_bit_identical_across_thread_counts() {
        // A sum whose value depends on association order: if chunking
        // varied with the thread count, these would differ in the last ulp.
        let values: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.7391).sin() * 1e3 + 1e-3 / (i + 1) as f64)
            .collect();
        let sum_with = |threads: usize| {
            let ctx = ParallelContext::new(threads);
            ctx.par_map_reduce(
                values.len(),
                |r| r.fold(0.0f64, |acc, i| acc + values[i]),
                |a, b| a + b,
            )
            .unwrap()
        };
        let reference = sum_with(1);
        for threads in [2usize, 3, 8] {
            assert_eq!(sum_with(threads).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn par_map_reduce_empty_is_none() {
        let ctx = ParallelContext::serial();
        assert!(ctx.par_map_reduce(0, |_| 1.0f64, |a, b| a + b).is_none());
    }

    #[test]
    fn zero_threads_degrades_to_one() {
        let ctx = ParallelContext::new(0);
        assert_eq!(ctx.threads(), 1);
        assert_eq!(ctx.os_threads_spawned(), 0);
    }

    #[test]
    fn resolve_threads_handles_bad_values() {
        assert_eq!(resolve_threads(None, 6), (6, None));
        assert_eq!(resolve_threads(Some(""), 6), (6, None));
        assert_eq!(resolve_threads(Some("4"), 6), (4, None));
        assert_eq!(resolve_threads(Some(" 2 "), 6), (2, None));
        let (n, warn) = resolve_threads(Some("0"), 6);
        assert_eq!(n, 1);
        assert!(warn.is_some());
        let (n, warn) = resolve_threads(Some("lots"), 6);
        assert_eq!(n, 1);
        assert!(warn.is_some());
        // Hardware count of 0 (should never happen) still yields 1.
        assert_eq!(resolve_threads(None, 0), (1, None));
    }

    #[test]
    fn with_max_threads_shares_pool_and_caps_fanout() {
        let ctx = ParallelContext::new(4);
        let capped = ctx.with_max_threads(2);
        assert_eq!(capped.threads(), 2);
        assert_eq!(capped.os_threads_spawned(), ctx.os_threads_spawned());
        let out = capped.par_map(10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<usize>>());
    }
}
