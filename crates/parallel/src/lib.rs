//! Workspace-wide parallel execution layer.
//!
//! A persistent, work-chunking thread pool ([`ThreadPool`]) plus the
//! deterministic primitives every lsopc hot path uses to run on it
//! ([`ParallelContext::par_ranges`], [`ParallelContext::par_chunks_mut`],
//! [`ParallelContext::par_map`], [`ParallelContext::par_map_reduce`]).
//!
//! Two properties are load-bearing for the rest of the workspace:
//!
//! 1. **No per-call OS thread spawning.** Workers are spawned once per
//!    pool and park between jobs; submitting work is a condvar notify.
//!    [`ThreadPool::os_threads_spawned`] exposes the (constant) spawn
//!    count so tests can pin this.
//! 2. **Bit-identical results at any thread count.** Chunk boundaries
//!    are fixed by the work size — never by the thread count — and
//!    reductions merge partials in chunk-index order, so the serial and
//!    parallel paths produce the same bits. See [`REDUCE_CHUNKS`] and
//!    DESIGN.md §9.
//!
//! The process-global default context ([`ParallelContext::global`]) is
//! sized from `LSOPC_THREADS` (invalid values degrade to 1 thread with a
//! warning, never a panic) or from the machine's available parallelism,
//! and can be pinned programmatically with [`init_global_threads`]
//! (e.g. by the CLI's `--threads` flag) before first use.

#![warn(missing_docs)]

mod cancel;
mod context;
mod pool;

pub use cancel::{CancelToken, StopReason};
pub use context::{
    init_global_threads, resolve_threads, sanitize_thread_count, ParallelContext, REDUCE_CHUNKS,
};
pub use pool::ThreadPool;
