//! The persistent work-chunking thread pool.
//!
//! Workers are spawned once, when the pool is built, and park on a
//! condition variable between jobs — a job submission is a lock, a
//! generation bump and a `notify_all`, never an OS thread spawn. A job is
//! a type-erased `Fn(usize)` over a fixed number of chunks; every
//! participating thread (the submitting caller included) claims chunk
//! indices from a shared atomic counter until the job is drained, so load
//! balances automatically without any per-chunk allocation.
//!
//! # Determinism
//!
//! The pool never decides *what* is computed, only *where*: chunk
//! boundaries are fixed by the caller before submission, each chunk runs
//! exactly once, and reductions (see
//! [`ParallelContext::par_map_reduce`](crate::ParallelContext::par_map_reduce))
//! merge chunk results in chunk-index order. Results are therefore
//! bit-identical for every worker count, including zero.
//!
//! # Re-entrancy
//!
//! A task that itself calls into the pool (e.g. a per-kernel fold whose
//! body runs an FFT whose row pass is also parallel) would deadlock a
//! naive pool. Here every thread executing a pool task sets a
//! thread-local flag, and [`ThreadPool::execute`] runs inline — serially,
//! on the calling thread — whenever the flag is set. Outer parallelism
//! wins; inner levels degrade to the exact same serial arithmetic.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-job observability counters, allocated only when tracing is
/// enabled at submission. Purely observational: lanes update them with
/// relaxed atomics after claiming chunks, and the submitting caller
/// folds them into gauges once the job drains.
#[derive(Default)]
struct JobStats {
    /// Lanes (caller + seated workers) that claimed at least one chunk.
    participants: AtomicUsize,
    /// Largest number of chunks any single lane claimed.
    max_claimed: AtomicU64,
}

thread_local! {
    /// Set while the current thread executes a pool task; makes nested
    /// `execute` calls run inline instead of deadlocking on the pool.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the re-entrancy flag set, restoring it afterwards.
fn with_task_flag<R>(f: impl FnOnce() -> R) -> R {
    IN_POOL_TASK.with(|flag| {
        let prev = flag.replace(true);
        let r = f();
        flag.set(prev);
        r
    })
}

/// Lifetime-erased pointer to the job closure. The submitting caller
/// blocks inside [`ThreadPool::execute`] until every chunk has finished,
/// so the pointee outlives every dereference.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and `execute` keeps it alive until the job drains, so sending the
// pointer to worker threads is sound.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One submitted job: a closure over `0..chunks` plus its progress state.
#[derive(Clone)]
struct Job {
    task: TaskPtr,
    /// Next chunk index to claim.
    next: Arc<AtomicUsize>,
    /// Total number of chunks.
    chunks: usize,
    /// Worker seats left (the caller occupies its own, uncounted seat).
    seats: Arc<AtomicUsize>,
    /// Chunks not yet finished executing.
    remaining: Arc<AtomicUsize>,
    /// First panic payload raised by any chunk, re-thrown by the caller.
    panic: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
    /// Trace scope of the submitting caller at dispatch time — span
    /// path plus any scoped sink — so worker threads report into the
    /// caller's scope (`None` when tracing is disabled and no scope is
    /// active).
    trace_scope: Option<lsopc_trace::TaskScope>,
    /// Observability counters; `None` when tracing was disabled at
    /// submission, so the hot path pays nothing extra.
    stats: Option<Arc<JobStats>>,
}

impl Job {
    /// Claims and runs chunks until the job is drained. Returns once no
    /// unclaimed chunk remains (other threads may still be finishing
    /// theirs).
    fn run_chunks(&self, shared: &Shared) {
        let mut claimed = 0u64;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.chunks {
                break;
            }
            claimed += 1;
            // Update stats *before* this chunk's `remaining` decrement:
            // the submitting caller reads them as soon as `remaining`
            // hits 0, and by then every claimed chunk has already
            // folded its lane's running total in.
            if let Some(stats) = &self.stats {
                if claimed == 1 {
                    stats.participants.fetch_add(1, Ordering::Relaxed);
                }
                stats.max_claimed.fetch_max(claimed, Ordering::Relaxed);
            }
            // SAFETY: `remaining > 0` until this chunk's call returns, and
            // the submitting caller blocks until `remaining == 0`, so the
            // erased closure is alive for the whole call.
            let task = unsafe { &*self.task.0 };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                let mut slot = self.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last chunk: wake the submitting caller. Taking the state
                // lock orders the notify after the caller's re-check.
                let _guard = shared.state.lock();
                shared.job_done.notify_all();
            }
        }
        if claimed > 0 {
            lsopc_trace::count("pool.chunks", claimed);
        }
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work_ready: Condvar,
    /// The submitting caller parks here while chunks finish.
    job_done: Condvar,
    /// OS threads ever spawned by this pool (monotonic; pinned by tests
    /// to prove hot paths never spawn).
    os_threads_spawned: AtomicUsize,
}

struct PoolState {
    /// Current job, if any. Stale jobs (fully claimed) may linger here
    /// until the next submission; workers ignore them via `generation`.
    job: Option<Job>,
    /// Bumped once per submission so each worker joins a job at most once.
    generation: u64,
    shutdown: bool,
}

/// A persistent scoped thread pool.
///
/// The pool owns `threads - 1` parked worker threads; the thread calling
/// [`ThreadPool::execute`] is the remaining execution lane. `threads <= 1`
/// therefore spawns nothing and `execute` degenerates to an inline serial
/// loop.
///
/// # Example
///
/// ```
/// use lsopc_parallel::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let sum = AtomicUsize::new(0);
/// pool.execute(10, usize::MAX, &|i| {
///     sum.fetch_add(i, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 45);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &(self.workers.len() + 1))
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// Builds a pool with `threads` execution lanes (the caller plus
    /// `threads - 1` spawned workers). `threads == 0` is treated as 1.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                generation: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            os_threads_spawned: AtomicUsize::new(0),
        });
        let workers = (1..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// Execution lanes (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// OS threads this pool has ever spawned. Constant after
    /// construction — the acceptance test for "no per-call spawning" pins
    /// exactly this.
    pub fn os_threads_spawned(&self) -> usize {
        self.shared.os_threads_spawned.load(Ordering::Acquire)
    }

    /// Runs `task(i)` for every `i in 0..chunks`, distributing chunks over
    /// at most `max_threads` lanes (capped by the pool size), and returns
    /// when all chunks have finished.
    ///
    /// Runs inline — serially, in chunk order, on the calling thread —
    /// when the pool has no workers, `max_threads <= 1`, there is a single
    /// chunk, or the calling thread is itself executing a pool task (see
    /// the module docs on re-entrancy). Results never depend on which of
    /// these paths ran.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic raised by any chunk after the job drains.
    pub fn execute(&self, chunks: usize, max_threads: usize, task: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        let nested = IN_POOL_TASK.with(Cell::get);
        if self.workers.is_empty() || max_threads <= 1 || chunks == 1 || nested {
            lsopc_trace::count("pool.jobs_inline", 1);
            with_task_flag(|| {
                for i in 0..chunks {
                    task(i);
                }
            });
            return;
        }
        lsopc_trace::count("pool.jobs", 1);

        // SAFETY: the fat reference only needs to outlive this call, and
        // we block below until every chunk has finished; the 'static
        // transmute never escapes the function.
        let erased: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
        let lanes = max_threads.min(self.threads()).min(chunks);
        let job = Job {
            task: TaskPtr(erased),
            next: Arc::new(AtomicUsize::new(0)),
            chunks,
            seats: Arc::new(AtomicUsize::new(lanes - 1)),
            remaining: Arc::new(AtomicUsize::new(chunks)),
            panic: Arc::new(Mutex::new(None)),
            trace_scope: lsopc_trace::task_scope(),
            stats: if lsopc_trace::enabled() {
                Some(Arc::new(JobStats::default()))
            } else {
                None
            },
        };

        {
            let mut state = self.shared.state.lock();
            state.generation += 1;
            state.job = Some(job.clone());
            self.shared.work_ready.notify_all();
        }

        // The caller is an execution lane too.
        with_task_flag(|| job.run_chunks(&self.shared));

        // Park until the last straggler chunk finishes.
        {
            let mut state = self.shared.state.lock();
            while job.remaining.load(Ordering::Acquire) > 0 {
                self.shared.job_done.wait(&mut state);
            }
            state.job = None;
        }

        // Job drained: fold the per-job stats into gauges (observation
        // only, emitted on the submitting thread so they reach its
        // scoped sink). `imbalance` is max-chunks-per-lane normalized
        // by the fair share `chunks / participants` — 1.0 means every
        // lane claimed the same number of chunks.
        if let Some(stats) = &job.stats {
            let participants = stats.participants.load(Ordering::Relaxed);
            let max_claimed = stats.max_claimed.load(Ordering::Relaxed);
            lsopc_trace::gauge("pool.job.participants", participants as f64);
            lsopc_trace::gauge(
                "pool.job.occupancy",
                participants as f64 / lanes.max(1) as f64,
            );
            if participants > 0 {
                let fair = chunks as f64 / participants as f64;
                lsopc_trace::gauge("pool.job.imbalance", max_claimed as f64 / fair);
            }
        }

        let payload = job.panic.lock().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    shared.os_threads_spawned.fetch_add(1, Ordering::AcqRel);
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen_generation {
                    seen_generation = state.generation;
                    if let Some(job) = state.job.clone() {
                        break job;
                    }
                }
                shared.work_ready.wait(&mut state);
            }
        };
        // Claim a seat; jobs cap their fan-out so a backend asked for N
        // threads never runs wider even on a bigger shared pool.
        let seated = job
            .seats
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| s.checked_sub(1))
            .is_ok();
        if seated {
            // Re-enter the submitting caller's trace scope so pool-side
            // spans nest under its path and reach its scoped sink.
            lsopc_trace::with_task_scope(job.trace_scope.clone(), || {
                with_task_flag(|| job.run_chunks(shared));
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_chunks_run_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.execute(100, usize::MAX, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_chunks_is_a_no_op() {
        let pool = ThreadPool::new(2);
        pool.execute(0, usize::MAX, &|_| panic!("must not run"));
    }

    #[test]
    fn single_lane_pool_spawns_nothing() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.os_threads_spawned(), 0);
        let sum = AtomicUsize::new(0);
        pool.execute(7, usize::MAX, &|i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 28);
    }

    #[test]
    fn spawn_count_is_constant_across_jobs() {
        let pool = ThreadPool::new(3);
        // Workers start asynchronously; the count settles at 2 and must
        // never move past it no matter how many jobs run.
        for _ in 0..50 {
            pool.execute(16, usize::MAX, &|_| {});
        }
        let after = pool.os_threads_spawned();
        assert!(after <= 2, "spawned {after} > worker count");
        for _ in 0..50 {
            pool.execute(16, usize::MAX, &|_| {});
        }
        assert!(pool.os_threads_spawned() <= 2);
    }

    #[test]
    fn nested_execute_runs_inline_without_deadlock() {
        let pool = ThreadPool::new(4);
        let sum = AtomicUsize::new(0);
        pool.execute(4, usize::MAX, &|_| {
            pool.execute(8, usize::MAX, &|j| {
                sum.fetch_add(j, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.into_inner(), 4 * 28);
    }

    #[test]
    fn chunk_panic_propagates_to_caller() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.execute(8, usize::MAX, &|i| {
                if i == 5 {
                    panic!("chunk 5 exploded");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives the panic and keeps executing.
        let sum = AtomicUsize::new(0);
        pool.execute(4, usize::MAX, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 6);
    }

    #[test]
    fn fanned_out_jobs_emit_occupancy_gauges() {
        let pool = ThreadPool::new(4);
        let sink = Arc::new(lsopc_trace::MemorySink::new());
        lsopc_trace::with_scoped_sink(sink.clone(), || {
            pool.execute(64, usize::MAX, &|_| {
                std::thread::sleep(std::time::Duration::from_micros(50));
            });
        });
        let report = sink.report();
        let participants = report.gauges["pool.job.participants"];
        assert!(
            (1.0..=4.0).contains(&participants),
            "participants: {participants}"
        );
        let occupancy = report.gauges["pool.job.occupancy"];
        assert!((0.0..=1.0).contains(&occupancy), "occupancy: {occupancy}");
        // Perfect balance is 1.0; a lone lane claiming everything is
        // `participants`. Anything in between is legal.
        let imbalance = report.gauges["pool.job.imbalance"];
        assert!(
            imbalance >= 1.0 - 1e-9 && imbalance <= participants + 1e-9,
            "imbalance: {imbalance}"
        );
        assert_eq!(report.counters.get("pool.jobs"), Some(&1));
    }

    #[test]
    fn inline_jobs_emit_no_job_gauges() {
        let pool = ThreadPool::new(1);
        let sink = Arc::new(lsopc_trace::MemorySink::new());
        lsopc_trace::with_scoped_sink(sink.clone(), || {
            pool.execute(8, usize::MAX, &|_| {});
        });
        let report = sink.report();
        assert_eq!(report.counters.get("pool.jobs_inline"), Some(&1));
        assert!(!report.gauges.contains_key("pool.job.participants"));
    }

    #[test]
    fn max_threads_caps_concurrency() {
        let pool = ThreadPool::new(8);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.execute(64, 2, &|_| {
            let now = live.fetch_add(1, Ordering::AcqRel) + 1;
            peak.fetch_max(now, Ordering::AcqRel);
            std::thread::sleep(std::time::Duration::from_micros(200));
            live.fetch_sub(1, Ordering::AcqRel);
        });
        assert!(peak.load(Ordering::Acquire) <= 2);
    }
}
