//! Cooperative cancellation: a shared stop flag carrying a structured
//! reason.
//!
//! A [`CancelToken`] is the hand-brake of the run-lifecycle layer: any
//! holder of a clone may pull it once, and every cooperating loop —
//! optimizer iteration boundaries, schedule stage transitions, tile
//! fan-outs, and pool chunk claims via
//! [`ParallelContext::par_map_cancellable`](crate::ParallelContext::par_map_cancellable)
//! — observes the request at its next check point and winds down
//! gracefully instead of being killed mid-write. The token never
//! interrupts anything by itself; it is purely a flag that well-behaved
//! loops poll, which is exactly what makes a stop safe to take at any
//! moment (state is only ever observed at consistent boundaries).
//!
//! Cancellation is **latched and first-wins**: the first
//! [`CancelToken::cancel`] stores its [`StopReason`]; later calls are
//! ignored. `cancel` is a single atomic compare-exchange with no
//! allocation or locking, so it is async-signal-safe — a `SIGINT`
//! handler may trip the token directly.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Why a run was asked to stop.
///
/// Carried by the [`CancelToken`] that requested the stop and surfaced
/// on the result of the interrupted computation (e.g. the CLI's
/// `stopped: <reason>` diagnostic line).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// A wall-clock deadline expired.
    Deadline,
    /// An operating-system signal (e.g. `SIGINT`) requested the stop.
    Signal,
    /// An iteration budget was exhausted.
    Budget,
    /// An external caller (embedding application, test harness, fault
    /// injector) requested the stop.
    External,
}

impl StopReason {
    /// Stable lower-case name: `deadline`, `signal`, `budget` or
    /// `external`. This is the exact token printed by the CLI's
    /// `stopped: <reason>` line.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Deadline => "deadline",
            Self::Signal => "signal",
            Self::Budget => "budget",
            Self::External => "external",
        }
    }

    /// Static counter name (`run.stop.<reason>`) emitted when a run
    /// stops for this reason; the trace analyzer and the per-job
    /// metrics summary both key off these.
    pub fn counter_name(self) -> &'static str {
        match self {
            Self::Deadline => "run.stop.deadline",
            Self::Signal => "run.stop.signal",
            Self::Budget => "run.stop.budget",
            Self::External => "run.stop.external",
        }
    }

    /// Non-zero wire code (zero is reserved for "not cancelled").
    fn code(self) -> u8 {
        match self {
            Self::Deadline => 1,
            Self::Signal => 2,
            Self::Budget => 3,
            Self::External => 4,
        }
    }

    /// Inverse of [`StopReason::code`]; `None` for zero or unknown.
    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::Deadline),
            2 => Some(Self::Signal),
            3 => Some(Self::Budget),
            4 => Some(Self::External),
            _ => None,
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A clonable, shared cancellation flag.
///
/// All clones observe the same state. The token starts live; the first
/// [`cancel`](CancelToken::cancel) latches a [`StopReason`] that every
/// subsequent [`cancelled`](CancelToken::cancelled) observes. There is
/// no way to un-cancel — a token is for one run.
///
/// ```
/// use lsopc_parallel::{CancelToken, StopReason};
///
/// let token = CancelToken::new();
/// assert!(token.cancelled().is_none());
/// token.cancel(StopReason::Deadline);
/// token.cancel(StopReason::Signal); // too late: first reason wins
/// assert_eq!(token.cancelled(), Some(StopReason::Deadline));
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, live token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a stop for `reason`. The first call wins; later calls
    /// (from any clone) are ignored. Async-signal-safe: one atomic
    /// compare-exchange, no allocation, no locks.
    pub fn cancel(&self, reason: StopReason) {
        let _ = self
            .state
            .compare_exchange(0, reason.code(), Ordering::AcqRel, Ordering::Acquire);
    }

    /// The latched stop reason, or `None` while the token is live.
    pub fn cancelled(&self) -> Option<StopReason> {
        StopReason::from_code(self.state.load(Ordering::Acquire))
    }

    /// True once any clone has cancelled. Cheaper to call in tight
    /// loops than [`cancelled`](CancelToken::cancelled) only in that it
    /// skips the decode; both are a single atomic load.
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Acquire) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.cancelled(), None);
    }

    #[test]
    fn first_cancel_wins_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel(StopReason::Budget);
        t.cancel(StopReason::External);
        assert_eq!(t.cancelled(), Some(StopReason::Budget));
        assert_eq!(clone.cancelled(), Some(StopReason::Budget));
        assert!(t.is_cancelled());
    }

    #[test]
    fn reasons_roundtrip_codes_and_names() {
        for reason in [
            StopReason::Deadline,
            StopReason::Signal,
            StopReason::Budget,
            StopReason::External,
        ] {
            assert_eq!(StopReason::from_code(reason.code()), Some(reason));
            assert_eq!(format!("{reason}"), reason.as_str());
        }
        assert_eq!(StopReason::from_code(0), None);
        assert_eq!(StopReason::from_code(200), None);
    }

    #[test]
    fn concurrent_cancels_latch_exactly_one_reason() {
        let t = CancelToken::new();
        std::thread::scope(|s| {
            for reason in [StopReason::Deadline, StopReason::Signal, StopReason::Budget] {
                let t = t.clone();
                s.spawn(move || t.cancel(reason));
            }
        });
        assert!(t.cancelled().is_some());
    }
}
