//! Band-limited optical kernel sets (the `h_k`, `μ_k` of paper Eq. (1)).

use std::sync::atomic::{AtomicU64, Ordering};

use lsopc_fft::wrap_index;
use lsopc_grid::{Complex, Grid, Scalar};

/// Source of unique [`KernelSet`] identities (see [`KernelSet::id`]).
static NEXT_KERNEL_SET_ID: AtomicU64 = AtomicU64::new(1);

/// A set of optical kernels stored as centred frequency-domain spectra.
///
/// The lithography system is band-limited: every kernel spectrum `ĥ_k` is
/// non-zero only on a small `S x S` window around DC, where `S` depends on
/// the optics (`(1 + σ_max)·NA/λ` in physical frequency times the field
/// period). Storing just that window makes kernel generation cheap and lets
/// the accelerated simulation backend exploit the band limit.
///
/// Index `(i, j)` of a spectrum corresponds to the spatial frequency
/// `((i − S/2)/L, (j − S/2)/L)` cycles/nm, with `L` the field period.
///
/// The set is generic over the scalar precision of its spectra and
/// weights; `f64` is the default and the precision kernels are generated
/// at ([`crate::OpticsConfig::kernels`] always computes in `f64` and
/// casts down via [`KernelSet::cast`], so an `f32` set is the rounded
/// image of the reference set, not an independently generated one).
#[derive(Clone, Debug)]
pub struct KernelSet<T: Scalar = f64> {
    id: u64,
    support: usize,
    period_nm: f64,
    defocus_nm: f64,
    spectra: Vec<Grid<Complex<T>>>,
    weights: Vec<T>,
}

impl<T: Scalar> KernelSet<T> {
    /// Creates a kernel set.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, the support is even or does not match
    /// the spectra dimensions, weights and spectra differ in length, a
    /// weight is negative, or the period is not positive.
    pub fn new(
        spectra: Vec<Grid<Complex<T>>>,
        weights: Vec<T>,
        period_nm: f64,
        defocus_nm: f64,
    ) -> Self {
        assert!(!spectra.is_empty(), "kernel set must not be empty");
        assert_eq!(
            spectra.len(),
            weights.len(),
            "spectra and weights must have equal length"
        );
        assert!(period_nm > 0.0, "period must be positive");
        let support = spectra[0].width();
        assert!(
            support % 2 == 1,
            "kernel support must be odd, got {support}"
        );
        for s in &spectra {
            assert_eq!(s.dims(), (support, support), "all spectra must be S x S");
        }
        assert!(
            weights.iter().all(|&w| w >= T::ZERO),
            "kernel weights must be non-negative"
        );
        Self {
            id: NEXT_KERNEL_SET_ID.fetch_add(1, Ordering::Relaxed),
            support,
            period_nm,
            defocus_nm,
            spectra,
            weights,
        }
    }

    /// Identity of this set's *spectra*, unique per construction.
    ///
    /// Spectra are immutable after [`KernelSet::new`] (only weights can be
    /// rescaled), so the id is a sound cache key for anything derived from
    /// the spectra alone — e.g. the embedded-spectrum caches in the
    /// simulation backends. Clones share the id (same spectra); every
    /// constructor call, including [`KernelSet::truncated`], gets a fresh
    /// one.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of kernels `K`.
    pub fn len(&self) -> usize {
        self.spectra.len()
    }

    /// Always false: kernel sets are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Spectral support `S` (side of the centred window, odd).
    pub fn support(&self) -> usize {
        self.support
    }

    /// Index of the DC sample inside a spectrum window (`S/2`).
    pub fn center(&self) -> usize {
        self.support / 2
    }

    /// Largest frequency offset from DC in samples (`S/2`).
    pub fn half_band(&self) -> i64 {
        (self.support / 2) as i64
    }

    /// The field period `L` in nm (kernels assume `L`-periodic masks).
    pub fn period_nm(&self) -> f64 {
        self.period_nm
    }

    /// The defocus these kernels were generated at, in nm.
    pub fn defocus_nm(&self) -> f64 {
        self.defocus_nm
    }

    /// Weight `μ_k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn weight(&self, k: usize) -> T {
        self.weights[k]
    }

    /// Centred spectrum window of kernel `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn spectrum(&self, k: usize) -> &Grid<Complex<T>> {
        &self.spectra[k]
    }

    /// Embeds kernel `k`'s centred spectrum into a full `w x h` DFT-layout
    /// spectrum (DC at index 0, negative frequencies wrapped).
    ///
    /// # Panics
    ///
    /// Panics if the grid is too small to hold the band (`min(w, h) <
    /// support`) or `k` is out of range.
    pub fn embed_full(&self, k: usize, w: usize, h: usize) -> Grid<Complex<T>> {
        assert!(
            w >= self.support && h >= self.support,
            "grid {w}x{h} too small for kernel support {}",
            self.support
        );
        let window = &self.spectra[k];
        let c = self.center() as i64;
        let mut full = Grid::new(w, h, Complex::<T>::ZERO);
        for (i, j, &v) in window.iter_coords() {
            let fx = i as i64 - c;
            let fy = j as i64 - c;
            full[(wrap_index(fx, w), wrap_index(fy, h))] = v;
        }
        full
    }

    /// Spatial-domain kernel `h_k` on a `w x h` grid (inverse FFT of the
    /// embedded spectrum). Mainly for visualization and the reference
    /// simulation backend.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`KernelSet::embed_full`], or if
    /// `w`/`h` is not a power of two.
    pub fn spatial_kernel(&self, k: usize, w: usize, h: usize) -> Grid<Complex<T>> {
        let mut full = self.embed_full(k, w, h);
        lsopc_fft::plan_t::<T>(w, h).inverse(&mut full);
        full
    }

    /// Intensity a fully transparent mask would print (`Σ μ_k |ĥ_k(0)|²`
    /// for unit-DC masks). Used for normalization.
    pub fn clear_field_intensity(&self) -> T {
        let c = self.center();
        self.spectra
            .iter()
            .zip(&self.weights)
            .map(|(s, &w)| w * s[(c, c)].norm_sqr())
            .sum()
    }

    /// Rescales all weights by `scale`.
    pub fn scale_weights(&mut self, scale: T) {
        for w in &mut self.weights {
            *w *= scale;
        }
    }

    /// Returns the set normalized so that a clear mask prints intensity 1.
    ///
    /// # Panics
    ///
    /// Panics if the clear-field intensity is zero (degenerate kernels).
    pub fn normalized(mut self) -> Self {
        let clear = self.clear_field_intensity();
        assert!(
            clear > T::ZERO,
            "cannot normalize: zero clear-field intensity"
        );
        self.scale_weights(T::ONE / clear);
        self
    }

    /// Keeps only the `rank` heaviest kernels (by weight), renormalizing so
    /// the clear-field intensity is preserved. This is the standard
    /// reduced-rank SOCS speed/accuracy knob.
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0`.
    pub fn truncated(&self, rank: usize) -> KernelSet<T> {
        assert!(rank > 0, "rank must be positive");
        let rank = rank.min(self.len());
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            self.weights[b]
                .partial_cmp(&self.weights[a])
                .expect("finite weights")
        });
        let kept: Vec<usize> = order.into_iter().take(rank).collect();
        let set = KernelSet::new(
            kept.iter().map(|&k| self.spectra[k].clone()).collect(),
            kept.iter().map(|&k| self.weights[k]).collect(),
            self.period_nm,
            self.defocus_nm,
        );
        set.normalized()
    }

    /// Converts the set to another scalar precision, keeping the [`id`].
    ///
    /// The id is preserved deliberately: a cast set holds the *same*
    /// spectra (rounded), and every cache derived from kernel spectra
    /// keys on the scalar type in addition to the id, so an `f32` cast
    /// never collides with its `f64` source. Casting to the same
    /// precision is the identity on every value.
    ///
    /// [`id`]: KernelSet::id
    pub fn cast<U: Scalar>(&self) -> KernelSet<U> {
        KernelSet {
            id: self.id,
            support: self.support,
            period_nm: self.period_nm,
            defocus_nm: self.defocus_nm,
            spectra: self.spectra.iter().map(|s| s.map(|v| v.cast())).collect(),
            weights: self
                .weights
                .iter()
                .map(|w| U::from_f64(w.to_f64()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_grid::C64;

    fn delta_set(support: usize, weight: f64) -> KernelSet {
        // A single kernel passing only DC.
        let mut s = Grid::new(support, support, C64::ZERO);
        s[(support / 2, support / 2)] = C64::ONE;
        KernelSet::new(vec![s], vec![weight], 256.0, 0.0)
    }

    #[test]
    fn accessors() {
        let set = delta_set(5, 2.0);
        assert_eq!(set.len(), 1);
        assert_eq!(set.support(), 5);
        assert_eq!(set.center(), 2);
        assert_eq!(set.half_band(), 2);
        assert_eq!(set.weight(0), 2.0);
        assert_eq!(set.period_nm(), 256.0);
    }

    #[test]
    fn clear_field_and_normalization() {
        let set = delta_set(5, 4.0);
        assert_eq!(set.clear_field_intensity(), 4.0);
        let norm = set.normalized();
        assert!((norm.clear_field_intensity() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn embed_full_places_dc_at_origin() {
        let mut s = Grid::new(3, 3, C64::ZERO);
        s[(1, 1)] = C64::from_real(2.0); // DC
        s[(2, 1)] = C64::from_real(3.0); // +1 in x
        s[(0, 1)] = C64::from_real(4.0); // -1 in x
        let set = KernelSet::new(vec![s], vec![1.0], 64.0, 0.0);
        let full = set.embed_full(0, 8, 8);
        assert_eq!(full[(0, 0)].re, 2.0);
        assert_eq!(full[(1, 0)].re, 3.0);
        assert_eq!(full[(7, 0)].re, 4.0);
        assert_eq!(full[(4, 4)], C64::ZERO);
    }

    #[test]
    fn spatial_kernel_of_dc_only_is_constant() {
        let set = delta_set(3, 1.0);
        let h = set.spatial_kernel(0, 8, 8);
        let expected = 1.0 / 64.0; // IFFT normalization
        for (_, _, v) in h.iter_coords() {
            assert!((v.re - expected).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn truncation_keeps_heaviest_and_renormalizes() {
        let mut s1 = Grid::new(3, 3, C64::ZERO);
        s1[(1, 1)] = C64::ONE;
        let mut s2 = Grid::new(3, 3, C64::ZERO);
        s2[(1, 1)] = C64::ONE;
        let set = KernelSet::new(vec![s1, s2], vec![0.25, 0.75], 64.0, 0.0).normalized();
        let t = set.truncated(1);
        assert_eq!(t.len(), 1);
        assert!((t.clear_field_intensity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cast_preserves_id_and_is_identity_at_same_precision() {
        let set = delta_set(5, 2.0);
        let same = set.cast::<f64>();
        assert_eq!(same.id(), set.id(), "cast keeps the spectra identity");
        assert_eq!(same.weight(0).to_bits(), set.weight(0).to_bits());
        for (a, b) in same
            .spectrum(0)
            .as_slice()
            .iter()
            .zip(set.spectrum(0).as_slice())
        {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        let low = set.cast::<f32>();
        assert_eq!(low.id(), set.id());
        assert_eq!(low.support(), 5);
        assert_eq!(low.weight(0), 2.0_f32);
        // Round-tripping f64 → f32 → f64 rounds to f32 precision.
        let back = low.cast::<f64>();
        assert_eq!(back.weight(0), 2.0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn embed_rejects_small_grid() {
        let set = delta_set(5, 1.0);
        let _ = set.embed_full(0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_support_panics() {
        let s = Grid::new(4, 4, C64::ZERO);
        let _ = KernelSet::new(vec![s], vec![1.0], 64.0, 0.0);
    }
}
