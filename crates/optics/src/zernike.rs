//! Zernike aberration polynomials for the pupil.
//!
//! The paper's optical model only varies defocus; real scanners also
//! suffer astigmatism, coma and spherical aberration, conventionally
//! expressed as Zernike terms on the unit pupil. This module provides the
//! low-order fringe-Zernike set so process-window experiments can go
//! beyond the paper (see the ablation benches).
//!
//! Polynomials are evaluated in normalized pupil coordinates
//! `ρ ∈ [0, 1]`, `θ`; coefficients are in waves (multiples of `2π` phase).

use serde::{Deserialize, Serialize};

/// Low-order fringe Zernike aberration coefficients, in waves.
///
/// # Example
///
/// ```
/// use lsopc_optics::ZernikeSet;
///
/// let aberrations = ZernikeSet {
///     defocus: 0.05,
///     ..ZernikeSet::NONE
/// };
/// // Defocus phase peaks at the pupil edge.
/// let edge = aberrations.phase_waves(1.0, 0.0);
/// let center = aberrations.phase_waves(0.0, 0.0);
/// assert!(edge > center);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ZernikeSet {
    /// Z4 defocus: `2ρ² − 1`.
    pub defocus: f64,
    /// Z5 astigmatism 0°: `ρ²·cos 2θ`.
    pub astigmatism_0: f64,
    /// Z6 astigmatism 45°: `ρ²·sin 2θ`.
    pub astigmatism_45: f64,
    /// Z7 coma x: `(3ρ³ − 2ρ)·cos θ`.
    pub coma_x: f64,
    /// Z8 coma y: `(3ρ³ − 2ρ)·sin θ`.
    pub coma_y: f64,
    /// Z9 primary spherical: `6ρ⁴ − 6ρ² + 1`.
    pub spherical: f64,
}

impl ZernikeSet {
    /// No aberrations.
    pub const NONE: Self = Self {
        defocus: 0.0,
        astigmatism_0: 0.0,
        astigmatism_45: 0.0,
        coma_x: 0.0,
        coma_y: 0.0,
        spherical: 0.0,
    };

    /// True when every coefficient is zero.
    pub fn is_none(&self) -> bool {
        *self == Self::NONE
    }

    /// Total wavefront phase in waves at pupil position `(ρ, θ)`.
    ///
    /// Positions with `ρ > 1` are outside the pupil; the value is still
    /// the polynomial continuation (the caller applies the aperture).
    pub fn phase_waves(&self, rho: f64, theta: f64) -> f64 {
        let r2 = rho * rho;
        let r3 = r2 * rho;
        let r4 = r2 * r2;
        self.defocus * (2.0 * r2 - 1.0)
            + self.astigmatism_0 * r2 * (2.0 * theta).cos()
            + self.astigmatism_45 * r2 * (2.0 * theta).sin()
            + self.coma_x * (3.0 * r3 - 2.0 * rho) * theta.cos()
            + self.coma_y * (3.0 * r3 - 2.0 * rho) * theta.sin()
            + self.spherical * (6.0 * r4 - 6.0 * r2 + 1.0)
    }

    /// Phase in radians at normalized pupil coordinates `(px, py)`
    /// (Cartesian, `px² + py² = ρ²`).
    pub fn phase_radians(&self, px: f64, py: f64) -> f64 {
        let rho = (px * px + py * py).sqrt();
        let theta = py.atan2(px);
        2.0 * std::f64::consts::PI * self.phase_waves(rho, theta)
    }

    /// Root-mean-square wavefront error in waves over the unit pupil,
    /// using the Zernike orthogonality relations (each term contributes
    /// `c²/(2(n+1))`-style normalization factors; fringe convention).
    pub fn rms_waves(&self) -> f64 {
        // Normalization integrals of the un-normalized fringe polynomials
        // over the unit disc, ⟨Z²⟩: Z4 → 1/3, Z5/Z6 → 1/6, Z7/Z8 → 1/8,
        // Z9 → 1/5. Mean of Z4 and Z9 is 0, of the others is 0 too.
        let var = self.defocus * self.defocus / 3.0
            + self.astigmatism_0 * self.astigmatism_0 / 6.0
            + self.astigmatism_45 * self.astigmatism_45 / 6.0
            + self.coma_x * self.coma_x / 8.0
            + self.coma_y * self.coma_y / 8.0
            + self.spherical * self.spherical / 5.0;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical integral of f over the unit disc.
    fn disc_integral(f: impl Fn(f64, f64) -> f64) -> f64 {
        let n = 400;
        let mut acc = 0.0;
        let step = 2.0 / n as f64;
        for i in 0..n {
            for j in 0..n {
                let x = -1.0 + (i as f64 + 0.5) * step;
                let y = -1.0 + (j as f64 + 0.5) * step;
                if x * x + y * y <= 1.0 {
                    let rho = (x * x + y * y).sqrt();
                    let theta = y.atan2(x);
                    acc += f(rho, theta) * step * step;
                }
            }
        }
        acc
    }

    #[test]
    fn none_has_zero_phase() {
        assert!(ZernikeSet::NONE.is_none());
        assert_eq!(ZernikeSet::NONE.phase_waves(0.7, 1.3), 0.0);
        assert_eq!(ZernikeSet::NONE.rms_waves(), 0.0);
    }

    #[test]
    fn polynomials_are_orthogonal_on_disc() {
        // ∫ Z4·Z9 over the disc vanishes.
        let z4 = ZernikeSet {
            defocus: 1.0,
            ..ZernikeSet::NONE
        };
        let z9 = ZernikeSet {
            spherical: 1.0,
            ..ZernikeSet::NONE
        };
        let dot = disc_integral(|r, t| z4.phase_waves(r, t) * z9.phase_waves(r, t));
        assert!(dot.abs() < 1e-2, "Z4·Z9 = {dot}");
    }

    #[test]
    fn rms_matches_numeric_integral() {
        let set = ZernikeSet {
            defocus: 0.1,
            coma_x: 0.05,
            spherical: 0.02,
            ..ZernikeSet::NONE
        };
        let area = std::f64::consts::PI;
        let mean = disc_integral(|r, t| set.phase_waves(r, t)) / area;
        let var = disc_integral(|r, t| {
            let v = set.phase_waves(r, t) - mean;
            v * v
        }) / area;
        assert!(
            (var.sqrt() - set.rms_waves()).abs() < 2e-3,
            "numeric {} vs analytic {}",
            var.sqrt(),
            set.rms_waves()
        );
    }

    #[test]
    fn astigmatism_has_fourfold_symmetry() {
        let set = ZernikeSet {
            astigmatism_0: 1.0,
            ..ZernikeSet::NONE
        };
        let a = set.phase_waves(0.8, 0.0);
        let b = set.phase_waves(0.8, std::f64::consts::FRAC_PI_2);
        assert!((a + b).abs() < 1e-12, "cos2θ antisymmetry");
    }

    #[test]
    fn coma_is_odd_in_rho_direction() {
        let set = ZernikeSet {
            coma_x: 1.0,
            ..ZernikeSet::NONE
        };
        let plus = set.phase_radians(0.6, 0.0);
        let minus = set.phase_radians(-0.6, 0.0);
        assert!((plus + minus).abs() < 1e-12);
    }

    #[test]
    fn cartesian_matches_polar() {
        let set = ZernikeSet {
            defocus: 0.3,
            astigmatism_45: 0.2,
            ..ZernikeSet::NONE
        };
        let (px, py) = (0.3f64, 0.4f64);
        let rho = 0.5;
        let theta = py.atan2(px);
        let polar = 2.0 * std::f64::consts::PI * set.phase_waves(rho, theta);
        assert!((set.phase_radians(px, py) - polar).abs() < 1e-12);
    }
}
