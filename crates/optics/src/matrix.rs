//! A minimal dense complex matrix for the TCC eigendecomposition.

use lsopc_grid::C64;
use std::ops::{Index, IndexMut};

/// A dense square complex matrix with row-major storage.
///
/// Only the operations needed for building and eigendecomposing TCC
/// matrices are provided; this is not a general linear-algebra library.
///
/// # Example
///
/// ```
/// use lsopc_optics::CMatrix;
/// use lsopc_grid::C64;
///
/// let mut m = CMatrix::zeros(2);
/// m[(0, 1)] = C64::new(0.0, 1.0);
/// let v = vec![C64::ONE, C64::ONE];
/// let mv = m.mul_vec(&v);
/// assert_eq!(mv[0], C64::new(0.0, 1.0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    n: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates an `n` x `n` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix dimension must be non-zero");
        Self {
            n,
            data: vec![C64::ZERO; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Matrix–vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    pub fn mul_vec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.n, "vector length must match dimension");
        let mut out = vec![C64::ZERO; self.n];
        for (i, out_i) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            let mut acc = C64::ZERO;
            for (a, &x) in row.iter().zip(v) {
                acc += *a * x;
            }
            *out_i = acc;
        }
        out
    }

    /// Largest deviation from Hermitian symmetry, `max |A[i,j] − conj(A[j,i])|`.
    pub fn hermitian_error(&self) -> f64 {
        let mut err: f64 = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                err = err.max((self[(i, j)] - self[(j, i)].conj()).norm());
            }
        }
        err
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    /// Indexed by `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is out of bounds.
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        debug_assert!(i < self.n && j < self.n);
        &self.data[i * self.n + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        debug_assert!(i < self.n && j < self.n);
        &mut self.data[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_vec_identity() {
        let mut m = CMatrix::zeros(3);
        for i in 0..3 {
            m[(i, i)] = C64::ONE;
        }
        let v = vec![C64::new(1.0, 2.0), C64::new(-1.0, 0.0), C64::new(0.0, 3.0)];
        assert_eq!(m.mul_vec(&v), v);
    }

    #[test]
    fn hermitian_error_detects_asymmetry() {
        let mut m = CMatrix::zeros(2);
        m[(0, 1)] = C64::new(1.0, 1.0);
        m[(1, 0)] = C64::new(1.0, -1.0); // = conj → Hermitian
        assert!(m.hermitian_error() < 1e-15);
        m[(1, 0)] = C64::new(1.0, 1.0); // not conj
        assert!(m.hermitian_error() > 1.0);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mul_vec_wrong_len_panics() {
        let m = CMatrix::zeros(2);
        let _ = m.mul_vec(&[C64::ZERO]);
    }
}
