//! Kernel generation: Abbe source-point discretization and Hopkins
//! TCC + SOCS eigendecomposition.
//!
//! Both constructions produce a [`KernelSet`] for the Hopkins aerial-image
//! sum `I = Σ μ_k |h_k ⊗ M|²` (paper Eq. (1)):
//!
//! * **Abbe** ([`abbe_kernels`]): each discretized source point `s`
//!   contributes a coherent kernel `ĥ_s(f) = P(f + s)` with weight `J(s)`.
//!   This is exact for the discretized source and costs almost nothing.
//! * **TCC/SOCS** ([`tcc_kernels`]): the transmission cross-coefficient
//!   matrix `T(f₁, f₂) = Σ_s J(s)·P(f₁+s)·P*(f₂+s)` is built on the
//!   band-limited frequency support and its top-K eigenpairs become the
//!   kernels — the classical construction the ICCAD 2013 kernels came from.

use crate::eig::top_eigenpairs;
use crate::{CMatrix, KernelSet, OpticsConfig, Pupil};
use lsopc_grid::{Grid, C64};

/// Generates kernels by Abbe source-point discretization.
///
/// The source is discretized into `cfg.kernel_count()` points, so the
/// returned set has exactly that many kernels. The set is normalized to
/// unit clear-field intensity.
pub fn abbe_kernels(cfg: &OpticsConfig, defocus_nm: f64) -> KernelSet {
    let support = cfg.support_size();
    let c = (support / 2) as i64;
    let pupil =
        Pupil::with_aberrations(cfg.wavelength_nm(), cfg.na(), defocus_nm, cfg.aberrations());
    let fc = pupil.cutoff();
    let df = 1.0 / cfg.field_nm();
    let points = cfg.source().sample(cfg.kernel_count());

    let mut spectra = Vec::with_capacity(points.len());
    let mut weights = Vec::with_capacity(points.len());
    for p in &points {
        let (sx, sy) = (p.sx * fc, p.sy * fc);
        let spec = Grid::from_fn(support, support, |i, j| {
            let fx = (i as i64 - c) as f64 * df;
            let fy = (j as i64 - c) as f64 * df;
            pupil.eval(fx + sx, fy + sy)
        });
        spectra.push(spec);
        weights.push(p.weight);
    }
    KernelSet::new(spectra, weights, cfg.field_nm(), defocus_nm).normalized()
}

/// Generates kernels via the Hopkins TCC matrix and its top-K
/// eigendecomposition (SOCS).
///
/// The TCC is assembled on the disc of frequency samples inside the band
/// limit `(1 + σ_max)·NA/λ`, using `cfg.tcc_source_points()` source samples
/// for the source integral, then reduced to `cfg.kernel_count()` kernels by
/// orthogonal iteration. The set is normalized to unit clear-field
/// intensity.
///
/// This path is O(dim²·source_points) in time and O(dim²) in memory with
/// `dim ≈ π/4·S²`; prefer [`abbe_kernels`] for large fields unless the true
/// SOCS construction is required.
pub fn tcc_kernels(cfg: &OpticsConfig, defocus_nm: f64) -> KernelSet {
    let support = cfg.support_size();
    let c = (support / 2) as i64;
    let pupil =
        Pupil::with_aberrations(cfg.wavelength_nm(), cfg.na(), defocus_nm, cfg.aberrations());
    let fc = pupil.cutoff();
    let df = 1.0 / cfg.field_nm();
    let f_limit = (1.0 + cfg.source().sigma_max()) * fc + df;

    // Frequency samples within the band disc.
    let mut freqs: Vec<(i64, i64)> = Vec::new();
    for j in -c..=c {
        for i in -c..=c {
            let fx = i as f64 * df;
            let fy = j as f64 * df;
            if fx * fx + fy * fy <= f_limit * f_limit {
                freqs.push((i, j));
            }
        }
    }
    let dim = freqs.len();

    // Pupil samples per source point: column s → vector over freqs.
    let points = cfg.source().sample(cfg.tcc_source_points());
    let fields: Vec<Vec<C64>> = points
        .iter()
        .map(|p| {
            let (sx, sy) = (p.sx * fc, p.sy * fc);
            freqs
                .iter()
                .map(|&(i, j)| pupil.eval(i as f64 * df + sx, j as f64 * df + sy))
                .collect()
        })
        .collect();

    // T = Σ_s w_s · field_s · field_s† (Hermitian PSD by construction).
    let mut t = CMatrix::zeros(dim);
    for (p, field) in points.iter().zip(&fields) {
        for (a, &fa) in field.iter().enumerate() {
            if fa == C64::ZERO {
                continue;
            }
            let wfa = fa.scale(p.weight);
            for (b, &fb) in field.iter().enumerate() {
                t[(a, b)] += wfa * fb.conj();
            }
        }
    }

    let rank = cfg.kernel_count().min(dim);
    let eig = top_eigenpairs(&t, rank, cfg.tcc_iterations());

    let mut spectra = Vec::with_capacity(rank);
    let mut weights = Vec::with_capacity(rank);
    for (lam, vec) in eig.values.iter().zip(&eig.vectors) {
        let mut spec = Grid::new(support, support, C64::ZERO);
        for (&(i, j), &v) in freqs.iter().zip(vec) {
            spec[((i + c) as usize, (j + c) as usize)] = v;
        }
        spectra.push(spec);
        // TCC eigenvalues are non-negative up to rounding.
        weights.push(lam.max(0.0));
    }
    KernelSet::new(spectra, weights, cfg.field_nm(), defocus_nm).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> OpticsConfig {
        OpticsConfig::iccad2013()
            .with_field_nm(256.0)
            .with_kernel_count(8)
            .with_tcc_source_points(48)
    }

    /// Aerial image of a mask under a kernel set, computed directly.
    fn aerial(set: &KernelSet, mask: &Grid<f64>) -> Grid<f64> {
        let (w, h) = mask.dims();
        let fft = lsopc_fft::plan(w, h);
        let mhat = fft.forward_real(mask);
        let mut intensity = Grid::new(w, h, 0.0);
        for k in 0..set.len() {
            let mut field = set.embed_full(k, w, h).zip_map(&mhat, |&s, &m| s * m);
            fft.inverse(&mut field);
            let wk = set.weight(k);
            for (dst, &e) in intensity.as_mut_slice().iter_mut().zip(field.as_slice()) {
                *dst += wk * e.norm_sqr();
            }
        }
        intensity
    }

    #[test]
    fn abbe_kernel_count_and_normalization() {
        let set = abbe_kernels(&small_cfg(), 0.0);
        assert_eq!(set.len(), 8);
        assert!((set.clear_field_intensity() - 1.0).abs() < 1e-12);
        assert_eq!(set.defocus_nm(), 0.0);
    }

    #[test]
    fn abbe_clear_mask_prints_unit_intensity() {
        let set = abbe_kernels(&small_cfg(), 0.0);
        let mask = Grid::new(64, 64, 1.0);
        let img = aerial(&set, &mask);
        for (_, _, &v) in img.iter_coords() {
            assert!((v - 1.0).abs() < 1e-9, "intensity {v}");
        }
    }

    #[test]
    fn abbe_dark_mask_prints_zero() {
        let set = abbe_kernels(&small_cfg(), 0.0);
        let mask = Grid::new(64, 64, 0.0);
        let img = aerial(&set, &mask);
        assert!(img.sum() < 1e-12);
    }

    #[test]
    fn isolated_feature_blurs_and_dims() {
        // A sub-resolution 16nm slot prints with intensity below clear field
        // and spreads beyond its footprint — the low-pass behaviour that
        // motivates OPC.
        let cfg = small_cfg();
        let set = abbe_kernels(&cfg, 0.0);
        let px = 4.0; // nm per pixel on a 64-px grid over 256nm
        let mask = Grid::from_fn(64, 64, |x, y| {
            let (xn, yn) = (x as f64 * px, y as f64 * px);
            if (112.0..128.0).contains(&xn) && (64.0..192.0).contains(&yn) {
                1.0
            } else {
                0.0
            }
        });
        let img = aerial(&set, &mask);
        let peak = img.as_slice().iter().cloned().fold(0.0, f64::max);
        assert!(peak < 0.8, "16nm slot should print dim, peak={peak}");
        assert!(peak > 0.01, "some light must get through, peak={peak}");
        // Light spreads outside the geometric image.
        assert!(img[(24, 32)] > 1e-4);
    }

    #[test]
    fn tcc_matches_abbe_on_dense_source() {
        // With the same dense source sampling and full rank, the TCC/SOCS
        // image must match the Abbe image (same operator, different basis).
        let cfg = OpticsConfig::iccad2013()
            .with_field_nm(128.0)
            .with_kernel_count(24)
            .with_tcc_source_points(24)
            .with_tcc_iterations(120);
        let abbe = abbe_kernels(&cfg, 0.0);
        let tcc = tcc_kernels(&cfg, 0.0);
        let mask = Grid::from_fn(32, 32, |x, y| {
            if (10..22).contains(&x) && (12..20).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        let ia = aerial(&abbe, &mask);
        let it = aerial(&tcc, &mask);
        let err = ia
            .as_slice()
            .iter()
            .zip(it.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 5e-3, "TCC vs Abbe max image error {err}");
    }

    #[test]
    fn tcc_weights_decay() {
        let set = tcc_kernels(&small_cfg(), 0.0);
        for k in 1..set.len() {
            assert!(
                set.weight(k) <= set.weight(k - 1) + 1e-12,
                "weights must be sorted descending"
            );
        }
        assert!(set.weight(0) > set.weight(set.len() - 1));
    }

    #[test]
    fn defocus_changes_image() {
        let cfg = small_cfg();
        let nominal = abbe_kernels(&cfg, 0.0);
        let defocused = abbe_kernels(&cfg, 50.0);
        let mask = Grid::from_fn(64, 64, |x, y| {
            if (24..40).contains(&x) && (16..48).contains(&y) {
                1.0
            } else {
                0.0
            }
        });
        let i0 = aerial(&nominal, &mask);
        let i1 = aerial(&defocused, &mask);
        let diff: f64 = i0
            .as_slice()
            .iter()
            .zip(i1.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.1, "defocus must perturb the image, diff={diff}");
        // Defocus reduces peak contrast.
        let p0 = i0.as_slice().iter().cloned().fold(0.0, f64::max);
        let p1 = i1.as_slice().iter().cloned().fold(0.0, f64::max);
        assert!(p1 < p0 + 1e-9);
    }
}
