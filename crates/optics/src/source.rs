//! Illumination source shapes and their point discretization.

use serde::{Deserialize, Serialize};

/// One discretized source point in normalized pupil coordinates
/// (|σ| = 1 at the pupil edge) together with its intensity weight.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SourcePoint {
    /// Normalized x pupil coordinate.
    pub sx: f64,
    /// Normalized y pupil coordinate.
    pub sy: f64,
    /// Relative intensity weight (weights sum to 1 across a sample set).
    pub weight: f64,
}

/// Illumination source shape.
///
/// The ICCAD 2013 optical system uses annular illumination; circular and
/// quadrupole shapes are provided for experiments beyond the paper.
///
/// # Example
///
/// ```
/// use lsopc_optics::SourceModel;
///
/// let pts = SourceModel::Annular { sigma_in: 0.6, sigma_out: 0.9 }.sample(24);
/// assert_eq!(pts.len(), 24);
/// let total: f64 = pts.iter().map(|p| p.weight).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SourceModel {
    /// A uniform disc of radius `sigma`.
    Circular {
        /// Partial-coherence factor (disc radius in pupil units).
        sigma: f64,
    },
    /// A uniform ring between `sigma_in` and `sigma_out`.
    Annular {
        /// Inner radius in pupil units.
        sigma_in: f64,
        /// Outer radius in pupil units.
        sigma_out: f64,
    },
    /// Four poles on the ±45° diagonals, each a small disc.
    Quadrupole {
        /// Pole-centre radius in pupil units.
        sigma_center: f64,
        /// Pole disc radius in pupil units.
        sigma_radius: f64,
    },
}

impl SourceModel {
    /// The largest radial extent of the source in pupil units.
    pub fn sigma_max(&self) -> f64 {
        match *self {
            SourceModel::Circular { sigma } => sigma,
            SourceModel::Annular { sigma_out, .. } => sigma_out,
            SourceModel::Quadrupole {
                sigma_center,
                sigma_radius,
            } => sigma_center + sigma_radius,
        }
    }

    /// Discretizes the source into exactly `count` weighted points.
    ///
    /// Points are placed on concentric rings (or pole clusters for the
    /// quadrupole) with per-ring counts proportional to circumference, so
    /// the discretization approaches the continuous shape as `count` grows.
    /// All weights are equal and sum to one. The layout is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or the shape parameters are non-positive /
    /// inverted.
    pub fn sample(&self, count: usize) -> Vec<SourcePoint> {
        assert!(count > 0, "source sample count must be positive");
        let pts = match *self {
            SourceModel::Circular { sigma } => {
                assert!(sigma > 0.0, "sigma must be positive");
                sample_disc(0.0, sigma, count, 0.0, 0.0)
            }
            SourceModel::Annular {
                sigma_in,
                sigma_out,
            } => {
                assert!(
                    sigma_out > sigma_in && sigma_in >= 0.0,
                    "annulus requires 0 <= sigma_in < sigma_out"
                );
                sample_disc(sigma_in, sigma_out, count, 0.0, 0.0)
            }
            SourceModel::Quadrupole {
                sigma_center,
                sigma_radius,
            } => {
                assert!(
                    sigma_center > 0.0 && sigma_radius > 0.0,
                    "quadrupole parameters must be positive"
                );
                let per_pole = count.div_euclid(4).max(1);
                let mut pts = Vec::new();
                let d = sigma_center / std::f64::consts::SQRT_2;
                for &(cx, cy) in &[(d, d), (-d, d), (d, -d), (-d, -d)] {
                    pts.extend(sample_disc(0.0, sigma_radius, per_pole, cx, cy));
                }
                pts
            }
        };
        let w = 1.0 / pts.len() as f64;
        pts.into_iter()
            .map(|(sx, sy)| SourcePoint { sx, sy, weight: w })
            .collect()
    }
}

/// Samples `count` points on an annulus `[r_in, r_out]` centred at
/// `(cx, cy)`, using rings with point counts proportional to ring radius.
fn sample_disc(r_in: f64, r_out: f64, count: usize, cx: f64, cy: f64) -> Vec<(f64, f64)> {
    if count == 1 {
        let r = (r_in + r_out) / 2.0;
        // A single point sits on the mid-radius along +x (or at the centre
        // for a full disc).
        return if r_in == 0.0 {
            vec![(cx, cy)]
        } else {
            vec![(cx + r, cy)]
        };
    }
    // Choose the number of rings so each ring has a handful of points.
    let rings = ((count as f64).sqrt() / 1.8).ceil().max(1.0) as usize;
    // Ring radii at band centres.
    let radii: Vec<f64> = (0..rings)
        .map(|i| r_in + (r_out - r_in) * (i as f64 + 0.5) / rings as f64)
        .collect();
    // Allocate points proportionally to radius (rounded, then fixed up so
    // the total is exactly `count`).
    let total_r: f64 = radii.iter().map(|r| r.max(1e-9)).sum();
    let mut counts: Vec<usize> = radii
        .iter()
        .map(|r| ((r.max(1e-9) / total_r) * count as f64).round().max(1.0) as usize)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    let mut i = 0;
    while assigned != count {
        let idx = i % rings;
        if assigned < count {
            counts[idx] += 1;
            assigned += 1;
        } else if counts[idx] > 1 {
            counts[idx] -= 1;
            assigned -= 1;
        }
        i += 1;
    }
    let mut pts = Vec::with_capacity(count);
    for (ring, (&r, &n)) in radii.iter().zip(&counts).enumerate() {
        // Stagger consecutive rings so points do not align radially.
        let phase = 0.5 * ring as f64;
        for k in 0..n {
            let theta = 2.0 * std::f64::consts::PI * (k as f64 + phase) / n as f64;
            pts.push((cx + r * theta.cos(), cy + r * theta.sin()));
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annular_points_lie_in_annulus() {
        let src = SourceModel::Annular {
            sigma_in: 0.6,
            sigma_out: 0.9,
        };
        for p in src.sample(24) {
            let r = (p.sx * p.sx + p.sy * p.sy).sqrt();
            assert!(
                (0.6 - 1e-9..=0.9 + 1e-9).contains(&r),
                "point at radius {r}"
            );
        }
    }

    #[test]
    fn circular_points_lie_in_disc() {
        let src = SourceModel::Circular { sigma: 0.5 };
        for p in src.sample(16) {
            let r = (p.sx * p.sx + p.sy * p.sy).sqrt();
            assert!(r <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn exact_count_for_various_requests() {
        let src = SourceModel::Annular {
            sigma_in: 0.6,
            sigma_out: 0.9,
        };
        for count in [1usize, 2, 5, 13, 24, 64] {
            assert_eq!(src.sample(count).len(), count, "count={count}");
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for src in [
            SourceModel::Circular { sigma: 0.7 },
            SourceModel::Annular {
                sigma_in: 0.5,
                sigma_out: 0.8,
            },
            SourceModel::Quadrupole {
                sigma_center: 0.7,
                sigma_radius: 0.15,
            },
        ] {
            let pts = src.sample(24);
            let total: f64 = pts.iter().map(|p| p.weight).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn annular_centroid_is_origin() {
        let pts = SourceModel::Annular {
            sigma_in: 0.6,
            sigma_out: 0.9,
        }
        .sample(24);
        let (mx, my) = pts
            .iter()
            .fold((0.0, 0.0), |(x, y), p| (x + p.sx, y + p.sy));
        assert!(mx.abs() / 24.0 < 0.05, "centroid x = {}", mx / 24.0);
        assert!(my.abs() / 24.0 < 0.05, "centroid y = {}", my / 24.0);
    }

    #[test]
    fn quadrupole_has_four_clusters() {
        let pts = SourceModel::Quadrupole {
            sigma_center: 0.7,
            sigma_radius: 0.1,
        }
        .sample(24);
        let quadrants: [usize; 4] = pts.iter().fold([0; 4], |mut acc, p| {
            let q = match (p.sx > 0.0, p.sy > 0.0) {
                (true, true) => 0,
                (false, true) => 1,
                (true, false) => 2,
                (false, false) => 3,
            };
            acc[q] += 1;
            acc
        });
        assert_eq!(quadrants, [6, 6, 6, 6]);
    }

    #[test]
    fn sigma_max_matches_shape() {
        assert_eq!(SourceModel::Circular { sigma: 0.4 }.sigma_max(), 0.4);
        assert_eq!(
            SourceModel::Annular {
                sigma_in: 0.6,
                sigma_out: 0.9
            }
            .sigma_max(),
            0.9
        );
    }

    #[test]
    #[should_panic(expected = "sigma_in < sigma_out")]
    fn inverted_annulus_panics() {
        let _ = SourceModel::Annular {
            sigma_in: 0.9,
            sigma_out: 0.6,
        }
        .sample(8);
    }

    #[test]
    fn deterministic() {
        let src = SourceModel::Annular {
            sigma_in: 0.6,
            sigma_out: 0.9,
        };
        assert_eq!(src.sample(24), src.sample(24));
    }
}
