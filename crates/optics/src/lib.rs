//! Partially coherent optical model for lithography simulation.
//!
//! The ICCAD 2013 contest ships 24 precomputed optical kernels (the SOCS
//! decomposition of its 193 nm annular-illumination system). This crate
//! *generates* equivalent kernels from first principles:
//!
//! * [`SourceModel`] — circular / annular / quadrupole illumination shapes,
//!   discretized into weighted source points;
//! * [`Pupil`] — the projection-lens pupil with (non-paraxial) defocus;
//! * [`KernelSet`] — band-limited kernel spectra `ĥ_k` with weights `μ_k`,
//!   the inputs of the Hopkins sum `I = Σ μ_k |h_k ⊗ M|²` (paper Eq. (1));
//! * two generation paths:
//!   [`OpticsConfig::kernels`] (Abbe source-point discretization, exact for
//!   the discretized source, the default) and
//!   [`OpticsConfig::kernels_tcc`] (Hopkins TCC matrix + Hermitian
//!   eigendecomposition, the classical SOCS construction);
//! * [`eig`] — from-scratch dense Hermitian eigensolvers (cyclic Jacobi and
//!   orthogonal iteration) used by the TCC path.
//!
//! # Example
//!
//! ```
//! use lsopc_optics::OpticsConfig;
//!
//! // A small test-scale optical system.
//! let optics = OpticsConfig::iccad2013().with_field_nm(256.0).with_kernel_count(8);
//! let kernels = optics.kernels(0.0);
//! assert_eq!(kernels.len(), 8);
//! // Weights are normalized so that a fully clear mask prints intensity 1.
//! let clear: f64 = (0..kernels.len())
//!     .map(|k| kernels.weight(k) * kernels.spectrum(k)[(kernels.center(), kernels.center())].norm_sqr())
//!     .sum();
//! assert!((clear - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod eig;

mod condition;
mod config;
mod io;
mod kernels;
mod matrix;
mod pupil;
mod source;
mod tcc;
mod zernike;

pub use condition::{ProcessCondition, ProcessCorners};
pub use config::OpticsConfig;
pub use io::{kernels_from_str, kernels_to_string, read_kernels, write_kernels, ReadKernelsError};
pub use kernels::KernelSet;
pub use matrix::CMatrix;
pub use pupil::Pupil;
pub use source::{SourceModel, SourcePoint};
pub use zernike::ZernikeSet;
