//! Top-level optical system configuration.

use crate::tcc::{abbe_kernels, tcc_kernels};
use crate::{KernelSet, SourceModel, ZernikeSet};
use serde::{Deserialize, Serialize};

/// Configuration of the lithography optical system.
///
/// The defaults follow the ICCAD 2013 contest setup used in the paper:
/// 193 nm immersion lithography (NA 1.35) with annular illumination over a
/// 2048 nm tile, decomposed into 24 kernels.
///
/// # Example
///
/// ```
/// use lsopc_optics::OpticsConfig;
///
/// let cfg = OpticsConfig::iccad2013();
/// assert_eq!(cfg.wavelength_nm(), 193.0);
/// assert_eq!(cfg.kernel_count(), 24);
/// let kernels = cfg.with_field_nm(256.0).kernels(0.0);
/// assert_eq!(kernels.len(), 24);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpticsConfig {
    wavelength_nm: f64,
    na: f64,
    source: SourceModel,
    field_nm: f64,
    kernel_count: usize,
    tcc_source_points: usize,
    tcc_iterations: usize,
    #[serde(default)]
    aberrations: ZernikeSet,
}

impl OpticsConfig {
    /// The ICCAD 2013 contest optical system: λ = 193 nm, NA = 1.35,
    /// annular 0.6/0.9 illumination, 2048 nm field, 24 kernels.
    pub fn iccad2013() -> Self {
        Self {
            wavelength_nm: 193.0,
            na: 1.35,
            source: SourceModel::Annular {
                sigma_in: 0.6,
                sigma_out: 0.9,
            },
            field_nm: 2048.0,
            kernel_count: 24,
            tcc_source_points: 120,
            tcc_iterations: 60,
            aberrations: ZernikeSet::NONE,
        }
    }

    /// Sets the source wavelength in nm.
    ///
    /// # Panics
    ///
    /// Panics if not positive.
    pub fn with_wavelength_nm(mut self, wavelength_nm: f64) -> Self {
        assert!(wavelength_nm > 0.0, "wavelength must be positive");
        self.wavelength_nm = wavelength_nm;
        self
    }

    /// Sets the numerical aperture.
    ///
    /// # Panics
    ///
    /// Panics if not positive.
    pub fn with_na(mut self, na: f64) -> Self {
        assert!(na > 0.0, "NA must be positive");
        self.na = na;
        self
    }

    /// Sets the illumination shape.
    pub fn with_source(mut self, source: SourceModel) -> Self {
        self.source = source;
        self
    }

    /// Sets the (periodic) field size in nm.
    ///
    /// # Panics
    ///
    /// Panics if not positive.
    pub fn with_field_nm(mut self, field_nm: f64) -> Self {
        assert!(field_nm > 0.0, "field size must be positive");
        self.field_nm = field_nm;
        self
    }

    /// Sets the number of kernels `K` (paper: 24).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn with_kernel_count(mut self, kernel_count: usize) -> Self {
        assert!(kernel_count > 0, "kernel count must be positive");
        self.kernel_count = kernel_count;
        self
    }

    /// Sets the source discretization density for the TCC path.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn with_tcc_source_points(mut self, n: usize) -> Self {
        assert!(n > 0, "source point count must be positive");
        self.tcc_source_points = n;
        self
    }

    /// Sets the subspace-iteration count for the TCC eigendecomposition.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn with_tcc_iterations(mut self, n: usize) -> Self {
        assert!(n > 0, "iteration count must be positive");
        self.tcc_iterations = n;
        self
    }

    /// Sets Zernike lens aberrations applied to the pupil (an extension
    /// beyond the paper's defocus-only process model).
    pub fn with_aberrations(mut self, aberrations: ZernikeSet) -> Self {
        self.aberrations = aberrations;
        self
    }

    /// Zernike lens aberrations.
    pub fn aberrations(&self) -> ZernikeSet {
        self.aberrations
    }

    /// Wavelength in nm.
    pub fn wavelength_nm(&self) -> f64 {
        self.wavelength_nm
    }

    /// Numerical aperture.
    pub fn na(&self) -> f64 {
        self.na
    }

    /// Illumination shape.
    pub fn source(&self) -> SourceModel {
        self.source
    }

    /// Field period in nm.
    pub fn field_nm(&self) -> f64 {
        self.field_nm
    }

    /// Number of kernels `K`.
    pub fn kernel_count(&self) -> usize {
        self.kernel_count
    }

    /// Source samples used when assembling the TCC.
    pub fn tcc_source_points(&self) -> usize {
        self.tcc_source_points
    }

    /// Subspace iterations used by the TCC eigendecomposition.
    pub fn tcc_iterations(&self) -> usize {
        self.tcc_iterations
    }

    /// Coherent cutoff `NA/λ` in cycles/nm.
    pub fn cutoff(&self) -> f64 {
        self.na / self.wavelength_nm
    }

    /// Side length `S` (odd) of the centred spectral support window: all
    /// frequencies up to `(1 + σ_max)·NA/λ` plus one sample of margin.
    pub fn support_size(&self) -> usize {
        let f_limit = (1.0 + self.source.sigma_max()) * self.cutoff();
        let half = (f_limit * self.field_nm).ceil() as usize + 1;
        2 * half + 1
    }

    /// Generates the kernel set at `defocus_nm` via Abbe source-point
    /// discretization (the default path; exact for the discretized source).
    pub fn kernels(&self, defocus_nm: f64) -> KernelSet {
        abbe_kernels(self, defocus_nm)
    }

    /// Generates the kernel set at `defocus_nm` via the Hopkins TCC matrix
    /// and SOCS eigendecomposition (the classical construction; slower).
    pub fn kernels_tcc(&self, defocus_nm: f64) -> KernelSet {
        tcc_kernels(self, defocus_nm)
    }

    /// Generates the kernel set at `defocus_nm` in scalar precision `T`.
    ///
    /// Generation itself (source discretization, pupil sampling, SOCS
    /// decomposition) always runs in `f64` — the decomposition is
    /// numerically delicate and cheap relative to simulation — and the
    /// result is rounded once at this seam via [`KernelSet::cast`]. At
    /// `T = f64` the cast is the identity on every value.
    pub fn kernels_t<T: lsopc_grid::Scalar>(&self, defocus_nm: f64) -> KernelSet<T> {
        abbe_kernels(self, defocus_nm).cast()
    }
}

impl Default for OpticsConfig {
    fn default() -> Self {
        Self::iccad2013()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iccad_defaults() {
        let cfg = OpticsConfig::iccad2013();
        assert_eq!(cfg.na(), 1.35);
        assert_eq!(cfg.field_nm(), 2048.0);
        assert!((cfg.cutoff() - 1.35 / 193.0).abs() < 1e-15);
        assert_eq!(cfg, OpticsConfig::default());
    }

    #[test]
    fn support_size_is_odd_and_scales_with_field() {
        let small = OpticsConfig::iccad2013().with_field_nm(256.0);
        let large = OpticsConfig::iccad2013().with_field_nm(2048.0);
        assert_eq!(small.support_size() % 2, 1);
        assert_eq!(large.support_size() % 2, 1);
        assert!(large.support_size() > small.support_size());
        // 2048nm field: (1+0.9)·1.35/193·2048 ≈ 27.2 → half 29 → S = 59.
        assert_eq!(large.support_size(), 59);
    }

    #[test]
    fn builder_chain() {
        let cfg = OpticsConfig::iccad2013()
            .with_wavelength_nm(248.0)
            .with_na(0.93)
            .with_kernel_count(12)
            .with_field_nm(1024.0);
        assert_eq!(cfg.wavelength_nm(), 248.0);
        assert_eq!(cfg.na(), 0.93);
        assert_eq!(cfg.kernel_count(), 12);
        assert_eq!(cfg.field_nm(), 1024.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_field_panics() {
        let _ = OpticsConfig::iccad2013().with_field_nm(-1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = OpticsConfig::iccad2013().with_kernel_count(10);
        let json = serde_json_like(&cfg);
        assert!(json.contains("10"));
    }

    // serde_json is not a dependency; check Serialize works via the Debug
    // fallback of a manual visitor instead. The derive is exercised by
    // downstream crates; here we only make sure the type stays serde-able.
    fn serde_json_like(cfg: &OpticsConfig) -> String {
        format!("{cfg:?}")
    }
}
