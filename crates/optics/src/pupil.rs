//! The projection-lens pupil function.

use crate::ZernikeSet;
use lsopc_grid::C64;

/// The (circular, unapodized) pupil of the projection lens, with an exact
/// (non-paraxial) defocus phase term and optional Zernike aberrations.
///
/// Spatial frequencies are physical, in cycles/nm. The pupil passes
/// `|f| <= NA/λ` and a defocus `δz` multiplies the passband by
/// `exp(i·2π·δz·(sqrt(1/λ² − |f|²) − 1/λ))`, the difference in axial
/// propagation constant — the standard scalar defocus model. Aberrations
/// add `exp(i·Φ(f/f_c))` with `Φ` the Zernike wavefront (an extension
/// beyond the paper's defocus-only model).
///
/// # Example
///
/// ```
/// use lsopc_optics::Pupil;
///
/// let pupil = Pupil::new(193.0, 1.35, 0.0);
/// assert_eq!(pupil.eval(0.0, 0.0).re, 1.0);          // DC passes
/// assert_eq!(pupil.eval(0.01, 0.0).norm_sqr(), 0.0); // beyond cutoff
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Pupil {
    wavelength_nm: f64,
    na: f64,
    defocus_nm: f64,
    cutoff: f64,
    aberrations: ZernikeSet,
}

impl Pupil {
    /// Creates a pupil for the given wavelength (nm), numerical aperture
    /// and defocus (nm), with no further aberrations.
    ///
    /// # Panics
    ///
    /// Panics if the wavelength or NA is not positive.
    pub fn new(wavelength_nm: f64, na: f64, defocus_nm: f64) -> Self {
        Self::with_aberrations(wavelength_nm, na, defocus_nm, ZernikeSet::NONE)
    }

    /// Creates an aberrated pupil (defocus plus a Zernike wavefront).
    ///
    /// # Panics
    ///
    /// Panics if the wavelength or NA is not positive.
    pub fn with_aberrations(
        wavelength_nm: f64,
        na: f64,
        defocus_nm: f64,
        aberrations: ZernikeSet,
    ) -> Self {
        assert!(wavelength_nm > 0.0, "wavelength must be positive");
        assert!(na > 0.0, "numerical aperture must be positive");
        Self {
            wavelength_nm,
            na,
            defocus_nm,
            cutoff: na / wavelength_nm,
            aberrations,
        }
    }

    /// The coherent cutoff frequency `NA/λ` in cycles/nm.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Defocus in nanometres.
    pub fn defocus_nm(&self) -> f64 {
        self.defocus_nm
    }

    /// The Zernike aberration set.
    pub fn aberrations(&self) -> ZernikeSet {
        self.aberrations
    }

    /// Evaluates the pupil at physical frequency `(fx, fy)` cycles/nm.
    pub fn eval(&self, fx: f64, fy: f64) -> C64 {
        let f2 = fx * fx + fy * fy;
        if f2 > self.cutoff * self.cutoff {
            return C64::ZERO;
        }
        let mut phase = 0.0;
        if self.defocus_nm != 0.0 {
            let inv_lambda = 1.0 / self.wavelength_nm;
            // kz/2π = sqrt(1/λ² − f²); guard tiny negatives from rounding.
            let kz = (inv_lambda * inv_lambda - f2).max(0.0).sqrt();
            phase += 2.0 * std::f64::consts::PI * self.defocus_nm * (kz - inv_lambda);
        }
        if !self.aberrations.is_none() {
            phase += self
                .aberrations
                .phase_radians(fx / self.cutoff, fy / self.cutoff);
        }
        if phase == 0.0 {
            C64::ONE
        } else {
            C64::cis(phase)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passband_and_stopband() {
        let p = Pupil::new(193.0, 1.35, 0.0);
        let fc = 1.35 / 193.0;
        assert_eq!(p.eval(fc * 0.99, 0.0), C64::ONE);
        assert_eq!(p.eval(fc * 1.01, 0.0), C64::ZERO);
        assert!((p.cutoff() - fc).abs() < 1e-15);
    }

    #[test]
    fn defocus_is_pure_phase() {
        let p = Pupil::new(193.0, 1.35, 25.0);
        let v = p.eval(0.004, 0.002);
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn defocus_phase_is_zero_at_dc() {
        let p = Pupil::new(193.0, 1.35, 25.0);
        assert!((p.eval(0.0, 0.0) - C64::ONE).norm() < 1e-12);
    }

    #[test]
    fn defocus_phase_grows_with_frequency() {
        let p = Pupil::new(193.0, 1.35, 25.0);
        // Phase magnitude increases monotonically with |f|.
        let phase_at = |f: f64| {
            let v = p.eval(f, 0.0);
            v.im.atan2(v.re).abs()
        };
        assert!(phase_at(0.002) < phase_at(0.004));
        assert!(phase_at(0.004) < phase_at(0.006));
    }

    #[test]
    fn opposite_defocus_conjugates() {
        let plus = Pupil::new(193.0, 1.35, 25.0);
        let minus = Pupil::new(193.0, 1.35, -25.0);
        let a = plus.eval(0.005, 0.001);
        let b = minus.eval(0.005, 0.001);
        assert!((a - b.conj()).norm() < 1e-12);
    }

    #[test]
    fn radially_symmetric() {
        let p = Pupil::new(193.0, 1.35, 30.0);
        let a = p.eval(0.003, 0.004);
        let b = p.eval(0.005, 0.0);
        assert!((a - b).norm() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_na_panics() {
        let _ = Pupil::new(193.0, 0.0, 0.0);
    }
}

#[cfg(test)]
mod aberration_tests {
    use super::*;

    #[test]
    fn aberrated_pupil_is_unit_modulus_in_band() {
        let z = ZernikeSet {
            coma_x: 0.05,
            spherical: 0.03,
            ..ZernikeSet::NONE
        };
        let p = Pupil::with_aberrations(193.0, 1.35, 10.0, z);
        let v = p.eval(0.004, -0.002);
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert_eq!(p.aberrations(), z);
    }

    #[test]
    fn aberrations_change_the_phase() {
        let clean = Pupil::new(193.0, 1.35, 0.0);
        let aberrated = Pupil::with_aberrations(
            193.0,
            1.35,
            0.0,
            ZernikeSet {
                spherical: 0.1,
                ..ZernikeSet::NONE
            },
        );
        let f = 0.005;
        assert!((clean.eval(f, 0.0) - aberrated.eval(f, 0.0)).norm() > 1e-3);
    }

    #[test]
    fn aberrations_still_respect_cutoff() {
        let p = Pupil::with_aberrations(
            193.0,
            1.35,
            0.0,
            ZernikeSet {
                defocus: 1.0,
                ..ZernikeSet::NONE
            },
        );
        assert_eq!(p.eval(0.02, 0.0), C64::ZERO);
    }
}
