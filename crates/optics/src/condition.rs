//! Process conditions (focus / dose corners).

use serde::{Deserialize, Serialize};

/// One lithography process condition: a defocus and a dose multiplier.
///
/// The paper's evaluation (Section IV) uses a defocus range of ±25 nm and a
/// dose range of ±2 %: the *outer* printed contour is generated at nominal
/// focus and +2 % dose, the *inner* contour at defocus and −2 % dose.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProcessCondition {
    /// Defocus in nanometres (0 = nominal focal plane).
    pub defocus_nm: f64,
    /// Dose multiplier (1.0 = nominal exposure dose).
    pub dose: f64,
}

impl ProcessCondition {
    /// The nominal condition: in focus, nominal dose.
    pub const NOMINAL: Self = Self {
        defocus_nm: 0.0,
        dose: 1.0,
    };

    /// Creates a condition.
    pub fn new(defocus_nm: f64, dose: f64) -> Self {
        Self { defocus_nm, dose }
    }
}

impl Default for ProcessCondition {
    fn default() -> Self {
        Self::NOMINAL
    }
}

/// The three conditions used by the process-window-aware cost function.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProcessCorners {
    /// Nominal condition.
    pub nominal: ProcessCondition,
    /// Inner-contour condition (defocused, under-dosed).
    pub inner: ProcessCondition,
    /// Outer-contour condition (in focus, over-dosed).
    pub outer: ProcessCondition,
}

impl ProcessCorners {
    /// The ICCAD 2013 corners: ±25 nm defocus, ±2 % dose.
    pub fn iccad2013() -> Self {
        Self::from_ranges(25.0, 0.02)
    }

    /// Builds corners from a defocus range and dose deviation, following
    /// the paper's convention (outer: nominal focus & `1 + dose_delta`;
    /// inner: `defocus_nm` & `1 - dose_delta`).
    pub fn from_ranges(defocus_nm: f64, dose_delta: f64) -> Self {
        Self {
            nominal: ProcessCondition::NOMINAL,
            inner: ProcessCondition::new(defocus_nm, 1.0 - dose_delta),
            outer: ProcessCondition::new(0.0, 1.0 + dose_delta),
        }
    }

    /// The corners as an array `[nominal, inner, outer]`.
    pub fn as_array(&self) -> [ProcessCondition; 3] {
        [self.nominal, self.inner, self.outer]
    }
}

impl Default for ProcessCorners {
    fn default() -> Self {
        Self::iccad2013()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iccad_corners_match_paper() {
        let c = ProcessCorners::iccad2013();
        assert_eq!(c.nominal, ProcessCondition::NOMINAL);
        assert_eq!(c.inner, ProcessCondition::new(25.0, 0.98));
        assert_eq!(c.outer, ProcessCondition::new(0.0, 1.02));
    }

    #[test]
    fn default_is_iccad() {
        assert_eq!(ProcessCorners::default(), ProcessCorners::iccad2013());
        assert_eq!(ProcessCondition::default(), ProcessCondition::NOMINAL);
    }

    #[test]
    fn array_order() {
        let c = ProcessCorners::from_ranges(10.0, 0.05);
        let arr = c.as_array();
        assert_eq!(arr[0].dose, 1.0);
        assert_eq!(arr[1].dose, 0.95);
        assert_eq!(arr[2].dose, 1.05);
        assert_eq!(arr[1].defocus_nm, 10.0);
    }
}
