//! Kernel-set persistence.
//!
//! TCC/SOCS kernel generation can take seconds to minutes at full scale;
//! the contest itself shipped kernels as data files. This module writes
//! and reads [`KernelSet`]s in a simple self-describing text format so
//! generated kernels can be cached and shared:
//!
//! ```text
//! lsopc-kernels v1
//! support 11 count 2 period_nm 256 defocus_nm 0
//! weight 0.7
//! <re> <im>  ... S·S complex samples, row-major ...
//! weight 0.3
//! ...
//! ```

use crate::KernelSet;
use lsopc_grid::{Grid, C64};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Error reading a kernel file.
#[derive(Debug)]
pub enum ReadKernelsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid kernel dump.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ReadKernelsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "failed to read kernel file: {e}"),
            Self::Parse { line, message } => {
                write!(f, "kernel file parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for ReadKernelsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Parse { .. } => None,
        }
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> ReadKernelsError {
    ReadKernelsError::Parse {
        line,
        message: message.into(),
    }
}

/// Serializes a kernel set to the text format.
pub fn kernels_to_string(set: &KernelSet) -> String {
    let s = set.support();
    let mut out = String::with_capacity(set.len() * s * s * 24);
    out.push_str("lsopc-kernels v1\n");
    out.push_str(&format!(
        "support {} count {} period_nm {} defocus_nm {}\n",
        s,
        set.len(),
        set.period_nm(),
        set.defocus_nm()
    ));
    for k in 0..set.len() {
        out.push_str(&format!("weight {:.17e}\n", set.weight(k)));
        for (_, _, v) in set.spectrum(k).iter_coords() {
            out.push_str(&format!("{:.17e} {:.17e}\n", v.re, v.im));
        }
    }
    out
}

/// Parses a kernel set from the text format.
///
/// # Errors
///
/// Returns [`ReadKernelsError::Parse`] on malformed content.
pub fn kernels_from_str(text: &str) -> Result<KernelSet, ReadKernelsError> {
    let mut lines = text.lines().enumerate();
    let (_, magic) = lines.next().ok_or_else(|| parse_err(1, "empty file"))?;
    if magic.trim() != "lsopc-kernels v1" {
        return Err(parse_err(1, format!("bad magic `{magic}`")));
    }
    let (ln, header) = lines.next().ok_or_else(|| parse_err(2, "missing header"))?;
    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() != 8 || tokens[0] != "support" || tokens[2] != "count" {
        return Err(parse_err(ln + 1, "malformed header"));
    }
    let support: usize = tokens[1]
        .parse()
        .map_err(|_| parse_err(ln + 1, "bad support"))?;
    let count: usize = tokens[3]
        .parse()
        .map_err(|_| parse_err(ln + 1, "bad count"))?;
    let period_nm: f64 = tokens[5]
        .parse()
        .map_err(|_| parse_err(ln + 1, "bad period"))?;
    let defocus_nm: f64 = tokens[7]
        .parse()
        .map_err(|_| parse_err(ln + 1, "bad defocus"))?;

    let mut spectra = Vec::with_capacity(count);
    let mut weights = Vec::with_capacity(count);
    for _ in 0..count {
        let (ln, wline) = lines
            .next()
            .ok_or_else(|| parse_err(0, "unexpected end of file"))?;
        let weight: f64 = wline
            .strip_prefix("weight ")
            .and_then(|w| w.trim().parse().ok())
            .ok_or_else(|| parse_err(ln + 1, "expected `weight <w>`"))?;
        let mut data = Vec::with_capacity(support * support);
        for _ in 0..support * support {
            let (ln, vline) = lines
                .next()
                .ok_or_else(|| parse_err(0, "unexpected end of file"))?;
            let mut parts = vline.split_whitespace();
            let re: f64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(ln + 1, "bad complex sample"))?;
            let im: f64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(ln + 1, "bad complex sample"))?;
            data.push(C64::new(re, im));
        }
        spectra.push(Grid::from_vec(support, support, data));
        weights.push(weight);
    }
    Ok(KernelSet::new(spectra, weights, period_nm, defocus_nm))
}

/// Writes a kernel set to a file.
///
/// # Errors
///
/// Returns [`ReadKernelsError::Io`] when the file cannot be written.
pub fn write_kernels(set: &KernelSet, path: impl AsRef<Path>) -> Result<(), ReadKernelsError> {
    std::fs::write(path, kernels_to_string(set)).map_err(ReadKernelsError::Io)
}

/// Reads a kernel set from a file.
///
/// # Errors
///
/// Returns [`ReadKernelsError`] on I/O or parse failure.
pub fn read_kernels(path: impl AsRef<Path>) -> Result<KernelSet, ReadKernelsError> {
    let text = std::fs::read_to_string(path).map_err(ReadKernelsError::Io)?;
    kernels_from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpticsConfig;

    fn small_set() -> KernelSet {
        OpticsConfig::iccad2013()
            .with_field_nm(128.0)
            .with_kernel_count(3)
            .kernels(12.5)
    }

    #[test]
    fn string_roundtrip_is_exact() {
        let set = small_set();
        let text = kernels_to_string(&set);
        let parsed = kernels_from_str(&text).expect("roundtrip parses");
        assert_eq!(parsed.len(), set.len());
        assert_eq!(parsed.support(), set.support());
        assert_eq!(parsed.period_nm(), set.period_nm());
        assert_eq!(parsed.defocus_nm(), set.defocus_nm());
        for k in 0..set.len() {
            assert_eq!(parsed.weight(k), set.weight(k));
            assert_eq!(parsed.spectrum(k), set.spectrum(k));
        }
    }

    #[test]
    fn file_roundtrip() {
        let set = small_set();
        let path = std::env::temp_dir().join(format!("lsopc_kernels_{}.txt", std::process::id()));
        write_kernels(&set, &path).expect("write");
        let back = read_kernels(&path).expect("read");
        assert_eq!(back.spectrum(0), set.spectrum(0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = kernels_from_str("not-kernels\n").expect_err("bad magic");
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_truncated_file() {
        let set = small_set();
        let text = kernels_to_string(&set);
        let truncated: String = text.lines().take(10).collect::<Vec<_>>().join("\n");
        let err = kernels_from_str(&truncated).expect_err("truncated");
        assert!(matches!(err, ReadKernelsError::Parse { .. }));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_kernels("/nonexistent/lsopc/kernels.txt").expect_err("missing");
        assert!(matches!(err, ReadKernelsError::Io(_)));
        assert!(err.source().is_some());
    }
}
