//! Dense Hermitian eigensolvers, written from scratch for the SOCS
//! (sum-of-coherent-systems) decomposition of TCC matrices.
//!
//! Two algorithms are provided:
//!
//! * [`jacobi_hermitian`] — the classical cyclic Jacobi method with complex
//!   rotations. Robust and accurate; O(n³) per sweep, best for `n ≲ 500`.
//! * [`top_eigenpairs`] — orthogonal (subspace) iteration with a final
//!   Rayleigh–Ritz projection, returning only the `m` largest eigenpairs.
//!   This is the production path for big TCC matrices where only the top
//!   24 kernels are needed.

use crate::CMatrix;
use lsopc_grid::C64;

/// Result of a Hermitian eigendecomposition: `values[i]` is the eigenvalue
/// of the column eigenvector `vectors[i]`, sorted by descending eigenvalue.
#[derive(Clone, Debug)]
pub struct EigenPairs {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one `Vec<C64>` per eigenvalue.
    pub vectors: Vec<Vec<C64>>,
}

/// Full eigendecomposition of a Hermitian matrix by the cyclic Jacobi
/// method with complex plane rotations.
///
/// The matrix is consumed (it is diagonalized in place).
///
/// # Panics
///
/// Panics if the matrix is not Hermitian to within `1e-8` (relative to its
/// largest entry).
///
/// # Example
///
/// ```
/// use lsopc_optics::{eig::jacobi_hermitian, CMatrix};
/// use lsopc_grid::C64;
///
/// let mut a = CMatrix::zeros(2);
/// a[(0, 0)] = C64::from_real(2.0);
/// a[(1, 1)] = C64::from_real(2.0);
/// a[(0, 1)] = C64::new(0.0, 1.0);
/// a[(1, 0)] = C64::new(0.0, -1.0);
/// let eig = jacobi_hermitian(a);
/// assert!((eig.values[0] - 3.0).abs() < 1e-10);
/// assert!((eig.values[1] - 1.0).abs() < 1e-10);
/// ```
pub fn jacobi_hermitian(mut a: CMatrix) -> EigenPairs {
    let n = a.dim();
    let scale = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .map(|(i, j)| a[(i, j)].norm())
        .fold(0.0f64, f64::max)
        .max(1e-300);
    assert!(
        a.hermitian_error() / scale < 1e-8,
        "matrix is not Hermitian (relative error {})",
        a.hermitian_error() / scale
    );

    // Eigenvector accumulator V (A = V Λ V†).
    let mut v = CMatrix::zeros(n);
    for i in 0..n {
        v[(i, i)] = C64::ONE;
    }

    let tol = 1e-14 * scale;
    const MAX_SWEEPS: usize = 60;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in p + 1..n {
                off = off.max(a[(p, q)].norm());
            }
        }
        if off < tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                rotate(&mut a, &mut v, p, q, tol);
            }
        }
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[(i, i)].re, i)).collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("finite eigenvalues"));
    let values = pairs.iter().map(|&(val, _)| val).collect();
    let vectors = pairs
        .iter()
        .map(|&(_, col)| (0..n).map(|row| v[(row, col)]).collect())
        .collect();
    EigenPairs { values, vectors }
}

/// One complex Jacobi rotation annihilating `a[(p, q)]`.
fn rotate(a: &mut CMatrix, v: &mut CMatrix, p: usize, q: usize, tol: f64) {
    let apq = a[(p, q)];
    let m = apq.norm();
    if m < tol {
        return;
    }
    let app = a[(p, p)].re;
    let aqq = a[(q, q)].re;
    let u = apq.scale(1.0 / m); // unit phase of a_pq
    let theta = 0.5 * (2.0 * m).atan2(aqq - app);
    let (c, s) = (theta.cos(), theta.sin());
    let n = a.dim();
    // Column update: A ← A·R.
    for k in 0..n {
        let akp = a[(k, p)];
        let akq = a[(k, q)];
        a[(k, p)] = akp.scale(c) - u.conj() * akq.scale(s);
        a[(k, q)] = u * akp.scale(s) + akq.scale(c);
    }
    // Row update: A ← R†·A.
    for k in 0..n {
        let apk = a[(p, k)];
        let aqk = a[(q, k)];
        a[(p, k)] = apk.scale(c) - u * aqk.scale(s);
        a[(q, k)] = u.conj() * apk.scale(s) + aqk.scale(c);
    }
    // Accumulate eigenvectors: V ← V·R.
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = vkp.scale(c) - u.conj() * vkq.scale(s);
        v[(k, q)] = u * vkp.scale(s) + vkq.scale(c);
    }
    // Clean rounding residue on the annihilated pair.
    a[(p, q)] = C64::ZERO;
    a[(q, p)] = C64::ZERO;
}

/// The `m` largest eigenpairs of a Hermitian positive-semidefinite matrix
/// by orthogonal (subspace) iteration with a Rayleigh–Ritz finish.
///
/// `iterations` controls subspace refinement (30–60 suffices for TCC
/// spectra, which decay fast). The starting subspace is deterministic.
///
/// # Panics
///
/// Panics if `m == 0` or `m > a.dim()`.
///
/// # Example
///
/// ```
/// use lsopc_optics::{eig::top_eigenpairs, CMatrix};
/// use lsopc_grid::C64;
///
/// let mut a = CMatrix::zeros(3);
/// for (i, lam) in [5.0, 2.0, 1.0].iter().enumerate() {
///     a[(i, i)] = C64::from_real(*lam);
/// }
/// let eig = top_eigenpairs(&a, 2, 50);
/// assert!((eig.values[0] - 5.0).abs() < 1e-8);
/// assert!((eig.values[1] - 2.0).abs() < 1e-8);
/// ```
pub fn top_eigenpairs(a: &CMatrix, m: usize, iterations: usize) -> EigenPairs {
    let n = a.dim();
    assert!(
        m > 0 && m <= n,
        "requested {m} eigenpairs of a {n}x{n} matrix"
    );
    // Work with a slightly larger subspace for convergence headroom.
    let mm = (m + 8).min(n);

    // Deterministic pseudo-random start (xorshift), orthonormalized.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut rand_unit = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut q: Vec<Vec<C64>> = (0..mm)
        .map(|_| (0..n).map(|_| C64::new(rand_unit(), rand_unit())).collect())
        .collect();
    orthonormalize(&mut q);

    for _ in 0..iterations {
        let mut z: Vec<Vec<C64>> = q.iter().map(|col| a.mul_vec(col)).collect();
        orthonormalize(&mut z);
        q = z;
    }

    // Rayleigh–Ritz: diagonalize B = Q† A Q (mm x mm) with Jacobi.
    let aq: Vec<Vec<C64>> = q.iter().map(|col| a.mul_vec(col)).collect();
    let mut b = CMatrix::zeros(mm);
    for i in 0..mm {
        for j in 0..mm {
            b[(i, j)] = dot_conj(&q[i], &aq[j]);
        }
    }
    // Symmetrize rounding noise before the Hermitian assert.
    for i in 0..mm {
        for j in i + 1..mm {
            let avg = (b[(i, j)] + b[(j, i)].conj()).scale(0.5);
            b[(i, j)] = avg;
            b[(j, i)] = avg.conj();
        }
        b[(i, i)] = C64::from_real(b[(i, i)].re);
    }
    let small = jacobi_hermitian(b);

    // Rotate the subspace into Ritz vectors and keep the top m.
    let mut values = Vec::with_capacity(m);
    let mut vectors = Vec::with_capacity(m);
    for r in 0..m {
        values.push(small.values[r]);
        let coeffs = &small.vectors[r];
        let mut vec = vec![C64::ZERO; n];
        for (c_idx, &c) in coeffs.iter().enumerate() {
            for (row, out) in vec.iter_mut().enumerate() {
                *out += q[c_idx][row] * c;
            }
        }
        vectors.push(vec);
    }
    EigenPairs { values, vectors }
}

/// `Σ conj(a_i)·b_i`.
fn dot_conj(a: &[C64], b: &[C64]) -> C64 {
    a.iter().zip(b).map(|(&x, &y)| x.conj() * y).sum()
}

/// Modified Gram–Schmidt orthonormalization of column vectors, with
/// reorthogonalization ("twice is enough") and refill of numerically
/// collapsed columns so the output is orthonormal even when the input is
/// rank-deficient.
fn orthonormalize(cols: &mut [Vec<C64>]) {
    let m = cols.len();
    let n = cols.first().map_or(0, Vec::len);
    let mut refill_state = 0xD1B5_4A32_D192_ED03u64;
    for i in 0..m {
        let mut attempts = 0;
        loop {
            // Two projection passes handle the loss of orthogonality that a
            // single MGS pass suffers when the residual is tiny.
            for _pass in 0..2 {
                for j in 0..i {
                    let proj = {
                        let (a, b) = (&cols[j], &cols[i]);
                        dot_conj(a, b)
                    };
                    let prev = cols[j].clone();
                    for (x, p) in cols[i].iter_mut().zip(prev.iter()) {
                        *x -= *p * proj;
                    }
                }
            }
            let norm = cols[i].iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
            if norm > 1e-10 || attempts >= 4 {
                if norm > 1e-300 {
                    let inv = 1.0 / norm;
                    for x in cols[i].iter_mut() {
                        *x = x.scale(inv);
                    }
                }
                break;
            }
            // The column collapsed (it was linearly dependent on earlier
            // ones); restart it from deterministic pseudo-random data.
            attempts += 1;
            for x in cols[i].iter_mut().take(n) {
                refill_state ^= refill_state << 13;
                refill_state ^= refill_state >> 7;
                refill_state ^= refill_state << 17;
                let re = (refill_state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                refill_state ^= refill_state << 13;
                refill_state ^= refill_state >> 7;
                refill_state ^= refill_state << 17;
                let im = (refill_state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                *x = C64::new(re, im);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a Hermitian matrix V Λ V† with a deterministic random unitary.
    fn random_hermitian(n: usize, eigenvalues: &[f64]) -> CMatrix {
        assert_eq!(eigenvalues.len(), n);
        // Deterministic random matrix → orthonormal columns via MGS.
        let mut state = 42u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut cols: Vec<Vec<C64>> = (0..n)
            .map(|_| (0..n).map(|_| C64::new(rnd(), rnd())).collect())
            .collect();
        orthonormalize(&mut cols);
        let mut a = CMatrix::zeros(n);
        for (k, &lam) in eigenvalues.iter().enumerate() {
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] += cols[k][i] * cols[k][j].conj() * lam;
                }
            }
        }
        a
    }

    fn check_residual(a: &CMatrix, eig: &EigenPairs, tol: f64) {
        for (lam, vec) in eig.values.iter().zip(&eig.vectors) {
            let av = a.mul_vec(vec);
            let err: f64 = av
                .iter()
                .zip(vec)
                .map(|(x, y)| (*x - y.scale(*lam)).norm())
                .fold(0.0, f64::max);
            assert!(err < tol, "residual {err} for eigenvalue {lam}");
        }
    }

    #[test]
    fn jacobi_diagonal_matrix_is_trivial() {
        let mut a = CMatrix::zeros(3);
        a[(0, 0)] = C64::from_real(1.0);
        a[(1, 1)] = C64::from_real(3.0);
        a[(2, 2)] = C64::from_real(2.0);
        let eig = jacobi_hermitian(a);
        assert_eq!(eig.values.len(), 3);
        assert!((eig.values[0] - 3.0).abs() < 1e-12);
        assert!((eig.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_recovers_spectrum_of_random_hermitian() {
        let spectrum = [7.0, 4.5, 2.0, 1.0, 0.25, 0.0];
        let a = random_hermitian(6, &spectrum);
        let eig = jacobi_hermitian(a.clone());
        for (got, want) in eig.values.iter().zip(&spectrum) {
            assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        }
        check_residual(&a, &eig, 1e-8);
    }

    #[test]
    fn jacobi_eigenvectors_are_orthonormal() {
        let a = random_hermitian(5, &[5.0, 3.0, 2.0, 1.0, 0.5]);
        let eig = jacobi_hermitian(a);
        for i in 0..5 {
            for j in 0..5 {
                let d = dot_conj(&eig.vectors[i], &eig.vectors[j]);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((d.norm() - expected).abs() < 1e-9, "({i},{j}) -> {d}");
            }
        }
    }

    #[test]
    fn jacobi_trace_is_preserved() {
        let spectrum = [3.0, 2.0, 1.0, 0.5];
        let a = random_hermitian(4, &spectrum);
        let trace: f64 = (0..4).map(|i| a[(i, i)].re).sum();
        let eig = jacobi_hermitian(a);
        let sum: f64 = eig.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not Hermitian")]
    fn jacobi_rejects_non_hermitian() {
        let mut a = CMatrix::zeros(2);
        a[(0, 1)] = C64::ONE;
        let _ = jacobi_hermitian(a);
    }

    #[test]
    fn subspace_iteration_matches_jacobi() {
        let spectrum = [9.0, 6.0, 3.0, 1.5, 0.7, 0.3, 0.1, 0.0];
        let a = random_hermitian(8, &spectrum);
        let top = top_eigenpairs(&a, 3, 80);
        for (got, want) in top.values.iter().zip(&spectrum[..3]) {
            assert!((got - want).abs() < 1e-7, "got {got}, want {want}");
        }
        check_residual(&a, &top, 1e-6);
    }

    #[test]
    fn subspace_iteration_handles_degenerate_eigenvalues() {
        let spectrum = [5.0, 5.0, 2.0, 1.0, 0.5, 0.1];
        let a = random_hermitian(6, &spectrum);
        let top = top_eigenpairs(&a, 2, 100);
        assert!((top.values[0] - 5.0).abs() < 1e-7);
        assert!((top.values[1] - 5.0).abs() < 1e-7);
        check_residual(&a, &top, 1e-6);
    }

    #[test]
    #[should_panic(expected = "eigenpairs")]
    fn subspace_rejects_oversized_request() {
        let a = CMatrix::zeros(3);
        let _ = top_eigenpairs(&a, 4, 10);
    }
}
