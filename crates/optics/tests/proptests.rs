//! Property-based invariants of the optics crate.

use lsopc_grid::{Grid, C64};
use lsopc_optics::{kernels_from_str, kernels_to_string, KernelSet, SourceModel};
use proptest::prelude::*;

fn arbitrary_kernel_set() -> impl Strategy<Value = KernelSet> {
    let support = 5usize;
    (
        prop::collection::vec(
            prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0), support * support),
            1..4,
        ),
        prop::collection::vec(0.01f64..5.0, 1..4),
    )
        .prop_filter_map(
            "weights/spectra length mismatch",
            move |(specs, weights)| {
                let count = specs.len().min(weights.len());
                if count == 0 {
                    return None;
                }
                let spectra: Vec<Grid<C64>> = specs[..count]
                    .iter()
                    .map(|vals| {
                        Grid::from_vec(
                            support,
                            support,
                            vals.iter().map(|&(re, im)| C64::new(re, im)).collect(),
                        )
                    })
                    .collect();
                Some(KernelSet::new(
                    spectra,
                    weights[..count].to_vec(),
                    256.0,
                    7.5,
                ))
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Kernel files round-trip bit-exactly.
    #[test]
    fn kernel_io_roundtrip(set in arbitrary_kernel_set()) {
        let text = kernels_to_string(&set);
        let parsed = kernels_from_str(&text).expect("own output parses");
        prop_assert_eq!(parsed.len(), set.len());
        for k in 0..set.len() {
            prop_assert_eq!(parsed.weight(k), set.weight(k));
            prop_assert_eq!(parsed.spectrum(k), set.spectrum(k));
        }
        prop_assert_eq!(parsed.period_nm(), set.period_nm());
        prop_assert_eq!(parsed.defocus_nm(), set.defocus_nm());
    }

    /// Source sampling always returns the requested count with unit total
    /// weight, inside the stated radial extent.
    #[test]
    fn source_sampling_invariants(
        count in 1usize..64,
        sigma_in in 0.1f64..0.7,
        extra in 0.05f64..0.5,
    ) {
        let source = SourceModel::Annular {
            sigma_in,
            sigma_out: sigma_in + extra,
        };
        let pts = source.sample(count);
        prop_assert_eq!(pts.len(), count);
        let total: f64 = pts.iter().map(|p| p.weight).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for p in &pts {
            let r = (p.sx * p.sx + p.sy * p.sy).sqrt();
            prop_assert!(r <= source.sigma_max() + 1e-9);
        }
    }

    /// Kernel truncation preserves unit clear-field intensity and never
    /// increases the kernel count.
    #[test]
    fn truncation_preserves_normalization(set in arbitrary_kernel_set(), rank in 1usize..4) {
        // Ensure a usable clear-field intensity first.
        prop_assume!(set.clear_field_intensity() > 1e-6);
        let normalized = set.normalized();
        let truncated = normalized.truncated(rank);
        prop_assert!(truncated.len() <= rank.max(1));
        prop_assert!((truncated.clear_field_intensity() - 1.0).abs() < 1e-9);
    }
}
