//! `lsopc` — command-line level-set OPC.
//!
//! ```text
//! lsopc optimize --glp design.glp --out mask.glp [--grid 512] [--iters 30]
//! lsopc evaluate --glp design.glp --mask mask.glp [--grid 512]
//! lsopc suite [--cases 1,2] [--grid 256] [--iters 20]
//! lsopc help
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "optimize" => commands::optimize(rest),
        "evaluate" => commands::evaluate(rest),
        "report" => commands::report(rest),
        "suite" => commands::suite(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", commands::USAGE).into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
