//! `lsopc` — command-line level-set OPC.
//!
//! ```text
//! lsopc optimize --glp design.glp --out mask.glp [--grid 512] [--iters 30]
//! lsopc evaluate --glp design.glp --mask mask.glp [--grid 512]
//! lsopc suite [--cases 1,2] [--grid 256] [--iters 20]
//! lsopc profile [--pattern wire] [--iters 10] [--json]
//! lsopc analyze trace.jsonl
//! lsopc help
//! ```
//!
//! Every failure prints a one-line `error: …` message and exits with the
//! category code documented in [`commands::USAGE`] (2 usage, 3 I/O,
//! 4 parse, 5 setup, 6 optimizer, 7 strict recovery failure,
//! 9 checkpoint/resume). A graceful SIGINT stop is *not* an error: the
//! command writes its best-so-far outputs, prints a `stopped: signal`
//! line, and exits with code 8.

use std::process::ExitCode;

mod args;
mod commands;
mod error;
mod signal;
mod spec;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(error::CliError::usage("no command").exit_code());
    };
    let result = match command.as_str() {
        "optimize" => commands::optimize(rest),
        "evaluate" => commands::evaluate(rest),
        "report" => commands::report(rest),
        "suite" => commands::suite(rest),
        "profile" => commands::profile(rest),
        "analyze" => commands::analyze(rest),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(commands::Outcome::Completed)
        }
        other => Err(error::CliError::usage(format!(
            "unknown command `{other}` (try `lsopc help`)"
        ))),
    };
    match result {
        Ok(commands::Outcome::Completed) => ExitCode::SUCCESS,
        // A graceful stop (SIGINT) already printed its `stopped:` line
        // and wrote best-so-far outputs — report it via the exit code
        // without an `error:` prefix.
        Ok(commands::Outcome::Interrupted) => ExitCode::from(8),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
