//! Categorized CLI errors with one stable nonzero exit code per
//! category, so scripts can branch on *why* `lsopc` failed.

use lsopc_core::{OptimizeError, TiledError};
use lsopc_engine::EngineError;
use std::fmt;

/// Failure category; the discriminant is the process exit code.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Category {
    /// Bad flags, unknown command, or invalid flag values.
    Usage = 2,
    /// Reading or writing a file failed.
    Io = 3,
    /// A layout file did not parse.
    Parse = 4,
    /// The simulator could not be constructed.
    Setup = 5,
    /// The optimizer rejected its inputs or failed to run.
    Optimize = 6,
    /// The solver health guard gave up under `--recover strict`.
    Recovery = 7,
    // 8 is reserved for a graceful SIGINT stop (`Outcome::Interrupted`
    // in commands.rs) — an exit status, not an error category.
    /// A checkpoint could not be written or a `--resume` file was
    /// missing, corrupt or from a different configuration.
    Checkpoint = 9,
}

/// An error bound for the user: one category, one line of text.
#[derive(Debug)]
pub struct CliError {
    category: Category,
    message: String,
}

impl CliError {
    fn new(category: Category, message: impl Into<String>) -> Self {
        Self {
            category,
            message: message.into(),
        }
    }

    /// Flag/command misuse (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        Self::new(Category::Usage, message)
    }

    /// File I/O failure (exit code 3).
    pub fn io(message: impl Into<String>) -> Self {
        Self::new(Category::Io, message)
    }

    /// Layout parse failure (exit code 4).
    pub fn parse(message: impl Into<String>) -> Self {
        Self::new(Category::Parse, message)
    }

    /// Simulator construction failure (exit code 5).
    pub fn setup(message: impl Into<String>) -> Self {
        Self::new(Category::Setup, message)
    }

    /// Maps optimizer failures, splitting strict-guard give-ups (exit
    /// code 7) and checkpoint/resume failures (exit code 9) from input
    /// rejections (exit code 6).
    pub fn from_optimize(e: OptimizeError) -> Self {
        let category = match e {
            OptimizeError::RecoveryFailed { .. } => Category::Recovery,
            OptimizeError::Checkpoint { .. } => Category::Checkpoint,
            _ => Category::Optimize,
        };
        Self::new(category, e.to_string())
    }

    /// Maps tiled-optimization failures onto the existing categories:
    /// bad tile geometry is flag misuse, a failed tile simulator is a
    /// setup failure, and tile solves follow [`CliError::from_optimize`].
    pub fn from_tiled(e: TiledError) -> Self {
        match e {
            TiledError::BadConfiguration(msg) => Self::usage(msg),
            TiledError::Simulator(e) => Self::setup(e.to_string()),
            TiledError::Optimize(e) => Self::from_optimize(e),
            TiledError::Checkpoint(msg) => Self::new(Category::Checkpoint, msg),
        }
    }

    /// Maps engine failures onto the CLI categories: a rejected spec is
    /// flag misuse, warm-start cache trouble is I/O, and the setup /
    /// optimize / tiled arms keep their existing mappings.
    pub fn from_engine(e: EngineError) -> Self {
        match e {
            EngineError::Spec(msg) => Self::usage(msg),
            EngineError::Io(msg) => Self::io(msg),
            EngineError::Setup(e) => Self::setup(e.to_string()),
            EngineError::Optimize(e) => Self::from_optimize(e),
            EngineError::Tiled(e) => Self::from_tiled(e),
        }
    }

    /// The failure category (used by tests to assert code mapping).
    #[cfg(test)]
    pub fn category(&self) -> Category {
        self.category
    }

    /// The process exit code for this error.
    pub fn exit_code(&self) -> u8 {
        self.category as u8
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Single line: main prints this after an "error: " prefix.
        write!(f, "{}", self.message.replace('\n', " "))
    }
}

impl std::error::Error for CliError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let codes = [
            CliError::usage("u").exit_code(),
            CliError::io("i").exit_code(),
            CliError::parse("p").exit_code(),
            CliError::setup("s").exit_code(),
            CliError::from_optimize(OptimizeError::EmptyTarget).exit_code(),
            CliError::from_optimize(OptimizeError::RecoveryFailed {
                iteration: 3,
                backoffs: 6,
            })
            .exit_code(),
            CliError::from_optimize(OptimizeError::Checkpoint {
                message: "checksum mismatch".into(),
            })
            .exit_code(),
        ];
        for (i, a) in codes.iter().enumerate() {
            assert!(*a >= 2);
            for b in &codes[i + 1..] {
                assert_ne!(a, b, "exit codes must be distinct");
            }
        }
    }

    #[test]
    fn strict_giveup_maps_to_recovery_code() {
        let e = CliError::from_optimize(OptimizeError::RecoveryFailed {
            iteration: 9,
            backoffs: 6,
        });
        assert_eq!(e.category(), Category::Recovery);
        assert_eq!(e.exit_code(), 7);
        assert!(e.to_string().contains("gave up"));
    }

    #[test]
    fn tiled_errors_map_onto_existing_categories() {
        let e = CliError::from_tiled(TiledError::BadConfiguration("halo too big".into()));
        assert_eq!(e.category(), Category::Usage);
        let e = CliError::from_tiled(TiledError::Optimize(OptimizeError::EmptyTarget));
        assert_eq!(e.category(), Category::Optimize);
    }

    #[test]
    fn checkpoint_failures_map_to_their_own_code() {
        let e = CliError::from_optimize(OptimizeError::Checkpoint {
            message: "not a checkpoint file (bad magic)".into(),
        });
        assert_eq!(e.category(), Category::Checkpoint);
        assert_eq!(e.exit_code(), 9);
        let e = CliError::from_tiled(TiledError::Checkpoint("bad directory".into()));
        assert_eq!(e.exit_code(), 9);
    }

    #[test]
    fn messages_render_on_one_line() {
        let e = CliError::usage("bad\nflag");
        assert!(!e.to_string().contains('\n'));
    }
}
