//! Minimal flag parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed `--key value` flags.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses `--key value` pairs; unknown keys are kept, bare flags get
    /// an empty value.
    ///
    /// # Errors
    ///
    /// Returns an error for non-flag positional arguments.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{arg}`"));
            };
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = (*v).clone();
                    it.next();
                    v
                }
                _ => String::new(),
            };
            values.insert(key.to_string(), value);
        }
        Ok(Self { values })
    }

    /// Raw string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Required string flag.
    ///
    /// # Errors
    ///
    /// Returns an error naming the missing flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .filter(|v| !v.is_empty())
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns an error when the value does not parse.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None | Some("") => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for --{key}")),
        }
    }

    /// Comma-separated 1-based index list (e.g. `--cases 1,3`).
    ///
    /// # Errors
    ///
    /// Returns an error when an entry does not parse.
    pub fn index_list(&self, key: &str) -> Result<Vec<usize>, String> {
        match self.get(key) {
            None | Some("") => Ok(Vec::new()),
            Some(list) => list
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse::<usize>()
                        .map(|i| i.saturating_sub(1))
                        .map_err(|_| format!("invalid index `{t}` in --{key}"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_key_value_pairs() {
        let flags = Flags::parse(&argv(&["--glp", "a.glp", "--grid", "256"])).expect("parses");
        assert_eq!(flags.get("glp"), Some("a.glp"));
        assert_eq!(flags.num("grid", 512usize).expect("num"), 256);
        assert_eq!(flags.num("iters", 30usize).expect("default"), 30);
    }

    #[test]
    fn rejects_positional() {
        assert!(Flags::parse(&argv(&["oops"])).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let flags = Flags::parse(&argv(&[])).expect("parses");
        assert!(flags.require("glp").expect_err("missing").contains("--glp"));
    }

    #[test]
    fn index_list_is_one_based() {
        let flags = Flags::parse(&argv(&["--cases", "1,4,10"])).expect("parses");
        assert_eq!(flags.index_list("cases").expect("list"), vec![0, 3, 9]);
    }

    #[test]
    fn bare_flag_has_empty_value() {
        let flags = Flags::parse(&argv(&["--verbose", "--grid", "128"])).expect("parses");
        assert_eq!(flags.get("verbose"), Some(""));
        assert_eq!(flags.num("grid", 0usize).expect("num"), 128);
    }
}
