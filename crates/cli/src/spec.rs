//! Shared flag resolution: one spec builder for every optimizing
//! subcommand.
//!
//! `optimize`, `suite` and `profile` used to carry copy-pasted blocks
//! turning flags into optimizer configuration. They now share
//! [`resolve_spec`], which validates the whole flag family in one place
//! and produces the plain-data pieces a [`lsopc_engine::JobSpec`] is
//! assembled from. Conflicting or malformed flags are usage errors
//! (exit code 2) exactly as before.

use crate::args::Flags;
use crate::error::CliError;
use lsopc_core::{CheckpointSpec, RecoveryPolicy, ResolutionSchedule, RunControl};
use lsopc_engine::{Engine, JobSpec, Precision, Schedule, Tiling, WarmStart};
use lsopc_grid::Grid;
use std::time::{Duration, Instant};

/// Per-command defaults and capabilities for [`resolve_spec`].
pub struct SpecDefaults {
    /// Default `--grid` when the flag is absent.
    pub grid: usize,
    /// Default `--iters` when the flag is absent.
    pub iters: usize,
    /// Whether the command accepts the tiling/warm-start flag family
    /// (`optimize` does; `suite` and `profile` ignore those flags, as
    /// they always have).
    pub tiling: bool,
}

/// Everything the flags determine about a job except the target raster
/// and the run control (which need the layout and the signal token).
pub struct ResolvedSpec {
    /// Grid pixels per side.
    pub grid: usize,
    /// SOCS kernel count.
    pub kernels: usize,
    /// Maximum optimizer iterations.
    pub iters: usize,
    /// Process-variation band weight.
    pub pvb_weight: f64,
    /// Solver health guard policy.
    pub recovery: RecoveryPolicy,
    /// Loop arithmetic.
    pub precision: Precision,
    /// Real-input FFT routing override.
    pub rfft: Option<bool>,
    /// Coarse-to-fine schedule selection.
    pub schedule: Schedule,
    /// Tile geometry, when tiling.
    pub tiling: Option<Tiling>,
    /// Warm-start cache selection, when tiling.
    pub warm_start: Option<WarmStart>,
    /// Warm-tile refinement iterations (0 = optimizer default).
    pub warm_iters: usize,
}

impl ResolvedSpec {
    /// Assembles the engine job for one target.
    pub fn job(&self, target: Grid<f64>, control: RunControl) -> JobSpec {
        let mut job = JobSpec::new(target);
        job.kernels = self.kernels;
        job.iterations = self.iters;
        job.pvb_weight = self.pvb_weight;
        job.recovery = self.recovery;
        job.precision = self.precision;
        job.rfft = self.rfft;
        job.schedule = self.schedule;
        job.tiling = self.tiling;
        job.warm_start = self.warm_start.clone();
        job.warm_iterations = self.warm_iters;
        job.control = control;
        job
    }
}

/// Validates the full flag family shared by the optimizing commands.
pub fn resolve_spec(flags: &Flags, defaults: SpecDefaults) -> Result<ResolvedSpec, CliError> {
    let iters: usize = flags.num("iters", defaults.iters)?;
    let pvb_weight: f64 = flags.num("pvb-weight", 1.0)?;
    let recovery = recovery_policy(flags)?;
    let precision = precision(flags)?;
    let (tiling, warm_start, warm_iters) = if defaults.tiling {
        let tiling = tiling_flags(flags)?;
        let warm_start = warm_start_flag(flags, tiling.is_some())?;
        let warm_iters: usize = flags.num("warm-iters", 0)?;
        if tiling.is_some() && precision != Precision::F64 {
            return Err(CliError::usage(
                "--tile runs at f64; drop --precision or the tiling flags",
            ));
        }
        (tiling, warm_start, warm_iters)
    } else {
        (None, None, 0)
    };
    let grid: usize = flags.num("grid", defaults.grid)?;
    let kernels: usize = flags.num("kernels", 24)?;
    let schedule = schedule_flag(flags)?;
    let rfft = rfft_flag(flags)?;
    Ok(ResolvedSpec {
        grid,
        kernels,
        iters,
        pvb_weight,
        recovery,
        precision,
        rfft,
        schedule,
        tiling,
        warm_start,
        warm_iters,
    })
}

/// Builds the engine, sizing the shared worker pool from `--threads`
/// (0, the default, keeps the `LSOPC_THREADS` / available-core sizing;
/// the pool is built once per process, so only the first user can
/// still size it).
pub fn engine_for(flags: &Flags) -> Result<Engine, CliError> {
    let threads: usize = flags.num("threads", 0)?;
    Ok(Engine::builder().threads(threads).build())
}

fn recovery_policy(flags: &Flags) -> Result<RecoveryPolicy, CliError> {
    let value = flags
        .get("recover")
        .filter(|v| !v.is_empty())
        .unwrap_or("on");
    RecoveryPolicy::parse(value).map_err(|e| CliError::usage(format!("--recover: {e}")))
}

fn precision(flags: &Flags) -> Result<Precision, CliError> {
    match flags.get("precision").filter(|v| !v.is_empty()) {
        None | Some("f64") => Ok(Precision::F64),
        Some("f32") => Ok(Precision::F32),
        Some("mixed") => Ok(Precision::Mixed),
        Some(other) => Err(CliError::usage(format!(
            "invalid value `{other}` for --precision: expected f64, f32 or mixed"
        ))),
    }
}

/// Parses `--rfft on|off` into a per-job routing override. Absent flag
/// → `None` (the process default: off, or `LSOPC_RFFT` when set).
pub fn rfft_flag(flags: &Flags) -> Result<Option<bool>, CliError> {
    match flags.get("rfft") {
        None => Ok(None),
        Some("" | "on" | "1" | "true") => Ok(Some(true)),
        Some("off" | "0" | "false") => Ok(Some(false)),
        Some(other) => Err(CliError::usage(format!(
            "invalid value `{other}` for --rfft: expected on or off"
        ))),
    }
}

/// Parses `--schedule auto|off|CPX,K,CI,FI`. The `auto` stages resolve
/// inside the engine against the grid each solve actually runs on (the
/// tile window in tiled mode, the full grid otherwise).
fn schedule_flag(flags: &Flags) -> Result<Schedule, CliError> {
    let spec = match flags.get("schedule") {
        None | Some("off") => return Ok(Schedule::Off),
        Some("" | "auto") => return Ok(Schedule::Auto),
        Some(spec) => spec,
    };
    let parts: Result<Vec<usize>, _> = spec.split(',').map(|t| t.trim().parse()).collect();
    let parts = parts.map_err(|_| {
        CliError::usage(format!(
            "invalid value `{spec}` for --schedule: expected auto, off or \
             COARSE_PX,KERNELS,COARSE_ITERS,FINE_ITERS"
        ))
    })?;
    let [coarse_px, kernels, coarse_iters, fine_iters] = parts[..] else {
        return Err(CliError::usage(format!(
            "--schedule {spec}: expected four comma-separated values \
             COARSE_PX,KERNELS,COARSE_ITERS,FINE_ITERS"
        )));
    };
    if coarse_px == 0 || !coarse_px.is_power_of_two() {
        return Err(CliError::usage(format!(
            "--schedule {spec}: coarse grid {coarse_px} must be a power of two"
        )));
    }
    if kernels == 0 || coarse_iters == 0 || fine_iters == 0 {
        return Err(CliError::usage(format!(
            "--schedule {spec}: kernel and iteration counts must be positive"
        )));
    }
    Ok(Schedule::Fixed(ResolutionSchedule::new(
        coarse_px,
        kernels,
        coarse_iters,
        fine_iters,
    )))
}

/// Parses `--tile N [--halo M]` and validates the geometry up front
/// (still flag validation — rejected before any filesystem access).
/// The halo defaults to half the core, which keeps the tile window a
/// power of two whenever the core is.
fn tiling_flags(flags: &Flags) -> Result<Option<Tiling>, CliError> {
    let core: usize = flags.num("tile", 0)?;
    if core == 0 {
        if flags.get("tile").is_some() {
            return Err(CliError::usage("--tile needs a positive pixel count"));
        }
        if flags.get("halo").is_some() {
            return Err(CliError::usage("--halo requires --tile"));
        }
        return Ok(None);
    }
    let halo: usize = flags.num("halo", core / 2)?;
    Tiling::new(core, halo)
        .map(Some)
        .map_err(CliError::from_tiled)
}

/// Parses `--warm-start mem|<dir>` (tiled runs only — the cache keys
/// whole tile windows). A directory cache is opened by the engine when
/// the job is submitted.
fn warm_start_flag(flags: &Flags, tiled: bool) -> Result<Option<WarmStart>, CliError> {
    match flags.get("warm-start") {
        None => Ok(None),
        Some(_) if !tiled => Err(CliError::usage(
            "--warm-start requires --tile (the cache keys tile windows)",
        )),
        Some("") => Err(CliError::usage(
            "--warm-start needs `mem` or a cache directory path",
        )),
        Some("mem") => Ok(Some(WarmStart::Memory)),
        Some(path) => Ok(Some(WarmStart::Directory(path.into()))),
    }
}

/// Parses a `--key SECS` wall-clock flag: absent → `None`, otherwise a
/// finite non-negative number of seconds (0 means "already expired" —
/// useful for exercising the graceful-stop path).
pub fn secs_flag(flags: &Flags, key: &str) -> Result<Option<f64>, CliError> {
    match flags.get(key) {
        None => Ok(None),
        Some("") => Err(CliError::usage(format!(
            "--{key} needs a duration in seconds"
        ))),
        Some(v) => match v.parse::<f64>() {
            Ok(s) if s.is_finite() && s >= 0.0 => Ok(Some(s)),
            _ => Err(CliError::usage(format!(
                "invalid value `{v}` for --{key}: expected a non-negative number of seconds"
            ))),
        },
    }
}

/// The earlier of `--deadline` and `--max-wall`, both measured from
/// `start` (for `optimize` the two are equivalent; `suite` additionally
/// skips whole cases once `--max-wall` expires).
pub fn effective_deadline(
    start: Instant,
    deadline_s: Option<f64>,
    max_wall_s: Option<f64>,
) -> Option<Instant> {
    let mut deadline: Option<Instant> = None;
    for s in [deadline_s, max_wall_s].into_iter().flatten() {
        let d = start + Duration::from_secs_f64(s);
        deadline = Some(deadline.map_or(d, |cur| cur.min(d)));
    }
    deadline
}

/// Builds the [`RunControl`] for `optimize` from the lifecycle flags,
/// wiring in the process SIGINT token. Returns usage errors for
/// malformed flag values; the checkpoint/resume paths themselves are
/// validated by the optimizer when the run starts.
pub fn run_control_flags(flags: &Flags) -> Result<RunControl, CliError> {
    let deadline_s = secs_flag(flags, "deadline")?;
    let max_wall_s = secs_flag(flags, "max-wall")?;
    let iter_budget: usize = flags.num("iter-budget", 0)?;
    if flags.get("iter-budget").is_some() && iter_budget == 0 {
        return Err(CliError::usage(
            "--iter-budget needs a positive iteration count",
        ));
    }
    let checkpoint = flags.get("checkpoint").filter(|v| !v.is_empty());
    let every: usize = flags.num("checkpoint-every", 10)?;
    if flags.get("checkpoint-every").is_some() {
        if checkpoint.is_none() {
            return Err(CliError::usage("--checkpoint-every requires --checkpoint"));
        }
        if every == 0 {
            return Err(CliError::usage(
                "--checkpoint-every needs a positive iteration interval",
            ));
        }
    }
    let resume = flags.get("resume").filter(|v| !v.is_empty());
    if flags.get("resume").is_some() && resume.is_none() {
        return Err(CliError::usage("--resume needs a checkpoint path"));
    }
    if flags.get("checkpoint").is_some() && checkpoint.is_none() {
        return Err(CliError::usage("--checkpoint needs an output path"));
    }

    let mut control = RunControl::new().with_cancel(crate::signal::interrupt_token());
    if let Some(deadline) = effective_deadline(Instant::now(), deadline_s, max_wall_s) {
        control = control.with_deadline(deadline);
    }
    if iter_budget > 0 {
        control = control.with_iteration_budget(iter_budget);
    }
    if let Some(path) = checkpoint {
        control = control.with_checkpoint(CheckpointSpec::new(path, every));
    }
    if let Some(path) = resume {
        control = control.with_resume(path);
    }
    Ok(control)
}
