//! Ctrl-C → cooperative cancellation.
//!
//! The first `SIGINT` cancels a process-wide
//! [`CancelToken`] with [`StopReason::Signal`]; the optimizer notices at
//! its next iteration boundary, writes a final checkpoint when one is
//! configured, and the command returns its best-so-far mask and exits
//! with the documented `interrupted` code (8). The handler then restores
//! the default disposition, so a second Ctrl-C force-kills a process
//! that is stuck outside the iteration loop.

use lsopc_core::{CancelToken, StopReason};
use std::sync::OnceLock;

static TOKEN: OnceLock<CancelToken> = OnceLock::new();

/// Installs the `SIGINT` handler (idempotently) and returns the token
/// it cancels. On non-Unix targets this is a plain token no signal
/// reaches — commands still honor explicit deadlines and budgets.
pub fn interrupt_token() -> CancelToken {
    let token = TOKEN.get_or_init(CancelToken::new).clone();
    #[cfg(unix)]
    install();
    token
}

#[cfg(unix)]
const SIGINT: i32 = 2;
#[cfg(unix)]
const SIG_DFL: usize = 0;

#[cfg(unix)]
extern "C" {
    /// `signal(2)` from libc — the one C binding this crate needs, kept
    /// as a direct declaration instead of a dependency.
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
fn install() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        // SAFETY: the handler only performs async-signal-safe work (a
        // relaxed atomic store inside `CancelToken::cancel` and a
        // re-registration via `signal`).
        unsafe {
            signal(SIGINT, handle_sigint as extern "C" fn(i32) as usize);
        }
    });
}

#[cfg(unix)]
extern "C" fn handle_sigint(_signum: i32) {
    if let Some(token) = TOKEN.get() {
        token.cancel(StopReason::Signal);
    }
    // Restore the default disposition: the first Ctrl-C asks for a
    // graceful stop, the second must still be able to kill the process.
    // SAFETY: re-registering a signal disposition is async-signal-safe.
    unsafe {
        signal(SIGINT, SIG_DFL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interrupt_token_is_idempotent_and_initially_live() {
        // NOTE: the token is process-global and shared with every other
        // test in this binary, so this test must not cancel it.
        let a = interrupt_token();
        let b = interrupt_token();
        assert!(a.cancelled().is_none(), "token starts live");
        assert!(b.cancelled().is_none(), "repeat installs are idempotent");
    }
}
