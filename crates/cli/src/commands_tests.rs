// Subcommand tests, included into `crate::commands` as its test module
// (kept in their own file so the command code itself stays short).
#[cfg(test)]
mod cases {
    use crate::commands::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lsopc_cli_{}_{name}", std::process::id()))
    }

    fn to_args(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn optimize_then_evaluate_roundtrip() {
        let design_path = tmpfile("design.glp");
        let mask_path = tmpfile("mask.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL cli_test\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");

        optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            mask_path.to_str().expect("utf8"),
            "--grid",
            "128",
            "--kernels",
            "4",
            "--iters",
            "4",
        ]))
        .expect("optimize runs");
        assert!(mask_path.exists());

        evaluate(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--mask",
            mask_path.to_str().expect("utf8"),
            "--grid",
            "128",
            "--kernels",
            "4",
        ]))
        .expect("evaluate runs");

        std::fs::remove_file(design_path).ok();
        std::fs::remove_file(mask_path).ok();
    }

    #[test]
    fn optimize_runs_at_every_precision() {
        let design_path = tmpfile("prec_design.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL prec_test\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        for prec in ["f64", "f32", "mixed"] {
            let mask_path = tmpfile(&format!("prec_{prec}.glp"));
            optimize(&to_args(&[
                "--glp",
                design_path.to_str().expect("utf8"),
                "--out",
                mask_path.to_str().expect("utf8"),
                "--grid",
                "128",
                "--kernels",
                "4",
                "--iters",
                "3",
                "--precision",
                prec,
            ]))
            .unwrap_or_else(|e| panic!("--precision {prec} runs: {e}"));
            assert!(mask_path.exists(), "--precision {prec} wrote a mask");
            std::fs::remove_file(mask_path).ok();
        }
        std::fs::remove_file(design_path).ok();
    }

    #[test]
    fn optimize_accepts_rfft_flag() {
        let design_path = tmpfile("rfft_design.glp");
        let mask_path = tmpfile("rfft_mask.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL rfft_test\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            mask_path.to_str().expect("utf8"),
            "--grid",
            "128",
            "--kernels",
            "4",
            "--iters",
            "3",
            "--rfft",
            "on",
        ]))
        .expect("--rfft on runs");
        assert!(mask_path.exists(), "--rfft on wrote a mask");
        std::fs::remove_file(design_path).ok();
        std::fs::remove_file(mask_path).ok();
    }

    #[test]
    fn invalid_rfft_is_a_usage_error() {
        use crate::error::Category;
        let design_path = tmpfile("rfft_bad_design.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL rfft_bad\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        let err = optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            "y.glp",
            "--rfft",
            "maybe",
        ]))
        .expect_err("bad rfft value");
        assert_eq!(err.category(), Category::Usage);
        assert!(err.to_string().contains("--rfft"));
        std::fs::remove_file(design_path).ok();
    }

    #[test]
    fn invalid_precision_is_a_usage_error() {
        use crate::error::Category;
        let err = optimize(&to_args(&[
            "--glp",
            "x.glp",
            "--out",
            "y.glp",
            "--precision",
            "f16",
        ]))
        .expect_err("bad precision");
        assert_eq!(err.category(), Category::Usage);
        assert!(err.to_string().contains("--precision"));
    }

    #[test]
    fn optimize_runs_tiled_with_warm_start_and_schedule() {
        let design_path = tmpfile("tiled_design.glp");
        let mask_path = tmpfile("tiled_mask.glp");
        // Two copies of one feature so the warm-start cache gets a hit.
        std::fs::write(
            &design_path,
            "BEGIN\nCELL tiled_test\n\
             RECT 160 64 160 448 ;\n\
             RECT 1184 1088 160 448 ;\nEND\n",
        )
        .expect("write design");
        optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            mask_path.to_str().expect("utf8"),
            "--grid",
            "512",
            "--kernels",
            "4",
            "--iters",
            "3",
            "--tile",
            "128",
            "--halo",
            "64",
            "--warm-start",
            "mem",
            "--schedule",
            "off",
        ]))
        .expect("tiled optimize runs");
        assert!(mask_path.exists(), "tiled run wrote a mask");
        std::fs::remove_file(design_path).ok();
        std::fs::remove_file(mask_path).ok();
    }

    #[test]
    fn optimize_accepts_an_explicit_schedule() {
        let design_path = tmpfile("sched_design.glp");
        let mask_path = tmpfile("sched_mask.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL sched_test\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            mask_path.to_str().expect("utf8"),
            "--grid",
            "256",
            "--kernels",
            "4",
            "--iters",
            "4",
            "--schedule",
            "128,4,3,2",
        ]))
        .expect("scheduled optimize runs");
        assert!(mask_path.exists(), "scheduled run wrote a mask");
        std::fs::remove_file(design_path).ok();
        std::fs::remove_file(mask_path).ok();
    }

    #[test]
    fn schedule_and_tiling_misuse_are_usage_errors() {
        use crate::error::Category;
        let base = ["--glp", "x.glp", "--out", "y.glp"];
        for (extra, needle) in [
            (&["--schedule", "fast"][..], "--schedule"),
            (&["--schedule", "100,4,3,2"][..], "power of two"),
            (&["--schedule", "128,4,0,2"][..], "positive"),
            (&["--schedule", "128,4,3"][..], "--schedule"),
            (&["--warm-start", "mem"][..], "--tile"),
            (&["--halo", "64"][..], "--tile"),
            (&["--tile", "100", "--halo", "64"][..], "power of two"),
            (&["--tile", "128", "--halo", "256"][..], "smaller"),
            (&["--tile", "128", "--warm-start", ""][..], "--warm-start"),
            (&["--tile", "128", "--precision", "f32"][..], "f64"),
        ] {
            let mut args = base.to_vec();
            args.extend_from_slice(extra);
            let err = optimize(&to_args(&args)).expect_err("misuse rejected");
            assert_eq!(err.category(), Category::Usage, "args {args:?}");
            assert!(
                err.to_string().contains(needle),
                "args {args:?}: `{err}` lacks `{needle}`"
            );
        }
    }

    #[test]
    fn optimize_requires_flags() {
        let err = optimize(&to_args(&["--glp", "x.glp"])).expect_err("missing --out");
        assert!(err.to_string().contains("--out") || err.to_string().contains("cannot read"));
    }

    #[test]
    fn error_categories_map_to_distinct_exit_codes() {
        use crate::error::Category;

        // Missing required flag → usage (2).
        let err = optimize(&to_args(&[])).expect_err("missing flags");
        assert_eq!(err.category(), Category::Usage);
        assert_eq!(err.exit_code(), 2);

        // Bad --recover value → usage (2).
        let err = optimize(&to_args(&[
            "--glp",
            "x.glp",
            "--out",
            "y.glp",
            "--recover",
            "maybe",
        ]))
        .expect_err("bad recover");
        assert_eq!(err.category(), Category::Usage);
        assert!(err.to_string().contains("--recover"));

        // Unreadable input file → I/O (3).
        let err = optimize(&to_args(&[
            "--glp",
            "/nonexistent/lsopc.glp",
            "--out",
            "y.glp",
        ]))
        .expect_err("unreadable file");
        assert_eq!(err.category(), Category::Io);
        assert_eq!(err.exit_code(), 3);

        // Malformed layout → parse (4), with the line number surfaced.
        let bad = tmpfile("bad.glp");
        std::fs::write(&bad, "RECT 1 2 3 ;\n").expect("write bad layout");
        let err = optimize(&to_args(&[
            "--glp",
            bad.to_str().expect("utf8"),
            "--out",
            "y.glp",
        ]))
        .expect_err("parse failure");
        assert_eq!(err.category(), Category::Parse);
        assert_eq!(err.exit_code(), 4);
        assert!(err.to_string().contains("line 1"));
        std::fs::remove_file(bad).ok();

        // Unusable simulator configuration → setup (5).
        let design = tmpfile("setup.glp");
        std::fs::write(&design, "BEGIN\nRECT 0 0 64 64 ;\nEND\n").expect("write design");
        let err = optimize(&to_args(&[
            "--glp",
            design.to_str().expect("utf8"),
            "--out",
            "y.glp",
            "--grid",
            "3",
        ]))
        .expect_err("setup failure");
        assert_eq!(err.category(), Category::Setup);
        assert_eq!(err.exit_code(), 5);
        std::fs::remove_file(design).ok();
    }

    #[test]
    fn empty_target_is_an_optimizer_error() {
        use crate::error::Category;
        // A design whose only shape lies outside the field rasterizes to
        // an empty target, which the optimizer rejects (exit code 6).
        let design = tmpfile("offfield.glp");
        std::fs::write(&design, "BEGIN\nRECT 900000000 900000000 64 64 ;\nEND\n")
            .expect("write design");
        let err = optimize(&to_args(&[
            "--glp",
            design.to_str().expect("utf8"),
            "--out",
            "y.glp",
            "--grid",
            "128",
            "--kernels",
            "4",
        ]))
        .expect_err("empty target");
        assert_eq!(err.category(), Category::Optimize);
        assert_eq!(err.exit_code(), 6);
        std::fs::remove_file(design).ok();
    }

    #[test]
    fn profile_writes_trace_and_metrics() {
        let trace_path = tmpfile("profile.jsonl");
        let metrics_path = tmpfile("profile.json");
        profile(&to_args(&[
            "--pattern",
            "wire",
            "--grid",
            "128",
            "--kernels",
            "4",
            "--iters",
            "2",
            "--trace",
            trace_path.to_str().expect("utf8"),
            "--metrics",
            metrics_path.to_str().expect("utf8"),
        ]))
        .expect("profile runs");

        let jsonl = std::fs::read_to_string(&trace_path).expect("trace file");
        assert!(jsonl.lines().count() > 10, "events were streamed");
        assert!(jsonl.contains("\"kind\": \"span\""));
        assert!(jsonl.contains("\"kind\": \"iter\""));
        let json = std::fs::read_to_string(&metrics_path).expect("metrics file");
        assert!(json.contains("fft2d."), "profile saw FFT spans");
        std::fs::remove_file(trace_path).ok();
        std::fs::remove_file(metrics_path).ok();
    }

    #[test]
    fn profile_json_mode_runs_and_metrics_file_matches_schema() {
        let metrics_path = tmpfile("profile_json.json");
        profile(&to_args(&[
            "--pattern",
            "wire",
            "--grid",
            "128",
            "--kernels",
            "4",
            "--iters",
            "2",
            "--json",
            "--metrics",
            metrics_path.to_str().expect("utf8"),
        ]))
        .expect("profile --json runs");
        // --json prints the same document --metrics writes; the file is
        // the observable copy.
        let json = std::fs::read_to_string(&metrics_path).expect("metrics file");
        assert!(json.contains("\"v\":"), "document carries schema version");
        assert!(json.contains("\"spans\":"), "document carries span table");
        std::fs::remove_file(metrics_path).ok();
    }

    #[test]
    fn analyze_round_trips_a_profile_trace() {
        let trace_path = tmpfile("analyze.jsonl");
        profile(&to_args(&[
            "--pattern",
            "wire",
            "--grid",
            "128",
            "--kernels",
            "4",
            "--iters",
            "3",
            "--trace",
            trace_path.to_str().expect("utf8"),
        ]))
        .expect("profile writes trace");
        analyze(&to_args(&[trace_path.to_str().expect("utf8")]))
            .expect("analyze reads the trace back");
        std::fs::remove_file(trace_path).ok();
    }

    #[test]
    fn analyze_flag_and_file_errors_are_categorized() {
        use crate::error::Category;

        let err = analyze(&to_args(&[])).expect_err("missing path");
        assert_eq!(err.category(), Category::Usage);
        assert!(err.to_string().contains("analyze"));

        let err = analyze(&to_args(&["--help"])).expect_err("flag is not a path");
        assert_eq!(err.category(), Category::Usage);

        let err = analyze(&to_args(&["/nonexistent/lsopc.jsonl"])).expect_err("unreadable");
        assert_eq!(err.category(), Category::Io);

        let garbage = tmpfile("analyze_garbage.jsonl");
        std::fs::write(&garbage, "not a trace\nstill not a trace\n").expect("write garbage");
        let err =
            analyze(&to_args(&[garbage.to_str().expect("utf8")])).expect_err("no parseable events");
        assert_eq!(err.category(), Category::Parse);
        std::fs::remove_file(garbage).ok();
    }

    #[test]
    fn profile_rejects_unknown_pattern() {
        use crate::error::Category;
        let err = profile(&to_args(&["--pattern", "nonsense"])).expect_err("bad pattern");
        assert_eq!(err.category(), Category::Usage);
        assert!(err.to_string().contains("--pattern"));
    }

    #[test]
    fn suite_runs_one_small_case() {
        suite(&to_args(&[
            "--cases",
            "4",
            "--grid",
            "128",
            "--kernels",
            "4",
            "--iters",
            "2",
        ]))
        .expect("suite runs");
    }

    #[test]
    fn deadline_zero_stops_gracefully_with_best_so_far_mask() {
        let design_path = tmpfile("deadline_design.glp");
        let mask_path = tmpfile("deadline_mask.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL deadline_test\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        // A zero-second deadline expires at the first iteration boundary;
        // the run must still finish cleanly and write the initial mask.
        let outcome = optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            mask_path.to_str().expect("utf8"),
            "--grid",
            "128",
            "--kernels",
            "4",
            "--iters",
            "8",
            "--deadline",
            "0",
        ]))
        .expect("deadline stop is graceful, not an error");
        assert_eq!(outcome, Outcome::Completed, "deadline stop exits 0");
        assert!(mask_path.exists(), "best-so-far mask was written");
        std::fs::remove_file(design_path).ok();
        std::fs::remove_file(mask_path).ok();
    }

    #[test]
    fn checkpoint_then_resume_completes_the_run() {
        let design_path = tmpfile("ck_design.glp");
        let mask_path = tmpfile("ck_mask.glp");
        let ck_path = tmpfile("ck_state.lsckpt");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL ck_test\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        let common = |extra: &[&str]| {
            let mut args = vec![
                "--glp",
                design_path.to_str().expect("utf8"),
                "--out",
                mask_path.to_str().expect("utf8"),
                "--grid",
                "128",
                "--kernels",
                "4",
                "--iters",
                "4",
            ];
            args.extend_from_slice(extra);
            to_args(&args)
        };
        // Phase 1: stop after 2 iterations via the budget; the graceful
        // stop must write a final checkpoint even though the periodic
        // interval (default 10) never fired.
        let outcome = optimize(&common(&[
            "--iter-budget",
            "2",
            "--checkpoint",
            ck_path.to_str().expect("utf8"),
        ]))
        .expect("budget stop is graceful");
        assert_eq!(outcome, Outcome::Completed);
        assert!(ck_path.exists(), "graceful stop wrote a checkpoint");
        // Phase 2: resume from it and run to completion.
        let outcome = optimize(&common(&["--resume", ck_path.to_str().expect("utf8")]))
            .expect("resume runs to completion");
        assert_eq!(outcome, Outcome::Completed);
        assert!(mask_path.exists());
        std::fs::remove_file(design_path).ok();
        std::fs::remove_file(mask_path).ok();
        std::fs::remove_file(ck_path).ok();
    }

    #[test]
    fn missing_resume_file_is_a_checkpoint_error() {
        use crate::error::Category;
        let design_path = tmpfile("resume_missing.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL resume_missing\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        let err = optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            "y.glp",
            "--grid",
            "128",
            "--kernels",
            "4",
            "--resume",
            "/nonexistent/lsopc.lsckpt",
        ]))
        .expect_err("missing resume file");
        assert_eq!(err.category(), Category::Checkpoint);
        assert_eq!(err.exit_code(), 9);
        std::fs::remove_file(design_path).ok();
    }

    #[test]
    fn lifecycle_flag_misuse_is_a_usage_error() {
        use crate::error::Category;
        let base = ["--glp", "x.glp", "--out", "y.glp"];
        for (extra, needle) in [
            (&["--deadline", "soon"][..], "--deadline"),
            (&["--deadline", "-1"][..], "--deadline"),
            (&["--max-wall", "inf"][..], "--max-wall"),
            (&["--iter-budget", "0"][..], "--iter-budget"),
            (&["--checkpoint-every", "3"][..], "--checkpoint"),
            (
                &["--checkpoint", "c.lsckpt", "--checkpoint-every", "0"][..],
                "--checkpoint-every",
            ),
            (&["--checkpoint", ""][..], "--checkpoint"),
            (&["--resume", ""][..], "--resume"),
        ] {
            let mut args = base.to_vec();
            args.extend_from_slice(extra);
            let err = optimize(&to_args(&args)).expect_err("misuse rejected");
            assert_eq!(err.category(), Category::Usage, "args {args:?}");
            assert!(
                err.to_string().contains(needle),
                "args {args:?}: `{err}` lacks `{needle}`"
            );
        }
    }

    #[test]
    fn suite_shares_the_optimize_flag_validation() {
        use crate::error::Category;
        // `suite` resolves its flags through the same spec builder as
        // `optimize`, so the same misuse is rejected the same way.
        for (args, needle) in [
            (&["--precision", "f16"][..], "--precision"),
            (&["--schedule", "fast"][..], "--schedule"),
            (&["--recover", "maybe"][..], "--recover"),
            (&["--rfft", "maybe"][..], "--rfft"),
        ] {
            let err = suite(&to_args(args)).expect_err("misuse rejected");
            assert_eq!(err.category(), Category::Usage, "args {args:?}");
            assert!(
                err.to_string().contains(needle),
                "args {args:?}: `{err}` lacks `{needle}`"
            );
        }
    }
}

#[cfg(test)]
mod report_tests {
    use crate::commands::*;

    #[test]
    fn report_subcommand_runs() {
        let dir = std::env::temp_dir();
        let design = dir.join(format!("lsopc_rep_{}.glp", std::process::id()));
        std::fs::write(&design, "BEGIN\nCELL rep\nRECT 832 480 384 1088 ;\nEND\n")
            .expect("write design");
        // Report the design against itself (uncorrected mask).
        report(
            &[
                "--glp",
                design.to_str().expect("utf8"),
                "--mask",
                design.to_str().expect("utf8"),
                "--grid",
                "128",
                "--kernels",
                "4",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .expect("report runs");
        std::fs::remove_file(design).ok();
    }
}
