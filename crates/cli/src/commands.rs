//! The CLI subcommands: parse flags, call the engine, render results.
//!
//! The job pipeline itself (simulator construction, caches, precision
//! variants, tiling, run control) lives in `lsopc-engine`; this module
//! only resolves flags into a [`lsopc_engine::JobSpec`] (see
//! [`crate::spec`]), submits it, and prints the same lines the
//! pre-engine CLI printed.

use crate::args::Flags;
use crate::error::CliError;
use crate::spec::{self, SpecDefaults};
use lsopc_benchsuite::Iccad2013Suite;
use lsopc_core::{RunControl, StopReason};
use lsopc_engine::{JobDetail, Scorer};
use lsopc_geometry::{
    mask_to_polygons, parse_glp, polygons_to_layout, rasterize, write_glp, Layout,
};
use lsopc_grid::Grid;
use lsopc_metrics::{render_report, MaskComplexity, MrcReport};
use lsopc_trace::{FanoutSink, JsonlSink, MemorySink, TraceSink};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Top-level usage text.
pub const USAGE: &str = "\
lsopc — level-set inverse lithography mask optimization

USAGE:
  lsopc optimize --glp <design.glp> --out <mask.glp>
                 [--grid 512] [--iters 30] [--kernels 24] [--pvb-weight 1.0]
                 [--threads N] [--recover on|off|strict]
                 [--precision f64|f32|mixed] [--rfft on|off]
                 [--schedule auto|off|CPX,K,CI,FI]
                 [--tile N] [--halo N] [--warm-start mem|<dir>] [--warm-iters N]
                 [--deadline SECS] [--max-wall SECS] [--iter-budget N]
                 [--checkpoint <path>] [--checkpoint-every N] [--resume <path>]
                 [--trace <out.jsonl>] [--metrics <out.json>]
  lsopc evaluate --glp <design.glp> --mask <mask.glp>
                 [--grid 512] [--kernels 24] [--threads N]
  lsopc report   --glp <design.glp> --mask <mask.glp>
                 [--grid 512] [--kernels 24] [--min-width-nm 40] [--min-space-nm 40]
                 [--threads N]
  lsopc suite    [--cases 1,2,...] [--grid 256] [--iters 20] [--kernels 24]
                 [--threads N] [--recover on|off|strict]
                 [--precision f64|f32|mixed] [--rfft on|off]
                 [--schedule auto|off|CPX,K,CI,FI]
                 [--deadline SECS] [--max-wall SECS]
                 [--trace <out.jsonl>] [--metrics <out.json>]
  lsopc profile  [--pattern wire|dense|contacts] [--grid 256] [--iters 10]
                 [--kernels 24] [--threads N] [--recover on|off|strict]
                 [--rfft on|off] [--json]
                 [--trace <out.jsonl>] [--metrics <out.json>]
  lsopc analyze  <trace.jsonl>
  lsopc help

The field is 2048nm; --grid sets the pixels per side (power of two).
--threads sizes the shared worker pool (default: LSOPC_THREADS if set,
otherwise the machine's available cores).
--recover controls the solver health guard (default on): `on` rolls back
to the last healthy checkpoint and halves the step on numerical trouble,
`strict` turns an exhausted guard into a hard error, `off` disables it.
--precision picks the arithmetic for the optimization loop (default f64):
`f32` runs fields and transforms in single precision (the paper's GPU
arithmetic, reproduced on CPU), `mixed` runs f32 convolutions/spectra
under f64 accumulation and optimizer state (the master-weights pattern).
Scoring and reporting always run at f64 (see DESIGN.md §11).
--rfft on routes the backends' real-input transforms through the
half-spectrum fast path (DESIGN.md §13); results deviate from the dense
default only at round-off level. A bare --rfft means on; the default is
off (or the LSOPC_RFFT environment variable when set).
--schedule runs the early iterations on a coarse grid with a reduced
kernel set, then upsamples ψ and refines at full resolution (DESIGN.md
§14). `auto` (also a bare --schedule) derives the stages from the grid
and --iters, falling back to a flat run when no coarser grid holds the
optical band; COARSE_PX,KERNELS,COARSE_ITERS,FINE_ITERS pins them. The
default `off` keeps the historical flat loop bit-for-bit.
--tile cuts the field into N×N-pixel cores with --halo pixels of optical
context on each side (default half the core; core + 2·halo must be a
power of two) and optimizes the tiles concurrently; tiled runs use f64.
--warm-start (tiled runs only) caches each solved tile's ψ under a
translation-invariant content fingerprint — `mem` holds it for this
process, a directory path persists it across runs — so repeated tile
patterns skip the cold solve and run a short refinement (--warm-iters,
default a quarter of --iters).
Runs stop gracefully instead of erroring: on Ctrl-C (SIGINT), an
expired --deadline (seconds for each optimization) or --max-wall
(seconds for the whole command; in `suite`, remaining cases are
skipped), or an exhausted --iter-budget, the optimizer finishes the
current iteration, keeps its best-so-far mask, writes the output and
prints one `stopped: <reason>` line. Only a SIGINT stop changes the
exit code (8); deadline/budget stops exit 0.
--checkpoint persists the optimizer loop state to the given file every
--checkpoint-every iterations (default 10, sized so the periodic
write stays under 2% of the iteration cost at 1024²) and on every
graceful stop,
via an atomic temp-file + rename — a crash never corrupts the previous
checkpoint. With --tile the path is a directory holding one file per
completed tile. --resume restarts from such a checkpoint; the resumed
run is bit-identical to an uninterrupted one at the default f64
precision (DESIGN.md §15). A corrupt, truncated or
configuration-mismatched checkpoint is a categorized error (exit 9),
never a crash.
--trace streams every span/counter/iteration/warning event to the given
file, one JSON object per line (event schema v1, see DESIGN.md §12);
--metrics writes the aggregated per-span profile and counter totals as
one JSON document when the run finishes. `profile` optimizes a built-in
synthetic pattern and prints the aggregate table (calls, self and total
time per span, sorted by self time) directly; with --json it prints the
same machine-readable document --metrics would write instead of the
table. `analyze` reads a --trace JSONL file back and prints the span
tree with calls, self/total time and latency percentiles per path,
cache hit ratios, counter totals, a convergence summary and anomaly
flags (tail latency, cache-hit collapse, guard events, early stops).

EXIT CODES:
  0 success    2 usage    3 I/O    4 layout parse
  5 simulator setup    6 optimizer    7 strict recovery failure
  8 interrupted (SIGINT, best-so-far mask written)    9 checkpoint/resume";

/// How a successful command ended; decides the process exit code.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The command ran to completion (exit 0) — including graceful
    /// deadline/budget stops, which still produce a usable mask.
    Completed,
    /// A SIGINT stopped the run early; the best-so-far output was still
    /// written (exit 8, so scripts can tell a complete mask from an
    /// interrupted one).
    Interrupted,
}

/// The exit outcome for an optimization that may have been stopped.
fn outcome_for(stopped: Option<StopReason>) -> Outcome {
    if stopped == Some(StopReason::Signal) {
        Outcome::Interrupted
    } else {
        Outcome::Completed
    }
}

type CliResult = Result<Outcome, CliError>;

// Flag-parsing errors (missing/invalid values) are usage errors.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::usage(message)
    }
}

/// Sinks built for one command run, per `--trace` / `--metrics`.
///
/// The sinks are *scoped*, not installed process-globally: events
/// emitted while [`CommandTrace::run`] executes the command body —
/// including on pool workers doing its chunks — are delivered to this
/// command's sinks without disturbing any other trace consumer in the
/// process.
struct CommandTrace {
    sink: Option<Arc<dyn TraceSink>>,
    memory: Option<Arc<MemorySink>>,
    metrics_path: Option<String>,
}

impl CommandTrace {
    /// Builds the sinks the flags ask for (none when neither `--trace`
    /// nor `--metrics` is present).
    fn start(flags: &Flags) -> Result<Self, CliError> {
        let trace_path = flags.get("trace").filter(|v| !v.is_empty());
        let metrics_path = flags.get("metrics").filter(|v| !v.is_empty());
        let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::new();
        if let Some(path) = trace_path {
            let sink = JsonlSink::create(std::path::Path::new(path))
                .map_err(|e| CliError::io(format!("cannot create {path}: {e}")))?;
            sinks.push(Arc::new(sink));
        }
        let memory = metrics_path.map(|_| Arc::new(MemorySink::new()));
        if let Some(mem) = &memory {
            sinks.push(mem.clone());
        }
        let sink: Option<Arc<dyn TraceSink>> = if sinks.is_empty() {
            None
        } else {
            Some(Arc::new(FanoutSink::new(sinks)))
        };
        Ok(Self {
            sink,
            memory,
            metrics_path: metrics_path.map(str::to_string),
        })
    }

    /// Runs the command body with the sinks scoped in, then flushes the
    /// event stream and writes the `--metrics` document. The command's
    /// own error wins over a teardown failure.
    fn run(self, f: impl FnOnce() -> CliResult) -> CliResult {
        let outcome = match &self.sink {
            Some(sink) => lsopc_trace::with_scoped_sink(sink.clone(), f),
            None => f(),
        };
        let teardown = self.finish();
        outcome.and_then(|o| teardown.map(|()| o))
    }

    fn finish(self) -> Result<(), CliError> {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
        if let (Some(mem), Some(path)) = (&self.memory, &self.metrics_path) {
            std::fs::write(path, mem.report().to_json())
                .map_err(|e| CliError::io(format!("cannot write {path}: {e}")))?;
        }
        Ok(())
    }
}

fn load_layout(path: &str) -> Result<Layout, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    parse_glp(&text).map_err(|e| CliError::parse(format!("{path}: {e}")))
}

/// `lsopc optimize`: design in, optimized mask out.
pub fn optimize(args: &[String]) -> CliResult {
    let flags = Flags::parse(args)?;
    let session = CommandTrace::start(&flags)?;
    session.run(|| optimize_run(&flags))
}

fn optimize_run(flags: &Flags) -> CliResult {
    // Validate all flags before touching the filesystem so misuse is
    // reported as such even when the input path is also bad.
    let glp_path = flags.require("glp")?.to_string();
    let out_path = flags.require("out")?.to_string();
    let resolved = spec::resolve_spec(
        flags,
        SpecDefaults {
            grid: 512,
            iters: 30,
            tiling: true,
        },
    )?;
    let control = spec::run_control_flags(flags)?;

    let design = load_layout(&glp_path)?;
    let engine = spec::engine_for(flags)?;
    let scorer = engine
        .scorer(resolved.grid, resolved.kernels, resolved.rfft)
        .map_err(CliError::from_engine)?;
    let (grid, pixel_nm) = (resolved.grid, lsopc_engine::pixel_nm(resolved.grid));

    let target = rasterize(&design, grid, grid, pixel_nm);
    eprintln!(
        "optimizing {} shapes at {grid}px ({pixel_nm} nm/px), {} iterations…",
        design.len(),
        resolved.iters
    );

    let job = resolved.job(target.clone(), control);
    let outcome = engine.submit(&job).map_err(CliError::from_engine)?;
    match &outcome.detail {
        JobDetail::Tiled { mask, stats } => {
            let runtime_s = outcome.runtime_s;
            if let Some(reason) = stats.stopped {
                println!(
                    "stopped: {reason} ({} of {} tiles unfinished; best-so-far mask kept)",
                    stats.unfinished,
                    stats.tiles + stats.unfinished
                );
            }
            println!(
                "done in {runtime_s:.2}s / {} tiles ({} cold, {} warm, {} resumed), \
                 {} full-res iterations (+{} coarse)",
                stats.tiles,
                stats.cold,
                stats.warm,
                stats.resumed,
                stats.full_iterations(),
                stats.coarse_iterations
            );
            write_and_score_mask(&scorer, &design, &target, mask, &out_path, runtime_s)?;
            Ok(outcome_for(stats.stopped))
        }
        JobDetail::Flat(result) => {
            if result.diagnostics.has_events() {
                eprintln!(
                    "recovery: {} backoffs, {} recoveries{}",
                    result.diagnostics.backoffs,
                    result.diagnostics.recoveries,
                    if result.diagnostics.gave_up {
                        " (guard gave up; kept best healthy iterate)"
                    } else {
                        ""
                    }
                );
            }
            if let Some(reason) = result.stopped {
                println!(
                    "stopped: {reason} (after {} iterations; best-so-far mask kept)",
                    result.iterations
                );
            }
            match result.history.first() {
                Some(first) => println!(
                    "done in {:.2}s / {} iterations (cost {:.1} -> {:.1})",
                    result.runtime_s,
                    result.iterations,
                    first.cost_total,
                    result.final_cost()
                ),
                // A deadline/cancel can stop the run before any iteration
                // completes; there is no cost pair to report.
                None => println!(
                    "done in {:.2}s / 0 iterations (no cost evaluated)",
                    result.runtime_s
                ),
            }
            write_and_score_mask(
                &scorer,
                &design,
                &target,
                &result.mask,
                &out_path,
                result.runtime_s,
            )?;
            Ok(outcome_for(result.stopped))
        }
    }
}

/// Writes the optimized mask as GLP and prints the quality summary
/// shared by the flat and tiled paths.
fn write_and_score_mask(
    scorer: &Scorer,
    design: &Layout,
    target: &Grid<f64>,
    mask: &Grid<f64>,
    out_path: &str,
    runtime_s: f64,
) -> Result<(), CliError> {
    let polygons = mask_to_polygons(mask, scorer.pixel_nm());
    let mut mask_layout = polygons_to_layout(&polygons);
    mask_layout.name = design.name.clone().map(|n| format!("{n}_opc"));
    std::fs::write(out_path, write_glp(&mask_layout))
        .map_err(|e| CliError::io(format!("cannot write {out_path}: {e}")))?;

    let eval = scorer.evaluate(mask, design, target);
    let complexity = MaskComplexity::measure(mask);
    println!(
        "#EPE {}  PVB {:.0} nm²  shapes {}  score {:.0}",
        eval.epe.violations,
        eval.pvb_area_nm2,
        eval.shapes.total(),
        eval.score(runtime_s).value()
    );
    println!(
        "mask: {} polygons, jaggedness {:.2} -> {out_path}",
        mask_layout.len(),
        complexity.jaggedness
    );
    Ok(())
}

/// `lsopc evaluate`: score an existing mask against a design.
pub fn evaluate(args: &[String]) -> CliResult {
    let flags = Flags::parse(args)?;
    let design = load_layout(flags.require("glp")?)?;
    let mask_layout = load_layout(flags.require("mask")?)?;
    let (scorer, grid) = scorer_for(&flags, 512)?;
    let pixel_nm = scorer.pixel_nm();

    let target = rasterize(&design, grid, grid, pixel_nm);
    let mask = rasterize(&mask_layout, grid, grid, pixel_nm);
    let eval = scorer.evaluate(&mask, &design, &target);
    println!(
        "#EPE {} / {} probes",
        eval.epe.violations, eval.epe.total_probes
    );
    println!("PVB {:.0} nm²", eval.pvb_area_nm2);
    println!(
        "shape violations: {} (extra {}, missing {}, bridges {})",
        eval.shapes.total(),
        eval.shapes.extra,
        eval.shapes.missing,
        eval.shapes.bridges
    );
    println!("score (without runtime): {:.0}", eval.score(0.0).value());
    Ok(Outcome::Completed)
}

/// Builds the shared f64 scoring simulator for the read-only commands
/// from `--grid`/`--kernels`/`--threads` (and `--rfft`, which scoring
/// honors exactly as the optimizing commands do).
fn scorer_for(flags: &Flags, default_grid: usize) -> Result<(Scorer, usize), CliError> {
    let grid: usize = flags.num("grid", default_grid)?;
    let kernels: usize = flags.num("kernels", 24)?;
    let rfft = spec::rfft_flag(flags)?;
    let engine = spec::engine_for(flags)?;
    let scorer = engine
        .scorer(grid, kernels, rfft)
        .map_err(CliError::from_engine)?;
    Ok((scorer, grid))
}

/// `lsopc report`: full quality + manufacturability report for a mask.
pub fn report(args: &[String]) -> CliResult {
    let flags = Flags::parse(args)?;
    let design = load_layout(flags.require("glp")?)?;
    let mask_layout = load_layout(flags.require("mask")?)?;
    let min_width_nm: f64 = flags.num("min-width-nm", 40.0)?;
    let min_space_nm: f64 = flags.num("min-space-nm", 40.0)?;
    let (scorer, grid) = scorer_for(&flags, 512)?;
    let pixel_nm = scorer.pixel_nm();

    let target = rasterize(&design, grid, grid, pixel_nm);
    let mask = rasterize(&mask_layout, grid, grid, pixel_nm);
    let eval = scorer.evaluate(&mask, &design, &target);
    let complexity = MaskComplexity::measure(&mask);
    let mrc = MrcReport::check(
        &mask,
        (min_width_nm / pixel_nm).round().max(1.0) as usize,
        (min_space_nm / pixel_nm).round().max(1.0) as usize,
    );
    let title = mask_layout.name.as_deref().unwrap_or("mask").to_string();
    print!(
        "{}",
        render_report(&title, &eval, &complexity, Some(&mrc), 0.0)
    );
    Ok(Outcome::Completed)
}

/// `lsopc suite`: run the level-set method over the built-in benchmarks.
pub fn suite(args: &[String]) -> CliResult {
    let flags = Flags::parse(args)?;
    let session = CommandTrace::start(&flags)?;
    session.run(|| suite_run(&flags))
}

fn suite_run(flags: &Flags) -> CliResult {
    let case_filter = flags.index_list("cases")?;
    let resolved = spec::resolve_spec(
        flags,
        SpecDefaults {
            grid: 256,
            iters: 20,
            tiling: false,
        },
    )?;
    let deadline_s = spec::secs_flag(flags, "deadline")?;
    let max_wall_s = spec::secs_flag(flags, "max-wall")?;
    let engine = spec::engine_for(flags)?;
    let scorer = engine
        .scorer(resolved.grid, resolved.kernels, resolved.rfft)
        .map_err(CliError::from_engine)?;
    let (grid, pixel_nm) = (resolved.grid, lsopc_engine::pixel_nm(resolved.grid));

    // --deadline bounds each case's optimization; --max-wall bounds the
    // whole command and is also checked between cases so remaining ones
    // are skipped instead of started doomed. Ctrl-C stops the current
    // case gracefully and skips the rest.
    let started = Instant::now();
    let wall_deadline = max_wall_s.map(|s| started + Duration::from_secs_f64(s));
    let token = crate::signal::interrupt_token();
    let mut stopped: Option<StopReason> = None;
    let mut skipped = 0usize;

    let suite = Iccad2013Suite::new();
    println!(
        "{:<6}{:>12}{:>8}{:>12}{:>8}{:>10}{:>12}",
        "case", "area(nm²)", "#EPE", "PVB(nm²)", "shape", "RT(s)", "score"
    );
    let mut total = 0.0;
    let mut ran = 0;
    for case in suite.cases() {
        if !case_filter.is_empty() && !case_filter.contains(&case.index) {
            continue;
        }
        if let Some(reason) = token.cancelled() {
            stopped = stopped.or(Some(reason));
            skipped += 1;
            continue;
        }
        if wall_deadline.is_some_and(|d| Instant::now() >= d) {
            stopped = stopped.or(Some(StopReason::Deadline));
            skipped += 1;
            continue;
        }
        let layout = suite.layout(case);
        let target = rasterize(&layout, grid, grid, pixel_nm);
        let mut control = RunControl::new().with_cancel(token.clone());
        let case_deadline = spec::effective_deadline(Instant::now(), deadline_s, None)
            .into_iter()
            .chain(wall_deadline)
            .min();
        if let Some(d) = case_deadline {
            control = control.with_deadline(d);
        }
        let job = resolved.job(target.clone(), control);
        let outcome = engine.submit(&job).map_err(CliError::from_engine)?;
        if let Some(reason) = outcome.stopped {
            stopped = stopped.or(Some(reason));
        }
        let eval = scorer.evaluate(outcome.mask(), &layout, &target);
        let score = eval.score(outcome.runtime_s);
        println!(
            "{:<6}{:>12}{:>8}{:>12.0}{:>8}{:>10.1}{:>12.0}{}",
            case.name,
            case.target_area_nm2,
            eval.epe.violations,
            eval.pvb_area_nm2,
            eval.shapes.total(),
            outcome.runtime_s,
            score.value(),
            if outcome.stopped.is_some() {
                "  (stopped early)"
            } else {
                ""
            }
        );
        total += score.value();
        ran += 1;
    }
    if ran > 0 {
        println!("{:<6}{:>62}{:>12.0}", "avg", "", total / ran as f64);
    }
    if let Some(reason) = stopped {
        println!(
            "stopped: {reason}{}",
            if skipped > 0 {
                format!(" ({skipped} case(s) skipped)")
            } else {
                String::new()
            }
        );
    }
    Ok(outcome_for(stopped))
}

/// One built-in synthetic design for `lsopc profile`, as GLP text so it
/// goes through the same parse/rasterize path as user layouts.
fn synthetic_layout(pattern: &str) -> Result<Layout, CliError> {
    let glp = match pattern {
        "wire" => "BEGIN\nCELL wire\nRECT 832 480 384 1088 ;\nEND\n",
        "dense" => {
            "BEGIN\nCELL dense\n\
             RECT 384 384 192 1280 ;\n\
             RECT 928 384 192 1280 ;\n\
             RECT 1472 384 192 1280 ;\nEND\n"
        }
        "contacts" => {
            "BEGIN\nCELL contacts\n\
             RECT 512 512 256 256 ;\n\
             RECT 1280 512 256 256 ;\n\
             RECT 512 1280 256 256 ;\n\
             RECT 1280 1280 256 256 ;\nEND\n"
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown --pattern `{other}` (expected wire, dense or contacts)"
            )))
        }
    };
    parse_glp(glp).map_err(|e| CliError::parse(format!("synthetic pattern {pattern}: {e}")))
}

/// `lsopc profile`: optimize a built-in synthetic pattern under the
/// in-memory aggregator and print the per-span self/total-time table.
pub fn profile(args: &[String]) -> CliResult {
    let flags = Flags::parse(args)?;
    let pattern = flags
        .get("pattern")
        .filter(|v| !v.is_empty())
        .unwrap_or("wire")
        .to_string();
    let resolved = spec::resolve_spec(
        &flags,
        SpecDefaults {
            grid: 256,
            iters: 10,
            tiling: false,
        },
    )?;
    let design = synthetic_layout(&pattern)?;
    let engine = spec::engine_for(&flags)?;
    let (grid, pixel_nm) = (resolved.grid, lsopc_engine::pixel_nm(resolved.grid));
    let target = rasterize(&design, grid, grid, pixel_nm);

    // `profile` always aggregates in memory; --trace/--metrics add the
    // event stream and the JSON document on top. The sinks are scoped
    // to this job, not installed process-globally.
    let memory = Arc::new(MemorySink::new());
    let mut sinks: Vec<Arc<dyn TraceSink>> = vec![memory.clone()];
    if let Some(path) = flags.get("trace").filter(|v| !v.is_empty()) {
        let sink = JsonlSink::create(std::path::Path::new(path))
            .map_err(|e| CliError::io(format!("cannot create {path}: {e}")))?;
        sinks.push(Arc::new(sink));
    }
    let sink: Arc<dyn TraceSink> = Arc::new(FanoutSink::new(sinks));
    let job = resolved.job(target, RunControl::default());
    let outcome = lsopc_trace::with_scoped_sink(sink.clone(), || engine.submit(&job));
    sink.flush();
    let outcome = outcome.map_err(CliError::from_engine)?;
    let iterations = match &outcome.detail {
        JobDetail::Flat(result) => result.iterations,
        JobDetail::Tiled { stats, .. } => stats.full_iterations() + stats.coarse_iterations,
    };

    let report = memory.report();
    if flags.get("json").is_some() {
        // Machine-readable mode: the same document --metrics writes,
        // on stdout, with no human header around it.
        println!("{}", report.to_json());
    } else {
        println!(
            "profile: pattern `{pattern}`, {grid} px, K = {}, {iterations} iterations, {} threads, {:.2}s",
            resolved.kernels,
            engine.pool_threads(),
            outcome.runtime_s
        );
        print!("{}", report.render_text());
    }
    if let Some(path) = flags.get("metrics").filter(|v| !v.is_empty()) {
        std::fs::write(path, report.to_json())
            .map_err(|e| CliError::io(format!("cannot write {path}: {e}")))?;
    }
    Ok(Outcome::Completed)
}

/// `lsopc analyze`: read a schema-v1 `--trace` JSONL stream back and
/// print the offline report — span tree with self/total time and
/// latency percentiles, cache hit ratios, counters, convergence and
/// anomaly flags.
pub fn analyze(args: &[String]) -> CliResult {
    // One positional path, no flags (Flags::parse rejects positionals,
    // so the path is taken before any flag machinery).
    let [path] = args else {
        return Err(CliError::usage("usage: lsopc analyze <trace.jsonl>"));
    };
    if path.starts_with("--") {
        return Err(CliError::usage("usage: lsopc analyze <trace.jsonl>"));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    let report = lsopc_trace::analyze::analyze(&text)
        .map_err(|e| CliError::parse(format!("{path}: {e}")))?;
    if report.skipped > 0 {
        eprintln!(
            "note: skipped {} unparseable line(s) of {}",
            report.skipped,
            report.events + report.skipped
        );
    }
    print!("{}", report.render_text());
    Ok(Outcome::Completed)
}

#[cfg(test)]
#[path = "commands_tests.rs"]
mod tests;
