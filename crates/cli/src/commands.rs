//! The CLI subcommands.

use crate::args::Flags;
use crate::error::CliError;
use lsopc_benchsuite::Iccad2013Suite;
use lsopc_core::{
    CheckpointSpec, IltResult, LevelSetIlt, RecoveryPolicy, ResolutionSchedule, RunControl,
    StopReason, TiledIlt, WarmStartCache,
};
use lsopc_geometry::{
    mask_to_polygons, parse_glp, polygons_to_layout, rasterize, write_glp, Layout,
};
use lsopc_grid::Grid;
use lsopc_litho::LithoSimulator;
use lsopc_metrics::{evaluate_mask, render_report, MaskComplexity, MrcReport};
use lsopc_optics::OpticsConfig;
use lsopc_trace::{FanoutSink, JsonlSink, MemorySink, TraceSink};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Top-level usage text.
pub const USAGE: &str = "\
lsopc — level-set inverse lithography mask optimization

USAGE:
  lsopc optimize --glp <design.glp> --out <mask.glp>
                 [--grid 512] [--iters 30] [--kernels 24] [--pvb-weight 1.0]
                 [--threads N] [--recover on|off|strict]
                 [--precision f64|f32|mixed] [--rfft on|off]
                 [--schedule auto|off|CPX,K,CI,FI]
                 [--tile N] [--halo N] [--warm-start mem|<dir>] [--warm-iters N]
                 [--deadline SECS] [--max-wall SECS] [--iter-budget N]
                 [--checkpoint <path>] [--checkpoint-every N] [--resume <path>]
                 [--trace <out.jsonl>] [--metrics <out.json>]
  lsopc evaluate --glp <design.glp> --mask <mask.glp>
                 [--grid 512] [--kernels 24] [--threads N]
  lsopc report   --glp <design.glp> --mask <mask.glp>
                 [--grid 512] [--kernels 24] [--min-width-nm 40] [--min-space-nm 40]
                 [--threads N]
  lsopc suite    [--cases 1,2,...] [--grid 256] [--iters 20] [--kernels 24]
                 [--threads N] [--recover on|off|strict]
                 [--precision f64|f32|mixed] [--rfft on|off]
                 [--schedule auto|off|CPX,K,CI,FI]
                 [--deadline SECS] [--max-wall SECS]
                 [--trace <out.jsonl>] [--metrics <out.json>]
  lsopc profile  [--pattern wire|dense|contacts] [--grid 256] [--iters 10]
                 [--kernels 24] [--threads N] [--recover on|off|strict]
                 [--rfft on|off]
                 [--trace <out.jsonl>] [--metrics <out.json>]
  lsopc help

The field is 2048nm; --grid sets the pixels per side (power of two).
--threads sizes the shared worker pool (default: LSOPC_THREADS if set,
otherwise the machine's available cores).
--recover controls the solver health guard (default on): `on` rolls back
to the last healthy checkpoint and halves the step on numerical trouble,
`strict` turns an exhausted guard into a hard error, `off` disables it.
--precision picks the arithmetic for the optimization loop (default f64):
`f32` runs fields and transforms in single precision (the paper's GPU
arithmetic, reproduced on CPU), `mixed` runs f32 convolutions/spectra
under f64 accumulation and optimizer state (the master-weights pattern).
Scoring and reporting always run at f64 (see DESIGN.md §11).
--rfft on routes the backends' real-input transforms through the
half-spectrum fast path (DESIGN.md §13); results deviate from the dense
default only at round-off level. A bare --rfft means on; the default is
off (or the LSOPC_RFFT environment variable when set).
--schedule runs the early iterations on a coarse grid with a reduced
kernel set, then upsamples ψ and refines at full resolution (DESIGN.md
§14). `auto` (also a bare --schedule) derives the stages from the grid
and --iters, falling back to a flat run when no coarser grid holds the
optical band; COARSE_PX,KERNELS,COARSE_ITERS,FINE_ITERS pins them. The
default `off` keeps the historical flat loop bit-for-bit.
--tile cuts the field into N×N-pixel cores with --halo pixels of optical
context on each side (default half the core; core + 2·halo must be a
power of two) and optimizes the tiles concurrently; tiled runs use f64.
--warm-start (tiled runs only) caches each solved tile's ψ under a
translation-invariant content fingerprint — `mem` holds it for this
process, a directory path persists it across runs — so repeated tile
patterns skip the cold solve and run a short refinement (--warm-iters,
default a quarter of --iters).
Runs stop gracefully instead of erroring: on Ctrl-C (SIGINT), an
expired --deadline (seconds for each optimization) or --max-wall
(seconds for the whole command; in `suite`, remaining cases are
skipped), or an exhausted --iter-budget, the optimizer finishes the
current iteration, keeps its best-so-far mask, writes the output and
prints one `stopped: <reason>` line. Only a SIGINT stop changes the
exit code (8); deadline/budget stops exit 0.
--checkpoint persists the optimizer loop state to the given file every
--checkpoint-every iterations (default 10, sized so the periodic
write stays under 2% of the iteration cost at 1024²) and on every
graceful stop,
via an atomic temp-file + rename — a crash never corrupts the previous
checkpoint. With --tile the path is a directory holding one file per
completed tile. --resume restarts from such a checkpoint; the resumed
run is bit-identical to an uninterrupted one at the default f64
precision (DESIGN.md §15). A corrupt, truncated or
configuration-mismatched checkpoint is a categorized error (exit 9),
never a crash.
--trace streams every span/counter/iteration/warning event to the given
file, one JSON object per line (event schema v1, see DESIGN.md §12);
--metrics writes the aggregated per-span profile and counter totals as
one JSON document when the run finishes. `profile` optimizes a built-in
synthetic pattern and prints the aggregate table (calls, self and total
time per span, sorted by self time) directly.

EXIT CODES:
  0 success    2 usage    3 I/O    4 layout parse
  5 simulator setup    6 optimizer    7 strict recovery failure
  8 interrupted (SIGINT, best-so-far mask written)    9 checkpoint/resume";

/// How a successful command ended; decides the process exit code.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The command ran to completion (exit 0) — including graceful
    /// deadline/budget stops, which still produce a usable mask.
    Completed,
    /// A SIGINT stopped the run early; the best-so-far output was still
    /// written (exit 8, so scripts can tell a complete mask from an
    /// interrupted one).
    Interrupted,
}

/// The exit outcome for an optimization that may have been stopped.
fn outcome_for(stopped: Option<StopReason>) -> Outcome {
    if stopped == Some(StopReason::Signal) {
        Outcome::Interrupted
    } else {
        Outcome::Completed
    }
}

type CliResult = Result<Outcome, CliError>;

// Flag-parsing errors (missing/invalid values) are usage errors.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::usage(message)
    }
}

fn recovery_policy(flags: &Flags) -> Result<RecoveryPolicy, CliError> {
    let value = flags
        .get("recover")
        .filter(|v| !v.is_empty())
        .unwrap_or("on");
    RecoveryPolicy::parse(value).map_err(|e| CliError::usage(format!("--recover: {e}")))
}

/// Arithmetic used by the optimization loop (`--precision`). Scoring and
/// reporting always run at f64 regardless.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Precision {
    /// Full double precision — the default, bit-identical to the
    /// pre-generic pipeline.
    F64,
    /// Pure single precision fields and transforms (the paper's GPU
    /// arithmetic); the result mask is widened to f64 for scoring.
    F32,
    /// f32 convolutions/spectra with f64 accumulation and optimizer
    /// state (master-weights pattern).
    Mixed,
}

fn precision(flags: &Flags) -> Result<Precision, CliError> {
    match flags.get("precision").filter(|v| !v.is_empty()) {
        None | Some("f64") => Ok(Precision::F64),
        Some("f32") => Ok(Precision::F32),
        Some("mixed") => Ok(Precision::Mixed),
        Some(other) => Err(CliError::usage(format!(
            "invalid value `{other}` for --precision: expected f64, f32 or mixed"
        ))),
    }
}

/// Applies `--rfft` to the process-wide routing default
/// ([`lsopc_fft::set_rfft_default`]); every backend built afterwards
/// (including the precision variants) picks it up. Absent flag → leave
/// the default (off, or `LSOPC_RFFT` when set) untouched.
fn apply_rfft_flag(flags: &Flags) -> Result<(), CliError> {
    match flags.get("rfft") {
        None => Ok(()),
        Some("" | "on" | "1" | "true") => {
            lsopc_fft::set_rfft_default(true);
            Ok(())
        }
        Some("off" | "0" | "false") => {
            lsopc_fft::set_rfft_default(false);
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!(
            "invalid value `{other}` for --rfft: expected on or off"
        ))),
    }
}

/// Parses `--schedule auto|off|CPX,K,CI,FI` against the grid the solves
/// actually run on (`solve_px`: the tile window in tiled mode, the full
/// grid otherwise). `auto` quietly degrades to a flat run when no
/// coarser grid holds the optical band.
fn schedule_flag(
    flags: &Flags,
    solve_px: usize,
    optics: &OpticsConfig,
    iters: usize,
) -> Result<Option<ResolutionSchedule>, CliError> {
    let spec = match flags.get("schedule") {
        None | Some("off") => return Ok(None),
        Some("" | "auto") => return Ok(ResolutionSchedule::auto(solve_px, optics, iters)),
        Some(spec) => spec,
    };
    let parts: Result<Vec<usize>, _> = spec.split(',').map(|t| t.trim().parse()).collect();
    let parts = parts.map_err(|_| {
        CliError::usage(format!(
            "invalid value `{spec}` for --schedule: expected auto, off or \
             COARSE_PX,KERNELS,COARSE_ITERS,FINE_ITERS"
        ))
    })?;
    let [coarse_px, kernels, coarse_iters, fine_iters] = parts[..] else {
        return Err(CliError::usage(format!(
            "--schedule {spec}: expected four comma-separated values \
             COARSE_PX,KERNELS,COARSE_ITERS,FINE_ITERS"
        )));
    };
    if coarse_px == 0 || !coarse_px.is_power_of_two() {
        return Err(CliError::usage(format!(
            "--schedule {spec}: coarse grid {coarse_px} must be a power of two"
        )));
    }
    if kernels == 0 || coarse_iters == 0 || fine_iters == 0 {
        return Err(CliError::usage(format!(
            "--schedule {spec}: kernel and iteration counts must be positive"
        )));
    }
    Ok(Some(ResolutionSchedule::new(
        coarse_px,
        kernels,
        coarse_iters,
        fine_iters,
    )))
}

/// Parses `--tile N [--halo M]`. The halo defaults to half the core,
/// which keeps the tile window a power of two whenever the core is.
fn tiling_flags(flags: &Flags) -> Result<Option<(usize, usize)>, CliError> {
    let core: usize = flags.num("tile", 0)?;
    if core == 0 {
        if flags.get("tile").is_some() {
            return Err(CliError::usage("--tile needs a positive pixel count"));
        }
        if flags.get("halo").is_some() {
            return Err(CliError::usage("--halo requires --tile"));
        }
        return Ok(None);
    }
    let halo: usize = flags.num("halo", core / 2)?;
    Ok(Some((core, halo)))
}

/// Parses `--warm-start mem|<dir>` (tiled runs only — the cache keys
/// whole tile windows).
fn warm_start_cache(flags: &Flags, tiled: bool) -> Result<Option<WarmStartCache>, CliError> {
    match flags.get("warm-start") {
        None => Ok(None),
        Some(_) if !tiled => Err(CliError::usage(
            "--warm-start requires --tile (the cache keys tile windows)",
        )),
        Some("") => Err(CliError::usage(
            "--warm-start needs `mem` or a cache directory path",
        )),
        Some("mem") => Ok(Some(WarmStartCache::in_memory())),
        Some(path) => WarmStartCache::directory(path)
            .map(Some)
            .map_err(|e| CliError::io(format!("cannot open warm-start cache {path}: {e}"))),
    }
}

/// Parses a `--key SECS` wall-clock flag: absent → `None`, otherwise a
/// finite non-negative number of seconds (0 means "already expired" —
/// useful for exercising the graceful-stop path).
fn secs_flag(flags: &Flags, key: &str) -> Result<Option<f64>, CliError> {
    match flags.get(key) {
        None => Ok(None),
        Some("") => Err(CliError::usage(format!(
            "--{key} needs a duration in seconds"
        ))),
        Some(v) => match v.parse::<f64>() {
            Ok(s) if s.is_finite() && s >= 0.0 => Ok(Some(s)),
            _ => Err(CliError::usage(format!(
                "invalid value `{v}` for --{key}: expected a non-negative number of seconds"
            ))),
        },
    }
}

/// The earlier of `--deadline` and `--max-wall`, both measured from
/// `start` (for `optimize` the two are equivalent; `suite` additionally
/// skips whole cases once `--max-wall` expires).
fn effective_deadline(
    start: Instant,
    deadline_s: Option<f64>,
    max_wall_s: Option<f64>,
) -> Option<Instant> {
    let mut deadline: Option<Instant> = None;
    for s in [deadline_s, max_wall_s].into_iter().flatten() {
        let d = start + Duration::from_secs_f64(s);
        deadline = Some(deadline.map_or(d, |cur| cur.min(d)));
    }
    deadline
}

/// Builds the [`RunControl`] for `optimize` from the lifecycle flags,
/// wiring in the process SIGINT token. Returns usage errors for
/// malformed flag values; the checkpoint/resume paths themselves are
/// validated by the optimizer when the run starts.
fn run_control_flags(flags: &Flags) -> Result<RunControl, CliError> {
    let deadline_s = secs_flag(flags, "deadline")?;
    let max_wall_s = secs_flag(flags, "max-wall")?;
    let iter_budget: usize = flags.num("iter-budget", 0)?;
    if flags.get("iter-budget").is_some() && iter_budget == 0 {
        return Err(CliError::usage(
            "--iter-budget needs a positive iteration count",
        ));
    }
    let checkpoint = flags.get("checkpoint").filter(|v| !v.is_empty());
    let every: usize = flags.num("checkpoint-every", 10)?;
    if flags.get("checkpoint-every").is_some() {
        if checkpoint.is_none() {
            return Err(CliError::usage("--checkpoint-every requires --checkpoint"));
        }
        if every == 0 {
            return Err(CliError::usage(
                "--checkpoint-every needs a positive iteration interval",
            ));
        }
    }
    let resume = flags.get("resume").filter(|v| !v.is_empty());
    if flags.get("resume").is_some() && resume.is_none() {
        return Err(CliError::usage("--resume needs a checkpoint path"));
    }
    if flags.get("checkpoint").is_some() && checkpoint.is_none() {
        return Err(CliError::usage("--checkpoint needs an output path"));
    }

    let mut control = RunControl::new().with_cancel(crate::signal::interrupt_token());
    if let Some(deadline) = effective_deadline(Instant::now(), deadline_s, max_wall_s) {
        control = control.with_deadline(deadline);
    }
    if iter_budget > 0 {
        control = control.with_iteration_budget(iter_budget);
    }
    if let Some(path) = checkpoint {
        control = control.with_checkpoint(CheckpointSpec::new(path, every));
    }
    if let Some(path) = resume {
        control = control.with_resume(path);
    }
    Ok(control)
}

/// Everything `build_sim` derives from the flags: the (f64, accelerated)
/// scoring simulator plus the pieces needed to build precision variants
/// of it for the optimization loop.
struct SimSetup {
    sim: LithoSimulator,
    grid: usize,
    pixel_nm: f64,
    optics: OpticsConfig,
    pool_threads: usize,
}

fn build_sim(flags: &Flags, default_grid: usize) -> Result<SimSetup, CliError> {
    let grid: usize = flags.num("grid", default_grid)?;
    let kernels: usize = flags.num("kernels", 24)?;
    // --threads pins the shared pool size; 0 (the default) keeps the
    // LSOPC_THREADS / available-core sizing. The pool is built once per
    // process, so only the first build_sim call can still size it.
    let threads: usize = flags.num("threads", 0)?;
    if threads > 0 {
        lsopc_parallel::init_global_threads(threads);
    }
    apply_rfft_flag(flags)?;
    let pool_threads = lsopc_parallel::ParallelContext::global().threads();
    let pixel_nm = 2048.0 / grid as f64;
    let optics = OpticsConfig::iccad2013().with_kernel_count(kernels);
    let sim = LithoSimulator::from_optics(&optics, grid, pixel_nm)
        .map_err(|e| CliError::setup(e.to_string()))?
        .with_accelerated_backend(pool_threads);
    Ok(SimSetup {
        sim,
        grid,
        pixel_nm,
        optics,
        pool_threads,
    })
}

/// Runs the configured optimizer at the requested precision and returns
/// an f64 result (the seam where f32 runs re-enter the f64 world).
fn run_ilt(
    ilt: &LevelSetIlt,
    setup: &SimSetup,
    target: &Grid<f64>,
    precision: Precision,
    control: &RunControl,
) -> Result<IltResult, CliError> {
    match precision {
        Precision::F64 => ilt
            .optimize_controlled(&setup.sim, target, control)
            .map_err(CliError::from_optimize),
        Precision::Mixed => {
            let sim = LithoSimulator::<f64>::from_optics(&setup.optics, setup.grid, setup.pixel_nm)
                .map_err(|e| CliError::setup(e.to_string()))?
                .with_mixed_backend();
            ilt.optimize_controlled(&sim, target, control)
                .map_err(CliError::from_optimize)
        }
        Precision::F32 => {
            let sim = LithoSimulator::<f32>::from_optics(&setup.optics, setup.grid, setup.pixel_nm)
                .map_err(|e| CliError::setup(e.to_string()))?
                .with_accelerated_backend(setup.pool_threads);
            let target32 = target.map(|&v| v as f32);
            Ok(ilt
                .optimize_controlled(&sim, &target32, control)
                .map_err(CliError::from_optimize)?
                .to_f64())
        }
    }
}

/// Sinks installed for one command run, per `--trace` / `--metrics`.
///
/// The trace layer is process-global; [`TraceSession::finish`] must run
/// even when the command fails so a later in-process caller does not
/// inherit the sinks.
struct TraceSession {
    memory: Option<Arc<MemorySink>>,
    metrics_path: Option<String>,
}

impl TraceSession {
    /// Installs the sinks the flags ask for; `None` when neither
    /// `--trace` nor `--metrics` is present.
    fn start(flags: &Flags) -> Result<Option<Self>, CliError> {
        let trace_path = flags.get("trace").filter(|v| !v.is_empty());
        let metrics_path = flags.get("metrics").filter(|v| !v.is_empty());
        if trace_path.is_none() && metrics_path.is_none() {
            return Ok(None);
        }
        let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::new();
        if let Some(path) = trace_path {
            let sink = JsonlSink::create(std::path::Path::new(path))
                .map_err(|e| CliError::io(format!("cannot create {path}: {e}")))?;
            sinks.push(Arc::new(sink));
        }
        let memory = metrics_path.map(|_| Arc::new(MemorySink::new()));
        if let Some(mem) = &memory {
            sinks.push(mem.clone());
        }
        lsopc_trace::install(Arc::new(FanoutSink::new(sinks)));
        Ok(Some(Self {
            memory,
            metrics_path: metrics_path.map(str::to_string),
        }))
    }

    /// Flushes the event stream, writes the `--metrics` document and
    /// removes the sinks.
    fn finish(self) -> Result<(), CliError> {
        lsopc_trace::flush();
        lsopc_trace::uninstall();
        if let (Some(mem), Some(path)) = (&self.memory, &self.metrics_path) {
            std::fs::write(path, mem.report().to_json())
                .map_err(|e| CliError::io(format!("cannot write {path}: {e}")))?;
        }
        Ok(())
    }
}

/// Ends a trace session without masking the command's own error: the
/// command outcome wins, then any sink teardown failure surfaces.
fn finish_trace(session: Option<TraceSession>, outcome: CliResult) -> CliResult {
    match session {
        Some(s) => {
            let teardown = s.finish();
            outcome.and_then(|o| teardown.map(|()| o))
        }
        None => outcome,
    }
}

fn load_layout(path: &str) -> Result<Layout, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    parse_glp(&text).map_err(|e| CliError::parse(format!("{path}: {e}")))
}

/// `lsopc optimize`: design in, optimized mask out.
pub fn optimize(args: &[String]) -> CliResult {
    let flags = Flags::parse(args)?;
    let session = TraceSession::start(&flags)?;
    finish_trace(session, optimize_run(&flags))
}

fn optimize_run(flags: &Flags) -> CliResult {
    // Validate all flags before touching the filesystem so misuse is
    // reported as such even when the input path is also bad.
    let glp_path = flags.require("glp")?.to_string();
    let out_path = flags.require("out")?.to_string();
    let iters: usize = flags.num("iters", 30)?;
    let w_pvb: f64 = flags.num("pvb-weight", 1.0)?;
    let recovery = recovery_policy(flags)?;
    let precision = precision(flags)?;
    let tiling = tiling_flags(flags)?;
    let warm_start = warm_start_cache(flags, tiling.is_some())?;
    let warm_iters: usize = flags.num("warm-iters", 0)?;
    let control = run_control_flags(flags)?;
    if tiling.is_some() && precision != Precision::F64 {
        return Err(CliError::usage(
            "--tile runs at f64; drop --precision or the tiling flags",
        ));
    }
    // The schedule resolves against the grid each solve actually runs
    // on: the tile window in tiled mode, the full grid otherwise.
    let grid_flag: usize = flags.num("grid", 512)?;
    let kernels_flag: usize = flags.num("kernels", 24)?;
    let solve_px = tiling.map_or(grid_flag, |(core, halo)| core + 2 * halo);
    let schedule = schedule_flag(
        flags,
        solve_px,
        &OpticsConfig::iccad2013().with_kernel_count(kernels_flag),
        iters,
    )?;
    let ilt = LevelSetIlt::builder()
        .max_iterations(iters)
        .pvb_weight(w_pvb)
        .recovery(recovery)
        .schedule(schedule)
        .build();
    // Tile geometry is still flag validation — reject it before the
    // filesystem comes into play.
    let tiled = match tiling {
        Some((core, halo)) => {
            let mut tiled = TiledIlt::new(ilt.clone(), core, halo).map_err(CliError::from_tiled)?;
            if let Some(cache) = warm_start {
                tiled = tiled.with_warm_start(cache);
            }
            if warm_iters > 0 {
                tiled = tiled.with_warm_iterations(warm_iters);
            }
            Some(tiled.with_run_control(control.clone()))
        }
        None => None,
    };
    let design = load_layout(&glp_path)?;
    let setup = build_sim(flags, 512)?;
    let (grid, pixel_nm) = (setup.grid, setup.pixel_nm);

    let target = rasterize(&design, grid, grid, pixel_nm);
    eprintln!(
        "optimizing {} shapes at {grid}px ({pixel_nm} nm/px), {iters} iterations…",
        design.len()
    );

    if let Some(tiled) = tiled {
        let started = Instant::now();
        let (mask, stats) = tiled
            .optimize_with_stats(&setup.optics, &target, pixel_nm)
            .map_err(CliError::from_tiled)?;
        let runtime_s = started.elapsed().as_secs_f64();
        if let Some(reason) = stats.stopped {
            println!(
                "stopped: {reason} ({} of {} tiles unfinished; best-so-far mask kept)",
                stats.unfinished,
                stats.tiles + stats.unfinished
            );
        }
        println!(
            "done in {runtime_s:.2}s / {} tiles ({} cold, {} warm, {} resumed), \
             {} full-res iterations (+{} coarse)",
            stats.tiles,
            stats.cold,
            stats.warm,
            stats.resumed,
            stats.full_iterations(),
            stats.coarse_iterations
        );
        write_and_score_mask(&setup, &design, &target, &mask, &out_path, runtime_s)?;
        return Ok(outcome_for(stats.stopped));
    }

    let result = run_ilt(&ilt, &setup, &target, precision, &control)?;
    if result.diagnostics.has_events() {
        eprintln!(
            "recovery: {} backoffs, {} recoveries{}",
            result.diagnostics.backoffs,
            result.diagnostics.recoveries,
            if result.diagnostics.gave_up {
                " (guard gave up; kept best healthy iterate)"
            } else {
                ""
            }
        );
    }
    if let Some(reason) = result.stopped {
        println!(
            "stopped: {reason} (after {} iterations; best-so-far mask kept)",
            result.iterations
        );
    }
    match result.history.first() {
        Some(first) => println!(
            "done in {:.2}s / {} iterations (cost {:.1} -> {:.1})",
            result.runtime_s,
            result.iterations,
            first.cost_total,
            result.final_cost()
        ),
        // A deadline/cancel can stop the run before any iteration
        // completes; there is no cost pair to report.
        None => println!(
            "done in {:.2}s / 0 iterations (no cost evaluated)",
            result.runtime_s
        ),
    }
    write_and_score_mask(
        &setup,
        &design,
        &target,
        &result.mask,
        &out_path,
        result.runtime_s,
    )?;
    Ok(outcome_for(result.stopped))
}

/// Writes the optimized mask as GLP and prints the quality summary
/// shared by the flat and tiled paths.
fn write_and_score_mask(
    setup: &SimSetup,
    design: &Layout,
    target: &Grid<f64>,
    mask: &Grid<f64>,
    out_path: &str,
    runtime_s: f64,
) -> Result<(), CliError> {
    let polygons = mask_to_polygons(mask, setup.pixel_nm);
    let mut mask_layout = polygons_to_layout(&polygons);
    mask_layout.name = design.name.clone().map(|n| format!("{n}_opc"));
    std::fs::write(out_path, write_glp(&mask_layout))
        .map_err(|e| CliError::io(format!("cannot write {out_path}: {e}")))?;

    let eval = evaluate_mask(&setup.sim, mask, design, target);
    let complexity = MaskComplexity::measure(mask);
    println!(
        "#EPE {}  PVB {:.0} nm²  shapes {}  score {:.0}",
        eval.epe.violations,
        eval.pvb_area_nm2,
        eval.shapes.total(),
        eval.score(runtime_s).value()
    );
    println!(
        "mask: {} polygons, jaggedness {:.2} -> {out_path}",
        mask_layout.len(),
        complexity.jaggedness
    );
    Ok(())
}

/// `lsopc evaluate`: score an existing mask against a design.
pub fn evaluate(args: &[String]) -> CliResult {
    let flags = Flags::parse(args)?;
    let design = load_layout(flags.require("glp")?)?;
    let mask_layout = load_layout(flags.require("mask")?)?;
    let setup = build_sim(&flags, 512)?;
    let (grid, pixel_nm) = (setup.grid, setup.pixel_nm);

    let target = rasterize(&design, grid, grid, pixel_nm);
    let mask = rasterize(&mask_layout, grid, grid, pixel_nm);
    let eval = evaluate_mask(&setup.sim, &mask, &design, &target);
    println!(
        "#EPE {} / {} probes",
        eval.epe.violations, eval.epe.total_probes
    );
    println!("PVB {:.0} nm²", eval.pvb_area_nm2);
    println!(
        "shape violations: {} (extra {}, missing {}, bridges {})",
        eval.shapes.total(),
        eval.shapes.extra,
        eval.shapes.missing,
        eval.shapes.bridges
    );
    println!("score (without runtime): {:.0}", eval.score(0.0).value());
    Ok(Outcome::Completed)
}

/// `lsopc report`: full quality + manufacturability report for a mask.
pub fn report(args: &[String]) -> CliResult {
    let flags = Flags::parse(args)?;
    let design = load_layout(flags.require("glp")?)?;
    let mask_layout = load_layout(flags.require("mask")?)?;
    let min_width_nm: f64 = flags.num("min-width-nm", 40.0)?;
    let min_space_nm: f64 = flags.num("min-space-nm", 40.0)?;
    let setup = build_sim(&flags, 512)?;
    let (grid, pixel_nm) = (setup.grid, setup.pixel_nm);

    let target = rasterize(&design, grid, grid, pixel_nm);
    let mask = rasterize(&mask_layout, grid, grid, pixel_nm);
    let eval = evaluate_mask(&setup.sim, &mask, &design, &target);
    let complexity = MaskComplexity::measure(&mask);
    let mrc = MrcReport::check(
        &mask,
        (min_width_nm / pixel_nm).round().max(1.0) as usize,
        (min_space_nm / pixel_nm).round().max(1.0) as usize,
    );
    let title = mask_layout.name.as_deref().unwrap_or("mask").to_string();
    print!(
        "{}",
        render_report(&title, &eval, &complexity, Some(&mrc), 0.0)
    );
    Ok(Outcome::Completed)
}

/// `lsopc suite`: run the level-set method over the built-in benchmarks.
pub fn suite(args: &[String]) -> CliResult {
    let flags = Flags::parse(args)?;
    let session = TraceSession::start(&flags)?;
    finish_trace(session, suite_run(&flags))
}

fn suite_run(flags: &Flags) -> CliResult {
    let case_filter = flags.index_list("cases")?;
    let iters: usize = flags.num("iters", 20)?;
    let recovery = recovery_policy(flags)?;
    let precision = precision(flags)?;
    let deadline_s = secs_flag(flags, "deadline")?;
    let max_wall_s = secs_flag(flags, "max-wall")?;
    let first = build_sim(flags, 256)?;
    let (grid, pixel_nm) = (first.grid, first.pixel_nm);
    let schedule = schedule_flag(flags, grid, &first.optics, iters)?;

    // --deadline bounds each case's optimization; --max-wall bounds the
    // whole command and is also checked between cases so remaining ones
    // are skipped instead of started doomed. Ctrl-C stops the current
    // case gracefully and skips the rest.
    let started = Instant::now();
    let wall_deadline = max_wall_s.map(|s| started + Duration::from_secs_f64(s));
    let token = crate::signal::interrupt_token();
    let mut stopped: Option<StopReason> = None;
    let mut skipped = 0usize;

    let suite = Iccad2013Suite::new();
    println!(
        "{:<6}{:>12}{:>8}{:>12}{:>8}{:>10}{:>12}",
        "case", "area(nm²)", "#EPE", "PVB(nm²)", "shape", "RT(s)", "score"
    );
    let mut total = 0.0;
    let mut ran = 0;
    for case in suite.cases() {
        if !case_filter.is_empty() && !case_filter.contains(&case.index) {
            continue;
        }
        if let Some(reason) = token.cancelled() {
            stopped = stopped.or(Some(reason));
            skipped += 1;
            continue;
        }
        if wall_deadline.is_some_and(|d| Instant::now() >= d) {
            stopped = stopped.or(Some(StopReason::Deadline));
            skipped += 1;
            continue;
        }
        let layout = suite.layout(case);
        // Fresh simulator per case keeps kernel caches bounded.
        let setup = build_sim(flags, 256)?;
        let target = rasterize(&layout, grid, grid, pixel_nm);
        let ilt = LevelSetIlt::builder()
            .max_iterations(iters)
            .recovery(recovery)
            .schedule(schedule)
            .build();
        let mut control = RunControl::new().with_cancel(token.clone());
        let case_deadline = effective_deadline(Instant::now(), deadline_s, None)
            .into_iter()
            .chain(wall_deadline)
            .min();
        if let Some(d) = case_deadline {
            control = control.with_deadline(d);
        }
        let result = run_ilt(&ilt, &setup, &target, precision, &control)?;
        if let Some(reason) = result.stopped {
            stopped = stopped.or(Some(reason));
        }
        let eval = evaluate_mask(&setup.sim, &result.mask, &layout, &target);
        let score = eval.score(result.runtime_s);
        println!(
            "{:<6}{:>12}{:>8}{:>12.0}{:>8}{:>10.1}{:>12.0}{}",
            case.name,
            case.target_area_nm2,
            eval.epe.violations,
            eval.pvb_area_nm2,
            eval.shapes.total(),
            result.runtime_s,
            score.value(),
            if result.stopped.is_some() {
                "  (stopped early)"
            } else {
                ""
            }
        );
        total += score.value();
        ran += 1;
    }
    if ran > 0 {
        println!("{:<6}{:>62}{:>12.0}", "avg", "", total / ran as f64);
    }
    if let Some(reason) = stopped {
        println!(
            "stopped: {reason}{}",
            if skipped > 0 {
                format!(" ({skipped} case(s) skipped)")
            } else {
                String::new()
            }
        );
    }
    Ok(outcome_for(stopped))
}

/// One built-in synthetic design for `lsopc profile`, as GLP text so it
/// goes through the same parse/rasterize path as user layouts.
fn synthetic_layout(pattern: &str) -> Result<Layout, CliError> {
    let glp = match pattern {
        "wire" => "BEGIN\nCELL wire\nRECT 832 480 384 1088 ;\nEND\n",
        "dense" => {
            "BEGIN\nCELL dense\n\
             RECT 384 384 192 1280 ;\n\
             RECT 928 384 192 1280 ;\n\
             RECT 1472 384 192 1280 ;\nEND\n"
        }
        "contacts" => {
            "BEGIN\nCELL contacts\n\
             RECT 512 512 256 256 ;\n\
             RECT 1280 512 256 256 ;\n\
             RECT 512 1280 256 256 ;\n\
             RECT 1280 1280 256 256 ;\nEND\n"
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown --pattern `{other}` (expected wire, dense or contacts)"
            )))
        }
    };
    parse_glp(glp).map_err(|e| CliError::parse(format!("synthetic pattern {pattern}: {e}")))
}

/// `lsopc profile`: optimize a built-in synthetic pattern under the
/// in-memory aggregator and print the per-span self/total-time table.
pub fn profile(args: &[String]) -> CliResult {
    let flags = Flags::parse(args)?;
    let pattern = flags
        .get("pattern")
        .filter(|v| !v.is_empty())
        .unwrap_or("wire")
        .to_string();
    let iters: usize = flags.num("iters", 10)?;
    let kernels: usize = flags.num("kernels", 24)?;
    let recovery = recovery_policy(&flags)?;
    let design = synthetic_layout(&pattern)?;
    let setup = build_sim(&flags, 256)?;
    let (grid, pixel_nm) = (setup.grid, setup.pixel_nm);
    let target = rasterize(&design, grid, grid, pixel_nm);

    // `profile` always aggregates in memory; --trace/--metrics add the
    // event stream and the JSON document on top.
    let memory = Arc::new(MemorySink::new());
    let mut sinks: Vec<Arc<dyn TraceSink>> = vec![memory.clone()];
    if let Some(path) = flags.get("trace").filter(|v| !v.is_empty()) {
        let sink = JsonlSink::create(std::path::Path::new(path))
            .map_err(|e| CliError::io(format!("cannot create {path}: {e}")))?;
        sinks.push(Arc::new(sink));
    }
    lsopc_trace::install(Arc::new(FanoutSink::new(sinks)));
    let ilt = LevelSetIlt::builder()
        .max_iterations(iters)
        .recovery(recovery)
        .build();
    let outcome = ilt
        .optimize(&setup.sim, &target)
        .map_err(CliError::from_optimize);
    lsopc_trace::flush();
    lsopc_trace::uninstall();
    let result = outcome?;

    let report = memory.report();
    println!(
        "profile: pattern `{pattern}`, {grid} px, K = {kernels}, {} iterations, {} threads, {:.2}s",
        result.iterations, setup.pool_threads, result.runtime_s
    );
    print!("{}", report.render_text());
    if let Some(path) = flags.get("metrics").filter(|v| !v.is_empty()) {
        std::fs::write(path, report.to_json())
            .map_err(|e| CliError::io(format!("cannot write {path}: {e}")))?;
    }
    Ok(Outcome::Completed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lsopc_cli_{}_{name}", std::process::id()))
    }

    fn to_args(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn optimize_then_evaluate_roundtrip() {
        let design_path = tmpfile("design.glp");
        let mask_path = tmpfile("mask.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL cli_test\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");

        optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            mask_path.to_str().expect("utf8"),
            "--grid",
            "128",
            "--kernels",
            "4",
            "--iters",
            "4",
        ]))
        .expect("optimize runs");
        assert!(mask_path.exists());

        evaluate(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--mask",
            mask_path.to_str().expect("utf8"),
            "--grid",
            "128",
            "--kernels",
            "4",
        ]))
        .expect("evaluate runs");

        std::fs::remove_file(design_path).ok();
        std::fs::remove_file(mask_path).ok();
    }

    #[test]
    fn optimize_runs_at_every_precision() {
        let design_path = tmpfile("prec_design.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL prec_test\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        for prec in ["f64", "f32", "mixed"] {
            let mask_path = tmpfile(&format!("prec_{prec}.glp"));
            optimize(&to_args(&[
                "--glp",
                design_path.to_str().expect("utf8"),
                "--out",
                mask_path.to_str().expect("utf8"),
                "--grid",
                "128",
                "--kernels",
                "4",
                "--iters",
                "3",
                "--precision",
                prec,
            ]))
            .unwrap_or_else(|e| panic!("--precision {prec} runs: {e}"));
            assert!(mask_path.exists(), "--precision {prec} wrote a mask");
            std::fs::remove_file(mask_path).ok();
        }
        std::fs::remove_file(design_path).ok();
    }

    #[test]
    fn optimize_accepts_rfft_flag() {
        let design_path = tmpfile("rfft_design.glp");
        let mask_path = tmpfile("rfft_mask.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL rfft_test\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            mask_path.to_str().expect("utf8"),
            "--grid",
            "128",
            "--kernels",
            "4",
            "--iters",
            "3",
            "--rfft",
            "on",
        ]))
        .expect("--rfft on runs");
        assert!(mask_path.exists(), "--rfft on wrote a mask");
        // The flag sets a process-wide default; restore it for the other
        // tests in this binary.
        lsopc_fft::set_rfft_default(false);
        std::fs::remove_file(design_path).ok();
        std::fs::remove_file(mask_path).ok();
    }

    #[test]
    fn invalid_rfft_is_a_usage_error() {
        use crate::error::Category;
        let design_path = tmpfile("rfft_bad_design.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL rfft_bad\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        let err = optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            "y.glp",
            "--rfft",
            "maybe",
        ]))
        .expect_err("bad rfft value");
        assert_eq!(err.category(), Category::Usage);
        assert!(err.to_string().contains("--rfft"));
        std::fs::remove_file(design_path).ok();
    }

    #[test]
    fn invalid_precision_is_a_usage_error() {
        use crate::error::Category;
        let err = optimize(&to_args(&[
            "--glp",
            "x.glp",
            "--out",
            "y.glp",
            "--precision",
            "f16",
        ]))
        .expect_err("bad precision");
        assert_eq!(err.category(), Category::Usage);
        assert!(err.to_string().contains("--precision"));
    }

    #[test]
    fn optimize_runs_tiled_with_warm_start_and_schedule() {
        let design_path = tmpfile("tiled_design.glp");
        let mask_path = tmpfile("tiled_mask.glp");
        // Two copies of one feature so the warm-start cache gets a hit.
        std::fs::write(
            &design_path,
            "BEGIN\nCELL tiled_test\n\
             RECT 160 64 160 448 ;\n\
             RECT 1184 1088 160 448 ;\nEND\n",
        )
        .expect("write design");
        optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            mask_path.to_str().expect("utf8"),
            "--grid",
            "512",
            "--kernels",
            "4",
            "--iters",
            "3",
            "--tile",
            "128",
            "--halo",
            "64",
            "--warm-start",
            "mem",
            "--schedule",
            "off",
        ]))
        .expect("tiled optimize runs");
        assert!(mask_path.exists(), "tiled run wrote a mask");
        std::fs::remove_file(design_path).ok();
        std::fs::remove_file(mask_path).ok();
    }

    #[test]
    fn optimize_accepts_an_explicit_schedule() {
        let design_path = tmpfile("sched_design.glp");
        let mask_path = tmpfile("sched_mask.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL sched_test\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            mask_path.to_str().expect("utf8"),
            "--grid",
            "256",
            "--kernels",
            "4",
            "--iters",
            "4",
            "--schedule",
            "128,4,3,2",
        ]))
        .expect("scheduled optimize runs");
        assert!(mask_path.exists(), "scheduled run wrote a mask");
        std::fs::remove_file(design_path).ok();
        std::fs::remove_file(mask_path).ok();
    }

    #[test]
    fn schedule_and_tiling_misuse_are_usage_errors() {
        use crate::error::Category;
        let base = ["--glp", "x.glp", "--out", "y.glp"];
        for (extra, needle) in [
            (&["--schedule", "fast"][..], "--schedule"),
            (&["--schedule", "100,4,3,2"][..], "power of two"),
            (&["--schedule", "128,4,0,2"][..], "positive"),
            (&["--schedule", "128,4,3"][..], "--schedule"),
            (&["--warm-start", "mem"][..], "--tile"),
            (&["--halo", "64"][..], "--tile"),
            (&["--tile", "100", "--halo", "64"][..], "power of two"),
            (&["--tile", "128", "--halo", "256"][..], "smaller"),
            (&["--tile", "128", "--warm-start", ""][..], "--warm-start"),
            (&["--tile", "128", "--precision", "f32"][..], "f64"),
        ] {
            let mut args = base.to_vec();
            args.extend_from_slice(extra);
            let err = optimize(&to_args(&args)).expect_err("misuse rejected");
            assert_eq!(err.category(), Category::Usage, "args {args:?}");
            assert!(
                err.to_string().contains(needle),
                "args {args:?}: `{err}` lacks `{needle}`"
            );
        }
    }

    #[test]
    fn optimize_requires_flags() {
        let err = optimize(&to_args(&["--glp", "x.glp"])).expect_err("missing --out");
        assert!(err.to_string().contains("--out") || err.to_string().contains("cannot read"));
    }

    #[test]
    fn error_categories_map_to_distinct_exit_codes() {
        use crate::error::Category;

        // Missing required flag → usage (2).
        let err = optimize(&to_args(&[])).expect_err("missing flags");
        assert_eq!(err.category(), Category::Usage);
        assert_eq!(err.exit_code(), 2);

        // Bad --recover value → usage (2).
        let err = optimize(&to_args(&[
            "--glp",
            "x.glp",
            "--out",
            "y.glp",
            "--recover",
            "maybe",
        ]))
        .expect_err("bad recover");
        assert_eq!(err.category(), Category::Usage);
        assert!(err.to_string().contains("--recover"));

        // Unreadable input file → I/O (3).
        let err = optimize(&to_args(&[
            "--glp",
            "/nonexistent/lsopc.glp",
            "--out",
            "y.glp",
        ]))
        .expect_err("unreadable file");
        assert_eq!(err.category(), Category::Io);
        assert_eq!(err.exit_code(), 3);

        // Malformed layout → parse (4), with the line number surfaced.
        let bad = tmpfile("bad.glp");
        std::fs::write(&bad, "RECT 1 2 3 ;\n").expect("write bad layout");
        let err = optimize(&to_args(&[
            "--glp",
            bad.to_str().expect("utf8"),
            "--out",
            "y.glp",
        ]))
        .expect_err("parse failure");
        assert_eq!(err.category(), Category::Parse);
        assert_eq!(err.exit_code(), 4);
        assert!(err.to_string().contains("line 1"));
        std::fs::remove_file(bad).ok();

        // Unusable simulator configuration → setup (5).
        let design = tmpfile("setup.glp");
        std::fs::write(&design, "BEGIN\nRECT 0 0 64 64 ;\nEND\n").expect("write design");
        let err = optimize(&to_args(&[
            "--glp",
            design.to_str().expect("utf8"),
            "--out",
            "y.glp",
            "--grid",
            "3",
        ]))
        .expect_err("setup failure");
        assert_eq!(err.category(), Category::Setup);
        assert_eq!(err.exit_code(), 5);
        std::fs::remove_file(design).ok();
    }

    #[test]
    fn empty_target_is_an_optimizer_error() {
        use crate::error::Category;
        // A design whose only shape lies outside the field rasterizes to
        // an empty target, which the optimizer rejects (exit code 6).
        let design = tmpfile("offfield.glp");
        std::fs::write(&design, "BEGIN\nRECT 900000000 900000000 64 64 ;\nEND\n")
            .expect("write design");
        let err = optimize(&to_args(&[
            "--glp",
            design.to_str().expect("utf8"),
            "--out",
            "y.glp",
            "--grid",
            "128",
            "--kernels",
            "4",
        ]))
        .expect_err("empty target");
        assert_eq!(err.category(), Category::Optimize);
        assert_eq!(err.exit_code(), 6);
        std::fs::remove_file(design).ok();
    }

    #[test]
    fn profile_writes_trace_and_metrics() {
        let trace_path = tmpfile("profile.jsonl");
        let metrics_path = tmpfile("profile.json");
        profile(&to_args(&[
            "--pattern",
            "wire",
            "--grid",
            "128",
            "--kernels",
            "4",
            "--iters",
            "2",
            "--trace",
            trace_path.to_str().expect("utf8"),
            "--metrics",
            metrics_path.to_str().expect("utf8"),
        ]))
        .expect("profile runs");

        let jsonl = std::fs::read_to_string(&trace_path).expect("trace file");
        assert!(jsonl.lines().count() > 10, "events were streamed");
        assert!(jsonl.contains("\"kind\": \"span\""));
        assert!(jsonl.contains("\"kind\": \"iter\""));
        let json = std::fs::read_to_string(&metrics_path).expect("metrics file");
        assert!(json.contains("fft2d."), "profile saw FFT spans");
        std::fs::remove_file(trace_path).ok();
        std::fs::remove_file(metrics_path).ok();
    }

    #[test]
    fn profile_rejects_unknown_pattern() {
        use crate::error::Category;
        let err = profile(&to_args(&["--pattern", "nonsense"])).expect_err("bad pattern");
        assert_eq!(err.category(), Category::Usage);
        assert!(err.to_string().contains("--pattern"));
    }

    #[test]
    fn suite_runs_one_small_case() {
        suite(&to_args(&[
            "--cases",
            "4",
            "--grid",
            "128",
            "--kernels",
            "4",
            "--iters",
            "2",
        ]))
        .expect("suite runs");
    }

    #[test]
    fn deadline_zero_stops_gracefully_with_best_so_far_mask() {
        let design_path = tmpfile("deadline_design.glp");
        let mask_path = tmpfile("deadline_mask.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL deadline_test\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        // A zero-second deadline expires at the first iteration boundary;
        // the run must still finish cleanly and write the initial mask.
        let outcome = optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            mask_path.to_str().expect("utf8"),
            "--grid",
            "128",
            "--kernels",
            "4",
            "--iters",
            "8",
            "--deadline",
            "0",
        ]))
        .expect("deadline stop is graceful, not an error");
        assert_eq!(outcome, Outcome::Completed, "deadline stop exits 0");
        assert!(mask_path.exists(), "best-so-far mask was written");
        std::fs::remove_file(design_path).ok();
        std::fs::remove_file(mask_path).ok();
    }

    #[test]
    fn checkpoint_then_resume_completes_the_run() {
        let design_path = tmpfile("ck_design.glp");
        let mask_path = tmpfile("ck_mask.glp");
        let ck_path = tmpfile("ck_state.lsckpt");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL ck_test\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        let common = |extra: &[&str]| {
            let mut args = vec![
                "--glp",
                design_path.to_str().expect("utf8"),
                "--out",
                mask_path.to_str().expect("utf8"),
                "--grid",
                "128",
                "--kernels",
                "4",
                "--iters",
                "4",
            ];
            args.extend_from_slice(extra);
            to_args(&args)
        };
        // Phase 1: stop after 2 iterations via the budget; the graceful
        // stop must write a final checkpoint even though the periodic
        // interval (default 10) never fired.
        let outcome = optimize(&common(&[
            "--iter-budget",
            "2",
            "--checkpoint",
            ck_path.to_str().expect("utf8"),
        ]))
        .expect("budget stop is graceful");
        assert_eq!(outcome, Outcome::Completed);
        assert!(ck_path.exists(), "graceful stop wrote a checkpoint");
        // Phase 2: resume from it and run to completion.
        let outcome = optimize(&common(&["--resume", ck_path.to_str().expect("utf8")]))
            .expect("resume runs to completion");
        assert_eq!(outcome, Outcome::Completed);
        assert!(mask_path.exists());
        std::fs::remove_file(design_path).ok();
        std::fs::remove_file(mask_path).ok();
        std::fs::remove_file(ck_path).ok();
    }

    #[test]
    fn missing_resume_file_is_a_checkpoint_error() {
        use crate::error::Category;
        let design_path = tmpfile("resume_missing.glp");
        std::fs::write(
            &design_path,
            "BEGIN\nCELL resume_missing\nRECT 832 480 384 1088 ;\nEND\n",
        )
        .expect("write design");
        let err = optimize(&to_args(&[
            "--glp",
            design_path.to_str().expect("utf8"),
            "--out",
            "y.glp",
            "--grid",
            "128",
            "--kernels",
            "4",
            "--resume",
            "/nonexistent/lsopc.lsckpt",
        ]))
        .expect_err("missing resume file");
        assert_eq!(err.category(), Category::Checkpoint);
        assert_eq!(err.exit_code(), 9);
        std::fs::remove_file(design_path).ok();
    }

    #[test]
    fn lifecycle_flag_misuse_is_a_usage_error() {
        use crate::error::Category;
        let base = ["--glp", "x.glp", "--out", "y.glp"];
        for (extra, needle) in [
            (&["--deadline", "soon"][..], "--deadline"),
            (&["--deadline", "-1"][..], "--deadline"),
            (&["--max-wall", "inf"][..], "--max-wall"),
            (&["--iter-budget", "0"][..], "--iter-budget"),
            (&["--checkpoint-every", "3"][..], "--checkpoint"),
            (
                &["--checkpoint", "c.lsckpt", "--checkpoint-every", "0"][..],
                "--checkpoint-every",
            ),
            (&["--checkpoint", ""][..], "--checkpoint"),
            (&["--resume", ""][..], "--resume"),
        ] {
            let mut args = base.to_vec();
            args.extend_from_slice(extra);
            let err = optimize(&to_args(&args)).expect_err("misuse rejected");
            assert_eq!(err.category(), Category::Usage, "args {args:?}");
            assert!(
                err.to_string().contains(needle),
                "args {args:?}: `{err}` lacks `{needle}`"
            );
        }
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;

    #[test]
    fn report_subcommand_runs() {
        let dir = std::env::temp_dir();
        let design = dir.join(format!("lsopc_rep_{}.glp", std::process::id()));
        std::fs::write(&design, "BEGIN\nCELL rep\nRECT 832 480 384 1088 ;\nEND\n")
            .expect("write design");
        // Report the design against itself (uncorrected mask).
        report(
            &[
                "--glp",
                design.to_str().expect("utf8"),
                "--mask",
                design.to_str().expect("utf8"),
                "--grid",
                "128",
                "--kernels",
                "4",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .expect("report runs");
        std::fs::remove_file(design).ok();
    }
}
