//! Repeated-tile layout synthesis for warm-start benchmarking.
//!
//! AdaOPC's observation (PAPERS.md) is that production layouts repeat a
//! small vocabulary of local patterns; a content-addressed warm-start
//! cache converts that repetition into skipped iterations. This generator
//! builds the idealized version of that workload: one contact motif
//! stamped on a regular `cell_nm` grid, so every tile of a [`TiledIlt`]
//! run whose core matches the cell period sees *identical* content up to
//! whole-pixel translation — a 100 % cache-hit workload after the first
//! tile. Real layouts sit between this and the fully irregular
//! [`ContactArraySpec`](crate::ContactArraySpec) case.

use crate::{CaseSpec, FIELD_NM};
use lsopc_geometry::{Layout, Rect, Shape};

/// Parameters of a periodic repeated-motif tile.
///
/// The motif is a `cluster × cluster` array of square contacts, centred
/// in each `cell_nm × cell_nm` cell of the field. Keeping the motif well
/// inside its cell guarantees that a tile's halo region sees only empty
/// field, which is what makes every populated tile translation-equivalent.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RepeatedTileSpec {
    /// Cell period, nm. Must divide the 2048 nm field evenly.
    pub cell_nm: i64,
    /// Contacts per motif row/column.
    pub cluster: usize,
    /// Contact side length, nm.
    pub size_nm: i64,
    /// Centre-to-centre contact pitch within the motif, nm.
    pub pitch_nm: i64,
}

impl RepeatedTileSpec {
    /// The default warm-start workload: 512 nm cells (a 4×4 tile grid),
    /// each holding a 3×3 cluster of 70 nm contacts on a 140 nm pitch.
    /// The motif spans 350 nm, leaving an 81 nm empty margin per side —
    /// wider than any reasonable tile halo.
    pub fn default_repeated() -> Self {
        Self {
            cell_nm: 512,
            cluster: 3,
            size_nm: 70,
            pitch_nm: 140,
        }
    }

    /// Number of cells per field side.
    pub fn cells_per_side(&self) -> usize {
        (FIELD_NM / self.cell_nm) as usize
    }

    /// Empty margin between the motif and its cell boundary, nm. Tile
    /// halos narrower than this see only empty field, which is the
    /// precondition for every tile hashing to the same warm-start key.
    pub fn margin_nm(&self) -> i64 {
        (self.cell_nm - self.motif_span()) / 2
    }

    fn motif_span(&self) -> i64 {
        (self.cluster as i64 - 1) * self.pitch_nm + self.size_nm
    }

    /// Generates the layout: the motif stamped once per cell.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (non-positive sizes, pitch
    /// smaller than the contact, empty cluster), `cell_nm` does not
    /// divide the field, or the motif does not fit inside a cell.
    pub fn generate(&self) -> Layout {
        assert!(self.size_nm > 0, "contact size must be positive");
        assert!(
            self.pitch_nm >= self.size_nm,
            "pitch must be at least the contact size"
        );
        assert!(self.cluster > 0, "cluster must be non-empty");
        assert!(
            self.cell_nm > 0 && FIELD_NM % self.cell_nm == 0,
            "cell period {} must divide the {FIELD_NM} nm field",
            self.cell_nm
        );
        let span = self.motif_span();
        assert!(
            span < self.cell_nm,
            "motif span {span} does not fit the {} nm cell",
            self.cell_nm
        );
        let offset = (self.cell_nm - span) / 2;

        let per_side = self.cells_per_side() as i64;
        let mut layout = Layout::new();
        layout.name = Some(format!(
            "repeated_{}x{}_cell{}",
            per_side, per_side, self.cell_nm
        ));
        for cy in 0..per_side {
            for cx in 0..per_side {
                let ox = cx * self.cell_nm + offset;
                let oy = cy * self.cell_nm + offset;
                for r in 0..self.cluster as i64 {
                    for c in 0..self.cluster as i64 {
                        layout.push(Shape::Rect(Rect::from_origin_size(
                            ox + c * self.pitch_nm,
                            oy + r * self.pitch_nm,
                            self.size_nm,
                            self.size_nm,
                        )));
                    }
                }
            }
        }
        layout
    }

    /// Wraps the generated layout in a [`CaseSpec`]-style descriptor.
    pub fn as_case(&self, index: usize) -> (CaseSpec, Layout) {
        let layout = self.generate();
        let case = CaseSpec {
            index,
            name: format!("R{}", index + 1),
            target_area_nm2: layout.total_area(),
            seed: 0,
        };
        (case, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_geometry::rasterize;

    #[test]
    fn default_spec_fills_every_cell() {
        let spec = RepeatedTileSpec::default_repeated();
        let layout = spec.generate();
        let cells = spec.cells_per_side() * spec.cells_per_side();
        assert_eq!(cells, 16);
        assert_eq!(layout.len(), cells * 9);
        assert_eq!(layout.total_area(), (cells * 9) as i64 * 70 * 70);
        assert!(spec.margin_nm() >= 64, "margin {}", spec.margin_nm());
    }

    #[test]
    fn cells_are_translations_of_each_other() {
        let spec = RepeatedTileSpec::default_repeated();
        let grid = rasterize(&spec.generate(), 1024, 1024, 2.0);
        let cell_px = (spec.cell_nm / 2) as usize;
        // Every cell's raster block must equal cell (0, 0)'s block.
        for cy in 0..spec.cells_per_side() {
            for cx in 0..spec.cells_per_side() {
                for y in 0..cell_px {
                    for x in 0..cell_px {
                        assert_eq!(
                            grid[(cx * cell_px + x, cy * cell_px + y)],
                            grid[(x, y)],
                            "cell ({cx},{cy}) differs at ({x},{y})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn as_case_records_produced_area() {
        let (case, layout) = RepeatedTileSpec::default_repeated().as_case(0);
        assert_eq!(case.name, "R1");
        assert_eq!(case.target_area_nm2, layout.total_area());
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn non_dividing_cell_panics() {
        let _ = RepeatedTileSpec {
            cell_nm: 500,
            ..RepeatedTileSpec::default_repeated()
        }
        .generate();
    }

    #[test]
    #[should_panic(expected = "fit")]
    fn oversized_motif_panics() {
        let _ = RepeatedTileSpec {
            cluster: 5,
            ..RepeatedTileSpec::default_repeated()
        }
        .generate();
    }
}
