//! ICCAD 2013-style synthetic benchmark suite.
//!
//! The contest's ten IBM 32 nm M1 benchmark tiles are proprietary, so this
//! crate synthesizes stand-ins (see DESIGN.md §2): deterministic, seeded
//! rectilinear layouts in the same 2048 x 2048 nm field whose **pattern
//! areas match the paper's Table I exactly** (215344 … 102400 nm²) and
//! whose feature mix (wires, L/T shapes, pads) is metal-1-like.
//!
//! # Example
//!
//! ```
//! use lsopc_benchsuite::Iccad2013Suite;
//!
//! let suite = Iccad2013Suite::new();
//! let case = &suite.cases()[0];
//! assert_eq!(case.name, "B1");
//! let layout = suite.layout(case);
//! assert_eq!(layout.total_area(), 215344); // Table I pattern area
//! ```

#![warn(missing_docs)]

mod cases;
mod contacts;
mod generator;
mod repeated;

pub use cases::{CaseSpec, FIELD_NM, PAPER_PATTERN_AREAS};
pub use contacts::ContactArraySpec;
pub use generator::generate_layout;
pub use repeated::RepeatedTileSpec;

use lsopc_geometry::Layout;

/// The ten-benchmark suite (B1–B10).
#[derive(Clone, Debug, Default)]
pub struct Iccad2013Suite {
    cases: Vec<CaseSpec>,
}

impl Iccad2013Suite {
    /// Creates the suite with the paper's pattern areas.
    pub fn new() -> Self {
        Self {
            cases: CaseSpec::all(),
        }
    }

    /// The case descriptors B1..B10.
    pub fn cases(&self) -> &[CaseSpec] {
        &self.cases
    }

    /// Generates (deterministically) the layout of a case.
    pub fn layout(&self, case: &CaseSpec) -> Layout {
        generate_layout(case)
    }

    /// Generates every `(case, layout)` pair.
    pub fn all_layouts(&self) -> Vec<(CaseSpec, Layout)> {
        self.cases
            .iter()
            .map(|c| (c.clone(), self.layout(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_cases_with_paper_areas() {
        let suite = Iccad2013Suite::new();
        assert_eq!(suite.cases().len(), 10);
        for (case, layout) in suite.all_layouts() {
            assert_eq!(
                layout.total_area(),
                case.target_area_nm2,
                "{} area mismatch",
                case.name
            );
        }
    }
}
