//! Deterministic M1-style layout synthesis with exact pattern area.
//!
//! The generator fills the 2048 nm field with a metal-1-like mix of
//! horizontal/vertical wires, L- and T-shaped polygons and square pads,
//! all with ≥ 56 nm critical dimensions (isolated features much below
//! ~50 nm do not print in this 193 nm / NA 1.35 system, matching the
//! contest's 32 nm-node M1 drawn sizes) and ≥ 70 nm spacing, then hits
//! the target area *exactly* with two dedicated adjuster wires of heights
//! 61 nm and 60 nm: because gcd(61, 60) = 1, any residual `d` decomposes
//! as `d = 61·a + 60·b` with small `a, b`, which become length tweaks of
//! the two adjusters.

use crate::CaseSpec;
use lsopc_geometry::{Layout, Point, Polygon, Rect, Shape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Field margin kept clear of patterns (optical halo), nm.
const MARGIN: i64 = 160;
/// Minimum spacing between shape bounding boxes, nm.
const SPACING: i64 = 70;
/// Field size, nm.
const FIELD: i64 = crate::FIELD_NM;

/// Generates the deterministic layout of a case, with
/// `layout.total_area() == case.target_area_nm2` guaranteed.
///
/// # Panics
///
/// Panics if the target area is too small to host the adjuster wires
/// (`< 40_000 nm²`) or larger than the usable field.
pub fn generate_layout(case: &CaseSpec) -> Layout {
    let target = case.target_area_nm2;
    assert!(target >= 40_000, "target area too small: {target}");
    let usable = (FIELD - 2 * MARGIN) * (FIELD - 2 * MARGIN);
    assert!(target < usable / 3, "target area too large: {target}");

    let mut rng = StdRng::seed_from_u64(case.seed);
    let mut layout = Layout::new();
    layout.name = Some(case.name.clone());
    let mut occupied: Vec<Rect> = Vec::new();

    // The two area adjusters: horizontal wires of heights 61 and 60 nm,
    // placed at the bottom of the field with free space to their right.
    let adj1 = Rect::from_origin_size(MARGIN, FIELD - MARGIN - 61, 400, 61);
    let adj2 = Rect::from_origin_size(MARGIN, FIELD - MARGIN - 61 - SPACING - 60, 400, 60);
    occupied.push(adj1.inflated(SPACING + 300)); // reserve stretch room
    occupied.push(adj2.inflated(SPACING + 300));

    let mut placed_area = adj1.area() + adj2.area();

    // Random feature placement until close to the target.
    let mut stall = 0;
    while placed_area < target - 3_600 && stall < 400 {
        let remaining = target - placed_area;
        match random_shape(&mut rng, remaining) {
            Some(shape) => match try_place(&mut rng, &shape, &occupied) {
                Some(placed) => {
                    placed_area += placed.area();
                    occupied.push(placed.bbox().inflated(SPACING));
                    layout.push(placed);
                    stall = 0;
                }
                None => stall += 1,
            },
            None => break,
        }
    }
    // Mop up any sizeable residue with thin 60nm wires.
    while placed_area < target - 3_660 && stall < 800 {
        let remaining = target - placed_area;
        let len = (remaining / 60).clamp(60, 420);
        let shape = Shape::Rect(Rect::from_origin_size(0, 0, len, 60));
        match try_place(&mut rng, &shape, &occupied) {
            Some(placed) => {
                placed_area += placed.area();
                occupied.push(placed.bbox().inflated(SPACING));
                layout.push(placed);
            }
            None => stall += 1,
        }
    }

    // Exact-area adjustment: d = 61·a + 60·b.
    let d = target - placed_area;
    let mut a = d.rem_euclid(60);
    let mut b = (d - 61 * a) / 60;
    // Keep both adjuster lengths in a sane range by shifting multiples of
    // 60·61 between them (61·60 = 60·61).
    while b < -300 {
        b += 61;
        a -= 60;
    }
    while a < -300 {
        a += 60;
        b -= 61;
    }
    let len1 = 400 + a;
    let len2 = 400 + b;
    assert!(
        len1 >= 60 && len2 >= 60 && len1 <= 800 && len2 <= 800,
        "adjuster lengths out of range: {len1}, {len2} (d = {d})"
    );
    layout.push(Shape::Rect(Rect::from_origin_size(
        adj1.x0, adj1.y0, len1, 61,
    )));
    layout.push(Shape::Rect(Rect::from_origin_size(
        adj2.x0, adj2.y0, len2, 60,
    )));
    debug_assert_eq!(layout.total_area(), target);
    layout
}

/// Draws a random M1-ish shape whose area does not exceed the remaining
/// budget (minus the adjusters' head-room), or `None` when nothing fits.
fn random_shape(rng: &mut StdRng, remaining: i64) -> Option<Shape> {
    let budget = remaining - 3_660;
    if budget < 56 * 56 {
        return None;
    }
    for _ in 0..20 {
        let shape = match rng.gen_range(0..10) {
            // Vertical wire.
            0..=2 => {
                let w = *[56i64, 64, 72, 80]
                    .get(rng.gen_range(0..4))
                    .expect("static");
                let h = rng.gen_range(160..=720);
                Shape::Rect(Rect::from_origin_size(0, 0, w, h))
            }
            // Horizontal wire.
            3..=5 => {
                let h = *[56i64, 64, 72, 80]
                    .get(rng.gen_range(0..4))
                    .expect("static");
                let w = rng.gen_range(160..=720);
                Shape::Rect(Rect::from_origin_size(0, 0, w, h))
            }
            // Square pad.
            6 => {
                let s = rng.gen_range(80..=140);
                Shape::Rect(Rect::from_origin_size(0, 0, s, s))
            }
            // L-shape.
            7..=8 => l_shape(rng),
            // T-shape.
            _ => t_shape(rng),
        };
        if shape.area() <= budget {
            return Some(shape);
        }
    }
    // Fall back to the smallest pad.
    Some(Shape::Rect(Rect::from_origin_size(0, 0, 80, 80)))
}

fn l_shape(rng: &mut StdRng) -> Shape {
    let w = rng.gen_range(56..=80); // arm width
    let lx = rng.gen_range(160..=420); // horizontal arm length
    let ly = rng.gen_range(160..=420); // vertical arm length
    let poly = Polygon::new(vec![
        Point::new(0, 0),
        Point::new(lx, 0),
        Point::new(lx, w),
        Point::new(w, w),
        Point::new(w, ly),
        Point::new(0, ly),
    ])
    .expect("rectilinear by construction");
    Shape::Polygon(poly)
}

fn t_shape(rng: &mut StdRng) -> Shape {
    let w = rng.gen_range(56..=80); // stem width
    let bar = rng.gen_range(200..=420); // bar length
    let stem = rng.gen_range(160..=360); // stem length
    let cx = bar / 2;
    let poly = Polygon::new(vec![
        Point::new(0, 0),
        Point::new(bar, 0),
        Point::new(bar, w),
        Point::new(cx + w / 2, w),
        Point::new(cx + w / 2, w + stem),
        Point::new(cx - w / 2, w + stem),
        Point::new(cx - w / 2, w),
        Point::new(0, w),
    ])
    .expect("rectilinear by construction");
    Shape::Polygon(poly)
}

/// Tries random positions for a shape; returns the translated shape on
/// success.
fn try_place(rng: &mut StdRng, shape: &Shape, occupied: &[Rect]) -> Option<Shape> {
    let bbox = shape.bbox();
    let (w, h) = (bbox.width(), bbox.height());
    let max_x = FIELD - MARGIN - w;
    let max_y = FIELD - MARGIN - h;
    if max_x <= MARGIN || max_y <= MARGIN {
        return None;
    }
    for _ in 0..60 {
        let x = rng.gen_range(MARGIN..=max_x);
        let y = rng.gen_range(MARGIN..=max_y);
        let candidate = Rect::from_origin_size(x, y, w, h);
        if occupied.iter().all(|r| !r.intersects(&candidate)) {
            return Some(shape.translated(x - bbox.x0, y - bbox.y0));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_geometry::rasterize;

    fn case(area: i64, seed: u64) -> CaseSpec {
        CaseSpec {
            index: 0,
            name: "T".to_string(),
            target_area_nm2: area,
            seed,
        }
    }

    #[test]
    fn exact_area_across_seeds_and_sizes() {
        for (i, &area) in crate::PAPER_PATTERN_AREAS.iter().enumerate() {
            let layout = generate_layout(&case(area, 77 + i as u64));
            assert_eq!(layout.total_area(), area, "case {i}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_layout(&case(215344, 5));
        let b = generate_layout(&case(215344, 5));
        assert_eq!(a, b);
        let c = generate_layout(&case(215344, 6));
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_stay_inside_margin() {
        let layout = generate_layout(&case(286234, 3));
        let bbox = layout.bbox().expect("non-empty");
        assert!(bbox.x0 >= MARGIN && bbox.y0 >= MARGIN);
        assert!(bbox.x1 <= FIELD - MARGIN && bbox.y1 <= FIELD - MARGIN);
    }

    #[test]
    fn shapes_do_not_overlap() {
        // The rasterized area must equal the summed shape areas — any
        // overlap would make it smaller.
        let layout = generate_layout(&case(169280, 9));
        let grid = rasterize(&layout, 2048, 2048, 1.0);
        assert_eq!(grid.sum() as i64, layout.total_area());
    }

    #[test]
    fn respects_minimum_feature_size() {
        let layout = generate_layout(&case(128544, 11));
        for shape in layout.shapes() {
            let bbox = shape.bbox();
            assert!(
                bbox.width() >= 56 && bbox.height() >= 56,
                "feature below 56nm: {bbox}"
            );
        }
    }

    #[test]
    fn has_polygon_variety() {
        let layout = generate_layout(&case(317581, 8));
        let polys = layout
            .shapes()
            .iter()
            .filter(|s| matches!(s, Shape::Polygon(_)))
            .count();
        let rects = layout.shapes().len() - polys;
        assert!(polys >= 1, "expected L/T polygons");
        assert!(rects >= 3, "expected wires and pads");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_target_panics() {
        let _ = generate_layout(&case(10_000, 1));
    }
}
