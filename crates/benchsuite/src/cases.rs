//! Benchmark case descriptors.

use serde::{Deserialize, Serialize};

/// The contest field size: 2048 x 2048 nm at 1 nm²/px.
pub const FIELD_NM: i64 = 2048;

/// Pattern areas (nm²) of B1–B10 from the paper's Table I.
pub const PAPER_PATTERN_AREAS: [i64; 10] = [
    215344, 169280, 213504, 82560, 281958, 286234, 229149, 128544, 317581, 102400,
];

/// Descriptor of one synthetic benchmark case.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseSpec {
    /// Zero-based index (0 = B1).
    pub index: usize,
    /// Case name, `B1`..`B10`.
    pub name: String,
    /// Exact pattern area to synthesize, in nm².
    pub target_area_nm2: i64,
    /// RNG seed for the deterministic generator.
    pub seed: u64,
}

impl CaseSpec {
    /// All ten cases with the paper's pattern areas and fixed seeds.
    pub fn all() -> Vec<CaseSpec> {
        PAPER_PATTERN_AREAS
            .iter()
            .enumerate()
            .map(|(i, &area)| CaseSpec {
                index: i,
                name: format!("B{}", i + 1),
                target_area_nm2: area,
                seed: 0x1CCAD2013 + i as u64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_cases_named_b1_to_b10() {
        let cases = CaseSpec::all();
        assert_eq!(cases.len(), 10);
        assert_eq!(cases[0].name, "B1");
        assert_eq!(cases[9].name, "B10");
        assert_eq!(cases[3].target_area_nm2, 82560);
    }

    #[test]
    fn seeds_are_distinct() {
        let cases = CaseSpec::all();
        for i in 0..cases.len() {
            for j in i + 1..cases.len() {
                assert_ne!(cases[i].seed, cases[j].seed);
            }
        }
    }
}
