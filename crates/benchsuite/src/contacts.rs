//! Contact/via-array layout synthesis.
//!
//! The contest's B10 tile is a via-like array (note its pattern area,
//! 102400 nm² = 320²). Contact layers stress OPC differently from metal
//! routing: dense 2-D arrays of small squares with strong optical
//! cross-talk between neighbours. This generator synthesizes such tiles
//! for experiments beyond the ten metal-style cases.

use crate::{CaseSpec, FIELD_NM};
use lsopc_geometry::{Layout, Rect, Shape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic contact-array tile.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ContactArraySpec {
    /// Contact side length, nm (square contacts).
    pub size_nm: i64,
    /// Centre-to-centre pitch, nm.
    pub pitch_nm: i64,
    /// Number of columns and rows of the array grid.
    pub cols: usize,
    /// Rows of the array grid.
    pub rows: usize,
    /// Fraction of sites populated (1.0 = full array; lower values make
    /// the irregular "shotgun" patterns that are hardest for OPC).
    pub fill: f64,
    /// RNG seed used when `fill < 1.0`.
    pub seed: u64,
}

impl ContactArraySpec {
    /// A 32 nm-node-flavoured default: 70 nm contacts on a 140 nm pitch,
    /// 10x10 sites, 70 % populated.
    pub fn default_via_array() -> Self {
        Self {
            size_nm: 70,
            pitch_nm: 140,
            cols: 10,
            rows: 10,
            fill: 0.7,
            seed: 0xC0117AC7,
        }
    }

    /// Generates the layout, centred in the 2048 nm field.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (non-positive sizes, pitch
    /// smaller than the contact, `fill` outside `(0, 1]`) or the array
    /// does not fit the field.
    pub fn generate(&self) -> Layout {
        assert!(self.size_nm > 0, "contact size must be positive");
        assert!(
            self.pitch_nm >= self.size_nm,
            "pitch must be at least the contact size"
        );
        assert!(self.cols > 0 && self.rows > 0, "array must be non-empty");
        assert!(
            self.fill > 0.0 && self.fill <= 1.0,
            "fill must be in (0, 1]"
        );
        let span_x = (self.cols as i64 - 1) * self.pitch_nm + self.size_nm;
        let span_y = (self.rows as i64 - 1) * self.pitch_nm + self.size_nm;
        assert!(
            span_x < FIELD_NM && span_y < FIELD_NM,
            "array {span_x}x{span_y} exceeds the {FIELD_NM} nm field"
        );
        let x0 = (FIELD_NM - span_x) / 2;
        let y0 = (FIELD_NM - span_y) / 2;

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut layout = Layout::new();
        layout.name = Some(format!(
            "contacts_{}x{}_{}nm",
            self.cols, self.rows, self.size_nm
        ));
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.fill < 1.0 && rng.gen_range(0.0..1.0) >= self.fill {
                    continue;
                }
                let x = x0 + c as i64 * self.pitch_nm;
                let y = y0 + r as i64 * self.pitch_nm;
                layout.push(Shape::Rect(Rect::from_origin_size(
                    x,
                    y,
                    self.size_nm,
                    self.size_nm,
                )));
            }
        }
        layout
    }

    /// Wraps the generated layout in a [`CaseSpec`]-style descriptor (the
    /// area is whatever the fill produced).
    pub fn as_case(&self, index: usize) -> (CaseSpec, Layout) {
        let layout = self.generate();
        let case = CaseSpec {
            index,
            name: format!("V{}", index + 1),
            target_area_nm2: layout.total_area(),
            seed: self.seed,
        };
        (case, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsopc_geometry::rasterize;

    #[test]
    fn full_array_has_exact_count_and_area() {
        let spec = ContactArraySpec {
            fill: 1.0,
            ..ContactArraySpec::default_via_array()
        };
        let layout = spec.generate();
        assert_eq!(layout.len(), 100);
        assert_eq!(layout.total_area(), 100 * 70 * 70);
    }

    #[test]
    fn partial_fill_is_deterministic_and_sparse() {
        let spec = ContactArraySpec::default_via_array();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        assert!(a.len() < 100 && a.len() > 40, "fill 0.7 gave {}", a.len());
    }

    #[test]
    fn array_is_centred_and_disjoint() {
        let spec = ContactArraySpec {
            fill: 1.0,
            ..ContactArraySpec::default_via_array()
        };
        let layout = spec.generate();
        let bbox = layout.bbox().expect("non-empty");
        let margin_left = bbox.x0;
        let margin_right = FIELD_NM - bbox.x1;
        assert!((margin_left - margin_right).abs() <= 1);
        // Disjointness: raster area equals summed area.
        let grid = rasterize(&layout, 2048, 2048, 1.0);
        assert_eq!(grid.sum() as i64, layout.total_area());
    }

    #[test]
    fn as_case_records_produced_area() {
        let (case, layout) = ContactArraySpec::default_via_array().as_case(10);
        assert_eq!(case.name, "V11");
        assert_eq!(case.target_area_nm2, layout.total_area());
    }

    #[test]
    #[should_panic(expected = "pitch")]
    fn overlapping_pitch_panics() {
        let _ = ContactArraySpec {
            size_nm: 100,
            pitch_nm: 50,
            ..ContactArraySpec::default_via_array()
        }
        .generate();
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_array_panics() {
        let _ = ContactArraySpec {
            cols: 40,
            rows: 40,
            pitch_nm: 140,
            ..ContactArraySpec::default_via_array()
        }
        .generate();
    }
}
