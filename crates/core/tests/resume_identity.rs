//! Resume determinism: a run killed at iteration `k` (via an iteration
//! budget, standing in for a crash or Ctrl-C at the same boundary) and
//! resumed from its checkpoint must reproduce the uninterrupted run
//! bit-for-bit at f64 — the same mask, the same ψ, the same history
//! records (excluding wall-clock `elapsed_s`).
//!
//! Covered paths: the plain loop, the health-guard loop (state machine
//! and rollback target are checkpointed), the line-search loop, and the
//! coarse-to-fine schedule resumed in *both* stages. `scripts/check.sh`
//! runs this suite at `LSOPC_THREADS=1` and `=4` so the guarantee holds
//! across pool sizes.

use lsopc_core::{
    CheckpointSpec, IltResult, LevelSetIlt, RecoveryPolicy, ResolutionSchedule, RunControl,
    StopReason,
};
use lsopc_grid::Grid;
use lsopc_litho::LithoSimulator;
use lsopc_optics::OpticsConfig;
use std::path::PathBuf;

fn sim(grid_px: usize) -> LithoSimulator {
    // 4 nm pixels at 64 px (the golden-test geometry); 8 nm at 256 px so
    // the 128 px coarse stage still holds the optical band.
    let pixel_nm = if grid_px == 64 { 4.0 } else { 8.0 };
    LithoSimulator::from_optics(
        &OpticsConfig::iccad2013().with_kernel_count(4),
        grid_px,
        pixel_nm,
    )
    .expect("valid configuration")
}

fn wire_target(grid_px: usize) -> Grid<f64> {
    let s = grid_px / 64;
    Grid::from_fn(grid_px, grid_px, |x, y| {
        if (26 * s..38 * s).contains(&x) && (12 * s..52 * s).contains(&y) {
            1.0
        } else {
            0.0
        }
    })
}

fn tmp_ck(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lsopc_resume_{}_{name}.lsckpt", std::process::id()))
}

/// Asserts two results are bit-identical up to wall-clock fields.
fn assert_bit_identical(a: &IltResult, b: &IltResult, what: &str) {
    assert_eq!(a.iterations, b.iterations, "{what}: iteration count");
    assert_eq!(
        a.coarse_iterations, b.coarse_iterations,
        "{what}: coarse iteration count"
    );
    assert_eq!(a.converged, b.converged, "{what}: convergence flag");
    assert_eq!(a.history.len(), b.history.len(), "{what}: history length");
    for (ra, rb) in a.history.iter().zip(&b.history) {
        assert_eq!(ra.iteration, rb.iteration, "{what}: history iteration");
        for (va, vb, field) in [
            (ra.cost_nominal, rb.cost_nominal, "cost_nominal"),
            (ra.cost_pvb, rb.cost_pvb, "cost_pvb"),
            (ra.cost_total, rb.cost_total, "cost_total"),
            (ra.max_velocity, rb.max_velocity, "max_velocity"),
            (ra.time_step, rb.time_step, "time_step"),
            (ra.cg_beta, rb.cg_beta, "cg_beta"),
            (ra.lambda_scale, rb.lambda_scale, "lambda_scale"),
        ] {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{what}: iter {} field {field}: {va} vs {vb}",
                ra.iteration
            );
        }
        assert_eq!(ra.rolled_back, rb.rolled_back, "{what}: rollback flag");
        assert_eq!(ra.backoffs, rb.backoffs, "{what}: backoff count");
    }
    for (i, (va, vb)) in a.mask.as_slice().iter().zip(b.mask.as_slice()).enumerate() {
        assert_eq!(va.to_bits(), vb.to_bits(), "{what}: mask pixel {i}");
    }
    for (i, (va, vb)) in a
        .levelset
        .as_slice()
        .iter()
        .zip(b.levelset.as_slice())
        .enumerate()
    {
        assert_eq!(va.to_bits(), vb.to_bits(), "{what}: ψ pixel {i}");
    }
}

/// Runs `ilt` uninterrupted, then kill-at-`k`/resume, and asserts the
/// two trajectories match bitwise.
fn check_kill_resume(ilt: &LevelSetIlt, grid_px: usize, k: usize, name: &str) {
    let sim = sim(grid_px);
    let target = wire_target(grid_px);
    let baseline = ilt.optimize(&sim, &target).expect("baseline run");

    let ck = tmp_ck(&format!("{name}_k{k}"));
    std::fs::remove_file(&ck).ok();
    // "Crash" at iteration k: the budget stops the loop at the same
    // boundary a deadline or SIGINT would, and the graceful-stop path
    // writes a final checkpoint.
    let control = RunControl::new()
        .with_iteration_budget(k)
        .with_checkpoint(CheckpointSpec::new(&ck, 1));
    let killed = ilt
        .optimize_controlled(&sim, &target, &control)
        .expect("killed run");
    assert_eq!(
        killed.stopped,
        Some(StopReason::Budget),
        "{name} k={k}: budget stop recorded"
    );
    assert!(ck.exists(), "{name} k={k}: checkpoint written");

    let resumed = ilt
        .optimize_controlled(&sim, &target, &RunControl::new().with_resume(&ck))
        .expect("resumed run");
    assert!(
        resumed.stopped.is_none(),
        "{name} k={k}: resumed run completes"
    );
    assert_bit_identical(&baseline, &resumed, &format!("{name} k={k}"));
    std::fs::remove_file(ck).ok();
}

#[test]
fn plain_loop_resumes_bit_identically() {
    let ilt = LevelSetIlt::builder()
        .max_iterations(12)
        .recovery(RecoveryPolicy::Off)
        .build();
    for k in [1, 5, 9] {
        check_kill_resume(&ilt, 64, k, "plain");
    }
}

#[test]
fn guarded_loop_resumes_bit_identically() {
    // Default recovery: the guard's state machine and rollback ψ ride
    // in the checkpoint, so a resume replays identical guard decisions.
    let ilt = LevelSetIlt::builder().max_iterations(10).build();
    for k in [2, 6] {
        check_kill_resume(&ilt, 64, k, "guarded");
    }
}

#[test]
fn line_search_loop_resumes_bit_identically() {
    let ilt = LevelSetIlt::builder()
        .max_iterations(8)
        .lambda_t(4.0)
        .line_search(true)
        .build();
    check_kill_resume(&ilt, 64, 3, "line_search");
}

#[test]
fn scheduled_run_resumes_in_coarse_stage() {
    // 3 coarse + 2 fine iterations; killing at k=2 lands mid-coarse, so
    // the resume re-enters the coarse stage and still reproduces the
    // stage merge bitwise.
    let ilt = LevelSetIlt::builder()
        .max_iterations(5)
        .schedule(Some(ResolutionSchedule::new(128, 4, 3, 2)))
        .build();
    check_kill_resume(&ilt, 256, 2, "scheduled_coarse");
}

#[test]
fn scheduled_run_resumes_in_fine_stage() {
    // Killing at k=4 lands after the full coarse stage plus one fine
    // iteration: the checkpoint's CoarseCarry must reproduce the merged
    // history and diagnostics without re-running the coarse stage.
    let ilt = LevelSetIlt::builder()
        .max_iterations(5)
        .schedule(Some(ResolutionSchedule::new(128, 4, 3, 2)))
        .build();
    check_kill_resume(&ilt, 256, 4, "scheduled_fine");
}
