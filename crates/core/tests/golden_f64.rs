//! Golden bit-identity test: the precision-generic refactor must leave the
//! default f64 pipeline bit-identical to the pre-refactor output.
//!
//! The expected hashes below were captured on the commit immediately before
//! the `Scalar`-generic refactor (plain and line-search paths, 64 px grid,
//! K = 4, vertical wire target). The hash is FNV-1a over `f64::to_bits` of
//! every history field, the final mask, and the final level-set function —
//! any reordering of floating-point operations in the f64 path changes it.

use lsopc_core::{IltResult, LevelSetIlt};
use lsopc_grid::Grid;
use lsopc_litho::LithoSimulator;
use lsopc_optics::OpticsConfig;

fn sim() -> LithoSimulator {
    LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
        .expect("valid configuration")
}

fn wire_target() -> Grid<f64> {
    Grid::from_fn(64, 64, |x, y| {
        if (26..38).contains(&x) && (12..52).contains(&y) {
            1.0
        } else {
            0.0
        }
    })
}

/// FNV-1a over a stream of u64 words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn push_f64(&mut self, v: f64) {
        self.push(v.to_bits());
    }
}

fn result_hash(result: &IltResult) -> u64 {
    let mut h = Fnv::new();
    h.push(result.iterations as u64);
    h.push(u64::from(result.converged));
    for r in &result.history {
        h.push(r.iteration as u64);
        h.push_f64(r.cost_nominal);
        h.push_f64(r.cost_pvb);
        h.push_f64(r.cost_total);
        h.push_f64(r.max_velocity);
        h.push_f64(r.time_step);
        h.push_f64(r.cg_beta);
        h.push_f64(r.lambda_scale);
    }
    for &v in result.mask.as_slice() {
        h.push_f64(v);
    }
    for &v in result.levelset.as_slice() {
        h.push_f64(v);
    }
    h.0
}

#[test]
fn plain_path_is_bit_identical_to_pre_refactor_output() {
    let result = LevelSetIlt::builder()
        .max_iterations(8)
        .build()
        .optimize(&sim(), &wire_target())
        .expect("optimization runs");
    let hash = result_hash(&result);
    println!("plain golden hash: {hash:#018x}");
    assert_eq!(hash, GOLDEN_PLAIN, "plain-path f64 output drifted bitwise");
}

#[test]
fn line_search_path_is_bit_identical_to_pre_refactor_output() {
    let result = LevelSetIlt::builder()
        .max_iterations(6)
        .lambda_t(4.0)
        .line_search(true)
        .build()
        .optimize(&sim(), &wire_target())
        .expect("optimization runs");
    let hash = result_hash(&result);
    println!("line-search golden hash: {hash:#018x}");
    assert_eq!(
        hash, GOLDEN_LINE_SEARCH,
        "line-search f64 output drifted bitwise"
    );
}

const GOLDEN_PLAIN: u64 = 0xd0d0_3247_cdea_ac34;
const GOLDEN_LINE_SEARCH: u64 = 0x8aec_1871_436e_18cc;
