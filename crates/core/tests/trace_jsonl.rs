//! Golden event-stream test: a short optimization under fault injection
//! streams well-formed schema-v1 JSONL whose events include the guard
//! rollback and spectrum-cache counters, with monotonically
//! non-decreasing timestamps across the whole (multi-threaded) run.
//!
//! Runs only with the `fault-injection` feature
//! (`cargo test -p lsopc-core --features fault-injection`).
#![cfg(feature = "fault-injection")]

use lsopc_core::{GuardConfig, LevelSetIlt, RecoveryPolicy};
use lsopc_grid::Grid;
use lsopc_litho::{FaultMode, LithoSimulator, ScriptedFault};
use lsopc_optics::OpticsConfig;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Minimal field extractor for the sink's flat one-object-per-line
/// format. String values in the schema never contain escaped quotes
/// (names and paths are static identifiers), so a bare `"`-scan is a
/// faithful parse here.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.find('"').map(|end| &stripped[..end])
    } else {
        rest.find([',', '}']).map(|end| rest[..end].trim())
    }
}

#[test]
fn fault_run_streams_wellformed_jsonl() {
    let path = std::env::temp_dir().join(format!("lsopc_trace_{}.jsonl", std::process::id()));
    let sink = lsopc_trace::JsonlSink::create(&path).expect("create stream");
    lsopc_trace::install(Arc::new(sink));

    // Default FFT backend: its per-kernel folds go through the global
    // spectrum cache (hit + miss events) and its transforms dispatch on
    // the pool (pool events). The scripted NaN gradient at iteration 1
    // trips the guard into a rollback.
    let sim = LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
        .expect("valid configuration")
        .with_fault_injector(Arc::new(ScriptedFault::once(1, FaultMode::NanGradient)));
    let target = Grid::from_fn(64, 64, |x, y| {
        if (26..38).contains(&x) && (12..52).contains(&y) {
            1.0
        } else {
            0.0
        }
    });
    let result = LevelSetIlt::builder()
        .max_iterations(3)
        .recovery(RecoveryPolicy::On(GuardConfig::default()))
        .build()
        .optimize(&sim, &target)
        .expect("optimize recovers");
    lsopc_trace::flush();
    lsopc_trace::uninstall();
    assert!(result.diagnostics.backoffs > 0, "the scripted fault fired");

    let text = std::fs::read_to_string(&path).expect("read stream");
    std::fs::remove_file(&path).ok();
    assert!(
        text.lines().count() > 20,
        "a 3-iteration run streams events"
    );

    let mut last_ts = 0u64;
    let mut kinds = BTreeSet::new();
    let mut counters = BTreeSet::new();
    for line in text.lines() {
        assert!(line.starts_with("{\"v\": 1, "), "schema marker: {line}");
        assert!(line.ends_with('}'), "object per line: {line}");
        let ts: u64 = field(line, "ts_ns")
            .unwrap_or_else(|| panic!("ts_ns in {line}"))
            .parse()
            .unwrap_or_else(|_| panic!("numeric ts_ns in {line}"));
        assert!(ts >= last_ts, "timestamps must not regress: {line}");
        last_ts = ts;
        let kind = field(line, "kind").unwrap_or_else(|| panic!("kind in {line}"));
        if kind == "count" {
            counters.insert(
                field(line, "name")
                    .unwrap_or_else(|| panic!("name in {line}"))
                    .to_string(),
            );
        }
        kinds.insert(kind.to_string());
    }

    for kind in ["span", "count", "iter"] {
        assert!(kinds.contains(kind), "stream has {kind} events: {kinds:?}");
    }
    for counter in [
        "guard.rollback",
        "cache.spectra.hit",
        "cache.spectra.miss",
        "cache.plan.hit",
    ] {
        assert!(
            counters.contains(counter),
            "stream has {counter}: {counters:?}"
        );
    }
    assert!(
        counters.contains("pool.jobs") || counters.contains("pool.jobs_inline"),
        "stream has pool dispatch events: {counters:?}"
    );
    assert!(counters.contains("fault.hook_calls"), "{counters:?}");
}
