//! The disabled-sink instrumentation path must cost less than 1% of a
//! 256²/K=8 `cost_and_gradient` evaluation.
//!
//! Differencing two end-to-end timings (instrumented binary vs not)
//! cannot resolve a sub-1% effect over machine noise, so the bound is
//! established analytically: measure the per-probe cost of the disabled
//! fast path in a tight loop, count how many probes one evaluation
//! actually fires (via a memory sink), and require
//! `probes × per_probe < 1% × evaluation_time`.

use lsopc_grid::Grid;
use lsopc_litho::{cost_and_gradient, LithoSimulator};
use lsopc_optics::OpticsConfig;
use lsopc_parallel::ParallelContext;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Both tests install sinks and take timing measurements; running them
/// concurrently would leak `enabled()` state across them and pollute
/// the timings. One at a time.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn disabled_tracing_overhead_is_under_one_percent() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    assert!(!lsopc_trace::enabled(), "no sink installed at test start");

    let sim =
        LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(8), 256, 8.0)
            .expect("valid configuration")
            .with_accelerated_backend(ParallelContext::global().threads());
    let target = Grid::from_fn(256, 256, |x, y| {
        if (104..152).contains(&x) && (48..208).contains(&y) {
            1.0
        } else {
            0.0
        }
    });
    let mask = target.clone();

    // Warm plan/spectrum/kernel caches so the timed evaluations measure
    // steady state — the optimizer loop this models is always warm.
    let _ = cost_and_gradient(&sim, &mask, &target, 1.0);

    // Steady-state evaluation time, disabled path (min over a few runs).
    let mut eval_ns = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let _ = cost_and_gradient(&sim, &mask, &target, 1.0);
        eval_ns = eval_ns.min(t.elapsed().as_nanos() as f64);
    }

    // Per-probe cost of the disabled fast path. black_box keeps the
    // optimizer from deleting the unused guard/atomic load outright.
    let reps: u32 = 1_000_000;
    let t = Instant::now();
    for _ in 0..reps {
        let _ = std::hint::black_box(lsopc_trace::span!("overhead.probe"));
    }
    let span_ns = t.elapsed().as_nanos() as f64 / f64::from(reps);
    let t = Instant::now();
    for i in 0..reps {
        lsopc_trace::count("overhead.probe", std::hint::black_box(u64::from(i & 1)));
    }
    let count_ns = t.elapsed().as_nanos() as f64 / f64::from(reps);
    let per_probe_ns = span_ns.max(count_ns);

    // How many probes one evaluation fires: aggregate one traced call.
    let sink = Arc::new(lsopc_trace::MemorySink::new());
    lsopc_trace::install(sink.clone());
    let _ = cost_and_gradient(&sim, &mask, &target, 1.0);
    lsopc_trace::uninstall();
    let report = sink.report();
    let span_events: u64 = report.spans.iter().map(|s| s.calls).sum();
    // Counter *totals* over-count count() call sites (one pool.chunks
    // call carries a multi-chunk delta) — conservative in the direction
    // that makes the bound harder to meet.
    let counter_events: u64 = report.counters.values().sum();
    let probes = span_events + counter_events;
    assert!(probes > 0, "a traced evaluation emits events");

    let overhead_ns = probes as f64 * per_probe_ns;
    assert!(
        overhead_ns < 0.01 * eval_ns,
        "disabled-path overhead {overhead_ns:.0} ns ({probes} probes × {per_probe_ns:.2} ns) \
         is not < 1% of a {eval_ns:.0} ns evaluation"
    );
}

/// The *enabled* path with a [`lsopc_trace::MetricsRegistry`] sink —
/// span path join, histogram `record`, counter `fetch_add` — must stay
/// cheap enough that per-job metrics collection (on by default in
/// `lsopc-engine`) never dominates a run: bounded here at 10% of a
/// 256²/K=8 `cost_and_gradient` evaluation, measured the same analytic
/// way as the disabled-path bound.
#[test]
fn registry_enabled_overhead_stays_modest() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let sim =
        LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(8), 256, 8.0)
            .expect("valid configuration")
            .with_accelerated_backend(ParallelContext::global().threads());
    let target = Grid::from_fn(256, 256, |x, y| {
        if (104..152).contains(&x) && (48..208).contains(&y) {
            1.0
        } else {
            0.0
        }
    });
    let mask = target.clone();
    let _ = cost_and_gradient(&sim, &mask, &target, 1.0);

    let mut eval_ns = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let _ = cost_and_gradient(&sim, &mask, &target, 1.0);
        eval_ns = eval_ns.min(t.elapsed().as_nanos() as f64);
    }

    // Steady-state per-event cost with a registry sink scoped in: the
    // first touch of a name takes a write lock, every later one is a
    // read lock plus relaxed atomics. Measure the steady state — that
    // is what a multi-thousand-event run amortizes to.
    let registry = Arc::new(lsopc_trace::MetricsRegistry::new());
    let reps: u32 = 100_000;
    let (span_ns, count_ns) = lsopc_trace::with_scoped_sink(registry.clone(), || {
        let _ = std::hint::black_box(lsopc_trace::span!("overhead.enabled"));
        lsopc_trace::count("overhead.enabled", 1);
        let t = Instant::now();
        for _ in 0..reps {
            let _ = std::hint::black_box(lsopc_trace::span!("overhead.enabled"));
        }
        let span_ns = t.elapsed().as_nanos() as f64 / f64::from(reps);
        let t = Instant::now();
        for i in 0..reps {
            lsopc_trace::count("overhead.enabled", std::hint::black_box(u64::from(i & 1)));
        }
        (span_ns, t.elapsed().as_nanos() as f64 / f64::from(reps))
    });
    assert_eq!(
        registry
            .span_histogram("overhead.enabled")
            .map(|h| h.count()),
        Some(u64::from(reps) + 1),
        "every span reached the registry histogram"
    );
    let per_probe_ns = span_ns.max(count_ns);

    let sink = Arc::new(lsopc_trace::MemorySink::new());
    lsopc_trace::install(sink.clone());
    let _ = cost_and_gradient(&sim, &mask, &target, 1.0);
    lsopc_trace::uninstall();
    let report = sink.report();
    let span_events: u64 = report.spans.iter().map(|s| s.calls).sum();
    let counter_events: u64 = report.counters.values().sum();
    let probes = span_events + counter_events;
    assert!(probes > 0, "a traced evaluation emits events");

    let overhead_ns = probes as f64 * per_probe_ns;
    assert!(
        overhead_ns < 0.10 * eval_ns,
        "registry-path overhead {overhead_ns:.0} ns ({probes} probes × {per_probe_ns:.2} ns) \
         is not < 10% of a {eval_ns:.0} ns evaluation"
    );
}
