//! Property tests for warm-start fingerprint normalization: translated
//! copies of a pattern share one cache key, and the cached ψ aligns
//! bit-for-bit (DESIGN.md §14).

use lsopc_core::{fingerprint, WarmStartCache};
use lsopc_fft::cyclic_shift;
use lsopc_grid::Grid;
use proptest::prelude::*;

const TILE: usize = 64;

/// Builds a TILE×TILE tile with a `bw`×`bh` bit box placed at `(ox, oy)`.
fn place(pattern: &[bool], bw: usize, bh: usize, ox: usize, oy: usize) -> Grid<f64> {
    Grid::from_fn(TILE, TILE, |x, y| {
        let inside = (ox..ox + bw).contains(&x) && (oy..oy + bh).contains(&y);
        if inside && pattern[(y - oy) * bw + (x - ox)] {
            1.0
        } else {
            0.0
        }
    })
}

proptest! {
    /// The same pattern placed at two different offsets fingerprints to
    /// the same key with anchors differing by exactly the translation;
    /// a ψ cached under one placement, looked up through the other, and
    /// shifted back reproduces the stored ψ bit-for-bit.
    #[test]
    fn shifted_tiles_share_a_key_and_align_bitwise(
        bw in 1usize..=12,
        bh in 1usize..=12,
        bits in prop::collection::vec(any::<bool>(), 144),
        ox1 in 0usize..=50, oy1 in 0usize..=50,
        ox2 in 0usize..=50, oy2 in 0usize..=50,
        seed in 1usize..1000,
    ) {
        let mut pattern = bits[..bw * bh].to_vec();
        // Pin the box corner on so the bounding-box anchor is (ox, oy)
        // exactly and the pattern is never empty.
        pattern[0] = true;
        let a = place(&pattern, bw, bh, ox1, oy1);
        let b = place(&pattern, bw, bh, ox2, oy2);
        let fa = fingerprint(&a).expect("non-empty");
        let fb = fingerprint(&b).expect("non-empty");
        prop_assert_eq!(fa.key(), fb.key());
        let (ax, ay) = fa.anchor();
        let (bx, by) = fb.anchor();
        prop_assert_eq!(bx as i64 - ax as i64, ox2 as i64 - ox1 as i64);
        prop_assert_eq!(by as i64 - ay as i64, oy2 as i64 - oy1 as i64);

        let cache = WarmStartCache::in_memory();
        let psi = Grid::from_fn(TILE, TILE, |x, y| {
            ((x * 31 + y * 17 + seed) as f64 * 0.37).sin()
        });
        cache.store(&fa, &psi);
        let aligned = cache.lookup(&fb).expect("same key hits");
        let back = cyclic_shift(&aligned, ax as i64 - bx as i64, ay as i64 - by as i64);
        for (got, want) in back.as_slice().iter().zip(psi.as_slice()) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    /// Flipping any single interior cell of the bounding box changes the
    /// key: the fingerprint depends on the full box-relative bit
    /// pattern, not just the box geometry.
    #[test]
    fn content_changes_change_the_key(
        bw in 2usize..=10,
        bh in 2usize..=10,
        bits in prop::collection::vec(any::<bool>(), 100),
        flip in (1usize..99),
        ox in 0usize..=40, oy in 0usize..=40,
    ) {
        let mut pattern = bits[..bw * bh].to_vec();
        // Pin all four corners so the bounding box is identical before
        // and after the flip — only the interior content differs.
        pattern[0] = true;
        pattern[bw - 1] = true;
        pattern[(bh - 1) * bw] = true;
        pattern[bh * bw - 1] = true;
        let flip = flip % (bw * bh);
        prop_assume!(
            flip != 0 && flip != bw - 1 && flip != (bh - 1) * bw && flip != bh * bw - 1
        );
        let original = fingerprint(&place(&pattern, bw, bh, ox, oy)).expect("non-empty");
        pattern[flip] = !pattern[flip];
        let flipped = fingerprint(&place(&pattern, bw, bh, ox, oy)).expect("non-empty");
        prop_assert!(original.key() != flipped.key());
        prop_assert_eq!(original.anchor(), flipped.anchor());
    }
}
