//! Tracing must only observe, never perturb: with a sink installed the
//! optimizer's output is bit-identical (`f64::to_bits`) to an untraced
//! run. `scripts/check.sh` runs this binary under both `LSOPC_THREADS=1`
//! and `LSOPC_THREADS=4` to pin the property at both pool sizes.

use lsopc_core::{IltResult, LevelSetIlt};
use lsopc_grid::Grid;
use lsopc_litho::LithoSimulator;
use lsopc_optics::OpticsConfig;
use lsopc_parallel::ParallelContext;
use std::sync::Arc;

fn wire_target() -> Grid<f64> {
    Grid::from_fn(64, 64, |x, y| {
        if (26..38).contains(&x) && (12..52).contains(&y) {
            1.0
        } else {
            0.0
        }
    })
}

fn run() -> IltResult {
    // The accelerated backend exercises the pool-worker span-merge path
    // on top of the FFT pool dispatch.
    let sim = LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
        .expect("valid configuration")
        .with_accelerated_backend(ParallelContext::global().threads());
    LevelSetIlt::builder()
        .max_iterations(5)
        .build()
        .optimize(&sim, &wire_target())
        .expect("optimize runs")
}

fn bits(g: &Grid<f64>) -> Vec<u64> {
    g.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn tracing_leaves_optimizer_output_bit_identical() {
    let baseline = run();

    let sink = Arc::new(lsopc_trace::MemorySink::new());
    lsopc_trace::install(sink.clone());
    let traced = run();
    lsopc_trace::uninstall();

    // Sanity: the traced run actually went through the instrumentation.
    let report = sink.report();
    assert!(
        report
            .spans
            .iter()
            .any(|s| s.path.contains("optimize.iter")),
        "sink saw optimizer spans"
    );
    assert_eq!(report.iterations.len(), traced.iterations);

    assert_eq!(baseline.iterations, traced.iterations);
    assert_eq!(bits(&baseline.mask), bits(&traced.mask));
    assert_eq!(bits(&baseline.levelset), bits(&traced.levelset));
    assert_eq!(baseline.history.len(), traced.history.len());
    for (a, b) in baseline.history.iter().zip(&traced.history) {
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.rolled_back, b.rolled_back);
        for (name, x, y) in [
            ("cost_total", a.cost_total, b.cost_total),
            ("cost_nominal", a.cost_nominal, b.cost_nominal),
            ("cost_pvb", a.cost_pvb, b.cost_pvb),
            ("max_velocity", a.max_velocity, b.max_velocity),
            ("time_step", a.time_step, b.time_step),
            ("cg_beta", a.cg_beta, b.cg_beta),
            ("lambda_scale", a.lambda_scale, b.lambda_scale),
        ] {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "iteration {} {name}: {x} != {y}",
                a.iteration
            );
        }
    }
}
