//! Process-level fault drills: cancellation fired from *inside* the
//! evaluation pipeline, corrupted/truncated checkpoint files, and
//! damaged on-disk warm-start entries. Every case must degrade
//! gracefully — a typed error or a warned cache miss — never a panic,
//! never silent corruption.
//!
//! Runs only with the `fault-injection` feature
//! (`cargo test -p lsopc-core --features fault-injection`).
#![cfg(feature = "fault-injection")]

use lsopc_core::{
    fingerprint, CancelToken, CheckpointSpec, IltResult, LevelSetIlt, OptimizeError, RunControl,
    StopReason, WarmStartCache,
};
use lsopc_grid::Grid;
use lsopc_litho::{LithoSimulator, ScriptedCancel};
use lsopc_optics::OpticsConfig;
use std::path::PathBuf;
use std::sync::Arc;

const ITERS: usize = 8;

fn clean_sim() -> LithoSimulator {
    LithoSimulator::from_optics(&OpticsConfig::iccad2013().with_kernel_count(4), 64, 4.0)
        .expect("valid configuration")
}

fn wire_target() -> Grid<f64> {
    Grid::from_fn(64, 64, |x, y| {
        if (26..38).contains(&x) && (12..52).contains(&y) {
            1.0
        } else {
            0.0
        }
    })
}

fn optimizer() -> LevelSetIlt {
    LevelSetIlt::builder().max_iterations(ITERS).build()
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lsopc_pfault_{}_{name}", std::process::id()))
}

fn assert_bit_identical(a: &IltResult, b: &IltResult, what: &str) {
    assert_eq!(a.iterations, b.iterations, "{what}: iteration count");
    assert_eq!(a.history.len(), b.history.len(), "{what}: history length");
    for (ra, rb) in a.history.iter().zip(&b.history) {
        assert_eq!(
            ra.cost_total.to_bits(),
            rb.cost_total.to_bits(),
            "{what}: iter {} cost",
            ra.iteration
        );
    }
    for (i, (va, vb)) in a.mask.as_slice().iter().zip(b.mask.as_slice()).enumerate() {
        assert_eq!(va.to_bits(), vb.to_bits(), "{what}: mask pixel {i}");
    }
    for (i, (va, vb)) in a
        .levelset
        .as_slice()
        .iter()
        .zip(b.levelset.as_slice())
        .enumerate()
    {
        assert_eq!(va.to_bits(), vb.to_bits(), "{what}: ψ pixel {i}");
    }
}

/// A cancellation fired from inside the cost/gradient evaluation (the
/// worst place: mid-iteration, mid-pipeline) still stops at the next
/// iteration boundary with a final checkpoint, and the resume picks up
/// the trajectory bit-for-bit.
#[test]
fn mid_evaluation_cancel_checkpoints_and_resumes_bit_identically() {
    let target = wire_target();
    let ilt = optimizer();
    let baseline = ilt
        .optimize(&clean_sim(), &target)
        .expect("uninterrupted baseline");

    for k in [0, 3, ITERS - 2] {
        let ck = tmp_path(&format!("cancel_k{k}.lsckpt"));
        std::fs::remove_file(&ck).ok();
        let token = CancelToken::new();
        let sim = clean_sim().with_fault_injector(Arc::new(ScriptedCancel::new(
            k,
            token.clone(),
            StopReason::External,
        )));
        let control = RunControl::new()
            .with_cancel(token)
            .with_checkpoint(CheckpointSpec::new(&ck, 1));
        let killed = ilt
            .optimize_controlled(&sim, &target, &control)
            .expect("cancelled run is graceful");
        assert_eq!(killed.stopped, Some(StopReason::External), "k={k}");
        assert!(
            killed.iterations <= k + 1,
            "k={k}: stopped at the next boundary, not later (ran {})",
            killed.iterations
        );
        assert!(ck.exists(), "k={k}: final checkpoint written");

        // The injector never touched the numbers, so the resumed run
        // must land exactly on the uninterrupted trajectory.
        let resumed = ilt
            .optimize_controlled(&clean_sim(), &target, &RunControl::new().with_resume(&ck))
            .expect("resume runs");
        assert_bit_identical(&baseline, &resumed, &format!("cancel k={k}"));
        std::fs::remove_file(ck).ok();
    }
}

/// Produces one valid checkpoint file to corrupt.
fn valid_checkpoint(name: &str) -> (PathBuf, Vec<u8>) {
    let ck = tmp_path(name);
    std::fs::remove_file(&ck).ok();
    let control = RunControl::new()
        .with_iteration_budget(3)
        .with_checkpoint(CheckpointSpec::new(&ck, 1));
    optimizer()
        .optimize_controlled(&clean_sim(), &wire_target(), &control)
        .expect("checkpointed run");
    let bytes = std::fs::read(&ck).expect("checkpoint bytes");
    (ck, bytes)
}

fn resume_err(ck: &std::path::Path) -> OptimizeError {
    optimizer()
        .optimize_controlled(
            &clean_sim(),
            &wire_target(),
            &RunControl::new().with_resume(ck),
        )
        .expect_err("corrupt checkpoint must be rejected")
}

/// Truncating a checkpoint at any point — inside the magic, the header,
/// or the payload — yields a typed checkpoint error, never a panic or
/// an over-allocation.
#[test]
fn truncated_checkpoints_are_rejected_not_panics() {
    let (ck, bytes) = valid_checkpoint("trunc.lsckpt");
    assert!(bytes.len() > 28, "sanity: framed file has header + payload");
    let cuts = [
        0,
        1,
        7,
        8,
        11,
        12,
        19,
        20,
        27,
        28,
        bytes.len() / 2,
        bytes.len() - 1,
    ];
    for cut in cuts {
        std::fs::write(&ck, &bytes[..cut]).expect("write truncation");
        let err = resume_err(&ck);
        assert!(
            matches!(err, OptimizeError::Checkpoint { .. }),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
    std::fs::remove_file(ck).ok();
}

/// Flipping any single byte — magic, version, length, checksum, or
/// payload — is caught (checksum or field validation) and rejected.
#[test]
fn corrupted_checkpoint_bytes_are_rejected_not_panics() {
    let (ck, bytes) = valid_checkpoint("flip.lsckpt");
    // Every header byte, plus a sample of payload offsets.
    let mut offsets: Vec<usize> = (0..28.min(bytes.len())).collect();
    offsets.extend(
        (0..16)
            .map(|i| 28 + i * ((bytes.len() - 29).max(1) / 16))
            .filter(|&o| o < bytes.len()),
    );
    for off in offsets {
        let mut dmg = bytes.clone();
        dmg[off] ^= 0x40;
        std::fs::write(&ck, &dmg).expect("write corruption");
        let err = resume_err(&ck);
        assert!(
            matches!(err, OptimizeError::Checkpoint { .. }),
            "flip at {off}: unexpected error {err:?}"
        );
    }
    std::fs::remove_file(ck).ok();
}

/// A checkpoint from a different configuration (here: different
/// iteration cap) is refused by the config hash, not silently resumed.
#[test]
fn checkpoint_from_other_configuration_is_refused() {
    let (ck, _) = valid_checkpoint("confighash.lsckpt");
    let other = LevelSetIlt::builder().max_iterations(ITERS + 1).build();
    let err = other
        .optimize_controlled(
            &clean_sim(),
            &wire_target(),
            &RunControl::new().with_resume(&ck),
        )
        .expect_err("mismatched configuration");
    assert!(matches!(err, OptimizeError::Checkpoint { .. }), "{err:?}");
    assert!(
        err.to_string().contains("configuration"),
        "message names the mismatch: {err}"
    );
    std::fs::remove_file(ck).ok();
}

/// A truncated on-disk warm-start entry (a crash mid-write before the
/// atomic rename existed, or disk damage) is a warned miss: a fresh
/// cache over the same directory simply re-solves, it never panics and
/// never loads garbage ψ.
#[test]
fn truncated_warmstart_entry_is_a_miss_not_a_panic() {
    let dir = tmp_path("wsdir");
    std::fs::remove_dir_all(&dir).ok();
    let cache = WarmStartCache::directory(&dir).expect("dir cache");
    let tile = Grid::from_fn(64, 64, |x, y| {
        if (20..44).contains(&x) && (20..44).contains(&y) {
            1.0
        } else {
            0.0
        }
    });
    let fp = fingerprint(&tile).expect("non-empty tile");
    let psi = Grid::from_fn(64, 64, |x, y| ((x * 13 + y * 7) as f64 * 0.21).sin());
    cache.store(&fp, &psi);

    // Damage every entry the store produced.
    let mut entries = 0;
    for e in std::fs::read_dir(&dir).expect("read dir") {
        let path = e.expect("entry").path();
        if path.extension().is_some_and(|x| x == "psi") {
            let bytes = std::fs::read(&path).expect("entry bytes");
            std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
            entries += 1;
        }
    }
    assert_eq!(entries, 1, "store wrote exactly one entry");

    let reopened = WarmStartCache::directory(&dir).expect("reopen survives damage");
    assert!(
        reopened.lookup(&fp).is_none(),
        "truncated entry must read as a miss"
    );
    std::fs::remove_dir_all(dir).ok();
}
