//! Recovery property tests: a fault injected at ANY iteration still
//! yields a finite mask no worse than the last healthy checkpoint.
//!
//! Runs only with the `fault-injection` feature
//! (`cargo test -p lsopc-core --features fault-injection`); the feature
//! forwards to `lsopc-litho`'s injection hook on the cost-and-gradient
//! path. The sweep is exhaustive over (fault mode × iteration index)
//! rather than sampled — determinism makes every case cheap to pin.
#![cfg(feature = "fault-injection")]

use lsopc_core::{GuardConfig, GuardEventKind, LevelSetIlt, OptimizeError, RecoveryPolicy};
use lsopc_grid::Grid;
use lsopc_litho::{cost_only, FaultInjector, FaultMode, LithoSimulator, ScriptedFault};
use lsopc_optics::OpticsConfig;
use std::sync::Arc;

const ITERS: usize = 6;

fn optics() -> OpticsConfig {
    OpticsConfig::iccad2013().with_kernel_count(4)
}

fn clean_sim() -> LithoSimulator {
    LithoSimulator::from_optics(&optics(), 64, 4.0).expect("valid configuration")
}

fn faulty_sim(injector: Arc<dyn FaultInjector>) -> LithoSimulator {
    LithoSimulator::from_optics(&optics(), 64, 4.0)
        .expect("valid configuration")
        .with_fault_injector(injector)
}

fn wire_target() -> Grid<f64> {
    Grid::from_fn(64, 64, |x, y| {
        if (26..38).contains(&x) && (12..52).contains(&y) {
            1.0
        } else {
            0.0
        }
    })
}

fn optimizer(policy: RecoveryPolicy) -> LevelSetIlt {
    LevelSetIlt::builder()
        .max_iterations(ITERS)
        .recovery(policy)
        .build()
}

fn guard_on() -> RecoveryPolicy {
    RecoveryPolicy::On(GuardConfig::default())
}

fn assert_finite_binary(mask: &Grid<f64>) {
    assert!(
        mask.as_slice().iter().all(|&v| v == 0.0 || v == 1.0),
        "mask must be finite and binary"
    );
    assert!(mask.sum() > 0.0, "mask must not be empty");
}

/// The acceptance property: a fault at iteration `k` still returns `Ok`
/// with an all-finite mask whose true cost is no worse than the last
/// pre-fault checkpoint's, and the diagnostics record the recovery.
fn assert_recovers(mode: FaultMode, k: usize, clean_costs: &[f64]) {
    let sim = faulty_sim(Arc::new(ScriptedFault::once(k, mode)));
    let target = wire_target();
    let result = optimizer(guard_on())
        .optimize(&sim, &target)
        .unwrap_or_else(|e| panic!("{mode:?} at iteration {k}: optimize failed: {e}"));

    assert_finite_binary(&result.mask);
    assert!(
        result.levelset.as_slice().iter().all(|v| v.is_finite()),
        "{mode:?} at iteration {k}: non-finite ψ leaked"
    );

    // No worse than the last healthy checkpoint. Iterations before the
    // fault are bit-identical to the clean run, so the checkpoint cost
    // is the clean run's cost at k−1 (or at 0 when the fault fires on
    // the very first evaluation, which re-runs unharmed after backoff).
    let checkpoint_cost = clean_costs[k.saturating_sub(1)];
    let verify = clean_sim();
    let achieved = cost_only(&verify, &result.mask, &target, 1.0).total();
    assert!(
        achieved <= checkpoint_cost * (1.0 + 1e-6),
        "{mode:?} at iteration {k}: cost {achieved} worse than checkpoint {checkpoint_cost}"
    );

    // The diagnostics record the recovery.
    assert!(
        result.diagnostics.backoffs >= 1,
        "{mode:?} at iteration {k}: no backoff recorded"
    );
    assert!(
        result
            .diagnostics
            .events
            .iter()
            .any(|e| matches!(e.kind, GuardEventKind::Backoff { .. })),
        "{mode:?} at iteration {k}: no backoff event"
    );
    assert!(
        result.history.iter().any(|r| r.rolled_back),
        "{mode:?} at iteration {k}: no rolled-back record"
    );
    if k + 1 < ITERS {
        // A later in-loop evaluation ran healthy again.
        assert!(
            result.diagnostics.recovered(),
            "{mode:?} at iteration {k}: recovery not recorded"
        );
    }
    assert!(result.diagnostics.final_lambda_scale < 1.0);
}

/// Clean-run per-iteration costs, the rollback reference.
fn clean_costs() -> Vec<f64> {
    let result = optimizer(guard_on())
        .optimize(&clean_sim(), &wire_target())
        .expect("clean run");
    assert!(!result.diagnostics.has_events(), "clean run saw events");
    result.history.iter().map(|r| r.cost_total).collect()
}

#[test]
fn non_finite_faults_at_every_iteration_recover() {
    let costs = clean_costs();
    assert_eq!(costs.len(), ITERS);
    for mode in [
        FaultMode::NanGradient,
        FaultMode::InfGradient,
        FaultMode::NanCost,
        FaultMode::InfCost,
    ] {
        for k in 0..ITERS {
            assert_recovers(mode, k, &costs);
        }
    }
}

#[test]
fn spike_faults_at_every_detectable_iteration_recover() {
    let costs = clean_costs();
    // A spike is finite, so it is only detectable against a healthy
    // reference magnitude — the ratio detectors need iteration ≥ 1.
    for mode in [FaultMode::SpikeGradient(1e30), FaultMode::SpikeCost(1e30)] {
        for k in 1..ITERS {
            assert_recovers(mode, k, &costs);
        }
    }
}

#[test]
fn fault_on_final_evaluation_returns_best_healthy_iterate() {
    // The post-loop evaluation is fault call number ITERS (one per
    // in-loop iteration first). Corrupting it must not corrupt the
    // returned mask.
    let target = wire_target();
    for mode in [FaultMode::NanCost, FaultMode::Panic] {
        let sim = faulty_sim(Arc::new(ScriptedFault::once(ITERS, mode)));
        let result = optimizer(guard_on())
            .optimize(&sim, &target)
            .expect("optimize survives a corrupt final evaluation");
        assert_finite_binary(&result.mask);
        assert!(result.diagnostics.has_events());
        // The in-loop iterations were all healthy.
        assert!(result.history.iter().all(|r| !r.rolled_back));
    }
}

#[test]
fn worker_panic_is_contained_as_a_diagnostics_event() {
    let sim = faulty_sim(Arc::new(ScriptedFault::once(2, FaultMode::Panic)));
    let target = wire_target();
    let result = optimizer(guard_on())
        .optimize(&sim, &target)
        .expect("panic must be contained");
    assert_finite_binary(&result.mask);
    let panics: Vec<_> = result
        .diagnostics
        .events
        .iter()
        .filter(|e| matches!(e.kind, GuardEventKind::WorkerPanic { .. }))
        .collect();
    assert_eq!(panics.len(), 1, "exactly one contained panic");
    assert_eq!(panics[0].iteration, 2);
    match &panics[0].kind {
        GuardEventKind::WorkerPanic { message } => {
            assert!(message.contains("injected fault"), "message: {message}");
        }
        other => panic!("unexpected kind {other:?}"),
    }
    assert!(result.diagnostics.backoffs >= 1);
    // The shared pool survived for the rest of the run.
    assert!(result.history.len() == ITERS);
}

#[test]
fn worker_panic_with_guard_off_still_aborts() {
    // Historical behavior is preserved: without the guard the re-raised
    // pool panic propagates out of optimize.
    let sim = faulty_sim(Arc::new(ScriptedFault::once(1, FaultMode::Panic)));
    let target = wire_target();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        optimizer(RecoveryPolicy::Off).optimize(&sim, &target)
    }));
    assert!(outcome.is_err(), "guard-off panic must propagate");
}

#[test]
fn persistent_fault_gives_up_gracefully_under_on() {
    let sim = faulty_sim(Arc::new(ScriptedFault::persistent(FaultMode::NanGradient)));
    let target = wire_target();
    let result = LevelSetIlt::builder()
        .max_iterations(12)
        .recovery(guard_on())
        .build()
        .optimize(&sim, &target)
        .expect("On policy ends gracefully");
    assert!(result.diagnostics.gave_up);
    assert_eq!(
        result.diagnostics.backoffs,
        GuardConfig::default().max_backoffs
    );
    assert!(result
        .diagnostics
        .events
        .iter()
        .any(|e| e.kind == GuardEventKind::GaveUp));
    // Every evaluation was corrupt, so the fallback is the untouched
    // initial iterate — still finite and binary.
    assert_finite_binary(&result.mask);
    assert!(result.levelset.as_slice().iter().all(|v| v.is_finite()));
    assert!(!result.converged);
}

#[test]
fn persistent_fault_is_an_error_under_strict() {
    let sim = faulty_sim(Arc::new(ScriptedFault::persistent(FaultMode::NanCost)));
    let target = wire_target();
    let err = LevelSetIlt::builder()
        .max_iterations(12)
        .recovery(RecoveryPolicy::Strict(GuardConfig::default()))
        .build()
        .optimize(&sim, &target)
        .expect_err("Strict policy fails hard");
    match err {
        OptimizeError::RecoveryFailed {
            iteration,
            backoffs,
        } => {
            assert_eq!(backoffs, GuardConfig::default().max_backoffs);
            assert!(iteration <= 12);
        }
        other => panic!("unexpected error {other:?}"),
    }
    assert!(err.to_string().contains("gave up"));
}

#[test]
fn recovery_halves_lambda_and_records_it_in_history() {
    let sim = faulty_sim(Arc::new(ScriptedFault::once(2, FaultMode::NanGradient)));
    let target = wire_target();
    let result = optimizer(guard_on())
        .optimize(&sim, &target)
        .expect("recovers");
    assert_eq!(result.history.len(), ITERS);
    // Before the fault: untouched scale. At the fault: rolled back and
    // halved. After: the halved scale drives the CFL step.
    assert_eq!(result.history[1].lambda_scale, 1.0);
    assert!(result.history[2].rolled_back);
    assert_eq!(result.history[2].lambda_scale, 0.5);
    assert_eq!(result.history[2].backoffs, 1);
    assert_eq!(result.history[3].lambda_scale, 0.5);
    assert!(!result.history[3].rolled_back);
    assert_eq!(result.diagnostics.final_lambda_scale, 0.5);
}
