//! Parallel == serial bit-identity for tiled optimization.

use lsopc_core::{LevelSetIlt, TiledIlt};
use lsopc_grid::Grid;
use lsopc_optics::OpticsConfig;
use lsopc_parallel::ParallelContext;

fn optics() -> OpticsConfig {
    OpticsConfig::iccad2013().with_kernel_count(4)
}

/// Two features in different tiles of a 256-px target.
fn two_tile_target() -> Grid<f64> {
    Grid::from_fn(256, 256, |x, y| {
        let a = (40..60).contains(&x) && (30..90).contains(&y);
        let b = (180..200).contains(&x) && (160..220).contains(&y);
        if a || b {
            1.0
        } else {
            0.0
        }
    })
}

/// Concurrent tile optimization stitches the exact same mask as the
/// serial sweep at every thread count — including counts above the
/// number of non-empty tiles.
#[test]
fn tiled_masks_are_thread_count_invariant() {
    let target = two_tile_target();
    let opt = LevelSetIlt::builder().max_iterations(4).build();
    let reference = TiledIlt::new(opt.clone(), 128, 64)
        .with_context(ParallelContext::new(1))
        .optimize(&optics(), &target, 4.0)
        .expect("serial tiles run");
    assert!(reference.sum() > 0.0, "premise: a non-trivial mask");
    for threads in [2usize, 3, 8] {
        let got = TiledIlt::new(opt.clone(), 128, 64)
            .with_context(ParallelContext::new(threads))
            .optimize(&optics(), &target, 4.0)
            .expect("parallel tiles run");
        for (a, b) in got.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
