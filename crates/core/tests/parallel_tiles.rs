//! Parallel == serial bit-identity for tiled optimization.

use lsopc_core::{LevelSetIlt, TiledIlt, WarmStartCache};
use lsopc_grid::Grid;
use lsopc_optics::OpticsConfig;
use lsopc_parallel::ParallelContext;

fn optics() -> OpticsConfig {
    OpticsConfig::iccad2013().with_kernel_count(4)
}

/// Two features in different tiles of a 256-px target.
fn two_tile_target() -> Grid<f64> {
    Grid::from_fn(256, 256, |x, y| {
        let a = (40..60).contains(&x) && (30..90).contains(&y);
        let b = (180..200).contains(&x) && (160..220).contains(&y);
        if a || b {
            1.0
        } else {
            0.0
        }
    })
}

/// The same 20×56 feature twice in a 512-px target: once in the
/// top-left corner (seen only by tile (0,0)) and once at +(256, 256),
/// where the overlapping halo windows show it — as a pure translation —
/// to four tiles. One pattern key, five non-empty tiles, so a warm
/// cache turns four of the five solves into warm refinements.
fn repeated_tile_target() -> Grid<f64> {
    Grid::from_fn(512, 512, |x, y| {
        let a = (8..28).contains(&x) && (4..60).contains(&y);
        let b = (264..284).contains(&x) && (260..316).contains(&y);
        if a || b {
            1.0
        } else {
            0.0
        }
    })
}

/// Concurrent tile optimization stitches the exact same mask as the
/// serial sweep at every thread count — including counts above the
/// number of non-empty tiles.
#[test]
fn tiled_masks_are_thread_count_invariant() {
    let target = two_tile_target();
    let opt = LevelSetIlt::builder().max_iterations(4).build();
    let reference = TiledIlt::new(opt.clone(), 128, 64)
        .expect("valid tiling")
        .with_context(ParallelContext::new(1))
        .optimize(&optics(), &target, 4.0)
        .expect("serial tiles run");
    assert!(reference.sum() > 0.0, "premise: a non-trivial mask");
    for threads in [2usize, 3, 8] {
        let got = TiledIlt::new(opt.clone(), 128, 64)
            .expect("valid tiling")
            .with_context(ParallelContext::new(threads))
            .optimize(&optics(), &target, 4.0)
            .expect("parallel tiles run");
        for (a, b) in got.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// Warm-started tiled optimization is just as thread-count invariant:
/// tiles are classified cold/warm by content up front (not by a race on
/// the cache), so every thread count solves the same tiles the same way
/// and stitches a bit-identical mask. Each run gets a fresh cache so
/// all runs start from the same cache state.
#[test]
fn warm_started_tiled_masks_are_thread_count_invariant() {
    let target = repeated_tile_target();
    let opt = LevelSetIlt::builder().max_iterations(4).build();
    let run = |threads: usize| {
        TiledIlt::new(opt.clone(), 128, 64)
            .expect("valid tiling")
            .with_warm_start(WarmStartCache::in_memory())
            .with_context(ParallelContext::new(threads))
            .optimize_with_stats(&optics(), &target, 4.0)
            .expect("warm tiles run")
    };
    let (reference, stats) = run(1);
    assert!(reference.sum() > 0.0, "premise: a non-trivial mask");
    assert_eq!(
        (stats.cold, stats.warm),
        (1, 4),
        "premise: the warm path actually executes"
    );
    for threads in [2usize, 3, 8] {
        let (got, stats) = run(threads);
        assert_eq!((stats.cold, stats.warm), (1, 4));
        for (a, b) in got.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
