//! Per-iteration optimization records.

use serde::{Deserialize, Serialize};

/// What happened in one optimizer iteration (one line of Algorithm 1).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration index, starting at 0.
    pub iteration: usize,
    /// Nominal fidelity cost `L_nom` (paper Eq. (7)).
    pub cost_nominal: f64,
    /// Process-variation cost `L_pvb` (paper Eq. (12)).
    pub cost_pvb: f64,
    /// Combined cost `L = L_nom + w_pvb·L_pvb` (paper Eq. (13)).
    pub cost_total: f64,
    /// Peak evolution speed `max|v|` before the update.
    pub max_velocity: f64,
    /// Time step `Δt = λ_t / max|v|` used for the update.
    pub time_step: f64,
    /// PRP conjugate-gradient coefficient `λ` (0 on restarts or when CG
    /// is disabled).
    pub cg_beta: f64,
    /// Seconds elapsed since optimization started.
    pub elapsed_s: f64,
    /// True when the health guard rejected this iteration and rolled
    /// `ψ` back to the last healthy checkpoint (its cost fields may be
    /// NaN — they record the rejected evaluation).
    pub rolled_back: bool,
    /// Cumulative guard backoffs at the end of this iteration.
    pub backoffs: usize,
    /// Effective `λ_t` multiplier applied this iteration (1.0 unless the
    /// guard backed off earlier in the run).
    pub lambda_scale: f64,
}

impl Default for IterationRecord {
    fn default() -> Self {
        Self {
            iteration: 0,
            cost_nominal: 0.0,
            cost_pvb: 0.0,
            cost_total: 0.0,
            max_velocity: 0.0,
            time_step: 0.0,
            cg_beta: 0.0,
            elapsed_s: 0.0,
            rolled_back: false,
            backoffs: 0,
            // A unit multiplier, not zero: "no guard intervention".
            lambda_scale: 1.0,
        }
    }
}

impl IterationRecord {
    /// Renders a compact single-line summary, handy for progress logs.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "iter {:>3}: L={:.4e} (nom {:.4e}, pvb {:.4e}) |v|max={:.3e} dt={:.3e} beta={:.3}",
            self.iteration,
            self.cost_total,
            self.cost_nominal,
            self.cost_pvb,
            self.max_velocity,
            self.time_step,
            self.cg_beta
        );
        if self.rolled_back {
            line.push_str(" [rolled back]");
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_fields() {
        let rec = IterationRecord {
            iteration: 7,
            cost_total: 12.5,
            ..IterationRecord::default()
        };
        let s = rec.summary();
        assert!(s.contains("iter   7"));
        assert!(s.contains("1.2500e1"));
    }

    #[test]
    fn default_is_zeroed() {
        let rec = IterationRecord::default();
        assert_eq!(rec.iteration, 0);
        assert_eq!(rec.cost_total, 0.0);
        assert!(!rec.rolled_back);
        assert_eq!(rec.backoffs, 0);
        assert_eq!(rec.lambda_scale, 1.0);
    }

    #[test]
    fn summary_marks_rollbacks() {
        let rec = IterationRecord {
            rolled_back: true,
            ..IterationRecord::default()
        };
        assert!(rec.summary().contains("[rolled back]"));
        assert!(!IterationRecord::default().summary().contains("rolled"));
    }
}
