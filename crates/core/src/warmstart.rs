//! Content-addressed warm-start cache for repeated tile patterns.
//!
//! Production layouts repeat a small vocabulary of local patterns
//! (AdaOPC's premise, PAPERS.md); solving the same pattern from scratch
//! in every tile wastes the bulk of the iteration budget. This module
//! keys solved tiles by *content*, not position:
//!
//! 1. [`fingerprint`] normalizes a tile target to its bounding box and
//!    hashes the bit pattern (FNV-1a over packed rows). Two tiles whose
//!    patterns differ only by a whole-pixel translation produce the same
//!    key with different bounding-box anchors — translation-invariant
//!    keying.
//! 2. [`WarmStartCache`] maps the key to the solved ψ together with the
//!    anchor it was solved at. A lookup re-anchors the cached ψ to the
//!    requesting tile with [`lsopc_fft::cyclic_shift`], which is exactly
//!    invertible, so the aligned ψ round-trips bit-for-bit (the property
//!    `tests/warmstart.rs` pins).
//!
//! The warm-started run itself is *not* bit-identical to a cold solve of
//! the shifted tile — FFT convolution is only translation-equivariant in
//! exact arithmetic — it is equivalent at the tolerance level (DESIGN.md
//! §14). The cache has a shared in-memory backend and an on-disk
//! directory backend; both are best-effort (a corrupt or unwritable
//! entry degrades to a miss/no-op with a trace warning, never an error).

use lsopc_fft::cyclic_shift;
use lsopc_grid::Grid;
use std::collections::HashMap;
use std::io::{self, Read};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const DIR_MAGIC: &[u8; 8] = b"LSWSPSI1";

fn fnv1a(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// The translation-invariant identity of a tile pattern: a content hash
/// plus the bounding-box anchor the pattern sits at in its tile.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PatternFingerprint {
    key: u64,
    bx: usize,
    by: usize,
}

impl PatternFingerprint {
    /// The content hash (identical for whole-pixel translations of the
    /// same pattern within equally-sized tiles).
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Bounding-box anchor (minimum on-pixel x, y) in the tile.
    pub fn anchor(&self) -> (usize, usize) {
        (self.bx, self.by)
    }
}

/// Fingerprints a tile target: binarize at 0.5, locate the pattern's
/// bounding box, and hash tile dims + box dims + the box-relative bit
/// pattern. Returns `None` for an empty tile (nothing to key).
pub fn fingerprint(target: &Grid<f64>) -> Option<PatternFingerprint> {
    let (w, h) = target.dims();
    let (mut x0, mut y0, mut x1, mut y1) = (w, h, 0usize, 0usize);
    for y in 0..h {
        for x in 0..w {
            if target[(x, y)] >= 0.5 {
                x0 = x0.min(x);
                y0 = y0.min(y);
                x1 = x1.max(x);
                y1 = y1.max(y);
            }
        }
    }
    if x0 > x1 {
        return None;
    }
    let (bw, bh) = (x1 - x0 + 1, y1 - y0 + 1);
    let mut key = FNV_OFFSET;
    for dims in [w as u64, h as u64, bw as u64, bh as u64] {
        key = fnv1a(key, dims);
    }
    // Pack the box-relative pattern 64 cells per word, row-major; the
    // anchor itself stays out of the hash — that is the invariance.
    let mut word = 0u64;
    let mut bits = 0;
    for y in y0..=y1 {
        for x in x0..=x1 {
            word = (word << 1) | u64::from(target[(x, y)] >= 0.5);
            bits += 1;
            if bits == 64 {
                key = fnv1a(key, word);
                word = 0;
                bits = 0;
            }
        }
    }
    if bits > 0 {
        key = fnv1a(key, word << (64 - bits));
    }
    Some(PatternFingerprint {
        key,
        bx: x0,
        by: y0,
    })
}

/// A solved ψ plus the anchor its pattern sat at when solved.
#[derive(Clone, Debug)]
struct StoredPsi {
    bx: usize,
    by: usize,
    psi: Grid<f64>,
}

impl StoredPsi {
    /// Re-anchors the stored ψ to a requesting tile's pattern position.
    /// A cyclic shift is exact for the periodic simulation domain and
    /// exactly invertible, so alignment loses nothing.
    fn aligned(&self, fp: &PatternFingerprint) -> Grid<f64> {
        cyclic_shift(
            &self.psi,
            fp.bx as i64 - self.bx as i64,
            fp.by as i64 - self.by as i64,
        )
    }
}

#[derive(Clone, Debug)]
enum Backend {
    Mem(Arc<Mutex<HashMap<u64, StoredPsi>>>),
    Dir(PathBuf),
}

/// Content-addressed store of solved tile level sets.
///
/// Cloning shares the underlying store (the in-memory backend is an
/// `Arc`; the directory backend is a path), so one cache can be handed
/// to many [`TiledIlt`](crate::TiledIlt) runs. Lookups and stores are
/// counted as `cache.warmstart.hit` / `cache.warmstart.miss` in
/// `lsopc-trace`.
///
/// # Example
///
/// ```
/// use lsopc_core::{fingerprint, WarmStartCache};
/// use lsopc_grid::Grid;
///
/// let cache = WarmStartCache::in_memory();
/// let tile = Grid::from_fn(64, 64, |x, y| {
///     if (10..20).contains(&x) && (10..20).contains(&y) { 1.0 } else { 0.0 }
/// });
/// let fp = fingerprint(&tile).expect("non-empty");
/// assert!(cache.lookup(&fp).is_none());
/// cache.store(&fp, &Grid::new(64, 64, 1.0));
/// assert!(cache.lookup(&fp).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct WarmStartCache {
    backend: Backend,
}

impl WarmStartCache {
    /// A process-lifetime shared in-memory cache.
    pub fn in_memory() -> Self {
        Self {
            backend: Backend::Mem(Arc::new(Mutex::new(HashMap::new()))),
        }
    }

    /// An on-disk cache: one file per pattern key under `path`
    /// (created if missing). Entries persist across runs and processes.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the directory.
    pub fn directory(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        std::fs::create_dir_all(&path)?;
        Ok(Self {
            backend: Backend::Dir(path),
        })
    }

    /// Looks up a fingerprint and returns the cached ψ re-anchored to
    /// the fingerprint's pattern position. Counts a warm-start hit or
    /// miss.
    pub fn lookup(&self, fp: &PatternFingerprint) -> Option<Grid<f64>> {
        match self.fetch(fp.key) {
            Some(stored) => {
                lsopc_trace::count("cache.warmstart.hit", 1);
                Some(stored.aligned(fp))
            }
            None => {
                lsopc_trace::count("cache.warmstart.miss", 1);
                None
            }
        }
    }

    /// [`WarmStartCache::lookup`] without touching the hit/miss
    /// counters — for re-reading an entry this run already classified.
    pub(crate) fn lookup_uncounted(&self, fp: &PatternFingerprint) -> Option<Grid<f64>> {
        self.fetch(fp.key).map(|stored| stored.aligned(fp))
    }

    /// Stores a solved ψ under the fingerprint's key, anchored at the
    /// fingerprint's pattern position. Best-effort on the directory
    /// backend: write failures warn and drop the entry.
    pub fn store(&self, fp: &PatternFingerprint, psi: &Grid<f64>) {
        let stored = StoredPsi {
            bx: fp.bx,
            by: fp.by,
            psi: psi.clone(),
        };
        match &self.backend {
            Backend::Mem(map) => {
                map.lock()
                    .expect("warm-start cache lock")
                    .insert(fp.key, stored);
            }
            Backend::Dir(dir) => {
                if let Err(e) = write_entry(&dir.join(entry_name(fp.key)), &stored) {
                    lsopc_trace::warn("warmstart", &format!("failed to persist entry: {e}"));
                }
            }
        }
    }

    /// Number of cached patterns (0 if a directory backend is unreadable).
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Mem(map) => map.lock().expect("warm-start cache lock").len(),
            Backend::Dir(dir) => std::fs::read_dir(dir).map_or(0, |entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "psi"))
                    .count()
            }),
        }
    }

    /// True when no pattern has been cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn fetch(&self, key: u64) -> Option<StoredPsi> {
        match &self.backend {
            Backend::Mem(map) => map
                .lock()
                .expect("warm-start cache lock")
                .get(&key)
                .cloned(),
            Backend::Dir(dir) => {
                let path = dir.join(entry_name(key));
                if !path.exists() {
                    return None;
                }
                match read_entry(&path) {
                    Ok(stored) => Some(stored),
                    Err(e) => {
                        // A corrupt or truncated entry is a miss, never
                        // an error: the tile just solves cold again.
                        lsopc_trace::warn("warmstart", &format!("discarding bad entry: {e}"));
                        None
                    }
                }
            }
        }
    }
}

fn entry_name(key: u64) -> String {
    format!("{key:016x}.psi")
}

fn write_entry(path: &std::path::Path, stored: &StoredPsi) -> io::Result<()> {
    let (w, h) = stored.psi.dims();
    let mut buf = Vec::with_capacity(8 + 4 * 8 + w * h * 8);
    buf.extend_from_slice(DIR_MAGIC);
    for v in [w as u64, h as u64, stored.bx as u64, stored.by as u64] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    for v in stored.psi.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    // Atomic temp-file + rename: a crash mid-store can leave a stray
    // temp file but never a truncated `.psi` entry that a later run
    // would have to discard.
    crate::resume::atomic_write(path, &buf)
}

fn read_entry(path: &std::path::Path) -> io::Result<StoredPsi> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 8 + 4 * 8 || &bytes[..8] != DIR_MAGIC {
        return Err(bad("bad header"));
    }
    let mut words = bytes[8..8 + 4 * 8]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    let w = words.next().expect("width") as usize;
    let h = words.next().expect("height") as usize;
    let bx = words.next().expect("bx") as usize;
    let by = words.next().expect("by") as usize;
    let data = &bytes[8 + 4 * 8..];
    if w == 0 || h == 0 || data.len() != w * h * 8 || bx >= w || by >= h {
        return Err(bad("inconsistent geometry"));
    }
    let mut values = data
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    let psi = Grid::from_fn(w, h, |_, _| values.next().expect("sized above"));
    Ok(StoredPsi { bx, by, psi })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_with_square(n: usize, ox: usize, oy: usize) -> Grid<f64> {
        Grid::from_fn(n, n, |x, y| {
            if (ox..ox + 8).contains(&x) && (oy..oy + 6).contains(&y) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn fingerprint_is_translation_invariant() {
        let a = fingerprint(&tile_with_square(64, 10, 20)).expect("non-empty");
        let b = fingerprint(&tile_with_square(64, 31, 5)).expect("non-empty");
        assert_eq!(a.key(), b.key());
        assert_eq!(a.anchor(), (10, 20));
        assert_eq!(b.anchor(), (31, 5));
    }

    #[test]
    fn fingerprint_separates_content_and_tile_size() {
        let square = fingerprint(&tile_with_square(64, 10, 20)).expect("non-empty");
        let taller = fingerprint(&Grid::from_fn(64, 64, |x, y| {
            if (10..18).contains(&x) && (20..27).contains(&y) {
                1.0
            } else {
                0.0
            }
        }))
        .expect("non-empty");
        assert_ne!(square.key(), taller.key(), "different content");
        let other_tile = fingerprint(&tile_with_square(128, 10, 20)).expect("non-empty");
        assert_ne!(square.key(), other_tile.key(), "different tile size");
    }

    #[test]
    fn empty_tile_has_no_fingerprint() {
        assert!(fingerprint(&Grid::new(16, 16, 0.0)).is_none());
        assert!(
            fingerprint(&Grid::new(16, 16, 0.4)).is_none(),
            "below threshold"
        );
    }

    #[test]
    fn lookup_aligns_to_the_new_anchor() {
        let cache = WarmStartCache::in_memory();
        let solved_at = fingerprint(&tile_with_square(64, 10, 20)).expect("non-empty");
        // A recognizable ψ: equal to the column index.
        let psi = Grid::from_fn(64, 64, |x, _| x as f64);
        cache.store(&solved_at, &psi);

        let wanted_at = fingerprint(&tile_with_square(64, 13, 24)).expect("non-empty");
        let aligned = cache.lookup(&wanted_at).expect("hit");
        // Shift (+3, +4): cell (x) now holds the value of column x-3.
        assert_eq!(aligned[(13, 0)], 10.0);
        assert_eq!(aligned[(0, 0)], 61.0, "wraps cyclically");
    }

    #[test]
    fn directory_backend_roundtrips_bitwise_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("lsopc-ws-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = WarmStartCache::directory(&dir).expect("create");
        assert!(cache.is_empty());

        let fp = fingerprint(&tile_with_square(32, 4, 6)).expect("non-empty");
        let psi = Grid::from_fn(32, 32, |x, y| (x as f64 * 0.31 - y as f64 * 1.7).sin());
        cache.store(&fp, &psi);
        assert_eq!(cache.len(), 1);
        let back = cache.lookup(&fp).expect("hit");
        for (a, b) in back.as_slice().iter().zip(psi.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Truncate the entry: the next lookup must degrade to a miss.
        let entry = dir.join(entry_name(fp.key()));
        std::fs::write(&entry, b"garbage").expect("overwrite");
        assert!(cache.lookup(&fp).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
