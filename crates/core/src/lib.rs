//! Level-set inverse lithography mask optimization — the primary
//! contribution of *“A GPU-enabled Level Set Method for Mask
//! Optimization”* (DATE 2021).
//!
//! The optimizer implements the paper's Algorithm 1:
//!
//! 1. initialize the level-set function `ψ₀` as the signed distance of the
//!    target pattern (Eq. (5));
//! 2. each iteration, simulate the sigmoid prints at the three process
//!    corners, evaluate the process-window-aware cost
//!    `L = L_nom + w_pvb·L_pvb` (Eq. (13)) and its mask gradient `G`
//!    (Eq. (11)/(14));
//! 3. form the evolution velocity `v = −G·|∇ψ|` (Eq. (10)), optionally
//!    combined with the previous velocity by the Polak–Ribière–Polyak
//!    conjugate-gradient rule (Eq. (15)–(16));
//! 4. advance `ψ ← ψ + v·Δt` with `Δt = λ_t / max|v|` and re-threshold the
//!    mask (Eq. (6));
//! 5. stop after `N` iterations or when `max|v| ≤ ε`.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use lsopc_core::LevelSetIlt;
//! use lsopc_grid::Grid;
//! use lsopc_litho::LithoSimulator;
//! use lsopc_optics::OpticsConfig;
//!
//! let sim = LithoSimulator::from_optics(
//!     &OpticsConfig::iccad2013().with_kernel_count(4),
//!     64,
//!     4.0,
//! )?;
//! let target = Grid::from_fn(64, 64, |x, y| {
//!     if (24..40).contains(&x) && (12..52).contains(&y) { 1.0 } else { 0.0 }
//! });
//! let result = LevelSetIlt::builder()
//!     .max_iterations(8)
//!     .build()
//!     .optimize(&sim, &target)?;
//! let first = result.history.first().expect("history");
//! let last = result.history.last().expect("history");
//! assert!(last.cost_total <= first.cost_total);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cg;
pub mod sraf;

mod config;
mod guard;
mod history;
mod optimizer;
mod resume;
mod schedule;
mod tiles;
mod warmstart;

pub use config::{Evolution, LevelSetIlt, LevelSetIltBuilder};
pub use guard::{GuardConfig, GuardEvent, GuardEventKind, RecoveryPolicy, SolverDiagnostics};
pub use history::IterationRecord;
pub use lsopc_parallel::{CancelToken, StopReason};
pub use optimizer::{IltResult, OptimizeError};
pub use resume::{CheckpointError, CheckpointSpec, RunControl};
pub use schedule::ResolutionSchedule;
pub use tiles::{TiledError, TiledIlt, TiledStats};
pub use warmstart::{fingerprint, PatternFingerprint, WarmStartCache};
