//! Solver health guard: non-finite/divergence/stall detection,
//! checkpoint/rollback recovery, and structured diagnostics.
//!
//! Algorithm 1 assumes a well-behaved descent; nothing in the plain loop
//! notices a NaN that leaks from a corrupted gradient, a cost blow-up or
//! a frozen run — a single non-finite cell in `ψ` silently propagates to
//! the final mask. The guard watches every iteration and, on trouble,
//! performs **step backoff**: restore the last healthy checkpoint
//! (pre-evolve `ψ` plus its measured cost), halve the effective `λ_t`,
//! force a CG restart and retry. Exhausted backoffs end the run
//! gracefully ([`RecoveryPolicy::On`]) or as a hard error
//! ([`RecoveryPolicy::Strict`]). Everything the guard saw is returned as
//! a [`SolverDiagnostics`] on the result.
//!
//! The guard is **pure observation plus control flow**: with
//! [`RecoveryPolicy::Off`] (the builder default) the optimizer follows
//! the exact historical code path, and with the guard enabled a
//! fault-free run performs the identical floating-point operations in
//! the identical order — bit-identical masks and history (see
//! DESIGN.md §10 for the state machine and the determinism argument).

use lsopc_grid::{Grid, Scalar};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Detection thresholds and backoff limits for the health guard.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Backoffs allowed before the guard gives up (each halves `λ_t`).
    pub max_backoffs: usize,
    /// Consecutive cost-rising iterations that count as divergence.
    pub divergence_window: usize,
    /// Relative rise `(L_i − L_{i−1})/L_{i−1}` below which an increase is
    /// ignored by the divergence detector.
    pub divergence_tolerance: f64,
    /// Consecutive no-progress iterations that count as a stall.
    pub stall_window: usize,
    /// Relative cost change below which an iteration counts as
    /// no-progress (0 = only bit-equal costs stall).
    pub stall_tolerance: f64,
    /// A finite cost this many times the last healthy cost is a spike.
    pub cost_spike_factor: f64,
    /// A finite gradient peak this many times the last healthy peak is a
    /// spike. Spikes need a ratio check: the CFL rule bounds the step to
    /// `λ_t` pixels regardless of magnitude, so a corrupt-but-finite
    /// gradient is invisible to the non-finite scans.
    pub gradient_spike_factor: f64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            max_backoffs: 6,
            divergence_window: 5,
            divergence_tolerance: 1e-9,
            stall_window: 5,
            stall_tolerance: 0.0,
            cost_spike_factor: 100.0,
            gradient_spike_factor: 1e6,
        }
    }
}

impl GuardConfig {
    /// The detection thresholds adapted to the scalar type `T` of the
    /// fields being watched.
    ///
    /// A `T`-precision evaluation carries ~`T::EPSILON` relative
    /// round-off — 2^29 times coarser at f32 than at f64 — so thresholds
    /// tuned for f64 noise misread f32 noise. Two adjustments:
    ///
    /// * the divergence/stall tolerances (absolute relative-change
    ///   cutoffs) are floored at `16·ε_T`, so round-off wiggle in the
    ///   cost is never counted as progress or divergence;
    /// * the spike factors gain the matching `1 + 16·ε_T` headroom —
    ///   both sides of a spike comparison carry `O(ε_T)` relative error,
    ///   so the cutoff ratio needs that much slack before a borderline
    ///   value can trip on round-off alone.
    ///
    /// At `T = f64` the configured values pass through **unchanged** (not
    /// merely approximately: the f64 branch returns `*self`), keeping the
    /// historical guard path bit-identical.
    pub(crate) fn scaled_for<T: Scalar>(&self) -> GuardConfig {
        let eps = T::EPSILON.to_f64();
        if eps <= f64::EPSILON {
            return *self;
        }
        let floor = 16.0 * eps;
        GuardConfig {
            divergence_tolerance: self.divergence_tolerance.max(floor),
            stall_tolerance: self.stall_tolerance.max(floor),
            cost_spike_factor: self.cost_spike_factor * (1.0 + floor),
            gradient_spike_factor: self.gradient_spike_factor * (1.0 + floor),
            ..*self
        }
    }
}

/// Whether and how the optimizer recovers from solver trouble.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// No guard at all: the historical code path, faults propagate.
    #[default]
    Off,
    /// Detect and recover; exhausted backoffs end the run gracefully
    /// with the best healthy iterate and `gave_up` set.
    On(GuardConfig),
    /// Detect and recover; exhausted backoffs are a hard
    /// [`OptimizeError::RecoveryFailed`](crate::OptimizeError::RecoveryFailed).
    Strict(GuardConfig),
}

impl RecoveryPolicy {
    /// True unless the policy is [`RecoveryPolicy::Off`].
    pub fn is_enabled(&self) -> bool {
        !matches!(self, Self::Off)
    }

    /// True for [`RecoveryPolicy::Strict`].
    pub fn is_strict(&self) -> bool {
        matches!(self, Self::Strict(_))
    }

    /// Parses a CLI-style policy name: `on`, `off` or `strict` (with
    /// default thresholds).
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values otherwise.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(Self::Off),
            "on" => Ok(Self::On(GuardConfig::default())),
            "strict" => Ok(Self::Strict(GuardConfig::default())),
            other => Err(format!(
                "invalid recovery policy {other:?}: expected on, off or strict"
            )),
        }
    }
}

impl std::str::FromStr for RecoveryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        Self::parse(s)
    }
}

/// What the guard saw at one iteration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GuardEventKind {
    /// The total cost was NaN or ±∞.
    NonFiniteCost,
    /// The cost gradient contained a NaN or ±∞ cell.
    NonFiniteGradient,
    /// The combined evolution velocity contained a NaN or ±∞ cell.
    NonFiniteVelocity,
    /// `ψ` contained a NaN or ±∞ cell after the evolution step.
    NonFiniteLevelSet,
    /// The total cost rose for the configured number of consecutive
    /// iterations.
    CostDivergence {
        /// Length of the rising streak that triggered.
        consecutive: usize,
    },
    /// The finite cost jumped far above the last healthy cost.
    CostSpike {
        /// `cost / last_healthy_cost`.
        ratio: f64,
    },
    /// The finite gradient peak jumped far above the last healthy peak.
    GradientSpike {
        /// `peak / last_healthy_peak`.
        ratio: f64,
    },
    /// The cost made no progress for the configured window; the run is
    /// stopped early rather than backed off (smaller steps cannot
    /// unstall a frozen run).
    Stall {
        /// Length of the no-progress streak that triggered.
        window: usize,
    },
    /// A worker-pool job on the simulator path panicked; the re-raised
    /// panic was contained instead of aborting the process.
    WorkerPanic {
        /// The panic payload, when it carried a message.
        message: String,
    },
    /// A backoff was performed: checkpoint restored, `λ_t` halved, CG
    /// restarted.
    Backoff {
        /// Effective `λ_t` multiplier after the halving.
        lambda_scale: f64,
    },
    /// The first healthy evaluation after one or more backoffs.
    Recovered,
    /// Backoffs were exhausted; the run ended on the best healthy
    /// iterate (or failed, under [`RecoveryPolicy::Strict`]).
    GaveUp,
}

impl fmt::Display for GuardEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFiniteCost => write!(f, "non-finite cost"),
            Self::NonFiniteGradient => write!(f, "non-finite gradient"),
            Self::NonFiniteVelocity => write!(f, "non-finite velocity"),
            Self::NonFiniteLevelSet => write!(f, "non-finite level set after evolve"),
            Self::CostDivergence { consecutive } => {
                write!(f, "cost rose for {consecutive} consecutive iterations")
            }
            Self::CostSpike { ratio } => write!(f, "cost spiked {ratio:.1e}x"),
            Self::GradientSpike { ratio } => write!(f, "gradient peak spiked {ratio:.1e}x"),
            Self::Stall { window } => write!(f, "no cost progress for {window} iterations"),
            Self::WorkerPanic { message } => write!(f, "worker panic: {message}"),
            Self::Backoff { lambda_scale } => {
                write!(
                    f,
                    "backoff: restored checkpoint, lambda scale {lambda_scale}"
                )
            }
            Self::Recovered => write!(f, "recovered"),
            Self::GaveUp => write!(f, "gave up after exhausting backoffs"),
        }
    }
}

/// One guard observation, stamped with the iteration it happened at.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GuardEvent {
    /// Iteration index (the final post-loop evaluation uses
    /// `iterations`, one past the last in-loop index).
    pub iteration: usize,
    /// What happened.
    pub kind: GuardEventKind,
}

/// Everything the health guard observed during a run, attached to
/// [`IltResult`](crate::IltResult). Empty (no events, no backoffs) for a
/// healthy run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolverDiagnostics {
    /// Chronological guard observations.
    pub events: Vec<GuardEvent>,
    /// Number of checkpoint-restoring backoffs performed.
    pub backoffs: usize,
    /// Number of times a healthy evaluation followed a backoff.
    pub recoveries: usize,
    /// True when backoffs were exhausted and the run ended early.
    pub gave_up: bool,
    /// Effective `λ_t` multiplier at the end of the run (1.0 = never
    /// backed off).
    pub final_lambda_scale: f64,
}

impl Default for SolverDiagnostics {
    fn default() -> Self {
        Self {
            events: Vec::new(),
            backoffs: 0,
            recoveries: 0,
            gave_up: false,
            final_lambda_scale: 1.0,
        }
    }
}

impl SolverDiagnostics {
    /// True when the guard saw anything at all.
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// True when at least one backoff later saw a healthy evaluation.
    pub fn recovered(&self) -> bool {
        self.recoveries > 0
    }
}

/// Outcome of reporting trouble to the guard.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum BackoffOutcome {
    /// A backoff was granted: restore the checkpoint, halve `λ_t`,
    /// restart CG and retry.
    Retry,
    /// Backoffs are exhausted: stop (gracefully or as an error,
    /// depending on the policy).
    GiveUp,
}

/// Health of one cost/gradient evaluation.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Health {
    /// Usable values; proceed.
    Healthy,
    /// Usable values, but no progress for the configured window; the
    /// optimizer should stop early.
    Stalled(GuardEventKind),
    /// Corrupted values; the optimizer should back off.
    Corrupt(GuardEventKind),
}

/// The runtime state machine behind a [`RecoveryPolicy`] (healthy →
/// backoff → recovered/aborted; see DESIGN.md §10).
#[derive(Debug)]
pub(crate) struct HealthGuard {
    config: GuardConfig,
    /// Everything observed so far.
    pub(crate) diagnostics: SolverDiagnostics,
    lambda_scale: f64,
    rising_streak: usize,
    stall_streak: usize,
    last_healthy_cost: Option<f64>,
    last_healthy_gradient_peak: Option<f64>,
    /// Set after a backoff until the next healthy evaluation.
    pending_recovery: bool,
}

/// The guard's complete mutable state at an iteration boundary, as
/// captured into (and restored from) a checkpoint. The `config` is not
/// part of the snapshot: it is derived deterministically from the
/// optimizer's [`RecoveryPolicy`], which the checkpoint's config hash
/// already pins.
#[derive(Clone, Debug)]
pub(crate) struct GuardSnapshot {
    /// Everything observed so far.
    pub(crate) diagnostics: SolverDiagnostics,
    /// Current `λ_t` multiplier.
    pub(crate) lambda_scale: f64,
    /// Consecutive cost-rising iterations.
    pub(crate) rising_streak: usize,
    /// Consecutive no-progress iterations.
    pub(crate) stall_streak: usize,
    /// Reference cost for spike/divergence detection.
    pub(crate) last_healthy_cost: Option<f64>,
    /// Reference gradient peak for spike detection.
    pub(crate) last_healthy_gradient_peak: Option<f64>,
    /// Set after a backoff until the next healthy evaluation.
    pub(crate) pending_recovery: bool,
}

impl HealthGuard {
    /// A guard for the policy, or `None` for [`RecoveryPolicy::Off`].
    pub(crate) fn from_policy(policy: &RecoveryPolicy) -> Option<Self> {
        let config = match policy {
            RecoveryPolicy::Off => return None,
            RecoveryPolicy::On(c) | RecoveryPolicy::Strict(c) => *c,
        };
        Some(Self {
            config,
            diagnostics: SolverDiagnostics::default(),
            lambda_scale: 1.0,
            rising_streak: 0,
            stall_streak: 0,
            last_healthy_cost: None,
            last_healthy_gradient_peak: None,
            pending_recovery: false,
        })
    }

    /// Current effective `λ_t` multiplier (halved per backoff).
    pub(crate) fn lambda_scale(&self) -> f64 {
        self.lambda_scale
    }

    /// Captures the guard's mutable state for a checkpoint.
    pub(crate) fn snapshot(&self) -> GuardSnapshot {
        GuardSnapshot {
            diagnostics: self.diagnostics.clone(),
            lambda_scale: self.lambda_scale,
            rising_streak: self.rising_streak,
            stall_streak: self.stall_streak,
            last_healthy_cost: self.last_healthy_cost,
            last_healthy_gradient_peak: self.last_healthy_gradient_peak,
            pending_recovery: self.pending_recovery,
        }
    }

    /// Restores the state captured by [`HealthGuard::snapshot`] so a
    /// resumed run replays the exact guard decisions of the original.
    pub(crate) fn restore(&mut self, s: GuardSnapshot) {
        self.diagnostics = s.diagnostics;
        self.lambda_scale = s.lambda_scale;
        self.rising_streak = s.rising_streak;
        self.stall_streak = s.stall_streak;
        self.last_healthy_cost = s.last_healthy_cost;
        self.last_healthy_gradient_peak = s.last_healthy_gradient_peak;
        self.pending_recovery = s.pending_recovery;
    }

    /// Classifies one cost/gradient evaluation, updating the divergence
    /// and stall streaks and the healthy reference values.
    ///
    /// Generic over the gradient's scalar: the cost is always f64 (the
    /// optimizer's master state), while the detection thresholds are
    /// adapted to `T`'s epsilon via [`GuardConfig::scaled_for`] — an
    /// exact pass-through at `T = f64`.
    pub(crate) fn inspect_evaluation<T: Scalar>(
        &mut self,
        iteration: usize,
        cost_total: f64,
        gradient: &Grid<T>,
    ) -> Health {
        let config = self.config.scaled_for::<T>();
        if !cost_total.is_finite() {
            return Health::Corrupt(GuardEventKind::NonFiniteCost);
        }
        let mut peak = T::ZERO;
        for &g in gradient.as_slice() {
            if !g.is_finite() {
                return Health::Corrupt(GuardEventKind::NonFiniteGradient);
            }
            peak = peak.max(g.abs());
        }
        let peak = peak.to_f64();
        if let Some(ref_peak) = self.last_healthy_gradient_peak {
            if ref_peak > 0.0 && peak > ref_peak * config.gradient_spike_factor {
                return Health::Corrupt(GuardEventKind::GradientSpike {
                    ratio: peak / ref_peak,
                });
            }
        }
        if let Some(ref_cost) = self.last_healthy_cost {
            if ref_cost > 0.0 && cost_total > ref_cost * config.cost_spike_factor {
                return Health::Corrupt(GuardEventKind::CostSpike {
                    ratio: cost_total / ref_cost,
                });
            }
            let scale = ref_cost.abs().max(1.0);
            if cost_total > ref_cost + config.divergence_tolerance * scale {
                self.rising_streak += 1;
                self.stall_streak = 0;
            } else if (cost_total - ref_cost).abs() <= config.stall_tolerance * scale {
                self.rising_streak = 0;
                self.stall_streak += 1;
            } else {
                self.rising_streak = 0;
                self.stall_streak = 0;
            }
        }
        // The evaluation itself is usable: commit it as the healthy
        // reference before reporting divergence/stall, and count a
        // recovery if a backoff was pending.
        self.last_healthy_cost = Some(cost_total);
        self.last_healthy_gradient_peak = Some(peak);
        if self.pending_recovery {
            self.pending_recovery = false;
            self.diagnostics.recoveries += 1;
            self.note_event(iteration, GuardEventKind::Recovered);
        }
        if self.rising_streak >= self.config.divergence_window {
            let consecutive = self.rising_streak;
            self.rising_streak = 0;
            return Health::Corrupt(GuardEventKind::CostDivergence { consecutive });
        }
        if self.stall_streak >= self.config.stall_window {
            let window = self.stall_streak;
            self.stall_streak = 0;
            return Health::Stalled(GuardEventKind::Stall { window });
        }
        Health::Healthy
    }

    /// Scans a velocity field for non-finite cells.
    pub(crate) fn inspect_velocity<T: Scalar>(&self, velocity: &Grid<T>) -> Option<GuardEventKind> {
        scan_non_finite(velocity).then_some(GuardEventKind::NonFiniteVelocity)
    }

    /// Scans `ψ` for non-finite cells after an evolution step.
    pub(crate) fn inspect_levelset<T: Scalar>(&self, psi: &Grid<T>) -> Option<GuardEventKind> {
        scan_non_finite(psi).then_some(GuardEventKind::NonFiniteLevelSet)
    }

    /// Records an observation without acting on it. The single choke
    /// point every guard observation flows through, so it also feeds the
    /// trace layer's `guard.*` counters.
    pub(crate) fn note_event(&mut self, iteration: usize, kind: GuardEventKind) {
        lsopc_trace::count(guard_counter(&kind), 1);
        self.diagnostics.events.push(GuardEvent { iteration, kind });
    }

    /// Reports trouble: records the event and either grants a backoff
    /// (halving the effective `λ_t`) or gives up.
    pub(crate) fn trouble(&mut self, iteration: usize, kind: GuardEventKind) -> BackoffOutcome {
        self.note_event(iteration, kind);
        self.rising_streak = 0;
        self.stall_streak = 0;
        if self.diagnostics.backoffs >= self.config.max_backoffs {
            self.diagnostics.gave_up = true;
            self.note_event(iteration, GuardEventKind::GaveUp);
            return BackoffOutcome::GiveUp;
        }
        self.diagnostics.backoffs += 1;
        self.lambda_scale *= 0.5;
        self.diagnostics.final_lambda_scale = self.lambda_scale;
        self.pending_recovery = true;
        self.note_event(
            iteration,
            GuardEventKind::Backoff {
                lambda_scale: self.lambda_scale,
            },
        );
        BackoffOutcome::Retry
    }
}

/// True when any cell is NaN or ±∞.
fn scan_non_finite<T: Scalar>(grid: &Grid<T>) -> bool {
    grid.as_slice().iter().any(|v| !v.is_finite())
}

/// Trace counter name for one guard observation. A checkpoint-restoring
/// backoff counts as `guard.rollback` — the name trace consumers key on.
fn guard_counter(kind: &GuardEventKind) -> &'static str {
    match kind {
        GuardEventKind::NonFiniteCost => "guard.non_finite_cost",
        GuardEventKind::NonFiniteGradient => "guard.non_finite_gradient",
        GuardEventKind::NonFiniteVelocity => "guard.non_finite_velocity",
        GuardEventKind::NonFiniteLevelSet => "guard.non_finite_levelset",
        GuardEventKind::CostDivergence { .. } => "guard.cost_divergence",
        GuardEventKind::CostSpike { .. } => "guard.cost_spike",
        GuardEventKind::GradientSpike { .. } => "guard.gradient_spike",
        GuardEventKind::Stall { .. } => "guard.stall",
        GuardEventKind::WorkerPanic { .. } => "guard.worker_panic",
        GuardEventKind::Backoff { .. } => "guard.rollback",
        GuardEventKind::Recovered => "guard.recovered",
        GuardEventKind::GaveUp => "guard.gave_up",
    }
}

/// Best-effort text from a caught panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (payload was not a string)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> HealthGuard {
        HealthGuard::from_policy(&RecoveryPolicy::On(GuardConfig::default())).expect("enabled")
    }

    fn finite_gradient() -> Grid<f64> {
        Grid::from_vec(2, 2, vec![0.5, -1.0, 2.0, 0.0])
    }

    #[test]
    fn off_policy_builds_no_guard() {
        assert!(HealthGuard::from_policy(&RecoveryPolicy::Off).is_none());
        assert!(!RecoveryPolicy::Off.is_enabled());
        assert!(RecoveryPolicy::On(GuardConfig::default()).is_enabled());
        assert!(RecoveryPolicy::Strict(GuardConfig::default()).is_strict());
    }

    #[test]
    fn parse_accepts_the_three_policies() {
        assert_eq!(RecoveryPolicy::parse("off"), Ok(RecoveryPolicy::Off));
        assert!(RecoveryPolicy::parse("on").expect("valid").is_enabled());
        assert!(RecoveryPolicy::parse("strict").expect("valid").is_strict());
        let err = RecoveryPolicy::parse("maybe").expect_err("invalid");
        assert!(err.contains("maybe"));
        assert!("on"
            .parse::<RecoveryPolicy>()
            .expect("FromStr")
            .is_enabled());
    }

    #[test]
    fn healthy_evaluations_stay_healthy() {
        let mut g = guard();
        for (i, cost) in [10.0, 8.0, 6.5, 6.0].into_iter().enumerate() {
            assert_eq!(
                g.inspect_evaluation(i, cost, &finite_gradient()),
                Health::Healthy
            );
        }
        assert!(!g.diagnostics.has_events());
        assert_eq!(g.lambda_scale(), 1.0);
    }

    #[test]
    fn non_finite_cost_and_gradient_are_corrupt() {
        let mut g = guard();
        assert_eq!(
            g.inspect_evaluation(0, f64::NAN, &finite_gradient()),
            Health::Corrupt(GuardEventKind::NonFiniteCost)
        );
        assert_eq!(
            g.inspect_evaluation(0, f64::INFINITY, &finite_gradient()),
            Health::Corrupt(GuardEventKind::NonFiniteCost)
        );
        let bad = Grid::from_vec(2, 2, vec![0.5, f64::NAN, 2.0, 0.0]);
        assert_eq!(
            g.inspect_evaluation(0, 1.0, &bad),
            Health::Corrupt(GuardEventKind::NonFiniteGradient)
        );
    }

    #[test]
    fn spikes_need_a_healthy_reference() {
        let mut g = guard();
        // First evaluation: no reference, a huge cost is accepted.
        assert_eq!(
            g.inspect_evaluation(0, 1e30, &finite_gradient()),
            Health::Healthy
        );
        let mut g = guard();
        assert_eq!(
            g.inspect_evaluation(0, 10.0, &finite_gradient()),
            Health::Healthy
        );
        assert!(matches!(
            g.inspect_evaluation(1, 10.0 * 1e6, &finite_gradient()),
            Health::Corrupt(GuardEventKind::CostSpike { .. })
        ));
        let spiked = finite_gradient().map(|&v| v * 1e12);
        assert!(matches!(
            g.inspect_evaluation(1, 10.0, &spiked),
            Health::Corrupt(GuardEventKind::GradientSpike { .. })
        ));
    }

    #[test]
    fn divergence_fires_after_the_window() {
        let mut g = guard();
        let mut verdicts = Vec::new();
        for (i, cost) in [10.0, 11.0, 12.0, 13.0, 14.0, 15.0].into_iter().enumerate() {
            verdicts.push(g.inspect_evaluation(i, cost, &finite_gradient()));
        }
        assert!(verdicts[..5].iter().all(|h| *h == Health::Healthy));
        assert_eq!(
            verdicts[5],
            Health::Corrupt(GuardEventKind::CostDivergence { consecutive: 5 })
        );
    }

    #[test]
    fn stall_fires_after_the_window() {
        let mut g = guard();
        assert_eq!(
            g.inspect_evaluation(0, 10.0, &finite_gradient()),
            Health::Healthy
        );
        let mut last = Health::Healthy;
        for i in 1..=5 {
            last = g.inspect_evaluation(i, 10.0, &finite_gradient());
        }
        assert_eq!(last, Health::Stalled(GuardEventKind::Stall { window: 5 }));
    }

    #[test]
    fn backoff_halves_lambda_then_gives_up() {
        let mut g = guard();
        for k in 1..=6 {
            assert_eq!(
                g.trouble(k, GuardEventKind::NonFiniteCost),
                BackoffOutcome::Retry
            );
            assert_eq!(g.lambda_scale(), 0.5f64.powi(k as i32));
        }
        assert_eq!(
            g.trouble(7, GuardEventKind::NonFiniteCost),
            BackoffOutcome::GiveUp
        );
        assert!(g.diagnostics.gave_up);
        assert_eq!(g.diagnostics.backoffs, 6);
        assert!(matches!(
            g.diagnostics.events.last(),
            Some(GuardEvent {
                kind: GuardEventKind::GaveUp,
                ..
            })
        ));
    }

    #[test]
    fn recovery_is_counted_once_per_backoff() {
        let mut g = guard();
        assert_eq!(
            g.inspect_evaluation(0, 10.0, &finite_gradient()),
            Health::Healthy
        );
        g.trouble(1, GuardEventKind::NonFiniteGradient);
        assert_eq!(
            g.inspect_evaluation(2, 10.0, &finite_gradient()),
            Health::Healthy
        );
        assert_eq!(
            g.inspect_evaluation(3, 9.0, &finite_gradient()),
            Health::Healthy
        );
        assert_eq!(g.diagnostics.recoveries, 1);
        assert!(g.diagnostics.recovered());
        assert!(g
            .diagnostics
            .events
            .iter()
            .any(|e| e.kind == GuardEventKind::Recovered && e.iteration == 2));
    }

    #[test]
    fn velocity_and_levelset_scans_catch_non_finite_cells() {
        let g = guard();
        assert_eq!(g.inspect_velocity(&finite_gradient()), None);
        let bad = Grid::from_vec(2, 2, vec![0.5, f64::NEG_INFINITY, 2.0, 0.0]);
        assert_eq!(
            g.inspect_velocity(&bad),
            Some(GuardEventKind::NonFiniteVelocity)
        );
        assert_eq!(
            g.inspect_levelset(&bad),
            Some(GuardEventKind::NonFiniteLevelSet)
        );
    }

    #[test]
    fn f64_threshold_scaling_is_an_exact_pass_through() {
        let config = GuardConfig::default();
        assert_eq!(config.scaled_for::<f64>(), config);
        let custom = GuardConfig {
            divergence_tolerance: 3e-12,
            stall_tolerance: 1e-13,
            ..config
        };
        assert_eq!(custom.scaled_for::<f64>(), custom);
    }

    #[test]
    fn f32_thresholds_gain_epsilon_headroom() {
        let config = GuardConfig::default();
        let scaled = config.scaled_for::<f32>();
        let floor = 16.0 * f32::EPSILON as f64;
        assert_eq!(scaled.divergence_tolerance, floor);
        assert_eq!(scaled.stall_tolerance, floor);
        assert!(scaled.cost_spike_factor > config.cost_spike_factor);
        assert!(scaled.gradient_spike_factor > config.gradient_spike_factor);
        // Windows and backoff limits are precision-independent.
        assert_eq!(scaled.max_backoffs, config.max_backoffs);
        assert_eq!(scaled.divergence_window, config.divergence_window);
        assert_eq!(scaled.stall_window, config.stall_window);
    }

    #[test]
    fn f32_round_off_wiggle_counts_as_stall_not_divergence() {
        // Cost changes of a few f32 ulps must not feed the divergence
        // streak at f32 (they would at the raw f64 tolerance of 1e-9).
        let g32 = Grid::from_vec(2, 2, vec![0.5_f32, -1.0, 2.0, 0.0]);
        let mut watcher = guard();
        let mut last = Health::Healthy;
        for i in 0..=5 {
            let cost = 10.0 * (1.0 + i as f64 * 1e-8);
            last = watcher.inspect_evaluation(i, cost, &g32);
        }
        assert_eq!(last, Health::Stalled(GuardEventKind::Stall { window: 5 }));
        // The same rising sequence against f64 fields diverges.
        let mut watcher = guard();
        let mut last = Health::Healthy;
        for i in 0..=5 {
            let cost = 10.0 * (1.0 + i as f64 * 1e-8);
            last = watcher.inspect_evaluation(i, cost, &finite_gradient());
        }
        assert_eq!(
            last,
            Health::Corrupt(GuardEventKind::CostDivergence { consecutive: 5 })
        );
    }

    #[test]
    fn diagnostics_default_is_clean() {
        let d = SolverDiagnostics::default();
        assert!(!d.has_events());
        assert!(!d.recovered());
        assert!(!d.gave_up);
        assert_eq!(d.final_lambda_scale, 1.0);
    }

    #[test]
    fn events_render_human_readable() {
        let kinds = [
            GuardEventKind::NonFiniteCost,
            GuardEventKind::CostDivergence { consecutive: 5 },
            GuardEventKind::GradientSpike { ratio: 2e7 },
            GuardEventKind::WorkerPanic {
                message: "boom".to_string(),
            },
            GuardEventKind::Backoff { lambda_scale: 0.25 },
            GuardEventKind::GaveUp,
        ];
        for kind in kinds {
            assert!(!kind.to_string().is_empty());
        }
        assert!(GuardEventKind::WorkerPanic {
            message: "boom".to_string()
        }
        .to_string()
        .contains("boom"));
    }

    #[test]
    fn panic_message_extracts_strings() {
        assert_eq!(panic_message(Box::new("static")), "static");
        assert_eq!(panic_message(Box::new("owned".to_string())), "owned");
        assert!(panic_message(Box::new(42usize)).contains("payload"));
    }
}
